# Canonical developer commands for the OSP reproduction.

.PHONY: install test bench bench-full examples clean

install:
	pip install -e . || python setup.py develop --no-deps

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only -s

bench-full:
	REPRO_BENCH_FULL=1 pytest benchmarks/ --benchmark-only -s

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f; done

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .benchmarks src/repro.egg-info
