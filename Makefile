# Canonical developer commands for the OSP reproduction.

.PHONY: install test bench bench-full perf perf-full bench-net bench-net-full bench-prio bench-prio-full bench-multijob bench-multijob-full faults ckpt check trace dash compare examples clean

install:
	pip install -e . || python setup.py develop --no-deps

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only -s

bench-full:
	REPRO_BENCH_FULL=1 pytest benchmarks/ --benchmark-only -s

# Hot-path perf smoke: quick microbenchmarks to a scratch file, then
# validate the committed baseline's schema + guarded speedups.
perf:
	PYTHONPATH=src python -m repro perf --quick --out /tmp/BENCH_hotpath.quick.json
	PYTHONPATH=src python -m repro perf --check BENCH_hotpath.json

# Regenerate the committed BENCH_hotpath.json at full scale.
perf-full:
	PYTHONPATH=src python -m repro perf --out BENCH_hotpath.json

# Netsim scaling smoke: quick 4->64-worker sweep to a scratch file, then
# validate the committed baseline (bit-identity flags + guarded speedup).
bench-net:
	PYTHONPATH=src python -m repro perf-net --quick --out /tmp/BENCH_netsim.quick.json
	PYTHONPATH=src python -m repro perf-net --check BENCH_netsim.json

# Regenerate the committed BENCH_netsim.json at full scale (4->128 workers).
bench-net-full:
	PYTHONPATH=src python -m repro perf-net --out BENCH_netsim.json

# Priority-scheduling smoke: quick contended-RS run to a scratch file, then
# validate the committed baseline (inert identity + guarded improvement).
bench-prio:
	PYTHONPATH=src python -m repro perf-prio --quick --out /tmp/BENCH_netprio.quick.json
	PYTHONPATH=src python -m repro perf-prio --check BENCH_netprio.json

# Regenerate the committed BENCH_netprio.json at full scale.
bench-prio-full:
	PYTHONPATH=src python -m repro perf-prio --out BENCH_netprio.json

# Co-tenancy smoke: quick multi-job isolation run to a scratch file, then
# validate the committed baseline (solo-job identity + guarded isolation).
bench-multijob:
	PYTHONPATH=src python -m repro perf-multijob --quick --out /tmp/BENCH_multijob.quick.json
	PYTHONPATH=src python -m repro perf-multijob --check BENCH_multijob.json

# Regenerate the committed BENCH_multijob.json at full scale.
bench-multijob-full:
	PYTHONPATH=src python -m repro perf-multijob --out BENCH_multijob.json

# Fault-injection smoke: the tier-1 fault tests plus the robustness bench.
faults:
	pytest tests/cluster/test_faults.py -q
	pytest benchmarks/bench_fault_robustness.py --benchmark-only -s

# Checkpoint smoke: checkpointed run -> inspect the snapshot -> resume it,
# then the checkpoint/restore tier-1 tests.
ckpt:
	rm -rf /tmp/repro-ckpt-smoke && mkdir -p /tmp/repro-ckpt-smoke
	PYTHONPATH=src python -m repro run --sync osp --workers 4 --epochs 6 \
	  --iterations 3 --checkpoint-every 2 --checkpoint-dir /tmp/repro-ckpt-smoke
	PYTHONPATH=src python -m repro ckpt inspect /tmp/repro-ckpt-smoke/ckpt-epoch0002.npz
	PYTHONPATH=src python -m repro run --sync osp --workers 4 --epochs 6 \
	  --iterations 3 --checkpoint-every 2 --checkpoint-dir /tmp/repro-ckpt-smoke-resumed \
	  --resume /tmp/repro-ckpt-smoke/ckpt-epoch0002.npz
	PYTHONPATH=src pytest tests/ckpt/ -q

# Invariant-checker smoke: an OSP run with an active fault window under
# every runtime monitor, both differential replays (flat-arena vs dict
# plane, resumed vs uninterrupted), then the repro.check tier-1 tests.
check:
	PYTHONPATH=src python -m repro check --sync osp --workers 4 --epochs 6 \
	  --iterations 4 \
	  --faults '[{"kind": "bandwidth_dip", "start": 0.5, "duration": 2.0, "factor": 0.5}]'
	PYTHONPATH=src pytest tests/check -q

# Observability smoke: run a traced OSP workload, validate the unified
# trace's schema, and render the overlap report from the file.
trace:
	PYTHONPATH=src python -m repro run --sync osp --workers 4 --epochs 8 --trace trace.json
	PYTHONPATH=src python -c "import json; from repro.obs import read_trace; \
	  evs = read_trace('trace.json')['traceEvents']; \
	  assert evs, 'no events'; \
	  assert all({'name','ph','ts','pid','tid'} <= set(e) for e in evs), 'missing required fields'; \
	  assert {'X','C','i'} <= {e['ph'] for e in evs}, 'missing a stream'; \
	  print(f'trace.json OK: {len(evs)} events')"
	PYTHONPATH=src python -m repro report trace.json

# Time-series dashboard smoke: sampled OSP run with a fault window ->
# self-contained HTML + CSV + Prometheus exports, then the obs tier-1 tests.
dash:
	PYTHONPATH=src python -m repro dash --workload vgg16-cifar10 --sync osp \
	  --workers 4 --epochs 3 --iterations 6 --out dash.html \
	  --csv dash.csv --prom dash.prom \
	  --faults '[{"kind": "straggler", "worker": 2, "start": 5.0, "duration": 40.0, "factor": 3.0}]'
	PYTHONPATH=src pytest tests/obs -q

# Cross-run regression diff smoke: a clean baseline vs a bandwidth-dip run;
# the report must attribute the delta to the rs phase and exit non-zero.
compare:
	PYTHONPATH=src python -m repro run --sync osp --workers 4 --epochs 3 \
	  --iterations 6 --summary /tmp/repro-compare-a.json
	PYTHONPATH=src python -m repro run --sync osp --workers 4 --epochs 3 \
	  --iterations 6 --summary /tmp/repro-compare-b.json \
	  --faults '[{"kind": "bandwidth_dip", "start": 2.0, "duration": 120.0, "factor": 0.25}]'
	PYTHONPATH=src python -m repro report --compare /tmp/repro-compare-a.json /tmp/repro-compare-b.json; \
	  test $$? -eq 1

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f; done

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .benchmarks src/repro.egg-info
	rm -f dash.html dash.csv dash.prom trace.json
