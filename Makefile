# Canonical developer commands for the OSP reproduction.

.PHONY: install test bench bench-full faults examples clean

install:
	pip install -e . || python setup.py develop --no-deps

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only -s

bench-full:
	REPRO_BENCH_FULL=1 pytest benchmarks/ --benchmark-only -s

# Fault-injection smoke: the tier-1 fault tests plus the robustness bench.
faults:
	pytest tests/cluster/test_faults.py -q
	pytest benchmarks/bench_fault_robustness.py --benchmark-only -s

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f; done

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .benchmarks src/repro.egg-info
