"""Ablation — extended baselines: SSP, Sync-Switch, duplex R²SP.

The related-work systems the paper discusses (§2.2.1, §7) but does not
plot: SSP's staleness bound trades a little BSP-ness for ASP-ness; DSSP
adapts that bound to observed speeds; Sync-Switch interpolates BSP→ASP
over epochs; WFBP overlaps pushes with the backward pass (but only the
backward pass — the structural limit OSP escapes by deferring into the
whole next iteration); the idealised duplex R²SP shows how much of R²SP's
gap to OSP is service discipline.
"""

from conftest import bench_quick

from repro.core import OSP
from repro.harness import WorkloadConfig, timing_trainer
from repro.metrics.report import format_table
from repro.sync import ASP, BSP, DSSP, R2SP, SSP, SyncSwitch, WFBP


def _run():
    quick = bench_quick()
    epochs = 16 if quick else 40
    cfg = WorkloadConfig(
        "resnet50-cifar10",
        n_epochs=epochs,
        iterations_per_epoch=6,
        sigma=0.25,
    )
    out = {}
    for sync in [
        BSP(),
        WFBP(),
        SSP(staleness=3),
        DSSP(),
        SyncSwitch(switch_epoch=epochs // 2),
        R2SP(),
        R2SP(duplex=True),
        ASP(),
        OSP(),
    ]:
        res = timing_trainer(cfg, sync).run()
        out[sync.name] = (res.throughput, res.mean_bst)
    return out


def test_ablation_baselines(benchmark):
    out = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["model", "samples/s", "BST (s)"],
            [(n, f"{t:.1f}", f"{b:.3f}") for n, (t, b) in out.items()],
            title="Extended baselines (timing mode, ResNet50, 8 workers)",
        )
    )
    thr = {n: t for n, (t, _b) in out.items()}
    # SSP sits between BSP and ASP (bounded staleness).
    assert thr["bsp"] < thr["ssp"] <= thr["asp"] * 1.05
    # Sync-Switch lands between its two phases.
    assert thr["bsp"] < thr["sync-switch"] < thr["asp"] * 1.05
    # Duplex R2SP beats half-duplex R2SP (the service-discipline gap).
    assert thr["r2sp-duplex"] > thr["r2sp"]
    # WFBP beats BSP (it hides the backward window) but not OSP (which
    # hides into the whole next iteration) — the paper's §2.2.1 contrast.
    assert thr["bsp"] < thr["wfbp"] < thr["osp"]
    # DSSP stays in the asynchronous family's range.
    assert thr["bsp"] < thr["dssp"] <= thr["asp"] * 1.05
    # OSP beats every barrier-or-serialised baseline. (SSP/ASP are the
    # idealised asynchronous family — see EXPERIMENTS.md; OSP matches them
    # only in steady state, which this whole-run average does not isolate.)
    for name in ("bsp", "wfbp", "r2sp", "sync-switch"):
        assert thr["osp"] > thr[name], name
