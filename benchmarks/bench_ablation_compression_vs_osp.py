"""Ablation — gradient compression vs OSP at the cluster level (§2.2.2).

The paper's argument for OSP over sparsification: compression buys
throughput by *dropping* gradients (accuracy risk, up to 20% per GRACE),
OSP buys comparable throughput by *deferring* them (no loss). We run
Top-K BSP at two ratios against OSP on the same numeric workload and
compare both axes at once.
"""

from conftest import bench_quick

from repro.compression import RandomK, ResidualMemory, TopK, Uniform8Bit
from repro.core import OSP
from repro.harness import WorkloadConfig, make_numeric_dataset, numeric_trainer
from repro.metrics.report import format_table
from repro.sync import BSP, CompressedBSP


def _run():
    quick = bench_quick()
    cfg = WorkloadConfig(
        "resnet50-cifar10",
        n_workers=8,
        n_epochs=8 if quick else 24,
        sigma=0.3,
        seed=0,
    )
    data = make_numeric_dataset(cfg.card, n_samples=1600 if quick else 6000, seed=0)
    out = {}
    for sync in [
        BSP(),
        CompressedBSP(TopK(0.10), label="topk10"),
        CompressedBSP(TopK(0.01), label="topk1"),
        CompressedBSP(ResidualMemory(TopK(0.01)), label="topk1-ef"),
        CompressedBSP(RandomK(0.10, seed=0), label="randomk10"),
        CompressedBSP(Uniform8Bit(), nominal_ratio=0.25, label="8bit"),
        OSP(),
    ]:
        res = numeric_trainer(cfg, sync, data=data, lr=0.2).run()
        out[res.sync_name] = (res.throughput, res.best_metric)
    return out


def test_ablation_compression_vs_osp(benchmark):
    out = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["model", "samples/s", "top-1"],
            [(n, f"{t:.1f}", f"{m:.3f}") for n, (t, m) in out.items()],
            title="Ablation — Top-K compression vs OSP (numeric, 8 workers)",
        )
    )
    thr = {n: t for n, (t, _m) in out.items()}
    acc = {n: m for n, (_t, m) in out.items()}
    topk = "compressed-bsp-topk10"
    # Compression and OSP both beat dense BSP on throughput (compression's
    # gain is bounded by the still-dense parameter pull).
    assert thr[topk] > 1.1 * thr["bsp"]
    assert thr["osp"] > 1.1 * thr["bsp"]
    # OSP matches BSP's accuracy; aggressive Top-K costs accuracy relative
    # to OSP at comparable (or better) throughput for OSP.
    assert acc["osp"] >= acc["bsp"] - 0.08
    assert acc["osp"] >= acc[topk] - 0.02
    # Error feedback recovers (some of) Top-K 1%'s loss — the GRACE-family
    # mechanism (§2.2.2); 8-bit quantisation is nearly lossless but only
    # buys a 4x push reduction.
    assert acc["compressed-bsp-topk1-ef"] > acc["compressed-bsp-topk1"]
    assert acc["compressed-bsp-8bit"] >= acc["bsp"] - 0.08
