"""Ablation — multi-tenant congestion (cross-traffic robustness).

The paper's testbed is a dedicated rack; production racks are not. We
inject a competing tenant (a constant 40% load on the PS downlink path)
and measure how each sync model degrades. OSP's Eq. 5 budget is computed
from the *nominal* bandwidth, so cross-traffic makes the ICS spill into
the critical path — yet OSP keeps a clear lead over BSP because the
spill is bounded by the deferral budget while BSP pays the contention on
its entire gradient.
"""

from conftest import bench_quick

from repro.core import OSP
from repro.harness import WorkloadConfig, timing_trainer
from repro.metrics.report import format_table
from repro.netsim.traffic import constant_background_load
from repro.sync import BSP


def _run():
    quick = bench_quick()
    epochs = 14 if quick else 30
    results = {}
    for congested in (False, True):
        for sync in (BSP(), OSP()):
            cfg = WorkloadConfig(
                "resnet50-cifar10", n_epochs=epochs, iterations_per_epoch=6
            )
            trainer = timing_trainer(cfg, sync)
            if congested:
                # A competing tenant pushing through the PS's node pair:
                # worker-7's uplink toward the PS shares with pushes.
                trainer.env.process(
                    constant_background_load(
                        trainer.env,
                        trainer.network,
                        src=7,
                        dst=trainer.spec.ps_node,
                        load_fraction=0.4,
                        # comfortably beyond the training run's virtual end
                        until=600.0,
                    )
                )
            res = trainer.run()
            results[(congested, res.sync_name)] = res.throughput
    return results


def test_ablation_congestion(benchmark):
    out = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["cross-traffic", "sync", "samples/s"],
            [
                ("40% load" if c else "none", s, f"{t:.1f}")
                for (c, s), t in out.items()
            ],
            title="Ablation — multi-tenant congestion robustness",
        )
    )
    # Both models lose throughput under congestion...
    assert out[(True, "bsp")] < out[(False, "bsp")]
    assert out[(True, "osp")] < out[(False, "osp")]
    # ...but OSP keeps a clear lead over BSP either way.
    assert out[(False, "osp")] > 1.3 * out[(False, "bsp")]
    assert out[(True, "osp")] > 1.2 * out[(True, "bsp")]
