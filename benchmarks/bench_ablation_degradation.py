"""Ablation — §4.3 degradation: OSP sweeps continuously between BSP and ASP.

``force="bsp"`` must reproduce BSP's timing; ``force="asp"`` must overlap
all traffic (ASP-like); fixed budgets in between interpolate monotonically.
"""

from conftest import bench_quick

import pytest

from repro.core import OSP
from repro.harness import WorkloadConfig, timing_trainer
from repro.metrics.report import format_table
from repro.sync import BSP


def _run():
    quick = bench_quick()
    cfg = WorkloadConfig(
        "resnet50-cifar10",
        n_epochs=6 if quick else 16,
        iterations_per_epoch=6 if quick else 10,
        sigma=0.0,
    )
    out = {}
    for sync in [
        BSP(),
        OSP(force="bsp"),
        OSP(fixed_budget_fraction=0.2),
        OSP(fixed_budget_fraction=0.5),
        OSP(fixed_budget_fraction=0.8),
        OSP(force="asp"),
    ]:
        res = timing_trainer(cfg, sync).run()
        out[sync.name] = (res.mean_bst, res.throughput)
    return out


def test_ablation_degradation(benchmark):
    out = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["model", "BST (s)", "samples/s"],
            [(n, f"{b:.3f}", f"{t:.1f}") for n, (b, t) in out.items()],
            title="Ablation — OSP degradation sweep (§4.3)",
        )
    )
    # Forced-BSP ≡ BSP.
    assert out["osp-forced-bsp"][0] == pytest.approx(out["bsp"][0], rel=0.02)
    assert out["osp-forced-bsp"][1] == pytest.approx(out["bsp"][1], rel=0.02)
    # Monotone interpolation: more deferral -> lower BST, higher throughput.
    bsts = [
        out["osp-forced-bsp"][0],
        out["osp-fixed-20%"][0],
        out["osp-fixed-50%"][0],
        out["osp-fixed-80%"][0],
        out["osp-forced-asp"][0],
    ]
    assert bsts == sorted(bsts, reverse=True)
    thrs = [
        out["osp-forced-bsp"][1],
        out["osp-fixed-20%"][1],
        out["osp-fixed-50%"][1],
        out["osp-fixed-80%"][1],
        out["osp-forced-asp"][1],
    ]
    assert thrs == sorted(thrs)
    # Forced-ASP: no synchronous *transfer* left in the critical path; the
    # residual BST is the wait for the previous ICS push to clear the
    # uplink — deferring 100% violates the Eq. 5 budget (full model > U_max
    # at this T_c), so some spill-over is expected physics.
    assert out["osp-forced-asp"][0] < 0.2 * out["bsp"][0]
