"""Ablation — LGP variants (paper §4.2).

Compares OSP with the paper's local-gradient LGP, with EMA-LGP (which the
paper implemented, found unhelpful and costly, and dropped), and with no
correction at all (training on stale unimportant parameters).
"""

from conftest import bench_quick

from repro.core import OSP
from repro.harness import WorkloadConfig, make_numeric_dataset, numeric_trainer
from repro.metrics.report import format_table


def _run():
    quick = bench_quick()
    cfg = WorkloadConfig(
        "resnet50-cifar10",
        n_workers=8,
        n_epochs=8 if quick else 24,
        sigma=0.3,
        seed=0,
    )
    data = make_numeric_dataset(cfg.card, n_samples=1600 if quick else 6000, seed=0)
    out = {}
    mem = {}
    for lgp in ("local", "ema", "none"):
        trainer = numeric_trainer(cfg, OSP(lgp=lgp), data=data, lr=0.2)
        res = trainer.run()
        out[lgp] = res.best_metric
        correctors = trainer.sync_model._correctors
        mem[lgp] = sum(
            getattr(c, "memory_overhead_bytes", 0) for c in correctors if c
        )
    return out, mem


def test_ablation_lgp(benchmark):
    best, mem = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["lgp mode", "top-1", "extra worker memory (bytes)"],
            [(k, f"{v:.3f}", mem[k]) for k, v in best.items()],
            title="Ablation — LGP variants (§4.2)",
        )
    )
    # The paper's findings: LGP is needed (no-LGP loses accuracy), and
    # EMA-LGP brings no improvement while costing memory.
    assert best["local"] > best["none"]
    assert best["local"] >= best["ema"] - 0.05
    assert mem["ema"] > 0 and mem["local"] == 0
