"""Ablation — non-IID data (paper §2.2.1).

The paper criticises HSP for "non-compliance with training on
non-independent identically distributed datasets". OSP makes no IID
assumption: its importance ranking and LGP correction operate on the
*aggregated* gradient. We verify OSP still tracks BSP's accuracy when the
workers' shards are Dirichlet-skewed, while ASP degrades further.
"""

from conftest import bench_quick

from repro.cluster import ClusterSpec, DistributedTrainer, NumericEngine, TrainingPlan
from repro.core import OSP
from repro.data import make_image_classification, train_test_split
from repro.hardware import LognormalJitter
from repro.metrics.report import format_table
from repro.nn.models import get_card
from repro.sync import ASP, BSP


def _run():
    quick = bench_quick()
    card = get_card("resnet50-cifar10")
    ds = make_image_classification(
        1600 if quick else 6000, n_classes=10, image_size=16, noise=2.0, seed=0
    )
    train, test = train_test_split(ds, test_fraction=0.25, seed=1)
    out = {}
    for sharding in ("iid", "dirichlet"):
        for sync in (BSP(), ASP(), OSP()):
            spec = ClusterSpec(n_workers=8, jitter=LognormalJitter(sigma=0.3, seed=0))
            plan = TrainingPlan(n_epochs=8 if quick else 24, lr=0.1, momentum=0.9)
            engine = NumericEngine(
                card,
                train,
                test,
                spec,
                batch_size=25,
                seed=0,
                sharding=sharding,
                dirichlet_alpha=0.5,
            )
            res = DistributedTrainer(spec, plan, engine, sync).run()
            out[(sharding, res.sync_name)] = res.best_metric
    return out


def test_ablation_noniid(benchmark):
    out = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["sharding", "sync", "top-1"],
            [(sh, sy, f"{m:.3f}") for (sh, sy), m in out.items()],
            title="Ablation — IID vs Dirichlet(0.5) non-IID shards",
        )
    )
    # OSP tracks BSP under non-IID data too (no IID assumption)...
    assert out[("dirichlet", "osp")] >= out[("dirichlet", "bsp")] - 0.08
    # ...and stays clearly above ASP in both regimes.
    for sharding in ("iid", "dirichlet"):
        assert out[(sharding, "osp")] > out[(sharding, "asp")] + 0.03
