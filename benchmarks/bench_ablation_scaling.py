"""Ablation — §6.1 scaling: multi-PS synchronization groups and worker-count
sweeps.

(1) The planned multi-PS sharding (BytePS-style) divides the predicted BST
by roughly the PS count. (2) OSP's advantage over BSP *grows* with the
worker count, because incast scales with N while OSP's deferral hides it.
"""

from conftest import bench_quick

from repro.core import OSP
from repro.cluster.spec import ClusterSpec, TrainingPlan
from repro.cluster.engines import TimingEngine
from repro.cluster.trainer import DistributedTrainer
from repro.harness import WorkloadConfig, timing_trainer
from repro.hardware import NoJitter
from repro.metrics.report import format_table
from repro.nn.models import get_card
from repro.sync import BSP, ShardedBSP


def _run():
    quick = bench_quick()
    # (1) multi-PS sharded synchronization: planned vs measured BST
    card = get_card("resnet50-cifar10")
    ps_rows = []
    for n_ps in (1, 2, 4, 8):
        spec = ClusterSpec(n_workers=8, jitter=NoJitter(), n_ps=n_ps)
        plan_cfg = TrainingPlan(n_epochs=1, iterations_per_epoch=3 if quick else 10)
        engine = TimingEngine(card, spec, total_iterations=plan_cfg.iterations_per_epoch)
        sm = ShardedBSP()
        res = DistributedTrainer(spec, plan_cfg, engine, sm).run()
        predicted = sm.plan.predicted_bst(8, spec.link.bandwidth)
        ps_rows.append(
            (n_ps, sm.plan.max_shard_bytes / 1e6, sm.plan.balance, predicted, res.mean_bst)
        )

    # (2) OSP-vs-BSP speedup vs worker count
    sweep_rows = []
    for n in (2, 4, 8) if quick else (2, 4, 8, 16):
        cfg = WorkloadConfig(
            "resnet50-cifar10",
            n_workers=n,
            n_epochs=12 if quick else 30,
            iterations_per_epoch=6,
        )
        thr = {}
        for sync in (BSP(), OSP()):
            res = timing_trainer(cfg, sync).run()
            thr[sync.name] = res.throughput
        sweep_rows.append((n, thr["bsp"], thr["osp"], thr["osp"] / thr["bsp"]))
    return ps_rows, sweep_rows


def test_ablation_scaling(benchmark):
    ps_rows, sweep_rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["n_ps", "max shard (MB)", "balance", "predicted BST (s)", "measured BST (s)"],
            [
                (n, f"{m:.1f}", f"{b:.3f}", f"{t:.3f}", f"{meas:.3f}")
                for n, m, b, t, meas in ps_rows
            ],
            title="§6.1 — multi-PS sharded synchronization (ResNet50, 8 workers)",
        )
    )
    print()
    print(
        format_table(
            ["workers", "BSP samples/s", "OSP samples/s", "OSP/BSP"],
            [(n, f"{b:.1f}", f"{o:.1f}", f"{r:.2f}") for n, b, o, r in sweep_rows],
            title="OSP speedup over BSP vs cluster size",
        )
    )

    # Multi-PS: measured BST strictly decreases with PS count and tracks
    # the plan's prediction within 25% (prediction omits latency + PS
    # aggregation service).
    measured = [meas for _n, _m, _b, _t, meas in ps_rows]
    assert measured == sorted(measured, reverse=True)
    for _n, _m, _b, predicted, meas in ps_rows:
        assert predicted <= meas <= 1.25 * predicted
    # OSP/BSP speedup grows with the worker count (incast scales with N).
    ratios = [r for _n, _b, _o, r in sweep_rows]
    assert ratios[-1] > ratios[0]
    assert ratios[-1] > 1.4
