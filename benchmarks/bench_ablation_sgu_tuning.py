"""Ablation — Algorithm 1's S(G^u) ramp vs fixed deferral budgets.

Algorithm 1 starts all-RS (BSP-like, protecting early training, §4.1.2)
and ramps deferral toward U_max as the loss falls. We compare it against
fixed budgets of 0% (≡BSP traffic), 40% and 80% of the model from the
first iteration: fixed-80% gives the best steady-state BST but skips the
protective warm-up; Algorithm 1 converges to its BST while matching BSP in
the first epoch.
"""

from conftest import bench_quick

import numpy as np

from repro.core import OSP
from repro.harness import WorkloadConfig, timing_trainer
from repro.metrics.report import format_table


def _run():
    quick = bench_quick()
    epochs = 18 if quick else 40
    ipe = 6 if quick else 10
    cfg = WorkloadConfig(
        "resnet50-cifar10", n_epochs=epochs, iterations_per_epoch=ipe
    )
    rows = []
    for sync in [
        OSP(),  # Algorithm 1
        OSP(fixed_budget_fraction=0.0),
        OSP(fixed_budget_fraction=0.4),
        OSP(fixed_budget_fraction=0.8),
    ]:
        res = timing_trainer(cfg, sync).run()
        first = [r.sync_time for r in res.recorder.iterations if r.iteration < ipe]
        cutoff = epochs * ipe * 3 // 4
        late = [r.sync_time for r in res.recorder.iterations if r.iteration >= cutoff]
        rows.append(
            (sync.name, float(np.mean(first)), float(np.mean(late)), res.throughput)
        )
    return rows


def test_ablation_sgu_tuning(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["budget policy", "BST epoch-1 (s)", "BST steady (s)", "samples/s"],
            [(n, f"{f:.3f}", f"{l:.3f}", f"{t:.1f}") for n, f, l, t in rows],
            title="Ablation — Algorithm 1 vs fixed S(G^u) budgets",
        )
    )
    by_name = {n: (f, l, t) for n, f, l, t in rows}
    alg1 = by_name["osp"]
    fixed0 = by_name["osp-fixed-0%"]
    fixed80 = by_name["osp-fixed-80%"]
    # Epoch 1: Algorithm 1 is all-RS, indistinguishable from fixed-0%.
    assert alg1[0] == pytest_approx(fixed0[0], rel=0.05)
    # Steady state: Algorithm 1 approaches the fixed-80% BST.
    assert alg1[1] < 0.6 * fixed0[1]
    assert alg1[1] <= 1.3 * fixed80[1]
    # More deferral -> higher throughput (monotone across fixed budgets).
    assert by_name["osp-fixed-80%"][2] > by_name["osp-fixed-40%"][2] > fixed0[2]


def pytest_approx(value, rel):
    import pytest

    return pytest.approx(value, rel=rel)
