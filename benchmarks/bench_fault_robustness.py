"""Fault robustness — OSP under injected network and worker faults.

Three scenarios against a clean baseline, all on the same workload:

* ``crash``       a worker dies mid-run; the RS barrier must shrink to a
                  degraded quorum and the survivors finish every epoch
                  (no deadlock, reweighted averages).
* ``loss-burst``  a sustained loss burst inflates the ICS drain past its
                  Eq. 5 deadline; after ``deadline_k`` consecutive misses
                  OSP pins the GIB all-important (§4.3 BSP fallback) and
                  resumes adaptive splitting once the rounds recover.
* ``straggler``   a 4x compute slowdown on one worker raises the BST tail
                  the other workers observe.
"""

from conftest import bench_quick

from repro.core import OSP
from repro.faults import FaultSchedule, LossBurst, StragglerSlowdown, WorkerCrash
from repro.harness import WorkloadConfig, timing_trainer
from repro.metrics.report import format_table

WORKLOAD = "resnet50-cifar10"
BUDGET = 0.8  # near U_max: a <2x loss inflation is enough to blow Eq. 5


def _cfg(quick, faults=None):
    return WorkloadConfig(
        WORKLOAD,
        n_workers=4 if quick else 8,
        n_epochs=6 if quick else 16,
        iterations_per_epoch=6 if quick else 10,
        sigma=0.0,
        faults=faults,
    )


def _run():
    quick = bench_quick()
    out = {}

    base = timing_trainer(_cfg(quick), OSP(fixed_budget_fraction=BUDGET)).run()
    out["baseline"] = base

    crash = FaultSchedule((WorkerCrash(worker=1, before_epoch=2),))
    out["crash"] = timing_trainer(
        _cfg(quick, crash), OSP(fixed_budget_fraction=BUDGET)
    ).run()

    burst = FaultSchedule(
        (
            LossBurst(
                start=0.3 * base.wall_time,
                duration=0.4 * base.wall_time,
                loss_rate=0.9,
            ),
        )
    )
    out["loss-burst"] = timing_trainer(
        _cfg(quick, burst),
        OSP(fixed_budget_fraction=BUDGET, deadline_k=2, fallback_rounds=4),
    ).run()

    slow = FaultSchedule(
        (
            StragglerSlowdown(
                worker=0,
                start=0.25 * base.wall_time,
                duration=0.5 * base.wall_time,
                factor=4.0,
            ),
        )
    )
    out["straggler"] = timing_trainer(
        _cfg(quick, slow), OSP(fixed_budget_fraction=BUDGET)
    ).run()
    return out


def test_fault_robustness(benchmark):
    out = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for name, res in out.items():
        c = res.recorder.counter
        rows.append(
            (
                name,
                f"{res.wall_time:.1f}",
                f"{res.throughput:.1f}",
                f"{res.recorder.bst_percentile(90) * 1e3:.0f}",
                c("osp.degraded_quorum"),
                c("osp.deadline_miss"),
                c("osp.bsp_fallback"),
            )
        )
    print()
    print(
        format_table(
            ["scenario", "virtual s", "samples/s", "BST p90 (ms)",
             "degraded rounds", "deadline misses", "BSP fallbacks"],
            rows,
            title="Fault robustness — OSP under injected faults (§4.3)",
        )
    )

    base = out["baseline"]
    n_epochs = len(base.recorder.epochs)
    assert base.recorder.counter("osp.deadline_miss") == 0

    # Acceptance: a crash mid-epoch still completes the run, via degraded
    # quorum aggregation rather than a hung barrier.
    crash = out["crash"]
    assert len(crash.recorder.epochs) == n_epochs
    assert crash.recorder.counter("faults.worker_crash") == 1
    assert crash.recorder.counter("osp.degraded_quorum") > 0

    # Acceptance: a sustained loss burst drives OSP into its §4.3 BSP
    # fallback — and it recovers once the burst passes.
    burst = out["loss-burst"]
    assert len(burst.recorder.epochs) == n_epochs
    assert burst.recorder.counter("osp.deadline_miss") >= 2
    assert burst.recorder.counter("osp.bsp_fallback") >= 1
    assert burst.recorder.counter("osp.bsp_fallback_exit") >= 1
    assert burst.wall_time > base.wall_time

    # A straggler stretches the sync-time tail and the run itself.
    slow = out["straggler"]
    assert slow.recorder.bst_percentile(90) > base.recorder.bst_percentile(90)
    assert slow.wall_time > base.wall_time
