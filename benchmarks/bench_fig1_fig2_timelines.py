"""Figs. 1 & 2 — BSP vs ASP iteration timelines under stragglers.

Regenerates the per-worker timeline bars of the motivation figures and the
T_BSP vs T_ASP comparison (§2.1.2: T_ASP can be several times smaller due
to incast + stragglers in BSP).
"""

from conftest import bench_quick

from repro.harness.figures import fig1_fig2_timelines
from repro.metrics.timeline import render_timeline


def test_fig1_fig2_timelines(benchmark):
    data = benchmark.pedantic(
        fig1_fig2_timelines, kwargs={"quick": bench_quick()}, rounds=1, iterations=1
    )

    for name in ("bsp", "asp"):
        print()
        print(f"Fig. {1 if name == 'bsp' else 2} timeline ({name.upper()}, first 3 iterations):")
        print(render_timeline(data["records"][name]))
    print(
        f"\nmean iteration: T_BSP={data['t_bsp']:.3f}s  T_ASP={data['t_asp']:.3f}s  "
        f"ratio={data['bsp_over_asp']:.2f}x  (paper cites up to 6x from [23])"
    )

    # Shape assertions: ASP iterations are faster on average; BSP's barrier
    # makes all workers of one iteration finish simultaneously.
    assert data["bsp_over_asp"] > 1.3
    bsp_iter0_ends = {
        round(end, 6) for (_w, it, _s, end) in data["timelines"]["bsp"] if it == 0
    }
    assert len(bsp_iter0_ends) == 1  # global barrier: same finish instant
    asp_iter0_ends = {
        round(end, 6) for (_w, it, _s, end) in data["timelines"]["asp"] if it == 0
    }
    assert len(asp_iter0_ends) > 1  # asynchronous finishes
