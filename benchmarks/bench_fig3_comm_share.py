"""Fig. 3 — communication share grows as DDL training scales (§2.2).

ResNet50, PS-based BSP training on 1/2/4/8 workers: the fraction of each
iteration spent synchronizing rises with the worker count, so adding nodes
is decreasingly cost-effective.
"""

from conftest import bench_quick

from repro.harness.figures import fig3_comm_share
from repro.metrics.report import format_table


def test_fig3_comm_share(benchmark):
    rows = benchmark.pedantic(
        fig3_comm_share, kwargs={"quick": bench_quick()}, rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            ["workers", "BCT_s", "BST_s", "comm_share"],
            [(n, f"{b:.3f}", f"{s:.3f}", f"{c:.1%}") for n, b, s, c in rows],
            title="Fig. 3 — communication share vs cluster size (ResNet50, BSP)",
        )
    )

    shares = [c for _n, _b, _s, c in rows]
    # Monotone growth with scale, spanning a wide range (paper's bar chart).
    assert shares == sorted(shares)
    assert shares[-1] > 2 * shares[0]
    assert shares[-1] > 0.4
