"""Fig. 6(a) — training throughput across the five workloads and four
synchronization models (ASP, BSP, R²SP, OSP).

Paper claims: OSP has the best (or tied-best) throughput on the image
tasks and near-ASP throughput on BERT, with up to ~50% improvement over
the BSP/R²SP family. Steady-state columns exclude OSP's Algorithm-1 warm-up
epochs (the paper trains to convergence, so steady state dominates there).
"""

from collections import defaultdict

from conftest import bench_quick

from repro.harness.figures import fig6a_throughput
from repro.metrics.report import format_table


def test_fig6a_throughput(benchmark):
    rows = benchmark.pedantic(
        fig6a_throughput, kwargs={"quick": bench_quick()}, rounds=1, iterations=1
    )

    display = []
    for workload, sync, overall, steady in rows:
        unit = "QAs/10s" if workload == "bertbase-squad" else "samples/s"
        scale = 10.0 if workload == "bertbase-squad" else 1.0
        display.append(
            (workload, sync, f"{overall * scale:.1f}", f"{steady * scale:.1f}", unit)
        )
    print()
    print(
        format_table(
            ["workload", "sync", "throughput", "steady_state", "unit"],
            display,
            title="Fig. 6(a) — training throughput",
        )
    )

    steady = defaultdict(dict)
    for workload, sync, _overall, ss in rows:
        steady[workload][sync] = ss

    for workload, per_sync in steady.items():
        # BSP is always the slowest; R2SP sits between BSP and OSP.
        assert per_sync["bsp"] == min(per_sync.values()), workload
        assert per_sync["osp"] > per_sync["r2sp"] > per_sync["bsp"], workload
        # OSP delivers a large win over BSP (paper: "up to 50%").
        assert per_sync["osp"] > 1.5 * per_sync["bsp"], workload
        # OSP is at least near our (idealised) ASP everywhere.
        assert per_sync["osp"] > 0.9 * per_sync["asp"], workload
