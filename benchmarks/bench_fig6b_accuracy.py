"""Fig. 6(b) — top-1 accuracy / F1 per workload and sync model.

Paper claims: OSP reaches near-optimal accuracy compared to BSP and R²SP,
while ASP performs the worst (stale parameters). These are *numeric* runs:
real gradients on mini-scale models through the same event-driven cluster.
"""

from conftest import bench_quick, cached_accuracy

from repro.metrics.report import format_table

from repro.harness import EVALUATION_WORKLOADS

# Quick mode covers one image + the NLP workload; full mode all five.
WORKLOADS = (
    ("resnet50-cifar10", "bertbase-squad")
    if bench_quick()
    else EVALUATION_WORKLOADS
)


def test_fig6b_accuracy(benchmark):
    results = benchmark.pedantic(
        lambda: {w: cached_accuracy(w) for w in WORKLOADS}, rounds=1, iterations=1
    )

    rows = []
    for workload, per_sync in results.items():
        metric_name = "F1" if workload == "bertbase-squad" else "top-1"
        for sync, d in per_sync.items():
            rows.append((workload, sync, metric_name, f"{d['best_metric']:.3f}"))
    print()
    print(
        format_table(
            ["workload", "sync", "metric", "best"],
            rows,
            title="Fig. 6(b) — convergence accuracy",
        )
    )

    for workload, per_sync in results.items():
        best = {s: d["best_metric"] for s, d in per_sync.items()}
        # The stale methods (ASP, and R²SP at 8 workers — §2.2.1 notes
        # R²SP's staleness grows with the worker count) sit at the bottom;
        # OSP stays within a small gap of BSP (paper: no accuracy loss).
        assert best["asp"] <= min(best.values()) + 0.02, workload
        assert best["osp"] >= best["bsp"] - 0.08, workload
        assert best["osp"] > best["asp"] + 0.03, workload
        assert best["bsp"] > best["asp"] + 0.03, workload
