"""Fig. 6(c) — iterations needed to reach top accuracy.

Paper claim: OSP's iteration count to best accuracy does not significantly
exceed BSP's (and sometimes improves on it), so the BST advantage turns
into real time-to-accuracy wins even in the worst case.
"""

from conftest import bench_quick, cached_accuracy

from repro.metrics.report import format_table

from repro.harness import EVALUATION_WORKLOADS

# Quick mode covers one image + the NLP workload; full mode all five.
WORKLOADS = (
    ("resnet50-cifar10", "bertbase-squad")
    if bench_quick()
    else EVALUATION_WORKLOADS
)


def test_fig6c_iterations(benchmark):
    results = benchmark.pedantic(
        lambda: {w: cached_accuracy(w) for w in WORKLOADS}, rounds=1, iterations=1
    )

    rows = []
    for workload, per_sync in results.items():
        for sync, d in per_sync.items():
            rows.append(
                (workload, sync, d["iterations_to_best"], f"{d['best_metric']:.3f}")
            )
    print()
    print(
        format_table(
            ["workload", "sync", "iters_to_best", "best_metric"],
            rows,
            title="Fig. 6(c) — iterations to top accuracy",
        )
    )

    for workload, per_sync in results.items():
        iters = {s: d["iterations_to_best"] for s, d in per_sync.items()}
        # OSP needs at most ~1.5x BSP's iterations (paper: "does not
        # significantly increase and may even decrease").
        assert iters["osp"] <= 1.5 * iters["bsp"], workload
