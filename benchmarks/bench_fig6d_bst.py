"""Fig. 6(d) — Batch Synchronization Time (BST) per workload and sync model.

Paper claim: OSP's per-round synchronization time is significantly lower
than every baseline's (the key to its throughput), because only the
important-gradient RS stage remains in the critical path.
"""

from collections import defaultdict

from conftest import bench_quick

from repro.harness.figures import fig6d_bst
from repro.metrics.report import format_table


def test_fig6d_bst(benchmark):
    rows = benchmark.pedantic(
        fig6d_bst, kwargs={"quick": bench_quick()}, rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            ["workload", "sync", "mean_BST_s", "steady_BST_s"],
            [(w, s, f"{m:.3f}", f"{ss:.3f}") for w, s, m, ss in rows],
            title="Fig. 6(d) — batch synchronization time",
        )
    )

    steady = defaultdict(dict)
    for workload, sync, _m, ss in rows:
        steady[workload][sync] = ss

    for workload, per_sync in steady.items():
        # OSP's steady-state BST is a large reduction vs BSP and R2SP
        # (paper: "significantly reduced")...
        assert per_sync["osp"] < 0.5 * per_sync["bsp"], workload
        assert per_sync["osp"] < 0.8 * per_sync["r2sp"], workload
        # ...and within a small factor of our idealised ASP (whose every
        # transfer self-staggers perfectly; see EXPERIMENTS.md).
        assert per_sync["osp"] <= 1.5 * per_sync["asp"], workload
