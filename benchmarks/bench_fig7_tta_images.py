"""Fig. 7 — time-to-accuracy curves on image classification.

Paper claim: OSP's throughput advantage translates into the fastest
convergence in wall-clock (virtual) time with no accuracy loss — its curve
sits left of BSP/R²SP and tops out at the same accuracy, while ASP
plateaus lower.
"""

from conftest import cached_accuracy

from repro.metrics.report import format_series

WORKLOAD = "resnet50-cifar10"


def test_fig7_tta_images(benchmark):
    results = benchmark.pedantic(
        lambda: cached_accuracy(WORKLOAD), rounds=1, iterations=1
    )

    print()
    for sync, d in results.items():
        print(format_series(f"fig7[{sync}]", d["tta"], y_label="top1"))

    end_time = {s: d["tta"][-1][0] for s, d in results.items()}
    # Same iteration budget: OSP finishes it faster than BSP...
    assert end_time["osp"] < end_time["bsp"]
    # ...reaching BSP-level accuracy (no loss), above ASP's plateau.
    best = {s: d["best_metric"] for s, d in results.items()}
    assert best["osp"] >= best["bsp"] - 0.08
    assert best["osp"] > best["asp"]

    # The paper-relevant crossover: virtual time to a common high accuracy.
    # OSP reaches it no later than BSP; the stale methods (ASP, and R²SP at
    # 8 workers, §2.2.1) plateau below it or get there later.
    target = 0.85 * best["bsp"]

    def time_to(sync):
        for t, m in results[sync]["tta"]:
            if m >= target:
                return t
        return float("inf")

    # 1.15: evaluation is per-epoch, so the crossing time quantises to an
    # epoch boundary at quick scale (OSP's late epochs are the fast ones).
    assert time_to("osp") <= time_to("bsp") * 1.15
    assert time_to("osp") <= min(time_to("asp"), time_to("r2sp"))
