"""Fig. 8 — time-to-F1 curve for BERT/SQuAD fine-tuning.

Paper claim: OSP also converges fastest on the NLP task, with a smaller
margin than on image tasks (its throughput there is only near-ASP).
"""

from conftest import cached_accuracy

from repro.metrics.report import format_series

WORKLOAD = "bertbase-squad"


def test_fig8_tta_nlp(benchmark):
    results = benchmark.pedantic(
        lambda: cached_accuracy(WORKLOAD), rounds=1, iterations=1
    )

    print()
    for sync, d in results.items():
        print(format_series(f"fig8[{sync}]", d["tta"], y_label="F1"))

    best = {s: d["best_metric"] for s, d in results.items()}
    end_time = {s: d["tta"][-1][0] for s, d in results.items()}

    # OSP completes the budget well ahead of BSP/R2SP and lands within a
    # small gap of BSP's F1 (no accuracy loss).
    assert end_time["osp"] < 0.8 * end_time["bsp"]
    assert end_time["osp"] < end_time["r2sp"]
    assert best["osp"] >= best["bsp"] - 0.08
