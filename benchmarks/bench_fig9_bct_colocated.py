"""Fig. 9 — batch computation time with a co-located PS (§5.4).

Paper claims: OSP-S (standalone PS) adds essentially no worker-side
compute vs BSP; OSP-C (PS co-located on a worker) inflates that worker's
BCT by a bounded 3–8%, lowest for the FLOP-heavy InceptionV3 and highest
for the parameter-heavy VGG16 (PGP cost scales with parameters, compute
with FLOPs).
"""

from conftest import bench_quick

from repro.harness.figures import fig9_bct_colocated
from repro.metrics.report import format_table


def test_fig9_bct_colocated(benchmark):
    rows = benchmark.pedantic(
        fig9_bct_colocated, kwargs={"quick": bench_quick()}, rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            ["workload", "BCT_bsp_s", "BCT_osp_s_s", "BCT_osp_c_ps_worker_s", "overhead"],
            [
                (w, f"{b:.3f}", f"{s:.3f}", f"{c:.3f}", f"{o:.1f}%")
                for w, b, s, c, o in rows
            ],
            title="Fig. 9 — BCT overhead of co-located PS (paper: 3-8%, "
            "min InceptionV3, max VGG16)",
        )
    )

    overhead = {w: o for w, _b, _s, _c, o in rows}
    bct = {w: (b, s) for w, b, s, _c, _o in rows}

    # OSP-S: no worker-side overhead vs BSP.
    for w, (b, s) in bct.items():
        assert abs(s - b) / b < 0.01, w
    # OSP-C: bounded overhead in (or near) the paper's 3-8% band.
    for w, o in overhead.items():
        assert 2.0 < o < 10.0, (w, o)
    # Ordering endpoints: InceptionV3 minimum (paper: 3%); VGG16 at or near
    # the maximum (paper: 8%).
    assert overhead["inceptionv3-cifar100"] == min(overhead.values())
    assert overhead["vgg16-cifar10"] >= max(overhead.values()) - 0.5
