"""Perf-regression benchmark — the flat-arena hot path.

Runs the ``repro perf`` harness (quick mode by default, full scale with
``REPRO_BENCH_FULL=1``), prints the per-op speedup table, and asserts the
optimized path is no slower than the dict/legacy baseline on the guarded
ratios — the same check the tier-1 guard applies to the committed
``BENCH_hotpath.json``.
"""

from conftest import bench_quick

from repro.metrics.report import format_table
from repro.perf.hotpath import GUARDED_SPEEDUPS, get_path, run_hotpath_bench


def _run():
    return run_hotpath_bench(quick=bench_quick(), jobs=2)


def test_hotpath_speedups(benchmark):
    data = benchmark.pedantic(_run, rounds=1, iterations=1)
    micro = data["micro"]
    e2e = data["end_to_end"]["numeric"]
    print()
    rows = [
        (op, f"{micro[op]['dict_s'] * 1e3:.2f}", f"{micro[op]['flat_s'] * 1e3:.2f}",
         f"{micro[op]['speedup']:.2f}x")
        for op in ("ps_apply", "pgp", "ps_apply_pgp", "lgp", "sync_replica")
    ]
    rows.append(
        ("end-to-end", f"{e2e['baseline_s'] * 1e3:.0f}",
         f"{e2e['optimized_s'] * 1e3:.0f}", f"{e2e['speedup']:.2f}x")
    )
    print(
        format_table(
            ["op", "dict/legacy (ms)", "flat (ms)", "speedup"],
            rows,
            title="Hot-path microbenchmarks (flat arena vs dict path)",
        )
    )
    assert e2e["identical"], "optimized run must be bit-identical to baseline"
    assert data["sweep"]["identical"], "parallel sweep must equal serial"
    for field in GUARDED_SPEEDUPS:
        assert get_path(data, field) >= 1.0, f"{field} regressed below 1.0"
