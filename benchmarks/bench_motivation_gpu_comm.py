"""§1 motivation — communication overhead explodes as GPUs get faster.

ResNet152/CIFAR-10 with 8 workers on 10 Gbps links: the paper measures a
10% communication overhead on RTX 2080 Ti rising to 39% on RTX 3090. We
model the WFBP-style overlap their framework provides (exposed comm =
transfer time beyond the backward pass) — see EXPERIMENTS.md for the
paper-vs-measured discussion.
"""

from conftest import bench_quick

from repro.harness.figures import motivation_gpu_comm
from repro.metrics.report import format_table


def test_motivation_gpu_comm(benchmark):
    rows = benchmark.pedantic(
        motivation_gpu_comm, kwargs={"quick": bench_quick()}, rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            ["gpu", "T_c_s", "exposed_comm_s", "comm_share"],
            [(g, f"{t:.3f}", f"{e:.3f}", f"{s:.1%}") for g, t, e, s in rows],
            title="§1 motivation — ResNet152/CIFAR-10 comm overhead by GPU "
            "(paper: 10% on 2080Ti -> 39% on 3090)",
        )
    )
    by_gpu = {g: s for g, _t, _e, s in rows}
    assert by_gpu["rtx3090"] > 2 * by_gpu["rtx2080ti"]
    assert 0.02 < by_gpu["rtx2080ti"] < 0.25  # paper: 10%
    assert by_gpu["rtx3090"] > 0.3  # paper: 39%
