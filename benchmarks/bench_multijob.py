"""Perf-regression benchmark — multi-job co-tenancy on the shared fabric.

Runs the ``repro perf-multijob`` harness (quick mode by default, the full
co-tenant schedule with ``REPRO_BENCH_FULL=1``), prints the per-tenant
table, and asserts what the tier-1 guard asserts about the committed
``BENCH_multijob.json``: a solo job routed through ``repro.multijob`` is
bit-identical to a direct ``DistributedTrainer`` run, and the OSP
tenant's RS-stage p90 wait is protected by at least the guarded ratio
when a background BULK tenant shares its hosts and the priority
scheduler is on.
"""

from conftest import bench_quick

from repro.metrics.report import format_table
from repro.perf.multijob import MIN_IMPROVEMENT, run_multijob_bench


def _run():
    return run_multijob_bench(quick=bench_quick())


def test_multijob_isolation_and_identity(benchmark):
    data = benchmark.pedantic(_run, rounds=1, iterations=1)
    cont = data["contended"]
    print()
    rows = [
        (
            mode,
            f"{cont[mode]['rs_stage_p90_s'] * 1e3:.1f}",
            f"{cont[mode]['rs_stage_p50_s'] * 1e3:.1f}",
            f"{cont[mode]['osp_wall_s']:.2f}",
            f"{cont[mode]['bulk_wall_s']:.2f}",
            f"{cont[mode]['osp_contended_share']:.1%}",
        )
        for mode in ("off", "on")
    ]
    print(
        format_table(
            ["priorities", "RS p90 (ms)", "RS p50 (ms)", "OSP wall (s)",
             "BULK wall (s)", "OSP contended"],
            rows,
            title="Co-tenancy — OSP + background BSP on shared hosts",
        )
    )
    print(f"improvement: {cont['improvement']:.2f}x  "
          f"preemptions: {cont['on']['preemptions']}  "
          f"identity identical: {data['identity']['identical']}")
    assert data["identity"]["identical"], (
        "solo job via repro.multijob diverged from the direct trainer run"
    )
    assert cont["improvement"] >= MIN_IMPROVEMENT, (
        f"RS-stage p90 isolation {cont['improvement']:.2f}x "
        f"below guarded {MIN_IMPROVEMENT}x"
    )
