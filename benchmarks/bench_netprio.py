"""Perf-regression benchmark — priority-aware communication scheduling.

Runs the ``repro perf-prio`` harness (quick mode by default, the full
contended sweep with ``REPRO_BENCH_FULL=1``), prints the contended
RS-stage wait table, and asserts what the tier-1 guard asserts about the
committed ``BENCH_netprio.json``: the inert default-class path is
bit-identical across scheduler modes and the RS-stage p90 wait under
ICS + background contention improves by at least the guarded ratio with
priorities on.
"""

from conftest import bench_quick

from repro.metrics.report import format_table
from repro.perf.netprio import MIN_IMPROVEMENT, run_netprio_bench


def _run():
    return run_netprio_bench(quick=bench_quick())


def test_netprio_contended_rs(benchmark):
    data = benchmark.pedantic(_run, rounds=1, iterations=1)
    cont = data["contended"]
    print()
    rows = [
        (
            mode,
            f"{cont[mode]['rs_stage_p90_s'] * 1e3:.1f}",
            f"{cont[mode]['rs_stage_p50_s'] * 1e3:.1f}",
            f"{cont[mode]['rs_push_p90_s'] * 1e3:.1f}",
            f"{cont[mode]['throughput']:.1f}",
        )
        for mode in ("off", "on")
    ]
    print(
        format_table(
            ["priorities", "RS p90 (ms)", "RS p50 (ms)", "push p90 (ms)",
             "samples/s"],
            rows,
            title="Priority scheduling — contended RS stage (OSP, 2x4 tenants)",
        )
    )
    print(f"improvement: {cont['improvement']:.2f}x  "
          f"preemptions: {cont['on']['preemptions']}  "
          f"inert identical: {data['inert']['identical']}")
    assert data["inert"]["identical"], (
        "default-class traffic diverged across scheduler modes"
    )
    assert cont["improvement"] >= MIN_IMPROVEMENT, (
        f"RS-stage p90 improvement {cont['improvement']:.2f}x "
        f"below guarded {MIN_IMPROVEMENT}x"
    )
