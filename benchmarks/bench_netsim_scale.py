"""Perf-regression benchmark — the scaled network core.

Runs the ``repro perf-net`` harness (quick mode by default, the full
4→128-worker sweep with ``REPRO_BENCH_FULL=1``), prints the scaling table,
and asserts what the tier-1 guard asserts about the committed
``BENCH_netsim.json``: every sweep point is virtual-time identical across
solver modes and the 64-worker point clears the guarded speedup.
"""

from conftest import bench_quick

from repro.metrics.report import format_table
from repro.perf.netsim_scale import MIN_SPEEDUP_64, run_netsim_bench


def _run():
    return run_netsim_bench(quick=bench_quick())


def test_netsim_scaling(benchmark):
    data = benchmark.pedantic(_run, rounds=1, iterations=1)
    sweep = data["sweep"]
    print()
    rows = [
        (n, f"{e['legacy_s'] * 1e3:.1f}", f"{e['fast_s'] * 1e3:.1f}",
         f"{e['speedup']:.2f}x", str(e["identical"]),
         f"{e['legacy_rerates']}", f"{e['fast_rerates']}")
        for n, e in sorted(sweep.items(), key=lambda kv: int(kv[0]))
    ]
    print(
        format_table(
            ["workers", "legacy (ms)", "fast (ms)", "speedup", "identical",
             "legacy rerates", "fast rerates"],
            rows,
            title="Netsim scaling (legacy vs fast network core)",
        )
    )
    e2e = data["end_to_end"]
    print(f"end-to-end OSP ({e2e['card']}, {e2e['workers']}w): "
          f"{e2e['speedup']:.2f}x host, identical={e2e['identical']}")
    for n, entry in sweep.items():
        assert entry["identical"], f"{n}-worker sweep diverged across modes"
    assert e2e["identical"], "end-to-end OSP run diverged across modes"
    assert sweep["64"]["speedup"] >= MIN_SPEEDUP_64, (
        f"64-worker speedup {sweep['64']['speedup']:.2f}x "
        f"below guarded {MIN_SPEEDUP_64}x"
    )
