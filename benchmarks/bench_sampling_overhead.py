"""Sampling-overhead benchmark: the time-series plane must be cheap and
provably non-perturbing.

Three configurations of the same timing-mode OSP workload — bare,
traced, traced+sampled — measured in host seconds. The hard assertion is
the semantic one (identical virtual timelines and iteration records:
sampling buys observability with zero simulation drift); the host-time
ratio is reported, with only a very loose guard so machine noise cannot
flake CI.
"""

import time

from conftest import bench_quick

from repro.check import capture_stream, first_divergence
from repro.core import OSP
from repro.harness import WorkloadConfig, timing_trainer
from repro.metrics.report import format_table


def _cfg():
    quick = bench_quick()
    return WorkloadConfig(
        "vgg16-cifar10",
        n_workers=8,
        n_epochs=4 if quick else 12,
        iterations_per_epoch=8 if quick else 16,
        sigma=0.1,
        seed=7,
    )


def _run(mode: str):
    trainer = timing_trainer(_cfg(), OSP())
    if mode in ("traced", "sampled"):
        trainer.enable_tracing()
    if mode == "sampled":
        trainer.enable_sampling()
    t0 = time.perf_counter()
    result = trainer.run()
    host = time.perf_counter() - t0
    return trainer, result, host


def _experiment():
    out = {}
    for mode in ("bare", "traced", "sampled"):
        out[mode] = _run(mode)
    return out


def test_sampling_overhead(benchmark):
    out = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    rows = []
    for mode, (_t, result, host) in out.items():
        n_series = len(result.sampler.series) if result.sampler else 0
        rows.append((mode, f"{host:.3f}", f"{result.wall_time:.3f}", n_series))
    print()
    print(
        format_table(
            ["mode", "host s", "virtual s", "series"],
            rows,
            title="Time-series sampling overhead (timing mode, 8 workers)",
        )
    )

    bare_t, bare_r, bare_host = out["bare"]
    samp_t, samp_r, samp_host = out["sampled"]
    # The guarantee that matters: the sampled run is bit-identical.
    assert first_divergence(
        capture_stream(bare_t, bare_r), capture_stream(samp_t, samp_r)
    ) is None
    assert samp_r.sampler is not None and samp_r.sampler.samples_taken > 0
    # Loose host-time guard: sampling must not blow the run up wholesale.
    assert samp_host < 10.0 * max(bare_host, 1e-3)
