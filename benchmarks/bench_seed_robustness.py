"""Seed robustness — the Fig. 6(a) headline ordering must not be a lucky
draw. Repeats the ResNet50 throughput comparison across jitter seeds and
asserts the ordering holds for *every* seed, reporting mean ± std.
"""

from conftest import bench_quick

from repro.core import OSP
from repro.harness import WorkloadConfig, run_seeds, timing_trainer
from repro.metrics.report import format_table
from repro.sync import ASP, BSP, R2SP


def _run():
    quick = bench_quick()
    seeds = [0, 1, 2] if quick else [0, 1, 2, 3, 4]
    epochs = 20 if quick else 40

    def factory(sync_cls):
        def build(seed):
            cfg = WorkloadConfig(
                "resnet50-cifar10",
                n_epochs=epochs,
                iterations_per_epoch=6,
                seed=seed,
            )
            return timing_trainer(cfg, sync_cls())

        return build

    return {
        cls().name: run_seeds(factory(cls), seeds)
        for cls in (BSP, R2SP, ASP, OSP)
    }


def test_seed_robustness(benchmark):
    stats = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["sync", "samples/s (mean ± std)", "min", "max"],
            [
                (name, str(s.throughput), f"{s.throughput.min:.1f}", f"{s.throughput.max:.1f}")
                for name, s in stats.items()
            ],
            title="Seed robustness — ResNet50 throughput across jitter seeds",
        )
    )
    # Ordering holds in the worst case, not just on average: OSP's slowest
    # seed beats BSP's and R2SP's fastest.
    assert stats["osp"].throughput.min > stats["bsp"].throughput.max
    assert stats["osp"].throughput.min > stats["r2sp"].throughput.max
    # Spread is small relative to the mean (the comparison is not noisy).
    for name, s in stats.items():
        assert s.throughput.std < 0.1 * s.throughput.mean, name
