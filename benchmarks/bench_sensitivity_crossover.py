"""Sensitivity/crossover analysis: where does OSP's advantage live?

Sweeps the network bandwidth through three regimes of the
compute/communication ratio rho = T_c / (2·N·S/b):

* rho >> 1 — network so fast that sync is free: all models converge.
* rho ≈ 1 — the paper's testbed regime: OSP's overlap pays off most.
* rho << 1 — network so slow that even ICS cannot hide (Eq. 5 binds):
  OSP's edge over BSP shrinks back toward the no-overlap bound.

Also sweeps straggler severity: BSP degrades with jitter while OSP's
short RS barrier bounds the damage.
"""

from conftest import bench_quick

from repro.core import OSP
from repro.harness.sweep import speedup_over, sweep_bandwidth, sweep_jitter
from repro.metrics.report import format_table
from repro.sync import ASP, BSP


def _run():
    quick = bench_quick()
    epochs = 12 if quick else 30
    factories = [BSP, ASP, OSP]
    gbps = [1e9, 10e9, 100e9, 1000e9]
    bw_points = sweep_bandwidth(
        factories, [g / 8 for g in gbps], epochs=epochs
    )
    jitter_points = sweep_jitter(factories, [0.0, 0.2, 0.5], epochs=epochs)
    return bw_points, jitter_points


def test_sensitivity_crossover(benchmark):
    bw_points, jitter_points = benchmark.pedantic(_run, rounds=1, iterations=1)

    print()
    print(
        format_table(
            ["knob", "value", "sync", "samples/s", "BST (s)", "rho"],
            [
                (p.knob, f"{p.value:.3g}", p.sync, f"{p.throughput:.1f}",
                 f"{p.mean_bst:.3f}", f"{p.comm_compute_ratio:.3g}")
                for p in bw_points + jitter_points
            ],
            title="Sensitivity sweep — bandwidth and straggler severity",
        )
    )

    speedups = dict(speedup_over(bw_points, "bsp", "osp"))
    values = sorted(speedups)
    # Fastest network: everyone is compute-bound, speedup -> ~1.
    assert speedups[values[-1]] < 1.15
    # Paper regime (10 Gbps = 1.25e9 B/s): the big win.
    assert speedups[1.25e9] > 1.4
    # Slowest network: OSP still ahead of BSP but the crossover trend shows
    # its edge comes from overlap, which saturates when rho << 1.
    assert speedups[values[0]] > 1.0
    assert speedups[values[0]] < speedups[1.25e9]

    # Jitter: OSP's advantage over BSP persists across the whole straggler
    # range. (BSP's absolute throughput is non-monotone in sigma here:
    # jitter staggers its pushes, trading barrier cost against incast —
    # an emergent effect of the fluid model, so we assert the *gap*.)
    bsp = {p.value: p.throughput for p in jitter_points if p.sync == "bsp"}
    osp = {p.value: p.throughput for p in jitter_points if p.sync == "osp"}
    for sigma in bsp:
        assert osp[sigma] > 1.15 * bsp[sigma], sigma
