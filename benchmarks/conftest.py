"""Shared infrastructure for the figure-regeneration benchmarks.

Every benchmark regenerates one of the paper's figures/tables (see
DESIGN.md §4) and prints the rows/series with ``-s``. Set
``REPRO_BENCH_FULL=1`` for larger (slower) configurations with the same
structure.

The four numeric (accuracy) figures share one underlying experiment
(`accuracy_experiment`); a session cache runs each workload once and the
benches extract their views, so the suite stays in the minutes range.
"""

from __future__ import annotations

import os

import pytest

from repro.harness.figures import accuracy_experiment


def bench_quick() -> bool:
    """False when REPRO_BENCH_FULL=1 (full-scale benchmark runs)."""
    return os.environ.get("REPRO_BENCH_FULL", "0") != "1"


_ACCURACY_CACHE: dict[str, dict] = {}


def cached_accuracy(workload: str) -> dict:
    """Run (once per session) the numeric experiment behind Figs. 6b/6c/7/8."""
    if workload not in _ACCURACY_CACHE:
        _ACCURACY_CACHE[workload] = accuracy_experiment(workload, quick=bench_quick())
    return _ACCURACY_CACHE[workload]


@pytest.fixture
def quick() -> bool:
    return bench_quick()
