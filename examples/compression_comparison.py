#!/usr/bin/env python
"""Gradient compression vs OSP's "defer, don't drop" (paper §2.2.2).

Trains the same model (single-node SGD for isolation) while passing every
gradient through Top-K / Random-K / 8-bit compressors, and compares the
final accuracy and wire bytes against the uncompressed baseline. Top-K at
aggressive ratios loses accuracy — exactly the degradation OSP avoids by
deferring (and eventually delivering) every gradient.

Run:  python examples/compression_comparison.py
"""

import numpy as np

from repro.compression import RandomK, ResidualMemory, TopK, Uniform8Bit, dense_bytes
from repro.data import make_image_classification, train_test_split
from repro.metrics import format_table
from repro.nn import accuracy, cross_entropy
from repro.nn.models import MLP
from repro.optim import SGD


def train_with_compressor(compressor, train, test, epochs=12, seed=0):
    model = MLP([3 * 16 * 16, 64, 10], seed=seed)
    opt = SGD(model, lr=0.1, momentum=0.9)
    rng = np.random.default_rng(seed)
    wire = 0
    n = len(train)
    for _epoch in range(epochs):
        perm = rng.permutation(n)
        for start in range(0, n - 32, 32):
            idx = perm[start : start + 32]
            model.zero_grad()
            loss = cross_entropy(model(train.inputs[idx]), train.targets[idx])
            loss.backward()
            grads = opt.gradient_dict()
            if compressor is None:
                wire += dense_bytes(grads)
            else:
                payload, nbytes = compressor.compress(grads)
                grads = compressor.decompress(payload)
                wire += nbytes
            opt.step_with_grads(grads)
    return accuracy(model(test.inputs), test.targets), wire


def main() -> None:
    ds = make_image_classification(2000, n_classes=10, image_size=16, noise=2.0, seed=0)
    train, test = train_test_split(ds, test_fraction=0.25, seed=1)

    configs = [
        ("dense (no compression)", None),
        ("top-k 10%", TopK(0.10)),
        ("top-k 1%", TopK(0.01)),
        ("top-k 1% + error feedback", ResidualMemory(TopK(0.01))),
        ("random-k 10%", RandomK(0.10, seed=0)),
        ("8-bit quantization", Uniform8Bit()),
    ]

    rows = []
    for label, comp in configs:
        acc, wire = train_with_compressor(comp, train, test)
        rows.append((label, f"{acc:.3f}", f"{wire / 1e6:.1f}"))

    print(
        format_table(
            ["method", "top-1", "wire MB"],
            rows,
            title="Gradient compression: accuracy vs transmitted bytes",
        )
    )
    print(
        "\nAggressive sparsification trades accuracy for bandwidth; error"
        "\nfeedback recovers some of it by *delaying* rather than dropping —"
        "\nthe same principle OSP applies at the synchronization-model level."
    )


if __name__ == "__main__":
    main()
