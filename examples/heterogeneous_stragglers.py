#!/usr/bin/env python
"""Heterogeneity study (paper §6.2): stragglers and batch-size tuning.

One worker runs on a 2x-slower GPU. BSP pays for it at every barrier; ASP
does not; OSP's short RS barrier sits in between. The §6.2 remedy —
batch-size tuning so every node has equal iteration time — is then applied
to OSP by shrinking the slow worker's *virtual* batch (we model it as a
compute-time override).

Run:  python examples/heterogeneous_stragglers.py
"""

from repro.cluster import ClusterSpec, DistributedTrainer, TimingEngine, TrainingPlan
from repro.core import OSP
from repro.hardware import PersistentStraggler
from repro.metrics import format_table
from repro.nn.models import get_card
from repro.sync import ASP, BSP


def run(sync_model, jitter, epochs=12, ipe=8, workers=8):
    spec = ClusterSpec(n_workers=workers, jitter=jitter)
    plan = TrainingPlan(n_epochs=epochs, iterations_per_epoch=ipe)
    engine = TimingEngine(
        get_card("resnet50-cifar10"), spec, total_iterations=epochs * ipe
    )
    engine.tau = epochs * ipe / 6
    return DistributedTrainer(spec, plan, engine, sync_model).run()


class BatchTunedStraggler(PersistentStraggler):
    """§6.2 batch-size tuning: the slow worker processes a proportionally
    smaller batch so its iteration time matches the others. (Statistical
    effects of the smaller batch are out of scope for the timing study.)"""

    def sample(self, base_time, worker, iteration):
        t = super().sample(base_time, worker, iteration)
        if worker in self.slow_workers:
            t /= self.slow_factor  # batch shrunk by the slowdown factor
        return t


def main() -> None:
    slow = PersistentStraggler(slow_workers=[0], slow_factor=2.0)
    tuned = BatchTunedStraggler(slow_workers=[0], slow_factor=2.0)

    rows = []
    for sync_factory, jitter, label in [
        (BSP, slow, "bsp + straggler"),
        (ASP, slow, "asp + straggler"),
        (OSP, slow, "osp + straggler"),
        (OSP, tuned, "osp + straggler + batch tuning (§6.2)"),
    ]:
        result = run(sync_factory(), jitter)
        rows.append(
            (
                label,
                f"{result.throughput:.1f}",
                f"{result.mean_bst * 1e3:.0f}",
            )
        )

    print(
        format_table(
            ["configuration", "samples/s", "BST (ms)"],
            rows,
            title="Heterogeneous cluster: one 2x-slow worker (8 workers total)",
        )
    )
    print(
        "\nBSP pays the straggler at every barrier; batch-size tuning restores"
        "\nOSP's homogeneous-cluster throughput, as §6.2 suggests."
    )


if __name__ == "__main__":
    main()
