#!/usr/bin/env python
"""Image-classification cluster study (the paper's §5.2/§5.3 workflow).

Runs the four synchronization models on the ResNet50/CIFAR-10 workload,
prints the throughput/accuracy summary plus time-to-accuracy curves, and
shows how OSP's S(G^u) budget ramps with Algorithm 1.

Run:  python examples/image_classification_cluster.py
"""

from repro.core import OSP
from repro.harness import WorkloadConfig, make_numeric_dataset, numeric_trainer
from repro.harness.figures import paper_sync_models
from repro.metrics import format_series, format_table


def main() -> None:
    cfg = WorkloadConfig(
        "resnet50-cifar10", n_workers=4, n_epochs=8, sigma=0.3, seed=0
    )
    data = make_numeric_dataset(cfg.card, n_samples=1600, seed=0)

    rows = []
    curves = {}
    budgets = {}
    for sync in paper_sync_models():
        trainer = numeric_trainer(cfg, sync, data=data)
        if isinstance(sync, OSP):
            trainer.ctx.epoch_end_hooks.append(
                lambda e, loss, m, s=sync: budgets.setdefault(e, s.current_budget)
            )
        result = trainer.run()
        rows.append(
            (
                result.sync_name,
                f"{result.throughput:.1f}",
                f"{result.mean_bst * 1e3:.0f}",
                f"{result.best_metric:.3f}",
                result.recorder.iterations_to_best(),
            )
        )
        curves[result.sync_name] = result.recorder.time_to_accuracy()

    print(
        format_table(
            ["sync", "samples/s", "BST (ms)", "top-1", "iters-to-best"],
            rows,
            title="ResNet50/CIFAR-10 on 4 workers (numeric mode)",
        )
    )

    print("\nTime-to-accuracy curves (virtual seconds -> top-1):")
    for name, curve in curves.items():
        print(" ", format_series(name, curve, y_label="top1"))

    print("\nOSP Algorithm-1 deferred-byte budget per epoch (bytes):")
    for epoch in sorted(budgets):
        print(f"  epoch {epoch}: S(G^u) = {budgets[epoch] / 1e6:.1f} MB")


if __name__ == "__main__":
    main()
