#!/usr/bin/env python
"""Multi-PS scaling study (paper §6.1, "Handling Scaling-up").

Shards the ResNet50 model across 1/2/4/8 parameter servers (BytePS-style
synchronization groups) and compares the measured per-iteration BST with
the planner's closed-form prediction.

Run:  python examples/multips_scaling.py
"""

from repro.cluster import ClusterSpec, DistributedTrainer, TimingEngine, TrainingPlan
from repro.hardware import NoJitter
from repro.metrics import format_table
from repro.nn.models import get_card
from repro.sync import ShardedBSP


def main() -> None:
    card = get_card("resnet50-cifar10")
    rows = []
    for n_ps in (1, 2, 4, 8):
        spec = ClusterSpec(n_workers=8, jitter=NoJitter(), n_ps=n_ps)
        plan = TrainingPlan(n_epochs=1, iterations_per_epoch=6)
        engine = TimingEngine(card, spec, total_iterations=6)
        sync = ShardedBSP()
        result = DistributedTrainer(spec, plan, engine, sync).run()
        predicted = sync.plan.predicted_bst(8, spec.link.bandwidth)
        rows.append(
            (
                n_ps,
                f"{sync.plan.max_shard_bytes / 1e6:.1f}",
                f"{sync.plan.balance:.3f}",
                f"{predicted:.3f}",
                f"{result.mean_bst:.3f}",
                f"{result.throughput:.1f}",
            )
        )

    print(
        format_table(
            ["PSes", "max shard (MB)", "balance", "predicted BST (s)", "measured BST (s)", "samples/s"],
            rows,
            title="§6.1 — sharding the model across parameter servers (ResNet50, 8 workers)",
        )
    )
    print(
        "\nEach doubling of the PS count halves the incast at every server,"
        "\nhalving the synchronization time — the paper's scaling-up remedy."
    )


if __name__ == "__main__":
    main()
