#!/usr/bin/env python
"""NLP fine-tuning workload (the paper's BERT-base/SQuAD v1.1 task).

Fine-tunes the TinyBERT span-extraction model on synthetic extractive QA
under BSP, ASP and OSP; BERT is the paper's communication-heaviest
workload, where OSP's throughput is "near-ASP" rather than ahead.

Run:  python examples/nlp_finetune.py
"""

from repro.core import OSP
from repro.harness import WorkloadConfig, make_numeric_dataset, numeric_trainer
from repro.metrics import format_series, format_table
from repro.sync import ASP, BSP


def main() -> None:
    cfg = WorkloadConfig("bertbase-squad", n_workers=4, n_epochs=8, sigma=0.3, seed=0)
    data = make_numeric_dataset(cfg.card, n_samples=1600, seed=0)

    rows = []
    curves = {}
    for sync in (BSP(), ASP(), OSP()):
        result = numeric_trainer(cfg, sync, data=data, lr=0.05).run()
        # The paper reports BERT throughput as QAs per 10 seconds.
        rows.append(
            (
                result.sync_name,
                f"{result.throughput * 10:.1f}",
                f"{result.mean_bst:.2f}",
                f"{result.best_metric:.3f}",
            )
        )
        curves[result.sync_name] = result.recorder.time_to_accuracy()

    print(
        format_table(
            ["sync", "QAs / 10s", "BST (s)", "F1"],
            rows,
            title="TinyBERT span extraction on 4 workers (BERT-base-scale timing)",
        )
    )
    print("\nTime-to-F1 curves (virtual seconds -> F1):")
    for name, curve in curves.items():
        print(" ", format_series(name, curve, y_label="F1"))


if __name__ == "__main__":
    main()
