#!/usr/bin/env python
"""Anatomy of OSP: every §4 mechanism on a real model, step by step.

Walks PGP importance (Eq. 1-4), the Eq. 5 budget, Algorithm 1's ramp, the
GIB split, and LGP (Eq. 6-7) — using the library's public API directly on
a real mini-model gradient, with no cluster simulation in the way.

Run:  python examples/osp_anatomy.py
"""

import numpy as np

from repro.core import GIB, LGPCorrector, SGuTuner, ics_upper_bound
from repro.core.pgp import layer_importance
from repro.core.splitter import GradientSplitter
from repro.metrics import format_table
from repro.nn import cross_entropy
from repro.nn.models import MiniVGG, get_card
from repro.nn.models.registry import BYTES_PER_PARAM


def main() -> None:
    # --- a real gradient on a real model --------------------------------
    model = MiniVGG(n_classes=10, seed=0)
    x = np.random.default_rng(0).normal(size=(32, 3, 16, 16))
    y = np.random.default_rng(1).integers(0, 10, size=32)
    loss = cross_entropy(model(x), y)
    loss.backward()
    grads = {n: p.grad for n, p in model.named_parameters()}
    params = {n: p.data for n, p in model.named_parameters()}

    # --- Eq. 4: per-layer PGP importance --------------------------------
    splitter = GradientSplitter.from_module(model)
    importance = layer_importance(grads, params, splitter.layer_params)
    sizes = splitter.layer_bytes(
        {n: p.size for n, p in model.named_parameters()}, BYTES_PER_PARAM
    )
    rows = [
        (layer, f"{importance[layer]:.4f}", sizes[layer],
         f"{importance[layer] / sizes[layer]:.2e}")
        for layer in splitter.layers
    ]
    print(
        format_table(
            ["layer", "I^l = Σ|g·p|", "bytes", "importance density"],
            rows,
            title="Eq. 4 — PGP layer importance on MiniVGG (one real batch)",
        )
    )

    # --- Eq. 5 + Algorithm 1: how much may be deferred ------------------
    card = get_card("vgg16-cifar10")
    u_max = ics_upper_bound(
        bandwidth=1.25e9,  # 10 Gbps
        loss_rate=0.0,
        compute_time=2.9,  # VGG16 T_c on the T4 testbed model
        n_workers=8,
        model_bytes=card.model_bytes,
    )
    print(f"\nEq. 5: U_max = {u_max / 1e6:.0f} MB "
          f"({u_max / card.model_bytes:.0%} of VGG16's {card.model_bytes / 1e6:.0f} MB)")

    tuner = SGuTuner(u_max)
    losses = [2.30, 1.80, 1.20, 0.70, 0.35, 0.15]
    print("Algorithm 1 ramp (epoch loss -> S(G^u)):")
    for epoch, epoch_loss in enumerate(losses, start=1):
        budget = tuner.budget(epoch_loss)
        print(f"  epoch {epoch}: loss={epoch_loss:.2f} -> defer {budget / 1e6:7.1f} MB")

    # --- GIB: which layers ride in ICS ----------------------------------
    budget = tuner.budget(0.10)
    gib = GIB.from_importance(importance, sizes, budget * sum(sizes.values()) / card.model_bytes)
    print(f"\nGIB at a late-training budget: {gib.n_important}/{len(gib.layers)} "
          f"layers stay in RS; bitmap is {gib.wire_bytes()} byte(s) on the wire")
    print(f"  deferred to ICS: {', '.join(gib.unimportant_layers)}")

    # --- LGP (Eq. 6-7) ---------------------------------------------------
    replica = {n: p.data for n, p in model.named_parameters()}
    corrector = LGPCorrector(replica)
    unimp_names = splitter.params_of(gib.unimportant_layers)
    local_guess = {n: grads[n] for n in unimp_names}
    before = {n: replica[n].copy() for n in unimp_names[:1]}
    corrector.apply_rs({}, local_guess, lr=0.1)  # Eq. 6: local prediction
    name = unimp_names[0]
    print(f"\nLGP Eq. 6: {name} advanced by -0.1 x local grad "
          f"(Δ max = {np.abs(replica[name] - before[name]).max():.2e})")
    global_values = {n: before.get(n, replica[n]) for n in unimp_names[:1]}
    corrector.apply_ics(global_values)  # Eq. 7: overwrite with global
    print(f"LGP Eq. 7: {name} corrected back to the global value "
          f"(exact: {np.array_equal(replica[name], before[name])})")


if __name__ == "__main__":
    main()
