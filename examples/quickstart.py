#!/usr/bin/env python
"""Quickstart: train a small model on a simulated 4-worker cluster with
OSP and compare against BSP.

Run:  python examples/quickstart.py
"""

from repro.cluster import ClusterSpec, DistributedTrainer, NumericEngine, TrainingPlan
from repro.core import OSP
from repro.data import make_image_classification, train_test_split
from repro.hardware import LognormalJitter
from repro.metrics import format_table
from repro.nn.models import get_card
from repro.sync import BSP


def main() -> None:
    # 1. A workload: the ResNet50/CIFAR-10 card gives us paper-scale
    #    communication sizes and compute times plus a mini model that we
    #    train for real on synthetic CIFAR-like data.
    card = get_card("resnet50-cifar10")
    dataset = make_image_classification(
        1600, n_classes=10, image_size=16, noise=2.0, seed=0
    )
    train, test = train_test_split(dataset, test_fraction=0.25, seed=1)

    # 2. A cluster: 4 workers + 1 standalone PS on 10 Gbps links, with mild
    #    compute-time jitter (what makes barriers expensive).
    spec = ClusterSpec(n_workers=4, jitter=LognormalJitter(sigma=0.3, seed=0))
    plan = TrainingPlan(n_epochs=6, lr=0.1, momentum=0.9)

    # 3. Run the same training under BSP and OSP.
    rows = []
    for sync_model in (BSP(), OSP()):
        engine = NumericEngine(card, train, test, spec, batch_size=25, seed=0)
        result = DistributedTrainer(spec, plan, engine, sync_model).run()
        rows.append(
            (
                result.sync_name,
                f"{result.throughput:.1f}",
                f"{result.mean_bst * 1e3:.0f}",
                f"{result.best_metric:.3f}",
                f"{result.wall_time:.1f}",
            )
        )

    print(
        format_table(
            ["sync", "throughput (samples/s)", "BST (ms)", "top-1", "virtual time (s)"],
            rows,
            title="Quickstart: BSP vs OSP on a simulated 4-worker cluster",
        )
    )
    print(
        "\nOSP finishes the same training budget faster at the same accuracy —"
        "\nits 2-stage synchronization hides most gradient traffic inside compute."
    )


if __name__ == "__main__":
    main()
