"""Setup shim: enables legacy editable installs in offline environments
where the `wheel` package (needed for PEP-660 editable wheels) is absent.
`pip install -e . --no-build-isolation` falls back to `setup.py develop`.
"""
from setuptools import setup

setup()
