"""repro — reproduction of OSP (ICPP 2023): 2-stage synchronization for
Parameter-Server-based distributed deep learning, on a fully simulated
cluster (discrete-event network + compute simulation, NumPy autodiff).

Public API highlights
---------------------
- :mod:`repro.simcore` — discrete-event simulation kernel.
- :mod:`repro.netsim` — fluid-flow network simulator (incast, stragglers).
- :mod:`repro.hardware` — GPU/compute-time models.
- :mod:`repro.autograd`, :mod:`repro.nn`, :mod:`repro.optim` — NumPy deep
  learning stack used for the accuracy-fidelity experiments.
- :mod:`repro.data` — synthetic image/QA datasets and sharding.
- :mod:`repro.sync` — BSP / ASP / SSP / R2SP / Sync-Switch baselines.
- :mod:`repro.core` — OSP itself (PGP, GIB, Algorithm 1, LGP, OSP-C).
- :mod:`repro.cluster` — the distributed trainer tying it all together.
- :mod:`repro.harness` — paper workloads and figure experiments.
"""

from repro.version import __version__

__all__ = ["__version__"]
