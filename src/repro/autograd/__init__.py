"""Tape-based reverse-mode automatic differentiation on NumPy.

A deliberately small but complete autodiff engine: enough to train the
convnets and the tiny transformer used in the accuracy experiments, with
vectorised NumPy kernels throughout (conv2d via im2col, attention via
batched matmul).

Example
-------
>>> from repro.autograd import Tensor
>>> import numpy as np
>>> x = Tensor(np.ones((2, 3)), requires_grad=True)
>>> y = (x * 3).sum()
>>> y.backward()
>>> x.grad
array([[3., 3., 3.],
       [3., 3., 3.]])
"""

from repro.autograd.tensor import Tensor, no_grad
from repro.autograd.gradcheck import grad_check
from repro.autograd import functional

__all__ = ["Tensor", "functional", "grad_check", "no_grad"]
