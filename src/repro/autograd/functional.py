"""Higher-level differentiable operations: conv, pooling, softmax, embedding.

All kernels are fully vectorised (im2col for convolution, stride-tricks for
pooling windows) per the HPC guide: no Python loops over batch or spatial
dimensions.
"""

from __future__ import annotations

import os

import numpy as np

from repro.autograd.tensor import Tensor, unbroadcast


# --------------------------------------------------------------- softmax
def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    log_sum = np.log(exp.sum(axis=axis, keepdims=True))
    out_data = shifted - log_sum
    softmax = exp / exp.sum(axis=axis, keepdims=True)

    def grad_fn(g):
        return g - softmax * g.sum(axis=axis, keepdims=True)

    return Tensor._from_op(out_data, [(x, grad_fn)], "log_softmax")


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)

    def grad_fn(g):
        dot = (g * out_data).sum(axis=axis, keepdims=True)
        return out_data * (g - dot)

    return Tensor._from_op(out_data, [(x, grad_fn)], "softmax")


# --------------------------------------------------------------- scatter-add
def _scatter_add(shape, flat_index: np.ndarray, values: np.ndarray) -> np.ndarray:
    """``out = zeros(shape); out.ravel()[flat_index] += values`` via
    ``np.bincount``.

    Both ``np.add.at`` and ``np.bincount`` accumulate strictly in input
    order, so per target element the additions happen in the same sequence
    and the result is bit-identical — but bincount skips ufunc buffered-
    indexing machinery and is ~8x faster on conv-sized scatters (this is
    the simulator's single hottest numeric kernel; see docs/performance.md).

    ``REPRO_SCATTER=legacy`` forces the ``np.add.at`` path — the perf
    harness uses it to measure the pre-optimization baseline.
    """
    values = np.ascontiguousarray(values)
    if values.dtype != np.float64 or os.environ.get("REPRO_SCATTER") == "legacy":
        # bincount weights are float64-only; add.at is the general fallback
        out = np.zeros(shape, dtype=values.dtype)
        np.add.at(out.reshape(-1), flat_index.reshape(-1), values.reshape(-1))
        return out
    size = 1
    for s in shape:
        size *= s
    return np.bincount(
        flat_index.reshape(-1), weights=values.reshape(-1), minlength=size
    ).reshape(shape)


# --------------------------------------------------------------- embedding
def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Row-gather ``weight[indices]`` with scatter-add backward."""
    indices = np.asarray(indices)
    if not np.issubdtype(indices.dtype, np.integer):
        raise TypeError(f"indices must be integers, got {indices.dtype}")
    out_data = weight.data[indices]

    def grad_fn(g):
        dim = weight.data.shape[-1]
        rows = indices
        if rows.min(initial=0) < 0:  # wrap negative row indices like add.at
            rows = np.where(rows < 0, rows + weight.data.shape[0], rows)
        flat = rows[..., None] * dim + np.arange(dim)
        return _scatter_add(weight.data.shape, flat, np.asarray(g))

    return Tensor._from_op(out_data, [(weight, grad_fn)], "embedding")


# --------------------------------------------------------------- im2col conv
def _im2col_indices(x_shape, kh, kw, stride, padding):
    n, c, h, w = x_shape
    out_h = (h + 2 * padding - kh) // stride + 1
    out_w = (w + 2 * padding - kw) // stride + 1
    i0 = np.repeat(np.arange(kh), kw)
    i0 = np.tile(i0, c)
    i1 = stride * np.repeat(np.arange(out_h), out_w)
    j0 = np.tile(np.arange(kw), kh * c)
    j1 = stride * np.tile(np.arange(out_w), out_h)
    i = i0.reshape(-1, 1) + i1.reshape(1, -1)
    j = j0.reshape(-1, 1) + j1.reshape(1, -1)
    k = np.repeat(np.arange(c), kh * kw).reshape(-1, 1)
    return k, i, j, out_h, out_w


# Per-geometry im2col index cache: a model sees a handful of distinct
# (input shape, kernel, stride, padding) combinations, each reused thousands
# of times per run, so the index arrays are precomputed once. The small
# per-image ``flat`` offsets are always cached; the batch-expanded
# gather/scatter arrays are cached only while they fit the budget —
# eval-sized batches (hundreds of images) would hoard hundreds of MB, so
# those geometries get ``None`` and conv2d uses the flat-only path instead.
_CONV_GEOM_CACHE: dict = {}
_CONV_GEOM_ENTRY_CAP = 48 * 1024 * 1024
_CONV_GEOM_BUDGET = 256 * 1024 * 1024
_conv_geom_bytes = 0


def _conv_geometry(x_shape, kh, kw, stride, padding):
    """Cached ``(flat, gather_idx, scatter_idx, out_h, out_w)`` for one
    conv geometry.

    ``flat`` (F, P) holds per-image flat offsets into the padded input.
    ``gather_idx`` (F, N, P) pulls im2col columns for the whole batch in one
    ``np.take`` — laid out so the column matrix comes out C-contiguous in
    ``(F, N, P)`` order, which lets both conv einsum contractions reshape
    its (N, F, P) transpose view to their BLAS operand without copying (see
    ``conv2d``). ``scatter_idx`` (N, F, P) is the matching backward scatter
    target, in the same (n, f, p) element order as the historical per-call
    construction so the scatter-add accumulation order (and hence every
    bit) is unchanged. ``gather_idx``/``scatter_idx`` are ``None`` for
    geometries too large to cache.
    """
    global _conv_geom_bytes
    key = (x_shape, kh, kw, stride, padding)
    hit = _CONV_GEOM_CACHE.get(key)
    if hit is not None:
        return hit
    n, c, h, w = x_shape
    k, i, j, out_h, out_w = _im2col_indices(x_shape, kh, kw, stride, padding)
    hp, wp = h + 2 * padding, w + 2 * padding
    flat = (k * hp + i) * wp + j  # (F, P) per-image flat offsets
    size = 2 * n * flat.size * flat.itemsize
    if size <= _CONV_GEOM_ENTRY_CAP and _conv_geom_bytes + size <= _CONV_GEOM_BUDGET:
        offs = np.arange(n) * (c * hp * wp)
        gather_idx = flat[:, None, :] + offs[None, :, None]  # (F, N, P)
        scatter_idx = flat[None, :, :] + offs[:, None, None]  # (N, F, P)
        _conv_geom_bytes += size
    else:
        gather_idx = scatter_idx = None
    entry = (flat, gather_idx, scatter_idx, out_h, out_w)
    _CONV_GEOM_CACHE[key] = entry
    return entry


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D convolution (NCHW) via im2col.

    ``x``: (N, C_in, H, W); ``weight``: (C_out, C_in, KH, KW);
    ``bias``: (C_out,) or None.
    """
    n, c_in, h, w = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"channel mismatch: input {c_in}, weight {c_in_w}")
    if h + 2 * padding < kh or w + 2 * padding < kw:
        raise ValueError(
            f"kernel {kh}x{kw} larger than padded input "
            f"{h + 2 * padding}x{w + 2 * padding}"
        )
    # Output size floors (PyTorch semantics): trailing rows/cols that do not
    # fit a full window are ignored by the im2col index set.

    if os.environ.get("REPRO_CONV") == "legacy":
        return _conv2d_legacy(x, weight, bias, stride, padding)

    # Fast layout: gather the im2col matrix directly into (F, N, P)
    # C-contiguous order with one flat np.take. Both einsum contractions
    # below receive the (N, F, P) *transpose view* of it — their internal
    # BLAS dispatch reshapes that view to its operand without copying,
    # whereas an (N, F, P)-contiguous cols (the legacy layout) forced a
    # full copy of the column matrix on every forward AND every grad_w.
    # The BLAS calls themselves are unchanged in shape and operand order,
    # so results stay bit-identical to the legacy path (verified by the
    # arena parity tests and the perf fingerprints).
    #
    # Bit-parity constraint: the forward einsum result must keep its
    # NATURAL output layout (a strided view for the bmm path). Forcing it
    # into a C-contiguous out= buffer preserves the conv values but changes
    # the memory order downstream reductions (batch-norm mean/var) iterate
    # in, which changes THEIR pairwise-summation bits. grad_x's dcols may
    # use out= because _scatter_add always normalised its layout anyway.
    flat, gather_idx, scatter_idx, out_h, out_w = _conv_geometry(
        x.shape, kh, kw, stride, padding
    )
    if padding:
        x_padded = np.pad(
            x.data, ((0, 0), (0, 0), (padding, padding), (padding, padding))
        )
    else:
        # No padding: the gather indices address the input directly; the
        # defensive copy np.pad would make changes no gathered value.
        x_padded = x.data
    if gather_idx is not None:
        cols_f = np.take(x_padded.ravel(), gather_idx)  # (F, N, P) contiguous
        cols = cols_f.transpose(1, 0, 2)  # (N, F, P) view for the einsums
    else:
        # Geometry too large to cache (eval-sized batch): flat-take per
        # image; einsum re-copies internally, exactly like the legacy path.
        cols = np.take(x_padded.reshape(n, -1), flat, axis=1)  # (N, F, P)
    w_row = weight.data.reshape(c_out, -1)  # (C_out, C_in*KH*KW)
    n_pix = out_h * out_w
    out = np.einsum("of,nfp->nop", w_row, cols, optimize=True)
    out_data = out.reshape(n, c_out, out_h, out_w)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, c_out, 1, 1)

    def grad_x(g):
        g2 = g.reshape(n, c_out, -1)  # (N, C_out, P)
        dcols = np.empty((n, w_row.shape[1], n_pix), dtype=np.result_type(w_row, g2))
        np.einsum("of,nop->nfp", w_row, g2, optimize=True, out=dcols)
        if scatter_idx is not None:
            idx = scatter_idx
        else:
            _, _, hp, wp = x_padded.shape
            idx = np.arange(n)[:, None, None] * (c_in * hp * wp) + flat
        dx_padded = _scatter_add(x_padded.shape, idx, dcols)
        if padding:
            return dx_padded[:, :, padding:-padding, padding:-padding]
        return dx_padded

    def grad_w(g):
        g2 = g.reshape(n, c_out, -1)
        dw_row = np.einsum("nop,nfp->of", g2, cols, optimize=True)
        return dw_row.reshape(weight.shape)

    parents = [(x, grad_x), (weight, grad_w)]
    if bias is not None:
        parents.append((bias, lambda g: g.sum(axis=(0, 2, 3))))
    return Tensor._from_op(out_data, parents, "conv2d")


def _conv2d_legacy(x, weight, bias, stride, padding):
    """Pre-optimization conv path (``REPRO_CONV=legacy``): per-call index
    construction and an (N, F, P)-contiguous column matrix that the einsums
    internally re-copy. Kept so the perf harness can measure the true
    pre-change baseline; bit-identical to the fast path."""
    n, c_in, h, w = x.shape
    c_out = weight.shape[0]
    k, i, j, out_h, out_w = _im2col_indices(x.shape, weight.shape[2], weight.shape[3], stride, padding)
    x_padded = np.pad(
        x.data, ((0, 0), (0, 0), (padding, padding), (padding, padding))
    )
    # cols: (C_in*KH*KW, out_h*out_w, N) -> reshape for matmul
    cols = x_padded[:, k, i, j]  # (N, C_in*KH*KW, out_h*out_w)
    w_row = weight.data.reshape(c_out, -1)  # (C_out, C_in*KH*KW)
    out = np.einsum("of,nfp->nop", w_row, cols, optimize=True)
    out_data = out.reshape(n, c_out, out_h, out_w)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, c_out, 1, 1)

    def grad_x(g):
        g2 = g.reshape(n, c_out, -1)  # (N, C_out, P)
        dcols = np.einsum("of,nop->nfp", w_row, g2, optimize=True)
        _, _, hp, wp = x_padded.shape
        flat = (k * hp + i) * wp + j  # (F, P) per-image flat offsets
        idx = np.arange(n)[:, None, None] * (c_in * hp * wp) + flat
        dx_padded = _scatter_add(x_padded.shape, idx, dcols)
        if padding:
            return dx_padded[:, :, padding:-padding, padding:-padding]
        return dx_padded

    def grad_w(g):
        g2 = g.reshape(n, c_out, -1)
        dw_row = np.einsum("nop,nfp->of", g2, cols, optimize=True)
        return dw_row.reshape(weight.shape)

    parents = [(x, grad_x), (weight, grad_w)]
    if bias is not None:
        parents.append((bias, lambda g: g.sum(axis=(0, 2, 3))))
    return Tensor._from_op(out_data, parents, "conv2d")


# --------------------------------------------------------------- pooling
def max_pool2d(x: Tensor, kernel: int = 2, stride: int | None = None) -> Tensor:
    """Max pooling (NCHW) with non-overlapping or strided windows."""
    stride = stride or kernel
    n, c, h, w = x.shape
    if (h - kernel) % stride or (w - kernel) % stride:
        raise ValueError(
            f"pool geometry does not divide: {h}x{w}, kernel {kernel}, stride {stride}"
        )
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1

    if stride == kernel and h % kernel == 0 and w % kernel == 0:
        # Fast path: reshape into blocks.
        blocks = x.data.reshape(n, c, out_h, kernel, out_w, kernel)
        out_data = blocks.max(axis=(3, 5))

        def grad_fn(g):
            expanded = out_data[:, :, :, None, :, None]
            mask = blocks == expanded
            # Distribute among ties equally (rare with float activations).
            counts = mask.sum(axis=(3, 5), keepdims=True)
            g_exp = g[:, :, :, None, :, None] / counts
            return (mask * g_exp).reshape(n, c, h, w)

        return Tensor._from_op(out_data, [(x, grad_fn)], "max_pool2d")

    # General strided path via as_strided views.
    s = x.data.strides
    windows = np.lib.stride_tricks.as_strided(
        x.data,
        shape=(n, c, out_h, out_w, kernel, kernel),
        strides=(s[0], s[1], s[2] * stride, s[3] * stride, s[2], s[3]),
        writeable=False,
    )
    out_data = windows.max(axis=(4, 5))

    def grad_fn_strided(g):
        flat = windows.reshape(n, c, out_h, out_w, -1)
        arg = flat.argmax(axis=-1)
        ky, kx = np.unravel_index(arg, (kernel, kernel))
        oy = np.arange(out_h)[None, None, :, None]
        ox = np.arange(out_w)[None, None, None, :]
        iy = oy * stride + ky
        ix = ox * stride + kx
        nn = np.arange(n)[:, None, None, None]
        cc = np.arange(c)[None, :, None, None]
        idx = ((nn * c + cc) * h + iy) * w + ix
        return _scatter_add(x.data.shape, idx, np.broadcast_to(g, idx.shape))

    return Tensor._from_op(out_data, [(x, grad_fn_strided)], "max_pool2d")


def avg_pool2d(x: Tensor, kernel: int = 2) -> Tensor:
    """Non-overlapping average pooling (NCHW)."""
    n, c, h, w = x.shape
    if h % kernel or w % kernel:
        raise ValueError(f"pool kernel {kernel} does not divide {h}x{w}")
    out_h, out_w = h // kernel, w // kernel
    blocks = x.data.reshape(n, c, out_h, kernel, out_w, kernel)
    out_data = blocks.mean(axis=(3, 5))

    def grad_fn(g):
        g_exp = np.broadcast_to(
            g[:, :, :, None, :, None] / (kernel * kernel),
            (n, c, out_h, kernel, out_w, kernel),
        )
        return g_exp.reshape(n, c, h, w)

    return Tensor._from_op(out_data, [(x, grad_fn)], "avg_pool2d")


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Mean over spatial dims: (N, C, H, W) -> (N, C)."""
    return x.mean(axis=(2, 3))


# --------------------------------------------------------------- dropout
def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool) -> Tensor:
    """Inverted dropout: scale kept units by 1/(1-p) during training."""
    if not (0.0 <= p < 1.0):
        raise ValueError(f"dropout p must be in [0,1), got {p}")
    if not training or p == 0.0:
        return x
    mask = (rng.random(x.shape) >= p) / (1.0 - p)

    return Tensor._from_op(x.data * mask, [(x, lambda g: g * mask)], "dropout")


__all__ = [
    "avg_pool2d",
    "conv2d",
    "dropout",
    "embedding",
    "global_avg_pool2d",
    "log_softmax",
    "max_pool2d",
    "softmax",
]
