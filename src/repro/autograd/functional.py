"""Higher-level differentiable operations: conv, pooling, softmax, embedding.

All kernels are fully vectorised (im2col for convolution, stride-tricks for
pooling windows) per the HPC guide: no Python loops over batch or spatial
dimensions.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor, unbroadcast


# --------------------------------------------------------------- softmax
def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    log_sum = np.log(exp.sum(axis=axis, keepdims=True))
    out_data = shifted - log_sum
    softmax = exp / exp.sum(axis=axis, keepdims=True)

    def grad_fn(g):
        return g - softmax * g.sum(axis=axis, keepdims=True)

    return Tensor._from_op(out_data, [(x, grad_fn)], "log_softmax")


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)

    def grad_fn(g):
        dot = (g * out_data).sum(axis=axis, keepdims=True)
        return out_data * (g - dot)

    return Tensor._from_op(out_data, [(x, grad_fn)], "softmax")


# --------------------------------------------------------------- embedding
def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Row-gather ``weight[indices]`` with scatter-add backward."""
    indices = np.asarray(indices)
    if not np.issubdtype(indices.dtype, np.integer):
        raise TypeError(f"indices must be integers, got {indices.dtype}")
    out_data = weight.data[indices]

    def grad_fn(g):
        full = np.zeros_like(weight.data)
        np.add.at(full, indices, g)
        return full

    return Tensor._from_op(out_data, [(weight, grad_fn)], "embedding")


# --------------------------------------------------------------- im2col conv
def _im2col_indices(x_shape, kh, kw, stride, padding):
    n, c, h, w = x_shape
    out_h = (h + 2 * padding - kh) // stride + 1
    out_w = (w + 2 * padding - kw) // stride + 1
    i0 = np.repeat(np.arange(kh), kw)
    i0 = np.tile(i0, c)
    i1 = stride * np.repeat(np.arange(out_h), out_w)
    j0 = np.tile(np.arange(kw), kh * c)
    j1 = stride * np.tile(np.arange(out_w), out_h)
    i = i0.reshape(-1, 1) + i1.reshape(1, -1)
    j = j0.reshape(-1, 1) + j1.reshape(1, -1)
    k = np.repeat(np.arange(c), kh * kw).reshape(-1, 1)
    return k, i, j, out_h, out_w


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D convolution (NCHW) via im2col.

    ``x``: (N, C_in, H, W); ``weight``: (C_out, C_in, KH, KW);
    ``bias``: (C_out,) or None.
    """
    n, c_in, h, w = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"channel mismatch: input {c_in}, weight {c_in_w}")
    if h + 2 * padding < kh or w + 2 * padding < kw:
        raise ValueError(
            f"kernel {kh}x{kw} larger than padded input "
            f"{h + 2 * padding}x{w + 2 * padding}"
        )
    # Output size floors (PyTorch semantics): trailing rows/cols that do not
    # fit a full window are ignored by the im2col index set.

    k, i, j, out_h, out_w = _im2col_indices(x.shape, kh, kw, stride, padding)
    x_padded = np.pad(
        x.data, ((0, 0), (0, 0), (padding, padding), (padding, padding))
    )
    # cols: (C_in*KH*KW, out_h*out_w, N) -> reshape for matmul
    cols = x_padded[:, k, i, j]  # (N, C_in*KH*KW, out_h*out_w)
    w_row = weight.data.reshape(c_out, -1)  # (C_out, C_in*KH*KW)
    out = np.einsum("of,nfp->nop", w_row, cols, optimize=True)
    out_data = out.reshape(n, c_out, out_h, out_w)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, c_out, 1, 1)

    def grad_x(g):
        g2 = g.reshape(n, c_out, -1)  # (N, C_out, P)
        dcols = np.einsum("of,nop->nfp", w_row, g2, optimize=True)
        dx_padded = np.zeros_like(x_padded)
        np.add.at(
            dx_padded,
            (slice(None), k, i, j),
            dcols,
        )
        if padding:
            return dx_padded[:, :, padding:-padding, padding:-padding]
        return dx_padded

    def grad_w(g):
        g2 = g.reshape(n, c_out, -1)
        dw_row = np.einsum("nop,nfp->of", g2, cols, optimize=True)
        return dw_row.reshape(weight.shape)

    parents = [(x, grad_x), (weight, grad_w)]
    if bias is not None:
        parents.append((bias, lambda g: g.sum(axis=(0, 2, 3))))
    return Tensor._from_op(out_data, parents, "conv2d")


# --------------------------------------------------------------- pooling
def max_pool2d(x: Tensor, kernel: int = 2, stride: int | None = None) -> Tensor:
    """Max pooling (NCHW) with non-overlapping or strided windows."""
    stride = stride or kernel
    n, c, h, w = x.shape
    if (h - kernel) % stride or (w - kernel) % stride:
        raise ValueError(
            f"pool geometry does not divide: {h}x{w}, kernel {kernel}, stride {stride}"
        )
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1

    if stride == kernel and h % kernel == 0 and w % kernel == 0:
        # Fast path: reshape into blocks.
        blocks = x.data.reshape(n, c, out_h, kernel, out_w, kernel)
        out_data = blocks.max(axis=(3, 5))

        def grad_fn(g):
            expanded = out_data[:, :, :, None, :, None]
            mask = blocks == expanded
            # Distribute among ties equally (rare with float activations).
            counts = mask.sum(axis=(3, 5), keepdims=True)
            g_exp = g[:, :, :, None, :, None] / counts
            return (mask * g_exp).reshape(n, c, h, w)

        return Tensor._from_op(out_data, [(x, grad_fn)], "max_pool2d")

    # General strided path via as_strided views.
    s = x.data.strides
    windows = np.lib.stride_tricks.as_strided(
        x.data,
        shape=(n, c, out_h, out_w, kernel, kernel),
        strides=(s[0], s[1], s[2] * stride, s[3] * stride, s[2], s[3]),
        writeable=False,
    )
    out_data = windows.max(axis=(4, 5))

    def grad_fn_strided(g):
        dx = np.zeros_like(x.data)
        flat = windows.reshape(n, c, out_h, out_w, -1)
        arg = flat.argmax(axis=-1)
        ky, kx = np.unravel_index(arg, (kernel, kernel))
        oy = np.arange(out_h)[None, None, :, None]
        ox = np.arange(out_w)[None, None, None, :]
        iy = oy * stride + ky
        ix = ox * stride + kx
        nn = np.arange(n)[:, None, None, None]
        cc = np.arange(c)[None, :, None, None]
        np.add.at(dx, (nn, cc, iy, ix), g)
        return dx

    return Tensor._from_op(out_data, [(x, grad_fn_strided)], "max_pool2d")


def avg_pool2d(x: Tensor, kernel: int = 2) -> Tensor:
    """Non-overlapping average pooling (NCHW)."""
    n, c, h, w = x.shape
    if h % kernel or w % kernel:
        raise ValueError(f"pool kernel {kernel} does not divide {h}x{w}")
    out_h, out_w = h // kernel, w // kernel
    blocks = x.data.reshape(n, c, out_h, kernel, out_w, kernel)
    out_data = blocks.mean(axis=(3, 5))

    def grad_fn(g):
        g_exp = np.broadcast_to(
            g[:, :, :, None, :, None] / (kernel * kernel),
            (n, c, out_h, kernel, out_w, kernel),
        )
        return g_exp.reshape(n, c, h, w)

    return Tensor._from_op(out_data, [(x, grad_fn)], "avg_pool2d")


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Mean over spatial dims: (N, C, H, W) -> (N, C)."""
    return x.mean(axis=(2, 3))


# --------------------------------------------------------------- dropout
def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool) -> Tensor:
    """Inverted dropout: scale kept units by 1/(1-p) during training."""
    if not (0.0 <= p < 1.0):
        raise ValueError(f"dropout p must be in [0,1), got {p}")
    if not training or p == 0.0:
        return x
    mask = (rng.random(x.shape) >= p) / (1.0 - p)

    return Tensor._from_op(x.data * mask, [(x, lambda g: g * mask)], "dropout")


__all__ = [
    "avg_pool2d",
    "conv2d",
    "dropout",
    "embedding",
    "global_avg_pool2d",
    "log_softmax",
    "max_pool2d",
    "softmax",
]
