"""Numerical gradient checking (central differences)."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autograd.tensor import Tensor


def grad_check(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-6,
    rtol: float = 1e-4,
    atol: float = 1e-6,
) -> bool:
    """Verify analytic gradients of ``fn`` against central differences.

    ``fn`` must map the given input tensors to a scalar Tensor. Raises
    ``AssertionError`` with a diagnostic on mismatch; returns True on
    success.

    Inputs should be float64 for the tolerances to be meaningful.
    """
    inputs = list(inputs)
    for t in inputs:
        if not t.requires_grad:
            raise ValueError("all inputs to grad_check must require grad")
        t.zero_grad()

    out = fn(*inputs)
    if out.size != 1:
        raise ValueError(f"fn must return a scalar, got shape {out.shape}")
    out.backward()

    for idx, t in enumerate(inputs):
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        numeric = np.zeros_like(t.data)
        flat = t.data.reshape(-1)
        num_flat = numeric.reshape(-1)
        for i in range(flat.size):
            orig = flat[i]
            flat[i] = orig + eps
            plus = fn(*inputs).item()
            flat[i] = orig - eps
            minus = fn(*inputs).item()
            flat[i] = orig
            num_flat[i] = (plus - minus) / (2 * eps)
        if not np.allclose(analytic, numeric, rtol=rtol, atol=atol):
            worst = np.abs(analytic - numeric).max()
            raise AssertionError(
                f"gradient mismatch on input {idx}: max abs error {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    return True


__all__ = ["grad_check"]
