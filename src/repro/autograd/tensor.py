"""The Tensor class: NumPy array + gradient tape.

Every differentiable operation records ``(parent, grad_fn)`` edges, where
``grad_fn`` maps the upstream gradient to this parent's gradient
contribution. ``backward()`` runs a topological sweep accumulating grads.

Broadcasting follows NumPy semantics; gradients of broadcast operands are
reduced back to the operand's shape (:func:`unbroadcast`).
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Optional, Sequence

import numpy as np

#: Global default dtype. float64 keeps gradient checks tight; training code
#: is precision-insensitive at the scales used here.
DEFAULT_DTYPE = np.float64

_GRAD_ENABLED = [True]


@contextlib.contextmanager
def no_grad():
    """Context manager disabling tape recording (evaluation passes)."""
    _GRAD_ENABLED.append(False)
    try:
        yield
    finally:
        _GRAD_ENABLED.pop()


def grad_enabled() -> bool:
    """Whether operations currently record the tape."""
    return _GRAD_ENABLED[-1]


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing broadcast axes."""
    if grad.shape == shape:
        return grad
    # Sum leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum axes that were 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        raise TypeError("expected raw data, got a Tensor")
    return np.asarray(value, dtype=dtype or DEFAULT_DTYPE)


class Tensor:
    """An n-d array that participates in reverse-mode differentiation.

    Parameters
    ----------
    data:
        Anything ``np.asarray`` accepts.
    requires_grad:
        Leaf tensors with ``requires_grad=True`` accumulate into ``.grad``.
    """

    __slots__ = ("data", "requires_grad", "grad", "_parents", "_op_name")
    __array_priority__ = 100  # make ndarray defer to Tensor in mixed ops

    def __init__(self, data, requires_grad: bool = False) -> None:
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad) and grad_enabled()
        self.grad: Optional[np.ndarray] = None
        self._parents: tuple[tuple["Tensor", Callable], ...] = ()
        self._op_name = "leaf"

    # -- construction -------------------------------------------------------
    @classmethod
    def _from_op(
        cls,
        data: np.ndarray,
        parents: Sequence[tuple["Tensor", Callable]],
        op_name: str,
    ) -> "Tensor":
        out = cls.__new__(cls)
        out.data = data
        out.grad = None
        recorded = tuple((p, fn) for p, fn in parents if p.requires_grad)
        if grad_enabled() and recorded:
            out.requires_grad = True
            out._parents = recorded
            out._op_name = op_name
        else:
            out.requires_grad = False
            out._parents = ()
            out._op_name = op_name
        return out

    # -- basic properties ---------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """The underlying array (no copy). Mutating it is on you."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """A new leaf sharing this tensor's data, cut from the tape."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, op={self._op_name}{grad_flag})"

    def __len__(self) -> int:
        return len(self.data)

    # -- backward -----------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Accumulate gradients of this tensor w.r.t. all tape leaves.

        ``grad`` defaults to ones (i.e. this must be a scalar unless you
        pass an explicit upstream gradient).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError(
                    f"backward() without an explicit gradient requires a "
                    f"scalar output, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.shape:
                raise ValueError(
                    f"gradient shape {grad.shape} != tensor shape {self.shape}"
                )

        # Topological order (iterative DFS — graphs can be deep).
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent, _fn in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if not node._parents:
                # Leaf: accumulate into .grad
                if node.grad is None:
                    node.grad = node_grad.copy()
                else:
                    node.grad += node_grad
                continue
            for parent, fn in node._parents:
                contribution = fn(node_grad)
                existing = grads.get(id(parent))
                if existing is None:
                    grads[id(parent)] = contribution
                else:
                    existing += contribution

    # -- arithmetic ---------------------------------------------------------
    @staticmethod
    def _coerce(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data
        return Tensor._from_op(
            out_data,
            [
                (self, lambda g: unbroadcast(g, self.shape)),
                (other, lambda g: unbroadcast(g, other.shape)),
            ],
            "add",
        )

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        return Tensor._from_op(-self.data, [(self, lambda g: -g)], "neg")

    def __sub__(self, other) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data
        return Tensor._from_op(
            out_data,
            [
                (self, lambda g: unbroadcast(g * other.data, self.shape)),
                (other, lambda g: unbroadcast(g * self.data, other.shape)),
            ],
            "mul",
        )

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data
        return Tensor._from_op(
            out_data,
            [
                (self, lambda g: unbroadcast(g / other.data, self.shape)),
                (
                    other,
                    lambda g: unbroadcast(
                        -g * self.data / (other.data**2), other.shape
                    ),
                ),
            ],
            "div",
        )

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent
        return Tensor._from_op(
            out_data,
            [(self, lambda g: g * exponent * self.data ** (exponent - 1))],
            "pow",
        )

    def __matmul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data @ other.data

        def grad_a(g):
            ga = g @ np.swapaxes(other.data, -1, -2)
            return unbroadcast(ga, self.shape)

        def grad_b(g):
            gb = np.swapaxes(self.data, -1, -2) @ g
            return unbroadcast(gb, other.shape)

        return Tensor._from_op(out_data, [(self, grad_a), (other, grad_b)], "matmul")

    # -- elementwise math ----------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)
        return Tensor._from_op(out_data, [(self, lambda g: g * out_data)], "exp")

    def log(self) -> "Tensor":
        return Tensor._from_op(
            np.log(self.data), [(self, lambda g: g / self.data)], "log"
        )

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)
        return Tensor._from_op(
            out_data, [(self, lambda g: g / (2.0 * out_data))], "sqrt"
        )

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)
        return Tensor._from_op(
            out_data, [(self, lambda g: g * (1.0 - out_data**2))], "tanh"
        )

    def relu(self) -> "Tensor":
        mask = self.data > 0
        return Tensor._from_op(
            self.data * mask, [(self, lambda g: g * mask)], "relu"
        )

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))
        return Tensor._from_op(
            out_data,
            [(self, lambda g: g * out_data * (1.0 - out_data))],
            "sigmoid",
        )

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        return Tensor._from_op(
            np.abs(self.data), [(self, lambda g: g * sign)], "abs"
        )

    # -- reductions -----------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def grad_fn(g):
            if axis is None:
                return np.broadcast_to(g, self.shape).copy()
            g_exp = g if keepdims else np.expand_dims(g, axis)
            return np.broadcast_to(g_exp, self.shape).copy()

        return Tensor._from_op(out_data, [(self, grad_fn)], "sum")

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = (axis,) if np.isscalar(axis) else tuple(axis)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def grad_fn(g):
            if axis is None:
                mask = (self.data == self.data.max()).astype(self.data.dtype)
                mask /= mask.sum()
                return mask * g
            g_exp = g if keepdims else np.expand_dims(g, axis)
            out_exp = out_data if keepdims else np.expand_dims(out_data, axis)
            mask = (self.data == out_exp).astype(self.data.dtype)
            mask /= mask.sum(axis=axis, keepdims=True)
            return mask * g_exp

        return Tensor._from_op(out_data, [(self, grad_fn)], "max")

    # -- shape manipulation ----------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        return Tensor._from_op(
            out_data, [(self, lambda g: g.reshape(self.shape))], "reshape"
        )

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = tuple(np.argsort(axes))
        out_data = self.data.transpose(axes)
        return Tensor._from_op(
            out_data, [(self, lambda g: g.transpose(inverse))], "transpose"
        )

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def grad_fn(g):
            full = np.zeros_like(self.data)
            np.add.at(full, index, g)
            return full

        return Tensor._from_op(out_data, [(self, grad_fn)], "getitem")

    # -- comparisons (non-differentiable, return arrays) ----------------------
    def argmax(self, axis=None) -> np.ndarray:
        return self.data.argmax(axis=axis)


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable concatenation along ``axis``."""
    tensors = list(tensors)
    if not tensors:
        raise ValueError("concatenate() needs at least one tensor")
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    parents = []
    offset = 0
    for t in tensors:
        width = t.shape[axis]
        slicer = [slice(None)] * out_data.ndim
        slicer[axis] = slice(offset, offset + width)
        slicer = tuple(slicer)
        parents.append((t, lambda g, s=slicer: g[s]))
        offset += width
    return Tensor._from_op(out_data, parents, "concatenate")


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable stacking along a new ``axis``."""
    tensors = list(tensors)
    out_data = np.stack([t.data for t in tensors], axis=axis)
    parents = []
    for i, t in enumerate(tensors):
        slicer = [slice(None)] * out_data.ndim
        slicer[axis] = i
        slicer = tuple(slicer)
        parents.append((t, lambda g, s=slicer: g[s]))
    return Tensor._from_op(out_data, parents, "stack")


__all__ = [
    "DEFAULT_DTYPE",
    "Tensor",
    "concatenate",
    "grad_enabled",
    "no_grad",
    "stack",
    "unbroadcast",
]
