"""repro.check — runtime invariant monitors + differential replay.

Two complementary correctness layers over the simulator:

* :mod:`repro.check.monitors` — opt-in runtime invariant monitors wrapped
  around a live trainer's event dispatch (netsim byte conservation, PS
  deposit/apply ledger, GIB partition + Eq. 5 budget chain, SSP/DSSP
  staleness bounds, flat-arena aliasing parity). Strict mode raises at the
  offending event; collect mode reports.
* :mod:`repro.check.replay` — a differential-replay harness that runs two
  supposedly-equivalent configurations (flat arena on/off, resumed vs.
  uninterrupted, any A/B pair) and bisects their normalized event streams
  to the first divergent event, with span context from :mod:`repro.obs`.

See ``docs/invariants.md`` and ``python -m repro check --help``.
"""

from repro.check.monitors import (
    ArenaParityMonitor,
    CheckReport,
    DEFAULT_MONITORS,
    GIBInvariantMonitor,
    ICSInflightMonitor,
    InvariantChecker,
    InvariantViolation,
    MONITOR_REGISTRY,
    Monitor,
    NetworkConservationMonitor,
    PSLedgerMonitor,
    QuorumConsistencyMonitor,
    StalenessBoundMonitor,
    run_checked,
)
from repro.check.replay import (
    Divergence,
    ReplayEvent,
    ReplayReport,
    STREAM_SCHEMA,
    capture_stream,
    differential_replay,
    dump_stream,
    first_divergence,
    load_stream,
    replay_fairshare,
    replay_flat_arena,
    replay_resume,
    stream_digest,
    span_context,
)

__all__ = [
    "ArenaParityMonitor",
    "CheckReport",
    "DEFAULT_MONITORS",
    "Divergence",
    "GIBInvariantMonitor",
    "ICSInflightMonitor",
    "InvariantChecker",
    "InvariantViolation",
    "MONITOR_REGISTRY",
    "Monitor",
    "NetworkConservationMonitor",
    "PSLedgerMonitor",
    "QuorumConsistencyMonitor",
    "ReplayEvent",
    "ReplayReport",
    "STREAM_SCHEMA",
    "StalenessBoundMonitor",
    "capture_stream",
    "differential_replay",
    "dump_stream",
    "first_divergence",
    "load_stream",
    "replay_fairshare",
    "replay_flat_arena",
    "replay_resume",
    "stream_digest",
    "run_checked",
    "span_context",
]
