"""Runtime invariant monitors (``repro.check``).

Four subsystems (faults, obs, flat-arena perf, elastic ckpt) mutate shared
PS/worker/network state concurrently, and every correctness claim in the
paper — GIB partitions (§4.2), the S(G^u) ≤ U_max ≤ 0.8·model-bytes chain
(Eq. 5), the §4.3 degradation theorems, SSP/DSSP staleness bounds — was
enforced only implicitly. The monitors here turn those claims into cheap,
opt-in runtime checks that fire *at the simulation event where the
invariant breaks* instead of surfacing as downstream accuracy drift.

Mechanics: a monitor instruments the live objects a trainer owns
(``Network.transfer``/``_drain``, ``ParameterServer.accumulate``/
``apply_average``, ``OSP._refresh_gib``/``_close_rs_round``,
``SSP.before_compute``) by wrapping the *instance* attribute. The hooks
run synchronously inside the kernel's event dispatch for that object, are
strictly passive (no simulation events, timeouts or processes — the
virtual timeline of a checked run is bit-identical to an unchecked one),
and cost nothing when no checker is attached.

Usage::

    trainer = DistributedTrainer(spec, plan, engine, OSP())
    result, report = run_checked(trainer)          # strict: raises on
    assert report.ok                               # the first violation

or via the CLI: ``python -m repro check --sync osp``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro.core.osp import OSP
from repro.netsim.network import _BYTE_EPS
from repro.nn.arena import pack_plane
from repro.sync.ssp import SSP


class InvariantViolation(AssertionError):
    """A monitor's invariant failed, with event-time context attached."""

    def __init__(self, monitor: str, message: str, *, time=None, context=None):
        self.monitor = monitor
        self.time = time
        self.context = dict(context or {})
        stamp = "" if time is None else f" at t={time:.6f}"
        super().__init__(f"[{monitor}]{stamp} {message}")


def _wrap(obj, method_name: str, around: Callable) -> None:
    """Replace ``obj.method_name`` with ``around(orig, *args, **kwargs)``.

    Wraps the *instance* attribute, so internal ``self.method(...)`` calls
    go through the wrapper too, and other instances stay untouched.
    """
    orig = getattr(obj, method_name)

    def wrapper(*args, **kwargs):
        return around(orig, *args, **kwargs)

    wrapper.__wrapped__ = orig
    setattr(obj, method_name, wrapper)


class Monitor:
    """Base class: one named invariant, a check counter, and violations."""

    #: registry key; also the prefix shown in violation messages.
    name = "abstract"
    #: one-line cost note (documented in docs/invariants.md).
    cost = ""

    def __init__(self) -> None:
        self.checks = 0
        self.violations: list[InvariantViolation] = []
        self._checker: Optional["InvariantChecker"] = None

    def attach(self, checker: "InvariantChecker", trainer) -> bool:
        """Instrument ``trainer``; return False when not applicable."""
        raise NotImplementedError

    def finish(self, trainer) -> None:
        """End-of-run checks (after ``trainer.run()`` returned)."""

    def fail(self, message: str, **context) -> None:
        violation = InvariantViolation(
            self.name, message, time=self._checker.now, context=context
        )
        self.violations.append(violation)
        self._checker.on_violation(violation)


class NetworkConservationMonitor(Monitor):
    """Netsim byte conservation: flow bytes in == bytes carried on links.

    Every tracked flow contributes ``(effective − remaining) · len(route)``
    bytes (effective = size × (1 + loss at start), sampled exactly as the
    scheduler samples it), and the sum must equal the links' cumulative
    ``bytes_carried`` at *every* drain — bandwidth-dip/flap/loss-burst
    windows included, since faults change rates, never conservation.
    Tolerance covers the ``_BYTE_EPS`` completion residue per flow plus
    float accumulation drift.
    """

    name = "net.conservation"
    cost = "O(active flows) per network drain"

    def attach(self, checker, trainer) -> bool:
        net = trainer.network
        if net._active:  # attached mid-run: history is unreconstructable
            return False
        self._net = net
        self._flows: dict[int, tuple[float, int]] = {}  # fid -> (eff, links)
        self._baseline = sum(l.bytes_carried for l in net.topology.links)
        _wrap(net, "transfer", self._on_transfer)
        _wrap(net, "_drain", self._on_drain)
        return True

    def _on_transfer(self, orig, src, dst, size, tag=None, **flow_kwargs):
        net = self._net
        fid = net._next_fid
        done = orig(src, dst, size, tag=tag, **flow_kwargs)
        effective = float(size) * (1.0 + net.topology.route_loss(src, dst))
        route = net.topology.route(src, dst)
        if route and effective > _BYTE_EPS:
            self._flows[fid] = (effective, len(route))
        return done

    def _on_drain(self, orig):
        orig()
        self._verify()

    def _verify(self) -> None:
        net = self._net
        carried = sum(l.bytes_carried for l in net.topology.links) - self._baseline
        expected = 0.0
        eps_budget = 0.0
        for fid, (effective, n_links) in self._flows.items():
            flow = net._active.get(fid)
            if flow is None:  # finished: credited up to the sub-eps residue
                expected += effective * n_links
                eps_budget += _BYTE_EPS * n_links
            else:
                expected += (effective - flow.remaining) * n_links
        tol = 1e-3 + eps_budget + 1e-9 * max(abs(carried), abs(expected))
        self.checks += 1
        if abs(carried - expected) > tol:
            self.fail(
                f"link bytes_carried {carried:.3f} != flow bytes drained "
                f"{expected:.3f} (|diff| {abs(carried - expected):.3f} > "
                f"tol {tol:.3f})",
                carried=carried,
                expected=expected,
            )

    def finish(self, trainer) -> None:
        self._verify()


class PSLedgerMonitor(Monitor):
    """PS ``accumulate``/``apply_average`` pairing and no-lost-deposit.

    A shadow ledger mirrors every bucket: duplicate deposits, applies on
    buckets with no observed deposits, and ledger/PS count desyncs fail at
    the call. At run end, any deposit that never reached an apply is a lost
    gradient — enforced only on clean runs (no crashes, no degraded-quorum
    timeouts, no elastic leaves), since those legitimately strand late
    deposits; see docs/invariants.md.
    """

    name = "ps.ledger"
    cost = "O(1) per deposit/apply"

    def attach(self, checker, trainer) -> bool:
        ps = trainer.ps
        self._ps = ps
        self._trainer = trainer
        self._deposits: dict[str, set[int]] = {}
        self._applies = 0
        _wrap(ps, "accumulate", self._on_accumulate)
        _wrap(ps, "apply_average", self._on_apply)
        _wrap(ps, "apply_immediate", self._on_apply_immediate)
        return True

    def _on_accumulate(self, orig, bucket, worker, grads):
        self.checks += 1
        seen = self._deposits.setdefault(bucket, set())
        if worker in seen:
            self.fail(
                f"worker {worker} deposited twice in bucket {bucket!r}",
                bucket=bucket,
                worker=worker,
            )
        count = orig(bucket, worker, grads)
        seen.add(worker)
        if count != len(seen):
            self.fail(
                f"bucket {bucket!r}: PS reports {count} deposits, ledger "
                f"saw {len(seen)}",
                bucket=bucket,
            )
        return count

    def _on_apply(self, orig, bucket):
        self.checks += 1
        seen = self._deposits.get(bucket, set())
        if not seen:
            self.fail(
                f"apply_average on bucket {bucket!r} with no observed "
                "deposits",
                bucket=bucket,
            )
        elif self._ps.pending(bucket) != len(seen):
            self.fail(
                f"bucket {bucket!r}: PS holds {self._ps.pending(bucket)} "
                f"deposits, ledger saw {len(seen)}",
                bucket=bucket,
            )
        result = orig(bucket)
        self._deposits.pop(bucket, None)
        self._applies += 1
        return result

    def _on_apply_immediate(self, orig, worker, grads):
        self.checks += 1
        self._applies += 1
        return orig(worker, grads)

    def finish(self, trainer) -> None:
        stranded = {b: sorted(s) for b, s in self._deposits.items() if s}
        if not stranded:
            return
        rec = trainer.recorder
        excusable = (
            rec.counter("faults.worker_crash")
            or rec.counter("osp.quorum_timeout")
            or rec.counter("elastic.worker_leave")
        )
        if excusable:
            return  # late arrivals after a degraded/shrunk round: by design
        self.checks += 1
        self.fail(
            f"lost deposits at run end: {stranded} (no crash/timeout/leave "
            "to excuse them)",
            stranded=stranded,
        )


class GIBInvariantMonitor(Monitor):
    """GIB partition + Eq. 5 budget-chain invariants for OSP.

    At every GIB *build* (``_refresh_gib``): RS ∪ ICS covers exactly the
    model's layers, the two sets are disjoint, and the deferred bytes obey
    S(G^u) ≤ budget ≤ U_max ≤ ``max_model_fraction`` · model bytes. At
    every round close (``_close_rs_round``), the adopted bitmap is
    re-validated — the budget is *not* rechecked there, because a
    membership change may legally clip it after a GIB was staged (the
    bitmap rebuilds at the next PGP pass). Forced modes additionally pin
    the §4.3 degenerate partitions (all-RS / all-ICS).
    """

    name = "osp.gib"
    cost = "O(layers) per PGP refresh / RS round close"

    def attach(self, checker, trainer) -> bool:
        sync = trainer.sync_model
        if not isinstance(sync, OSP):
            return False
        self._sync = sync
        self._engine = trainer.engine
        self._layers = frozenset(trainer.engine.splitter.layers)
        _wrap(sync, "_refresh_gib", self._on_refresh)
        _wrap(sync, "_close_rs_round", self._on_close)
        return True

    def _check_partition(self, gib, where: str) -> None:
        important = set(gib.important_layers)
        unimportant = set(gib.unimportant_layers)
        overlap = important & unimportant
        if overlap:
            self.fail(
                f"{where}: RS ∩ ICS not empty: {sorted(overlap)}",
                overlap=sorted(overlap),
            )
        union = important | unimportant
        if union != self._layers:
            missing = sorted(self._layers - union)
            foreign = sorted(union - self._layers)
            self.fail(
                f"{where}: RS ∪ ICS != model layers "
                f"(missing {missing}, foreign {foreign})",
                missing=missing,
                foreign=foreign,
            )

    def _on_refresh(self, orig, ctx):
        orig(ctx)
        gib = self._sync._pending_gib
        if gib is None:  # forced mode / BSP fallback: nothing staged
            return
        self.checks += 1
        self._check_partition(gib, "staged GIB")
        deferred = self._engine.bytes_of_layers(gib.unimportant_layers)
        budget = self._sync.current_budget
        u_max = self._sync.u_max
        cap = self._sync.max_model_fraction * self._engine.model_bytes
        eps = 1e-6 + 1e-9 * self._engine.model_bytes
        if deferred > budget + eps:
            self.fail(
                f"S(G^u) {deferred:.0f} B exceeds budget {budget:.0f} B",
                deferred=deferred,
                budget=budget,
            )
        if budget > u_max + eps:
            self.fail(
                f"budget {budget:.0f} B exceeds Eq. 5 U_max {u_max:.0f} B",
                budget=budget,
                u_max=u_max,
            )
        if u_max > cap + eps:
            self.fail(
                f"U_max {u_max:.0f} B exceeds "
                f"{self._sync.max_model_fraction:.0%} of model bytes "
                f"({cap:.0f} B)",
                u_max=u_max,
                cap=cap,
            )

    def _on_close(self, orig, ctx, iteration, bucket):
        orig(ctx, iteration, bucket)
        self.checks += 1
        gib = self._sync._gib
        self._check_partition(gib, f"adopted GIB (iteration {iteration})")
        n_layers = len(self._layers)
        if self._sync.force == "bsp" and gib.n_important != n_layers:
            self.fail(
                f"force='bsp' but GIB defers "
                f"{n_layers - gib.n_important} layers (§4.3 all-RS ≡ BSP)",
                iteration=iteration,
            )
        if self._sync.force == "asp" and gib.n_important != 0:
            self.fail(
                f"force='asp' but GIB keeps {gib.n_important} layers in RS "
                "(§4.3 all-ICS ≡ ASP)",
                iteration=iteration,
            )


class StalenessBoundMonitor(Monitor):
    """SSP/DSSP: ``iteration − min(progress) ≤ staleness`` at compute start.

    Asserted synchronously after ``before_compute``'s wait completes (no
    yields in between, so no other worker can advance the clock before the
    check) against the *current* bound — DSSP's adaptation included.
    """

    name = "sync.staleness"
    cost = "O(workers) per compute start"

    def attach(self, checker, trainer) -> bool:
        sync = trainer.sync_model
        if not isinstance(sync, SSP):  # DSSP subclasses SSP
            return False
        self._sync = sync
        monitor = self
        orig = sync.before_compute

        def wrapped(ctx, worker, iteration):
            yield from orig(ctx, worker, iteration)
            monitor.checks += 1
            # Alive-only floor, mirroring the bound SSP actually enforces —
            # a crashed worker's frozen progress is not a legal gate.
            lag = iteration - monitor._sync._floor(ctx)
            bound = monitor._sync.staleness
            if lag > bound:
                monitor.fail(
                    f"worker {worker} starts iteration {iteration} with lag "
                    f"{lag} > staleness bound {bound}",
                    worker=worker,
                    iteration=iteration,
                    lag=lag,
                    bound=bound,
                )

        sync.before_compute = wrapped
        return True


class QuorumConsistencyMonitor(Monitor):
    """Elastic membership schedule vs live quorum sizes (ROADMAP item).

    Replays the spec's membership and crash/restart schedules into the
    worker set that *should* be alive when each epoch completes, and at
    every epoch boundary asserts:

    * the context's live set matches the schedule (crash/leave events
      dated the *next* epoch may legitimately have fired already — a fast
      worker reaches its epoch top before stragglers finish the previous
      epoch — so those are tolerated as early departures);
    * every :class:`QuorumBarrier` the context handed out is sized
      ``max(1, |alive|)`` — the resize ``_notify_membership`` promises.

    For OSP it additionally checks, at every RS round close, that the
    frozen ICS quorum (the deposit count the ICS stage will wait for)
    never exceeds the live worker count at freeze time.
    """

    name = "elastic.quorum"
    cost = "O(workers) per epoch boundary / RS round close"

    def attach(self, checker, trainer) -> bool:
        spec = trainer.spec
        crashes = tuple(spec.faults.crash_events) if spec.faults else ()
        if spec.membership is None and not crashes:
            return False
        if trainer.ctx.start_epoch > 0:
            return False  # resumed run: schedule prefix already consumed
        self._ctx = trainer.ctx
        self._spec = spec
        self._joins = dict(spec.membership.join_epochs) if spec.membership else {}
        self._leaves = dict(spec.membership.leave_epochs) if spec.membership else {}
        self._crashes = sorted(crashes, key=lambda ev: ev.before_epoch)
        trainer.ctx.epoch_end_hooks.append(self._on_epoch_end)
        sync = trainer.sync_model
        if isinstance(sync, OSP):
            self._sync = sync
            _wrap(sync, "_close_rs_round", self._on_close_rs_round)
        return True

    def _expected_alive(self, epoch: int) -> set[int]:
        """Worker set implied by the schedules once ``epoch`` completed."""
        alive = set(range(self._spec.n_workers)) - set(self._joins)
        for worker, at in self._joins.items():
            if at <= epoch:
                alive.add(worker)
        for worker, at in self._leaves.items():
            if at <= epoch:
                alive.discard(worker)
        for ev in self._crashes:  # in before_epoch order: crash then revive
            if ev.before_epoch <= epoch:
                if ev.restart_epoch is not None and ev.restart_epoch <= epoch:
                    alive.add(ev.worker)
                else:
                    alive.discard(ev.worker)
        return alive

    def _on_epoch_end(self, epoch: int, train_loss: float, metric: float) -> None:
        ctx = self._ctx
        if ctx.stopped:
            return  # early stop cuts the schedule short: sets legally differ
        self.checks += 1
        expected = self._expected_alive(epoch)
        # Next-epoch crash/leave events may already have fired (see class
        # docstring); next-epoch joins cannot — admission waits on this
        # epoch's completion event, which succeeds after these hooks.
        early = {ev.worker for ev in self._crashes if ev.before_epoch == epoch + 1}
        early |= {w for w, at in self._leaves.items() if at == epoch + 1}
        alive = set(ctx._alive)
        if not (expected - early <= alive <= expected):
            self.fail(
                f"epoch {epoch}: live workers {sorted(alive)} do not match "
                f"membership schedule (expected {sorted(expected)}, "
                f"tolerating early departure of {sorted(early)})",
                epoch=epoch,
                alive=sorted(alive),
                expected=sorted(expected),
            )
        want_parties = max(1, len(alive))
        for i, barrier in enumerate(ctx._quorum_barriers):
            if barrier.parties != want_parties:
                self.fail(
                    f"epoch {epoch}: quorum barrier #{i} sized "
                    f"{barrier.parties}, but {len(alive)} workers are alive "
                    f"(want {want_parties})",
                    epoch=epoch,
                    barrier=i,
                    parties=barrier.parties,
                    alive=len(alive),
                )

    def _on_close_rs_round(self, orig, ctx, iteration, bucket):
        orig(ctx, iteration, bucket)
        self.checks += 1
        frozen = self._sync._ics_expected.get(iteration)
        n_alive = len(ctx._alive)
        if frozen is not None and frozen > n_alive:
            self.fail(
                f"iteration {iteration}: frozen ICS quorum {frozen} exceeds "
                f"{n_alive} live workers",
                iteration=iteration,
                frozen=frozen,
                alive=n_alive,
            )


class ArenaParityMonitor(Monitor):
    """Flat-arena vs. legacy parameter-plane checksum parity.

    With ``REPRO_FLAT_ARENA`` enabled every PS parameter's ``.data`` must
    stay a live view into the contiguous plane (``np.shares_memory``) and
    packing the per-name dict must reproduce the plane bit-for-bit — a
    parameter silently detached by an accidental rebind (``p.data = new``)
    would make the dict and plane code paths diverge. Checked at every
    epoch end and at run end. Cross-*mode* parity (arena on vs. off) is the
    differential-replay harness's job (:func:`repro.check.replay_flat_arena`).
    """

    name = "ps.arena_parity"
    cost = "O(model bytes) per epoch end"

    def attach(self, checker, trainer) -> bool:
        if trainer.ps.arena is None or not trainer.ps.numeric:
            return False
        self._ps = trainer.ps
        trainer.ctx.epoch_end_hooks.append(self._on_epoch_end)
        return True

    def _on_epoch_end(self, epoch, train_loss, metric) -> None:
        self._verify()

    def _verify(self) -> None:
        ps = self._ps
        self.checks += 1
        for name, param in ps._params.items():
            if not np.shares_memory(param.data, ps.arena.flat):
                self.fail(
                    f"parameter {name!r} detached from the arena plane",
                    param=name,
                )
                return
        packed = pack_plane(
            ps.arena.layout, {n: p.data for n, p in ps._params.items()}
        )
        if not np.array_equal(packed, ps.arena.flat):
            bad = int(np.flatnonzero(packed != ps.arena.flat)[0])
            self.fail(
                "arena plane != packed parameter dict "
                f"(first divergent element {bad})",
                element=bad,
            )

    def finish(self, trainer) -> None:
        self._verify()


class ICSInflightMonitor(Monitor):
    """OSP ICS in-flight accounting: netsim vs gauge vs protocol state.

    Three views of "unimportant-gradient bytes on the wire" must agree at
    every network drain:

    * the netsim ground truth — payload sizes of active ``ics-push`` flows;
    * the traced ``osp.inflight_ics_bytes`` gauge (what dashboards sample);
    * OSP's own ``_ics_unarrived`` ledger (what checkpoint discard policy
      and ``worker_signals`` report).

    The gauge/ledger pair must match exactly (both are updated in the same
    synchronous stretch of the ICS push process). The netsim view is a
    *lower* bound on the gauge rather than an equality: the gauge is bumped
    just before ``transfer()`` installs the flow, and stays up until the
    pushing process resumes after the flow completed — both windows contain
    drains where netsim legitimately trails. At run end all three must be
    zero, except after crashes / quorum timeouts / elastic leaves, which
    legally strand an in-flight share (same excuse list as ``ps.ledger``).
    """

    name = "osp.ics_inflight"
    cost = "O(active flows) per network drain"

    def attach(self, checker, trainer) -> bool:
        sync = trainer.sync_model
        if not isinstance(sync, OSP) or not trainer.env.tracer:
            return False
        self._sync = sync
        self._net = trainer.network
        self._tracer = trainer.env.tracer
        _wrap(self._net, "_drain", self._on_drain)
        return True

    def _on_drain(self, orig):
        orig()
        self._verify()

    def _verify(self) -> None:
        self.checks += 1
        gauge = self._tracer.gauge_value("osp.inflight_ics_bytes")
        ledger = sum(self._sync._ics_unarrived.values())
        wire = sum(
            f.size
            for f in self._net._active.values()
            if isinstance(f.tag, tuple) and f.tag and f.tag[0] == "ics-push"
        )
        eps = 1e-6 + 1e-9 * max(gauge, ledger, wire)
        if abs(gauge - ledger) > eps:
            self.fail(
                f"gauge osp.inflight_ics_bytes {gauge:.3f} B != OSP "
                f"unarrived ledger {ledger:.3f} B",
                gauge=gauge,
                ledger=ledger,
            )
        if wire > gauge + eps:
            self.fail(
                f"netsim carries {wire:.3f} B of active ics-push payload "
                f"but gauge claims only {gauge:.3f} B in flight",
                wire=wire,
                gauge=gauge,
            )

    def finish(self, trainer) -> None:
        rec = trainer.recorder
        excusable = (
            rec.counter("faults.worker_crash")
            or rec.counter("osp.quorum_timeout")
            or rec.counter("elastic.worker_leave")
        )
        if excusable:
            return
        self.checks += 1
        gauge = self._tracer.gauge_value("osp.inflight_ics_bytes")
        ledger = sum(self._sync._ics_unarrived.values())
        if abs(gauge) > 1e-6 or abs(ledger) > 1e-6:
            self.fail(
                f"ICS in-flight not drained at run end: gauge {gauge:.3f} B, "
                f"ledger {ledger:.3f} B (no crash/timeout/leave to excuse)",
                gauge=gauge,
                ledger=ledger,
            )


DEFAULT_MONITORS: tuple[type, ...] = (
    NetworkConservationMonitor,
    PSLedgerMonitor,
    GIBInvariantMonitor,
    StalenessBoundMonitor,
    QuorumConsistencyMonitor,
    ArenaParityMonitor,
    ICSInflightMonitor,
)

MONITOR_REGISTRY: dict[str, type] = {m.name: m for m in DEFAULT_MONITORS}


@dataclass(frozen=True)
class CheckReport:
    """Per-monitor check/violation counts after a checked run."""

    monitors: dict[str, tuple[int, int]]  # name -> (checks, violations)
    skipped: tuple[str, ...]  # monitors not applicable to this trainer
    violations: tuple[InvariantViolation, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def total_checks(self) -> int:
        return sum(c for c, _v in self.monitors.values())

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "total_checks": self.total_checks,
            "monitors": {
                name: {"checks": c, "violations": v}
                for name, (c, v) in self.monitors.items()
            },
            "skipped": list(self.skipped),
            "violations": [str(v) for v in self.violations],
        }

    def render(self) -> str:
        lines = ["invariant monitors:"]
        for name, (checks, violations) in sorted(self.monitors.items()):
            verdict = "OK" if violations == 0 else f"{violations} VIOLATIONS"
            lines.append(f"  {name:<18} {checks:>8} checks  {verdict}")
        for name in self.skipped:
            lines.append(f"  {name:<18} {'-':>8}        not applicable")
        for violation in self.violations:
            lines.append(f"  !! {violation}")
        return "\n".join(lines)


class InvariantChecker:
    """Attach a set of monitors to a constructed (un-run) trainer.

    ``strict=True`` (default) raises :class:`InvariantViolation` at the
    offending event — the simulation stops with a stack into the exact
    dispatch that broke the invariant. ``strict=False`` collects
    violations and keeps running (the CLI's reporting mode).
    """

    def __init__(self, trainer, monitors: Optional[Sequence] = None, strict: bool = True):
        self.trainer = trainer
        self.strict = strict
        self.violations: list[InvariantViolation] = []
        self.monitors: list[Monitor] = []
        self.skipped: list[str] = []
        for factory in DEFAULT_MONITORS if monitors is None else monitors:
            monitor = factory() if isinstance(factory, type) else factory
            monitor._checker = self
            if monitor.attach(self, trainer):
                self.monitors.append(monitor)
            else:
                self.skipped.append(monitor.name)

    @property
    def now(self) -> float:
        return self.trainer.env.now

    @property
    def ok(self) -> bool:
        return not self.violations

    def on_violation(self, violation: InvariantViolation) -> None:
        self.violations.append(violation)
        self.trainer.recorder.incr("check.violation")
        self.trainer.ctx.trace.instant(
            "check.violation",
            actor="check",
            track="check",
            monitor=violation.monitor,
            message=str(violation),
        )
        if self.strict:
            raise violation

    def finish(self) -> CheckReport:
        """Run end-of-run checks and produce the report."""
        for monitor in self.monitors:
            monitor.finish(self.trainer)
        total = sum(m.checks for m in self.monitors)
        if total:
            self.trainer.recorder.incr("check.events_checked", total)
        return self.report()

    def report(self) -> CheckReport:
        return CheckReport(
            monitors={
                m.name: (m.checks, len(m.violations)) for m in self.monitors
            },
            skipped=tuple(self.skipped),
            violations=tuple(self.violations),
        )


def run_checked(trainer, monitors: Optional[Sequence] = None, strict: bool = True):
    """Attach monitors, run the trainer, return (result, report)."""
    checker = InvariantChecker(trainer, monitors=monitors, strict=strict)
    result = trainer.run()
    return result, checker.finish()


__all__ = [
    "ArenaParityMonitor",
    "CheckReport",
    "DEFAULT_MONITORS",
    "GIBInvariantMonitor",
    "ICSInflightMonitor",
    "InvariantChecker",
    "InvariantViolation",
    "MONITOR_REGISTRY",
    "Monitor",
    "NetworkConservationMonitor",
    "PSLedgerMonitor",
    "StalenessBoundMonitor",
    "run_checked",
]
