"""Differential-replay harness: run two configurations, diff the runs.

The simulator's strongest correctness lever is determinism: two
configurations that *claim* equivalence — the flat-arena hot path vs. the
legacy dict path (``REPRO_FLAT_ARENA=0/1``), a resumed-from-checkpoint run
vs. an uninterrupted one, a refactored sync model vs. its baseline — must
produce identical event streams. This module captures a normalized stream
per run (iteration records in recorder order, epoch evaluations, counters,
a SHA-256 digest of the final parameter plane, the final wall time), and
on mismatch *bisects* the streams by prefix digest to localize the first
divergent event, decorating it with the covering span context from
``repro.obs`` when the run was traced.

Bisection matters: a fig6b-scale run records thousands of events and a
single float divergence early on cascades into everything after it —
``first_divergence`` needs O(log n) prefix-digest probes to pin the first
one instead of eyeballing two dumps.
"""

from __future__ import annotations

import hashlib
import json
import os
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Sequence


@dataclass(frozen=True)
class ReplayEvent:
    """One normalized, comparable record of a run's event stream."""

    kind: str  # "iteration" | "epoch" | "counter" | "params" | "end"
    key: tuple
    value: tuple

    def render(self) -> str:
        key = ":".join(str(k) for k in self.key)
        vals = ", ".join(
            f"{v:.9g}" if isinstance(v, float) else str(v) for v in self.value
        )
        return f"{self.kind}[{key}] = ({vals})"


#: Counter namespaces excluded from the stream: checkpoint bookkeeping
#: (``ckpt.restore`` legitimately differs between a resumed and an
#: uninterrupted run), the checker's own counters, network-scheduler
#: work counters (``netsim.rerates`` etc. count *host-side* recomputes —
#: the fast and legacy fair-share paths intentionally differ in how often
#: they re-solve, not in what they compute), and the multi-job runner's
#: post-run interference attribution (a single job routed through
#: ``repro.multijob`` must stream bit-identically to a direct run).
_EXCLUDED_COUNTER_PREFIXES = ("ckpt.", "check.", "netsim.", "multijob.")


def capture_stream(trainer, result) -> list[ReplayEvent]:
    """Normalize a finished run into a comparable event stream.

    Iteration records keep recorder (event-dispatch) order, so any
    scheduling divergence shows up positionally, not just numerically.
    """
    events: list[ReplayEvent] = []
    for rec in result.recorder.iterations:
        events.append(
            ReplayEvent(
                "iteration",
                (rec.worker, rec.iteration),
                (
                    rec.start_time,
                    rec.compute_time,
                    rec.sync_time,
                    float(rec.loss),
                    rec.samples,
                ),
            )
        )
    for ep in result.recorder.epochs:
        events.append(
            ReplayEvent(
                "epoch",
                (ep.epoch,),
                (ep.time, float(ep.train_loss), float(ep.metric), ep.iterations_done),
            )
        )
    for name in sorted(result.recorder.counters):
        if name.startswith(_EXCLUDED_COUNTER_PREFIXES):
            continue
        events.append(
            ReplayEvent("counter", (name,), (result.recorder.counters[name],))
        )
    if trainer.ps.numeric:
        plane = trainer.ps.params_plane(trainer.engine.state_layout())
        digest = hashlib.sha256(plane.tobytes()).hexdigest()
        events.append(ReplayEvent("params", ("sha256",), (digest,)))
    events.append(ReplayEvent("end", ("wall_time",), (result.wall_time,)))
    return events


#: dump_stream/load_stream wire format version.
STREAM_SCHEMA = "repro.replay_stream/1"


def dump_stream(events: Sequence[ReplayEvent], path: str | Path) -> Path:
    """Serialize a replay stream to JSON-lines.

    Line 1 is a schema header; each following line is one event as
    ``{"kind", "key", "value"}``. Floats survive the round trip exactly
    (``json`` emits ``repr``-style shortest float64 representations), so a
    loaded stream diffs bit-identically against a fresh capture — which is
    what makes committed golden streams a meaningful CI gate.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [json.dumps({"schema": STREAM_SCHEMA, "events": len(events)})]
    for ev in events:
        lines.append(
            json.dumps(
                {"kind": ev.kind, "key": list(ev.key), "value": list(ev.value)}
            )
        )
    path.write_text("\n".join(lines) + "\n")
    return path


def load_stream(path: str | Path) -> list[ReplayEvent]:
    """Load a stream written by :func:`dump_stream`.

    JSON has no tuples, so keys/values come back as lists and are
    re-tupled here; ints and floats keep their JSON types, matching what
    :func:`capture_stream` produced.
    """
    path = Path(path)
    lines = path.read_text().splitlines()
    if not lines:
        raise ValueError(f"{path}: empty replay stream")
    header = json.loads(lines[0])
    if header.get("schema") != STREAM_SCHEMA:
        raise ValueError(
            f"{path}: not a replay stream (schema={header.get('schema')!r}, "
            f"expected {STREAM_SCHEMA!r})"
        )
    events = [
        ReplayEvent(doc["kind"], tuple(doc["key"]), tuple(doc["value"]))
        for doc in map(json.loads, lines[1:])
    ]
    if len(events) != int(header.get("events", len(events))):
        raise ValueError(
            f"{path}: truncated stream ({len(events)} events, header "
            f"promised {header.get('events')})"
        )
    return events


def _prefix_digest(events: Sequence[ReplayEvent], k: int) -> bytes:
    h = hashlib.sha256()
    for ev in events[:k]:
        # repr round-trips float64 exactly, so bit-level divergence is seen.
        h.update(repr((ev.kind, ev.key, ev.value)).encode())
        h.update(b"\x00")
    return h.digest()


def stream_digest(events: Sequence[ReplayEvent]) -> str:
    """SHA-256 fingerprint of a whole replay stream (hex).

    Two runs are bit-identical iff their digests match — the compact form
    of :func:`first_divergence` used by bench fingerprints, where only the
    yes/no (plus a committable witness string) is needed.
    """
    return _prefix_digest(events, len(events)).hex()


def first_divergence(
    a: Sequence[ReplayEvent], b: Sequence[ReplayEvent]
) -> Optional[int]:
    """Index of the first event where the two streams differ (None if
    identical). Binary search over prefix digests: "prefixes of length k
    are equal" is monotone in k, so O(log n) digest probes localize the
    first divergent event exactly."""
    n = min(len(a), len(b))
    if _prefix_digest(a, n) == _prefix_digest(b, n):
        return None if len(a) == len(b) else n  # one is a strict prefix
    lo, hi = 0, n  # invariant: prefix(lo) equal, prefix(hi) not
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if _prefix_digest(a, mid) == _prefix_digest(b, mid):
            lo = mid
        else:
            hi = mid
    return lo


def span_context(tracer, event: Optional[ReplayEvent]) -> tuple[str, ...]:
    """Span names from ``repro.obs`` covering a divergent iteration event.

    Returns the traced spans attributed to the same (worker, iteration),
    in start order — the phase path (``iteration > compute > rs_push ...``)
    the divergence sits inside. Empty when untraced or not attributable.
    """
    if tracer is None or event is None or event.kind != "iteration":
        return ()
    worker, iteration = event.key
    spans = [
        s
        for s in tracer.spans
        if s.worker == worker and s.iteration == iteration
    ]
    spans.sort(key=lambda s: (s.start, s.sid))
    return tuple(f"{s.name}@t={s.start:.6f}" for s in spans[:12])


@dataclass(frozen=True)
class Divergence:
    """The first divergent event of a replay, with span context."""

    index: int
    event_a: Optional[ReplayEvent]
    event_b: Optional[ReplayEvent]
    context_a: tuple[str, ...] = ()
    context_b: tuple[str, ...] = ()


@dataclass(frozen=True)
class ReplayReport:
    """Outcome of one differential replay."""

    label_a: str
    label_b: str
    n_events: tuple[int, int]
    divergence: Optional[Divergence]

    @property
    def identical(self) -> bool:
        return self.divergence is None

    def to_dict(self) -> dict:
        out = {
            "a": self.label_a,
            "b": self.label_b,
            "events": list(self.n_events),
            "identical": self.identical,
        }
        if self.divergence is not None:
            d = self.divergence
            out["divergence"] = {
                "index": d.index,
                "a": d.event_a.render() if d.event_a else None,
                "b": d.event_b.render() if d.event_b else None,
                "context_a": list(d.context_a),
                "context_b": list(d.context_b),
            }
        return out

    def render(self) -> str:
        head = (
            f"replay {self.label_a!r} vs {self.label_b!r}: "
            f"{self.n_events[0]}/{self.n_events[1]} events"
        )
        if self.identical:
            return f"{head} — identical"
        d = self.divergence
        lines = [f"{head} — FIRST DIVERGENCE at event {d.index}:"]
        lines.append(f"  {self.label_a}: "
                     f"{d.event_a.render() if d.event_a else '<stream ended>'}")
        lines.append(f"  {self.label_b}: "
                     f"{d.event_b.render() if d.event_b else '<stream ended>'}")
        if d.context_a:
            lines.append(f"  span context ({self.label_a}): "
                         + " > ".join(d.context_a))
        if d.context_b:
            lines.append(f"  span context ({self.label_b}): "
                         + " > ".join(d.context_b))
        return "\n".join(lines)


def _run_one(build: Callable[[], object], trace: bool):
    trainer = build()
    if trace:
        trainer.enable_tracing()
    result = trainer.run()
    return trainer, result, capture_stream(trainer, result)


def _diff(stream_a, stream_b, tracer_a, tracer_b, label_a, label_b) -> ReplayReport:
    index = first_divergence(stream_a, stream_b)
    divergence = None
    if index is not None:
        event_a = stream_a[index] if index < len(stream_a) else None
        event_b = stream_b[index] if index < len(stream_b) else None
        divergence = Divergence(
            index=index,
            event_a=event_a,
            event_b=event_b,
            context_a=span_context(tracer_a, event_a),
            context_b=span_context(tracer_b, event_b),
        )
    return ReplayReport(
        label_a=label_a,
        label_b=label_b,
        n_events=(len(stream_a), len(stream_b)),
        divergence=divergence,
    )


def differential_replay(
    build_a: Callable[[], object],
    build_b: Callable[[], object],
    label_a: str = "A",
    label_b: str = "B",
    trace: bool = True,
) -> ReplayReport:
    """Run two trainer factories and diff their event streams.

    ``build_*`` must each construct a *fresh* :class:`DistributedTrainer`
    (trainers are single-use). ``trace=True`` attaches the passive tracer
    so a divergence carries span context; it does not perturb virtual time.
    """
    _ta, result_a, stream_a = _run_one(build_a, trace)
    _tb, result_b, stream_b = _run_one(build_b, trace)
    return _diff(
        stream_a, stream_b, result_a.tracer, result_b.tracer, label_a, label_b
    )


@contextmanager
def _scoped_env(name: str, value: str):
    prior = os.environ.get(name)
    os.environ[name] = value
    try:
        yield
    finally:
        if prior is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = prior


def replay_flat_arena(
    build: Callable[[], object], trace: bool = True
) -> ReplayReport:
    """Flat-arena vs. legacy dict parameter plane (``REPRO_FLAT_ARENA``).

    ``build`` is invoked once under each env setting — the engine reads
    the kill-switch at construction, so each factory call binds its mode.
    The two runs' streams (including the final-parameter SHA-256) must be
    identical: the arena is a layout optimization, not a semantic change.
    """
    with _scoped_env("REPRO_FLAT_ARENA", "1"):
        _ta, result_a, stream_a = _run_one(build, trace)
    with _scoped_env("REPRO_FLAT_ARENA", "0"):
        _tb, result_b, stream_b = _run_one(build, trace)
    return _diff(
        stream_a, stream_b, result_a.tracer, result_b.tracer,
        "flat-arena", "dict-plane",
    )


def replay_fairshare(
    build: Callable[[], object], trace: bool = True
) -> ReplayReport:
    """Fast vs. legacy network core (``REPRO_FAIRSHARE``).

    ``build`` is invoked once under each env setting — the Network reads
    the kill-switch at construction, so each factory call binds its mode.
    The fast path (coalesced rerates, solver skipping, heap fair-share,
    vectorized drain) is a host-time optimization only: both streams —
    every iteration event, loss, and virtual timestamp — must be
    identical.
    """
    with _scoped_env("REPRO_FAIRSHARE", "fast"):
        _ta, result_a, stream_a = _run_one(build, trace)
    with _scoped_env("REPRO_FAIRSHARE", "legacy"):
        _tb, result_b, stream_b = _run_one(build, trace)
    return _diff(
        stream_a, stream_b, result_a.tracer, result_b.tracer,
        "fairshare-fast", "fairshare-legacy",
    )


def replay_resume(
    make_trainer: Callable[..., object],
    workdir,
    checkpoint_every: int = 2,
    trace: bool = True,
) -> ReplayReport:
    """Resumed-from-checkpoint vs. uninterrupted run.

    ``make_trainer(**trainer_kwargs)`` must build a fresh trainer
    forwarding the kwargs (``checkpoint_every``, ``checkpoint_dir``,
    ``resume_from``) to :class:`DistributedTrainer`. The base run
    checkpoints every ``checkpoint_every`` epochs under ``workdir``; the
    second run resumes from the *first* checkpoint and must replay the
    remainder bit-identically (recorder history is spliced on restore, so
    the streams align event-for-event).
    """
    workdir = Path(workdir)
    base_dir = workdir / "base"
    resumed_dir = workdir / "resumed"

    def build_base():
        return make_trainer(
            checkpoint_every=checkpoint_every, checkpoint_dir=base_dir
        )

    _ta, result_a, stream_a = _run_one(build_base, trace)
    checkpoints = sorted(base_dir.glob("ckpt-epoch*.npz"))
    if not checkpoints:
        raise RuntimeError(
            f"base run wrote no checkpoints under {base_dir} "
            f"(checkpoint_every={checkpoint_every} vs. too few epochs?)"
        )

    def build_resumed():
        return make_trainer(
            checkpoint_every=checkpoint_every,
            checkpoint_dir=resumed_dir,
            resume_from=str(checkpoints[0]),
        )

    _tb, result_b, stream_b = _run_one(build_resumed, trace)
    return _diff(
        stream_a, stream_b, result_a.tracer, result_b.tracer,
        "uninterrupted", f"resumed@{checkpoints[0].name}",
    )


__all__ = [
    "Divergence",
    "STREAM_SCHEMA",
    "ReplayEvent",
    "ReplayReport",
    "capture_stream",
    "differential_replay",
    "dump_stream",
    "first_divergence",
    "load_stream",
    "replay_flat_arena",
    "replay_resume",
    "span_context",
    "stream_digest",
]
