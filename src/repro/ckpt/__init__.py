"""Checkpoint/restore for distributed training runs.

``repro.ckpt`` captures the *complete* state of a run at an epoch
boundary — PS parameter/momentum planes, per-worker replicas, OSP
tuner/GIB state, RNG streams, fault schedules, and the metrics recorder —
into a single versioned, atomically-written ``.npz`` file.  A run resumed
from such a checkpoint (``DistributedTrainer(resume_from=...)``) continues
bit-identically to the uninterrupted run.  See ``docs/checkpointing.md``.
"""

from repro.ckpt.manager import CheckpointManager
from repro.ckpt.snapshot import (
    FORMAT_VERSION,
    Checkpoint,
    CheckpointError,
    apply_checkpoint,
    capture,
    describe,
    latest_checkpoint,
    load_checkpoint,
    verify_roundtrip,
    write_checkpoint,
)

__all__ = [
    "FORMAT_VERSION",
    "Checkpoint",
    "CheckpointError",
    "CheckpointManager",
    "apply_checkpoint",
    "capture",
    "describe",
    "latest_checkpoint",
    "load_checkpoint",
    "verify_roundtrip",
    "write_checkpoint",
]
