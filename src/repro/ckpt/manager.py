"""Epoch-boundary checkpoint barrier and writer.

The manager imposes a rendezvous at every checkpointed epoch boundary:
each alive worker, after ``epoch_done``, parks on a shared release event;
the last arrival spawns the snapshot process, which first settles
in-flight ICS pushes per the drain/discard policy, captures the state,
writes it atomically, and then releases everyone.

Arrival order at the barrier is recorded into the checkpoint
(``release_order``): a resumed run recreates worker processes in that
order so event-id tie-breaks — and therefore floating-point gradient
summation order — match the uninterrupted run exactly.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Optional

from repro.ckpt.snapshot import (
    Checkpoint,
    capture,
    verify_roundtrip,
    write_checkpoint,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.context import TrainerContext
    from repro.cluster.trainer import DistributedTrainer

POLICIES = ("drain", "discard")


class CheckpointManager:
    """Write a checkpoint every ``every`` epochs into ``directory``.

    ``policy`` controls in-flight ICS pushes at the boundary: ``"drain"``
    waits for them to apply (keeping numerics identical to an
    uninterrupted run), ``"discard"`` snapshots immediately and records
    the dropped bytes under the ``ckpt.ics_discarded_bytes`` counter.
    """

    def __init__(
        self,
        trainer: "DistributedTrainer",
        every: int,
        directory: str | Path,
        policy: str = "drain",
    ) -> None:
        if every < 1:
            raise ValueError(f"checkpoint interval must be >= 1, got {every}")
        if policy not in POLICIES:
            raise ValueError(f"checkpoint policy must be one of {POLICIES}, got {policy!r}")
        self.trainer = trainer
        self.every = int(every)
        self.directory = Path(directory)
        self.policy = policy
        self.latest: Optional[Checkpoint] = None
        self.saved: list[Path] = []
        self._arrived: dict[int, int] = {}
        self._order: dict[int, list[int]] = {}
        self._release: dict[int, object] = {}

    def due(self, epoch: int) -> bool:
        """True when finishing ``epoch`` (0-indexed) lands on a boundary.

        Uses absolute epoch numbering so a resumed run hits the same
        boundaries as the original.
        """
        return (epoch + 1) % self.every == 0

    def checkpoint_path(self, epoch: int) -> Path:
        return self.directory / f"ckpt-epoch{epoch + 1:04d}.npz"

    def pause(self, ctx: "TrainerContext", worker: int, epoch: int):
        """Worker-side barrier generator; yields until the snapshot is written."""
        if not self.due(epoch):
            return
        release = self._release.get(epoch)
        if release is None:
            release = ctx.env.event()
            self._release[epoch] = release
        self._arrived[epoch] = self._arrived.get(epoch, 0) + 1
        self._order.setdefault(epoch, []).append(worker)
        if self._arrived[epoch] >= len(ctx.alive_workers) and not release.triggered:
            ctx.env.process(self._snapshot_proc(ctx, epoch, release))
        yield release

    def gate(self, epoch: int):
        """Pending release event for ``epoch``'s checkpoint, if one is open.

        Workers admitted at a boundary (elastic joins, crash restarts)
        must not race ahead of the snapshot drain; they yield this gate.
        """
        release = self._release.get(epoch)
        if release is not None and not release.triggered:
            return release
        return None

    def _snapshot_proc(self, ctx: "TrainerContext", epoch: int, release):
        sync = self.trainer.sync_model
        discarded = 0.0
        if self.policy == "drain":
            for event in sync.inflight_events(ctx):
                if not event.triggered:
                    yield event
        else:
            discarded = float(sync.inflight_bytes(ctx))
            if discarded > 0:
                ctx.recorder.incr("ckpt.ics_discarded_bytes", int(round(discarded)))
        # Count the save before capturing so the snapshot's own recorder
        # includes it; a resumed run then reproduces the continued run's
        # ckpt.save totals.
        ctx.recorder.incr("ckpt.save")
        snapshot = capture(
            self.trainer,
            next_epoch=epoch + 1,
            release_order=list(self._order.get(epoch, [])),
            ics_policy=self.policy,
            ics_discarded_bytes=discarded,
        )
        path = write_checkpoint(snapshot, self.checkpoint_path(epoch))
        # A checkpoint is only durable once the written file provably
        # decodes back to the captured snapshot; a corrupt save must fail
        # here, at write time, not at some future restore.
        verify_roundtrip(snapshot, path)
        ctx.recorder.incr("ckpt.roundtrip_verified")
        self.latest = snapshot
        self.saved.append(path)
        ctx.trace.instant(
            "ckpt.save",
            actor="ckpt",
            track="ckpt",
            epoch=epoch,
            next_epoch=epoch + 1,
            path=str(path),
            discarded_bytes=discarded,
        )
        release.succeed(epoch)

    def recover_worker(self, worker: int) -> bool:
        """Restore ``worker``'s replica from the latest in-memory snapshot.

        Used by the ``recover="checkpoint"`` crash path; returns False when
        no snapshot (or no replica plane, e.g. timing mode) is available,
        in which case the caller falls back to a cold PS sync.
        """
        snapshot = self.latest
        if snapshot is None:
            return False
        key = f"replica/{worker}"
        if key not in snapshot.arrays:
            return False
        self.trainer.engine.load_replica_plane(worker, snapshot.arrays[key])
        return True


__all__ = ["CheckpointManager", "POLICIES"]
