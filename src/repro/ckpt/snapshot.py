"""Checkpoint snapshot format: capture, serialise, and re-apply run state.

A checkpoint is one ``.npz`` file holding a JSON metadata blob (under the
reserved ``__meta__`` key) plus the numeric planes:

- ``ps/params``, ``ps/velocity``, ``ps/aggregate`` — the parameter
  server's parameter, momentum, and last-aggregated-gradient planes, laid
  out by :class:`repro.nn.arena.ArenaLayout`.  The planes are packed from
  the flat arena when ``REPRO_FLAT_ARENA`` is on and from the per-layer
  dicts otherwise, so a checkpoint is bit-identical either way and can be
  restored under either setting.
- ``replica/{w}`` — each worker's local model plane.
- ``sync/...`` — sync-model-owned arrays (e.g. EMA-LGP state).

Everything else (epoch counters, GIB bitmap, SGuTuner state, jitter RNG
streams, fault schedules, the recorder) travels in the metadata blob.
Writes are atomic (tmp file + ``os.replace``) and the format is versioned;
loading a mismatched version raises :class:`CheckpointError`.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.metrics.export import recorder_from_dict, recorder_to_dict

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.trainer import DistributedTrainer

FORMAT_VERSION = 1

_META_KEY = "__meta__"
_SYNC_PREFIX = "sync/"


class CheckpointError(ValueError):
    """A checkpoint cannot be loaded or applied to this trainer."""


@dataclass
class Checkpoint:
    """In-memory checkpoint: JSON-able metadata plus named float planes."""

    meta: dict
    arrays: dict[str, np.ndarray]

    @property
    def format_version(self) -> int:
        return int(self.meta["format_version"])

    @property
    def next_epoch(self) -> int:
        """First epoch the resumed run will execute (0-indexed)."""
        return int(self.meta["next_epoch"])

    @property
    def time(self) -> float:
        """Virtual clock at the snapshot instant."""
        return float(self.meta["time"])

    def sync_arrays(self) -> dict[str, np.ndarray]:
        """Arrays owned by the sync model, with the ``sync/`` prefix stripped."""
        return {
            key[len(_SYNC_PREFIX):]: arr
            for key, arr in self.arrays.items()
            if key.startswith(_SYNC_PREFIX)
        }


def write_checkpoint(ckpt: Checkpoint, path: str | Path) -> Path:
    """Atomically write ``ckpt`` to ``path`` (tmp file + rename)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    meta_bytes = np.frombuffer(json.dumps(ckpt.meta).encode("utf-8"), dtype=np.uint8)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as f:
            np.savez(f, **{_META_KEY: meta_bytes}, **ckpt.arrays)
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # a failed write must not leave debris behind
            tmp.unlink()
    return path


def load_checkpoint(path: str | Path) -> Checkpoint:
    """Load a checkpoint, refusing unknown formats and versions."""
    path = Path(path)
    with np.load(path) as data:
        if _META_KEY not in data.files:
            raise CheckpointError(f"{path}: not a repro checkpoint (missing metadata entry)")
        meta = json.loads(bytes(data[_META_KEY].tobytes()).decode("utf-8"))
        version = meta.get("format_version")
        if version != FORMAT_VERSION:
            raise CheckpointError(
                f"{path}: checkpoint format version {version!r} is not supported "
                f"(this build reads version {FORMAT_VERSION})"
            )
        arrays = {key: data[key] for key in data.files if key != _META_KEY}
    return Checkpoint(meta=meta, arrays=arrays)


def verify_roundtrip(ckpt: Checkpoint, path: str | Path) -> None:
    """Re-load the checkpoint just written to ``path`` and prove it equals
    the in-memory snapshot — metadata as canonical JSON, every plane
    bit-exact (key set, dtype, shape, bytes).

    Called by :class:`repro.ckpt.CheckpointManager` between the atomic
    write and declaring the checkpoint durable: a snapshot that cannot be
    read back identically (filesystem corruption, a non-JSON-stable meta
    value, an array silently cast by ``np.savez``) must fail the *save*,
    not the eventual restore. Raises :class:`CheckpointError`.
    """
    path = Path(path)
    reloaded = load_checkpoint(path)
    want = json.dumps(ckpt.meta, sort_keys=True)
    got = json.dumps(reloaded.meta, sort_keys=True)
    if want != got:
        raise CheckpointError(
            f"{path}: round-trip metadata mismatch (written checkpoint does "
            "not decode to the captured snapshot)"
        )
    if set(reloaded.arrays) != set(ckpt.arrays):
        missing = sorted(set(ckpt.arrays) - set(reloaded.arrays))
        foreign = sorted(set(reloaded.arrays) - set(ckpt.arrays))
        raise CheckpointError(
            f"{path}: round-trip array keys differ "
            f"(missing {missing}, foreign {foreign})"
        )
    for key, arr in ckpt.arrays.items():
        back = reloaded.arrays[key]
        src = np.asarray(arr)
        if back.dtype != src.dtype or back.shape != src.shape:
            raise CheckpointError(
                f"{path}: plane {key!r} round-tripped as "
                f"{back.dtype}{back.shape}, captured {src.dtype}{src.shape}"
            )
        if src.tobytes() != back.tobytes():
            raise CheckpointError(
                f"{path}: plane {key!r} is not bit-identical after re-load"
            )


def latest_checkpoint(directory: str | Path) -> Optional[Path]:
    """Newest checkpoint file in ``directory`` by epoch number, or None."""
    paths = sorted(Path(directory).glob("ckpt-epoch*.npz"))
    return paths[-1] if paths else None


def capture(
    trainer: "DistributedTrainer",
    next_epoch: int,
    release_order: Optional[list[int]] = None,
    ics_policy: str = "drain",
    ics_discarded_bytes: float = 0.0,
) -> Checkpoint:
    """Snapshot ``trainer`` at an epoch boundary.

    ``next_epoch`` is the first epoch a resumed run will execute;
    ``release_order`` records the order workers arrived at the checkpoint
    barrier so the resumed run can recreate worker processes in the same
    order (event-id tie-breaks, and therefore gradient summation order,
    depend on it).
    """
    ctx = trainer.ctx
    ps, engine, spec, plan = trainer.ps, trainer.engine, trainer.spec, trainer.plan
    numeric = ps.numeric

    jitter_state_fn = getattr(spec.jitter, "state_dict", None)
    meta = {
        "format_version": FORMAT_VERSION,
        "next_epoch": int(next_epoch),
        "time": float(ctx.env.now),
        "sync": trainer.sync_model.name,
        "mode": "numeric" if numeric else "timing",
        "n_workers": spec.n_workers,
        "iterations_per_epoch": trainer.iterations_per_epoch,
        "plan": {
            "n_epochs": plan.n_epochs,
            "lr": plan.lr,
            "momentum": plan.momentum,
            "weight_decay": plan.weight_decay,
            "seed": plan.seed,
        },
        "alive": sorted(ctx._alive),
        "failure_schedule": {str(w): e for w, e in ctx._failure_schedule.items()},
        "restart_schedule": {str(w): e for w, e in ctx._restart_schedule.items()},
        "recover_modes": {str(w): m for w, m in ctx._recover_modes.items()},
        "join_schedule": {str(w): e for w, e in ctx._join_schedule.items()},
        "leave_schedule": {str(w): e for w, e in ctx._leave_schedule.items()},
        "early_stop": {
            "best_metric": float(ctx._best_metric),
            "epochs_since_improvement": int(ctx._epochs_since_improvement),
            "stop_after_epoch": ctx._stop_after_epoch,
        },
        "lr": float(ps.optimizer.lr) if ps.optimizer is not None else None,
        "release_order": list(release_order) if release_order else None,
        "ics": {"policy": ics_policy, "discarded_bytes": float(ics_discarded_bytes)},
        "jitter": jitter_state_fn() if jitter_state_fn is not None else None,
        "engine_state": engine.checkpoint_state(),
        "sync_state": trainer.sync_model.checkpoint_state(ctx),
        "recorder": recorder_to_dict(ctx.recorder),
    }

    arrays: dict[str, np.ndarray] = {}
    if numeric:
        layout = engine.state_layout()
        meta["params"] = {
            "names": list(layout.names),
            "sizes": [int(np.prod(layout.shapes[n], dtype=np.int64)) for n in layout.names],
        }
        arrays["ps/params"] = ps.params_plane(layout)
        arrays["ps/velocity"] = ps.optimizer.velocity_plane(layout)
        agg_plane, agg_seen = ps.aggregate_state(layout)
        arrays["ps/aggregate"] = agg_plane
        meta["aggregate_seen"] = list(agg_seen)
        for w in range(spec.n_workers):
            arrays[f"replica/{w}"] = engine.replica_plane(w)
    for key, arr in trainer.sync_model.checkpoint_arrays(ctx).items():
        arrays[_SYNC_PREFIX + key] = np.asarray(arr)
    return Checkpoint(meta=meta, arrays=arrays)


def apply_checkpoint(trainer: "DistributedTrainer", ckpt: Checkpoint) -> None:
    """Load ``ckpt`` into a freshly-constructed trainer.

    Called from ``DistributedTrainer.__init__`` after the optimizer, LR
    scheduler, and fault injector exist: the restored LR must not disturb
    ``StepLR``'s captured base rate, and the restored failure schedules
    must overwrite the ones the injector re-registered.  Sync-model state
    is applied later, in ``run()``, once ``setup()`` has built it.
    """
    meta = ckpt.meta
    ctx, ps, engine = trainer.ctx, trainer.ps, trainer.engine
    mode = "numeric" if ps.numeric else "timing"
    if meta["mode"] != mode:
        raise CheckpointError(f"checkpoint is a {meta['mode']} run; this trainer is {mode}")
    if meta["sync"] != trainer.sync_model.name:
        raise CheckpointError(
            f"checkpoint was written by sync model {meta['sync']!r}, "
            f"not {trainer.sync_model.name!r}"
        )
    if meta["n_workers"] != trainer.spec.n_workers:
        raise CheckpointError(
            f"checkpoint has {meta['n_workers']} workers; spec has {trainer.spec.n_workers}"
        )
    if meta["iterations_per_epoch"] != trainer.iterations_per_epoch:
        raise CheckpointError("iterations-per-epoch differs from the checkpointed run")
    if meta["next_epoch"] > trainer.plan.n_epochs:
        raise CheckpointError(
            f"checkpoint resumes at epoch {meta['next_epoch']} but the plan "
            f"only has {trainer.plan.n_epochs} epochs"
        )

    if ps.numeric:
        layout = engine.state_layout()
        fingerprint = meta.get("params", {})
        names = list(layout.names)
        sizes = [int(np.prod(layout.shapes[n], dtype=np.int64)) for n in names]
        if fingerprint.get("names") != names or fingerprint.get("sizes") != sizes:
            raise CheckpointError("model parameter layout differs from the checkpointed run")
        ps.load_params_plane(layout, ckpt.arrays["ps/params"])
        ps.optimizer.load_velocity_plane(layout, ckpt.arrays["ps/velocity"])
        ps.load_aggregate_state(layout, ckpt.arrays["ps/aggregate"], meta.get("aggregate_seen", []))
        for w in range(trainer.spec.n_workers):
            engine.load_replica_plane(w, ckpt.arrays[f"replica/{w}"])
        if meta.get("lr") is not None:
            ps.optimizer.lr = float(meta["lr"])

    engine.restore_checkpoint_state(meta.get("engine_state", {}))

    jitter_state = meta.get("jitter")
    if jitter_state is not None:
        load = getattr(trainer.spec.jitter, "load_state", None)
        if load is None:
            raise CheckpointError(
                "checkpoint carries jitter RNG state but this spec's jitter "
                "model cannot restore it"
            )
        load(jitter_state)

    ctx.load_checkpoint_meta(meta)
    ctx.recorder.restore_from(recorder_from_dict(meta["recorder"]))


def describe(ckpt: Checkpoint) -> dict:
    """Human/JSON-friendly summary of a checkpoint (for ``repro ckpt inspect``)."""
    meta = ckpt.meta
    recorder = meta.get("recorder", {})
    return {
        "format_version": ckpt.format_version,
        "mode": meta.get("mode"),
        "sync": meta.get("sync"),
        "next_epoch": ckpt.next_epoch,
        "time": ckpt.time,
        "n_workers": meta.get("n_workers"),
        "alive": meta.get("alive"),
        "ics_policy": meta.get("ics", {}).get("policy"),
        "ics_discarded_bytes": meta.get("ics", {}).get("discarded_bytes"),
        "epochs_recorded": len(recorder.get("epochs", [])),
        "iterations_recorded": len(recorder.get("iterations", [])),
        "counters": dict(recorder.get("counters", {})),
        "arrays": {
            key: {"size": int(arr.size), "dtype": str(arr.dtype)}
            for key, arr in sorted(ckpt.arrays.items())
        },
    }


__all__ = [
    "FORMAT_VERSION",
    "Checkpoint",
    "CheckpointError",
    "apply_checkpoint",
    "capture",
    "describe",
    "latest_checkpoint",
    "load_checkpoint",
    "verify_roundtrip",
    "write_checkpoint",
]
