"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``run``      one (workload, sync model) training simulation
``report``   overlap/BST report from a trace.json or recorder.json
``compare``  all four paper sync models on one workload
``figures``  list the figure-regeneration benchmarks
``cards``    list the model cards (paper-scale workload descriptions)
``ckpt``     checkpoint tools (``ckpt inspect FILE``)
``check``    runtime invariant monitors + differential replay (repro.check)

Examples
--------
::

    python -m repro run --workload resnet50-cifar10 --sync osp --mode timing
    python -m repro run --workload bertbase-squad --sync bsp --mode numeric --epochs 4
    python -m repro compare --workload vgg16-cifar10 --epochs 20
    python -m repro cards
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.colocated import ColocatedOSP
from repro.core.osp import OSP
from repro.faults import parse_faults
from repro.harness.workloads import (
    EVALUATION_WORKLOADS,
    WorkloadConfig,
    make_numeric_dataset,
    numeric_trainer,
    timing_trainer,
)
from repro.metrics.report import format_table
from repro.nn.models.registry import MODEL_CARDS
from repro.sync import ASP, BSP, DSSP, R2SP, SSP, ShardedBSP, SyncSwitch, WFBP

SYNC_FACTORIES = {
    "bsp": BSP,
    "asp": ASP,
    "ssp": SSP,
    "dssp": DSSP,
    "r2sp": R2SP,
    "r2sp-duplex": lambda: R2SP(duplex=True),
    "sync-switch": SyncSwitch,
    "sharded-bsp": ShardedBSP,
    "wfbp": WFBP,
    "osp": OSP,
    "osp-c": ColocatedOSP,
    "osp-forced-bsp": lambda: OSP(force="bsp"),
    "osp-forced-asp": lambda: OSP(force="asp"),
}


def _build_trainer(args, sync_name: str):
    faults = parse_faults(args.faults) if getattr(args, "faults", None) else None
    cfg = WorkloadConfig(
        args.workload,
        n_workers=args.workers,
        n_epochs=args.epochs,
        iterations_per_epoch=args.iterations,
        sigma=args.sigma,
        seed=args.seed,
        colocated_ps=sync_name == "osp-c",
        faults=faults,
    )
    sync = SYNC_FACTORIES[sync_name]()
    trainer_kwargs = {}
    if getattr(args, "checkpoint_every", None):
        trainer_kwargs["checkpoint_every"] = args.checkpoint_every
        trainer_kwargs["checkpoint_dir"] = args.checkpoint_dir or "checkpoints"
        trainer_kwargs["checkpoint_policy"] = args.checkpoint_policy
    if getattr(args, "resume", None):
        trainer_kwargs["resume_from"] = args.resume
    if args.mode == "timing":
        return timing_trainer(cfg, sync, **trainer_kwargs)
    data = make_numeric_dataset(cfg.card, n_samples=args.samples, seed=args.seed)
    return numeric_trainer(
        cfg, sync, data=data, batch_size=args.batch_size, **trainer_kwargs
    )


def _result_row(res):
    return (
        res.sync_name,
        f"{res.throughput:.1f}",
        f"{res.mean_bst * 1e3:.0f}",
        f"{res.mean_bct * 1e3:.0f}",
        f"{res.best_metric:.3f}",
        f"{res.wall_time:.1f}",
    )


_HEADERS = ["sync", "samples/s", "BST (ms)", "BCT (ms)", "best metric", "virtual s"]


def cmd_run(args) -> int:
    if getattr(args, "net_prio", None):
        # Network reads REPRO_NETPRIO at construction — set it before the
        # trainer is built so the flag wins over the inherited environment.
        import os

        os.environ["REPRO_NETPRIO"] = (
            "on" if args.net_prio == "on" else "off"
        )
    trainer = _build_trainer(args, args.sync)
    if getattr(args, "summary", None):
        trainer.enable_sampling()  # implies tracing (phase attribution)
    if args.trace:
        trainer.enable_tracing()
    res = trainer.run()
    if getattr(args, "summary", None):
        from repro.obs.compare import run_summary, save_summary

        save_summary(run_summary(res), args.summary)
        print(f"wrote run summary to {args.summary} "
              "(diff two with `repro report --compare A.json B.json`)")
    if args.trace:
        from repro.obs.chrome import write_unified_trace

        n = write_unified_trace(
            args.trace,
            tracer=res.tracer,
            flow_records=trainer.network.records,
            iteration_records=res.recorder.iterations,
            recorder=res.recorder,
            sync_name=res.sync_name,
        )
        print(f"wrote {n} trace events to {args.trace} "
              "(open in chrome://tracing or Perfetto; "
              f"analyse with `repro report {args.trace}`)")
    if args.json:
        rec = res.recorder
        print(
            json.dumps(
                {
                    "workload": args.workload,
                    "sync": res.sync_name,
                    "mode": args.mode,
                    "throughput": res.throughput,
                    "mean_bst": res.mean_bst,
                    "mean_bct": res.mean_bct,
                    "bst_p50": rec.bst_percentile(50),
                    "bst_p90": rec.bst_percentile(90),
                    "bst_p99": rec.bst_percentile(99),
                    "communication_share": rec.communication_share(),
                    "best_metric": res.best_metric,
                    "wall_time": res.wall_time,
                    "iteration_end_time": res.iteration_end_time,
                    "iterations": rec.total_iterations,
                    "counters": rec.counters,
                    "tta": rec.time_to_accuracy(),
                }
            )
        )
    else:
        print(format_table(_HEADERS, [_result_row(res)], title=args.workload))
    return 0


def cmd_report(args) -> int:
    from pathlib import Path

    from repro.obs.overlap import (
        overlap_report_from_recorder,
        overlap_report_from_trace,
    )

    if args.compare:
        from repro.obs.compare import compare_runs

        try:
            report = compare_runs(
                args.compare[0], args.compare[1], max_slowdown=args.max_slowdown
            )
        except FileNotFoundError as exc:
            missing = getattr(exc, "filename", None) or exc
            print(
                f"error: summary file not found: {missing}\n"
                "write one with `repro run --summary FILE` or "
                "`repro dash --summary FILE`",
                file=sys.stderr,
            )
            return 2
        except ValueError as exc:  # includes json.JSONDecodeError
            print(f"error: not a comparable run summary: {exc}", file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(report.as_dict()))
        else:
            print(report.render())
        return 1 if report.verdict == "regression" else 0
    if args.file is None:
        print("error: report needs a FILE or --compare A.json B.json",
              file=sys.stderr)
        return 2

    payload = json.loads(Path(args.file).read_text())
    if isinstance(payload, list) or "traceEvents" in payload:
        if isinstance(payload, list):  # legacy bare event array
            payload = {"traceEvents": payload}
        report = overlap_report_from_trace(payload)
    else:
        from repro.metrics.export import recorder_from_dict

        report = overlap_report_from_recorder(
            recorder_from_dict(payload), sync_name="recorder"
        )
    if args.json:
        print(json.dumps(report.to_dict()))
    else:
        print(report.render())
    return 0


def cmd_dash(args) -> int:
    from pathlib import Path

    from repro.obs.compare import run_summary, save_summary
    from repro.obs.dash import export_csv, export_prometheus, render_dashboard

    trainer = _build_trainer(args, args.sync)
    sampler = trainer.enable_sampling(interval=args.interval)
    res = trainer.run()
    title = f"{args.workload} / {res.sync_name}"
    out = Path(args.out)
    out.write_text(render_dashboard(res, sampler, title=title))
    print(f"wrote dashboard to {out} "
          f"({len(sampler.series)} tracks, {sampler.samples_taken} samples)")
    if args.csv:
        Path(args.csv).write_text(export_csv(sampler))
        print(f"wrote samples CSV to {args.csv}")
    if args.prom:
        Path(args.prom).write_text(export_prometheus(sampler))
        print(f"wrote Prometheus text exposition to {args.prom}")
    if args.summary:
        save_summary(run_summary(res, sampler), args.summary)
        print(f"wrote run summary to {args.summary}")
    return 0


def _parse_jobs_spec(spec: str):
    """--jobs value: inline JSON list or a path to a JSON file.

    Each entry: ``{"name": ..., "workload": card, "sync": factory-name,
    "workers": N, "epochs": N, "iterations": N, "sigma": f, "seed": N,
    "background": bool}`` — unknown keys are rejected so typos fail loudly.
    """
    from pathlib import Path

    from repro.multijob import JobSpec, background_job

    text = spec
    if not spec.lstrip().startswith("["):
        text = Path(spec).read_text()
    entries = json.loads(text)
    if not isinstance(entries, list) or not entries:
        raise ValueError("--jobs must be a non-empty JSON list of job objects")
    allowed = {
        "name", "workload", "sync", "workers", "epochs",
        "iterations", "sigma", "seed", "background",
    }
    jobs = []
    for i, entry in enumerate(entries):
        unknown = set(entry) - allowed
        if unknown:
            raise ValueError(f"job #{i}: unknown keys {sorted(unknown)}")
        sync_name = entry.get("sync", "bsp")
        if sync_name not in SYNC_FACTORIES:
            raise ValueError(f"job #{i}: unknown sync {sync_name!r}")
        cfg = WorkloadConfig(
            entry.get("workload", "vgg16-cifar10"),
            n_workers=entry.get("workers", 4),
            n_epochs=entry.get("epochs", 2),
            iterations_per_epoch=entry.get("iterations", 4),
            sigma=entry.get("sigma", 0.1),
            seed=entry.get("seed", 0),
            colocated_ps=sync_name == "osp-c",
        )
        name = entry.get("name", f"j{i}")
        factory = SYNC_FACTORIES[sync_name]
        if entry.get("background"):
            jobs.append(background_job(name, cfg, factory))
        else:
            jobs.append(JobSpec(name=name, workload=cfg, sync_factory=factory))
    return jobs


def cmd_multirun(args) -> int:
    from pathlib import Path

    from repro.harness.cotenancy import osp_with_background
    from repro.multijob import MultiJobRunner, multijob_summary, render_report
    from repro.multijob.report import save_summary as save_multijob_summary

    if getattr(args, "net_prio", None):
        import os

        os.environ["REPRO_NETPRIO"] = "on" if args.net_prio == "on" else "off"
    try:
        jobs = (
            _parse_jobs_spec(args.jobs)
            if args.jobs
            else osp_with_background(
                card_name=args.workload,
                n_workers=args.workers,
                n_epochs=args.epochs,
                iterations_per_epoch=args.iterations,
                sigma=args.sigma,
                seed=args.seed,
            )
        )
    except (OSError, ValueError) as exc:
        print(f"error: bad --jobs spec: {exc}", file=sys.stderr)
        return 2
    runner = MultiJobRunner(
        jobs,
        n_hosts=args.hosts,
        placement=args.placement,
        admission=args.admission,
        slots_per_host=args.slots_per_host,
        gpus_per_host=args.gpus_per_host,
        headroom=args.headroom,
    )
    if args.dash:
        runner.enable_sampling()
    result = runner.run()
    if args.json:
        print(json.dumps(multijob_summary(result)))
    else:
        print(render_report(result))
    if args.summary:
        save_multijob_summary(multijob_summary(result), args.summary)
        print(f"wrote multijob summary to {args.summary}")
    if args.dash:
        from repro.obs.dash import render_multijob_dashboard

        Path(args.dash).write_text(render_multijob_dashboard(result))
        print(f"wrote co-tenancy dashboard to {args.dash}")
    return 0


def cmd_compare(args) -> int:
    rows = []
    for sync_name in ("asp", "bsp", "r2sp", "osp"):
        res = _build_trainer(args, sync_name).run()
        rows.append(_result_row(res))
    print(format_table(_HEADERS, rows, title=f"{args.workload} ({args.mode} mode)"))
    return 0


def cmd_cards(_args) -> int:
    rows = [
        (
            c.name,
            c.family,
            c.dataset,
            f"{c.paper_params / 1e6:.1f}M",
            f"{c.paper_flops_per_sample / 1e9:.1f}G",
            c.paper_layers,
            c.batch_size,
            c.metric,
        )
        for c in MODEL_CARDS.values()
    ]
    print(
        format_table(
            ["card", "family", "dataset", "params", "FLOPs/sample", "layers", "batch", "metric"],
            rows,
            title="Model cards (paper-scale workload descriptions)",
        )
    )
    return 0


def cmd_perf(args) -> int:
    from repro.perf.hotpath import run_hotpath_bench, save_bench, validate_bench

    if args.check:
        from pathlib import Path

        data = json.loads(Path(args.check).read_text())
        problems = validate_bench(data, min_speedup=args.min_speedup)
        if problems:
            for p in problems:
                print(f"FAIL: {p}", file=sys.stderr)
            return 1
        print(f"{args.check}: schema ok, all guarded speedups >= "
              f"{args.min_speedup:.2f}")
        return 0

    data = run_hotpath_bench(
        card_name=args.card,
        quick=args.quick,
        jobs=args.jobs,
        seed=args.seed,
        micro_card=args.micro_card,
    )
    save_bench(data, args.out)
    micro = data["micro"]
    e2e = data["end_to_end"]["numeric"]
    print(f"wrote {args.out}")
    for op in ("ps_apply", "pgp", "lgp", "sync_replica"):
        print(f"  {op:<14} {micro[op]['speedup']:.2f}x")
    print(f"  {'end-to-end':<14} {e2e['speedup']:.2f}x "
          f"({e2e['reduction_pct']:.1f}% reduction, "
          f"bit-identical={e2e['identical']})")
    problems = validate_bench(data)
    if problems:
        for p in problems:
            print(f"FAIL: {p}", file=sys.stderr)
        return 1
    return 0


def cmd_perf_net(args) -> int:
    from repro.perf.netsim_scale import (
        MIN_SPEEDUP_64,
        run_netsim_bench,
        save_bench,
        validate_bench,
    )

    min_speedup = args.min_speedup if args.min_speedup is not None else MIN_SPEEDUP_64
    if args.check:
        from pathlib import Path

        data = json.loads(Path(args.check).read_text())
        problems = validate_bench(data, min_speedup=min_speedup)
        if problems:
            for p in problems:
                print(f"FAIL: {p}", file=sys.stderr)
            return 1
        print(f"{args.check}: schema ok, identical everywhere, "
              f"64-worker speedup >= {min_speedup:.2f}")
        return 0

    data = run_netsim_bench(
        quick=args.quick, repeats=args.repeats, progress=print
    )
    save_bench(data, args.out)
    print(f"wrote {args.out}")
    for n, entry in sorted(data["sweep"].items(), key=lambda kv: int(kv[0])):
        print(f"  {n:>3} workers  legacy {entry['legacy_s'] * 1e3:7.1f}ms  "
              f"fast {entry['fast_s'] * 1e3:7.1f}ms  "
              f"{entry['speedup']:5.2f}x  identical={entry['identical']}")
    e2e = data["end_to_end"]
    print(f"  end-to-end OSP ({e2e['card']}, {e2e['workers']}w): "
          f"{e2e['speedup']:.2f}x, identical={e2e['identical']}")
    problems = validate_bench(data, min_speedup=min_speedup)
    if problems:
        for p in problems:
            print(f"FAIL: {p}", file=sys.stderr)
        return 1
    return 0


def cmd_perf_prio(args) -> int:
    from repro.perf.netprio import (
        MIN_IMPROVEMENT,
        run_netprio_bench,
        save_bench,
        validate_bench,
    )

    min_improvement = (
        args.min_improvement if args.min_improvement is not None else MIN_IMPROVEMENT
    )
    if args.check:
        from pathlib import Path

        data = json.loads(Path(args.check).read_text())
        problems = validate_bench(data, min_improvement=min_improvement)
        if problems:
            for p in problems:
                print(f"FAIL: {p}", file=sys.stderr)
            return 1
        print(f"{args.check}: schema ok, inert path identical, "
              f"RS-stage p90 improvement >= {min_improvement:.2f}x")
        return 0

    data = run_netprio_bench(quick=args.quick, progress=print)
    save_bench(data, args.out)
    print(f"wrote {args.out}")
    cont = data["contended"]
    print(f"  RS-stage p90 wait  off {cont['off']['rs_stage_p90_s'] * 1e3:7.1f}ms  "
          f"on {cont['on']['rs_stage_p90_s'] * 1e3:7.1f}ms  "
          f"{cont['improvement']:.2f}x")
    print(f"  throughput         off {cont['off']['throughput']:7.1f}/s  "
          f"on {cont['on']['throughput']:7.1f}/s  "
          f"(preemptions: {cont['on']['preemptions']})")
    print(f"  inert default-class path identical={data['inert']['identical']}")
    problems = validate_bench(data, min_improvement=min_improvement)
    if problems:
        for p in problems:
            print(f"FAIL: {p}", file=sys.stderr)
        return 1
    return 0


def cmd_perf_multijob(args) -> int:
    from repro.perf.multijob import (
        MIN_IMPROVEMENT,
        run_multijob_bench,
        save_bench,
        validate_bench,
    )

    min_improvement = (
        args.min_improvement if args.min_improvement is not None else MIN_IMPROVEMENT
    )
    if args.check:
        from pathlib import Path

        data = json.loads(Path(args.check).read_text())
        problems = validate_bench(data, min_improvement=min_improvement)
        if problems:
            for p in problems:
                print(f"FAIL: {p}", file=sys.stderr)
            return 1
        print(f"{args.check}: schema ok, solo-job path identical, "
              f"co-tenant RS-stage p90 isolation >= {min_improvement:.2f}x")
        return 0

    data = run_multijob_bench(quick=args.quick, progress=print)
    save_bench(data, args.out)
    print(f"wrote {args.out}")
    cont = data["contended"]
    print(f"  RS-stage p90 wait  off {cont['off']['rs_stage_p90_s'] * 1e3:7.1f}ms  "
          f"on {cont['on']['rs_stage_p90_s'] * 1e3:7.1f}ms  "
          f"{cont['improvement']:.2f}x")
    print(f"  OSP wall           off {cont['off']['osp_wall_s']:7.2f}s  "
          f"on {cont['on']['osp_wall_s']:7.2f}s  "
          f"(preemptions: {cont['on']['preemptions']})")
    print(f"  solo-job identity identical={data['identity']['identical']}")
    problems = validate_bench(data, min_improvement=min_improvement)
    if problems:
        for p in problems:
            print(f"FAIL: {p}", file=sys.stderr)
        return 1
    return 0


def cmd_ckpt(args) -> int:
    from repro.ckpt import CheckpointError, describe, load_checkpoint

    try:
        ckpt = load_checkpoint(args.file)
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    info = describe(ckpt)
    if args.json:
        print(json.dumps(info))
        return 0
    arrays = info.pop("arrays")
    counters = info.pop("counters")
    for key, value in info.items():
        print(f"{key:<22} {value}")
    if counters:
        print("counters")
        for name in sorted(counters):
            print(f"  {name:<28} {counters[name]}")
    print(f"arrays ({len(arrays)})")
    for name in sorted(arrays):
        meta = arrays[name]
        print(f"  {name:<28} {meta['size']:>10}  {meta['dtype']}")
    return 0


def cmd_check(args) -> int:
    import tempfile

    from repro.check import (
        replay_fairshare,
        replay_flat_arena,
        replay_resume,
        run_checked,
    )

    trainer = _build_trainer(args, args.sync)
    trainer.enable_tracing()
    _res, report = run_checked(trainer, strict=False)
    payload = {"monitors": report.to_dict()}
    ok = report.ok
    if not args.json:
        print(report.render())

    if not args.no_replay:
        # Replay runs in numeric mode at a reduced scale regardless of
        # --mode: the parameter-plane digest only exists for numeric runs,
        # and two full-scale extra runs would dominate the command's cost.
        faults = parse_faults(args.faults) if getattr(args, "faults", None) else None
        cfg = WorkloadConfig(
            args.workload,
            n_workers=min(args.workers, 4),
            n_epochs=min(args.epochs, 3),
            iterations_per_epoch=min(args.iterations, 4),
            sigma=args.sigma,
            seed=args.seed,
            colocated_ps=args.sync == "osp-c",
            faults=faults,
        )
        data = make_numeric_dataset(
            cfg.card, n_samples=min(args.samples, 400), seed=args.seed
        )

        def make_trainer(**trainer_kwargs):
            return numeric_trainer(
                cfg,
                SYNC_FACTORIES[args.sync](),
                data=data,
                batch_size=args.batch_size,
                **trainer_kwargs,
            )

        replays = [replay_flat_arena(make_trainer), replay_fairshare(make_trainer)]
        with tempfile.TemporaryDirectory(prefix="repro-check-") as tmpdir:
            replays.append(replay_resume(make_trainer, tmpdir))
        payload["replays"] = [r.to_dict() for r in replays]
        for rep in replays:
            ok = ok and rep.identical
            if not args.json:
                print(rep.render())

    if args.json:
        payload["ok"] = ok
        print(json.dumps(payload))
    elif not ok:
        print("check: FAILED", file=sys.stderr)
    return 0 if ok else 1


def cmd_figures(_args) -> int:
    print(
        "Figure-regeneration benchmarks (run with "
        "`pytest benchmarks/ --benchmark-only -s`):\n"
        "  bench_fig1_fig2_timelines   Figs. 1-2  BSP/ASP timelines\n"
        "  bench_fig3_comm_share       Fig. 3     comm share vs scale\n"
        "  bench_motivation_gpu_comm   §1         comm overhead vs GPU\n"
        "  bench_fig6a_throughput      Fig. 6(a)  throughput\n"
        "  bench_fig6b_accuracy        Fig. 6(b)  top-1 / F1\n"
        "  bench_fig6c_iterations      Fig. 6(c)  iterations to best\n"
        "  bench_fig6d_bst             Fig. 6(d)  batch sync time\n"
        "  bench_fig7_tta_images       Fig. 7     time-to-accuracy (images)\n"
        "  bench_fig8_tta_nlp          Fig. 8     time-to-F1 (BERT)\n"
        "  bench_fig9_bct_colocated    Fig. 9     OSP-C BCT overhead\n"
        "  bench_ablation_*            our ablations (LGP, Algorithm 1,\n"
        "                              degradation, scaling, baselines,\n"
        "                              non-IID, congestion, compression)\n"
        "  bench_sensitivity_crossover rho-regime crossover analysis"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="OSP (ICPP 2023) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument(
            "--workload",
            default="resnet50-cifar10",
            choices=sorted(MODEL_CARDS),
        )
        p.add_argument("--mode", default="timing", choices=["timing", "numeric"])
        p.add_argument("--workers", type=int, default=8)
        p.add_argument("--epochs", type=int, default=12)
        p.add_argument("--iterations", type=int, default=8, help="per-epoch (timing mode)")
        p.add_argument("--sigma", type=float, default=0.1, help="straggler jitter")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--samples", type=int, default=1600, help="dataset size (numeric)")
        p.add_argument("--batch-size", type=int, default=25, help="numeric batch size")
        p.add_argument(
            "--faults",
            metavar="SPEC",
            help="fault schedule: inline JSON (list of {kind,...} events) "
            "or a path to a JSON file — see repro.faults.parse_faults",
        )

    p_run = sub.add_parser("run", help="run one (workload, sync) simulation")
    add_common(p_run)
    p_run.add_argument("--sync", default="osp", choices=sorted(SYNC_FACTORIES))
    p_run.add_argument("--json", action="store_true", help="emit JSON")
    p_run.add_argument(
        "--trace", metavar="FILE", help="write a Chrome-tracing timeline JSON"
    )
    p_run.add_argument(
        "--checkpoint-every", type=int, metavar="N",
        help="write a checkpoint every N epochs",
    )
    p_run.add_argument(
        "--checkpoint-dir", metavar="DIR",
        help="checkpoint directory (default: ./checkpoints)",
    )
    p_run.add_argument(
        "--checkpoint-policy", default="drain", choices=["drain", "discard"],
        help="in-flight ICS traffic at a snapshot: drain to a barrier "
        "or discard (recorded as ckpt.ics_discarded_bytes)",
    )
    p_run.add_argument(
        "--resume", metavar="FILE", help="resume from a checkpoint file"
    )
    p_run.add_argument(
        "--summary", metavar="FILE",
        help="sample the run and write a run-summary JSON for "
        "`repro report --compare`",
    )
    p_run.add_argument(
        "--net-prio", choices=["on", "off"], default=None,
        help="priority-aware network scheduling (default: on unless "
        "REPRO_NETPRIO=off; see docs/performance.md)",
    )
    p_run.set_defaults(fn=cmd_run)

    p_rep = sub.add_parser(
        "report",
        help="overlap/BST report from a trace.json or recorder.json, "
        "or --compare two run summaries",
    )
    p_rep.add_argument(
        "file", nargs="?", default=None,
        help="unified trace JSON or saved recorder JSON",
    )
    p_rep.add_argument(
        "--compare", nargs=2, metavar=("A.json", "B.json"),
        help="diff two run summaries (from `repro run --summary` or "
        "`repro dash --summary`); exits 1 on a regression verdict",
    )
    p_rep.add_argument(
        "--max-slowdown", type=float, default=0.05,
        help="relative wall-clock growth tolerated before the --compare "
        "verdict is 'regression' (default 0.05)",
    )
    p_rep.add_argument("--json", action="store_true", help="emit JSON")
    p_rep.set_defaults(fn=cmd_report)

    p_dash = sub.add_parser(
        "dash",
        help="run a sampled workload and render a self-contained HTML "
        "dashboard (per-worker health, gauges, links, fault windows)",
    )
    add_common(p_dash)
    p_dash.add_argument("--sync", default="osp", choices=sorted(SYNC_FACTORIES))
    p_dash.add_argument(
        "--out", default="dash.html", metavar="FILE", help="output HTML path"
    )
    p_dash.add_argument(
        "--interval", type=float, default=None, metavar="SECONDS",
        help="sampling interval in virtual seconds "
        "(default: half a base compute time)",
    )
    p_dash.add_argument(
        "--csv", metavar="FILE", help="also export every sample as CSV"
    )
    p_dash.add_argument(
        "--prom", metavar="FILE",
        help="also export last values in Prometheus text format",
    )
    p_dash.add_argument(
        "--summary", metavar="FILE",
        help="also write a run-summary JSON for `repro report --compare`",
    )
    p_dash.set_defaults(fn=cmd_dash)

    p_multi = sub.add_parser(
        "multirun",
        help="run co-tenant jobs on one shared fabric (repro.multijob); "
        "default scenario: an OSP job plus a best-effort BSP tenant",
    )
    p_multi.add_argument(
        "--jobs", metavar="SPEC",
        help="job list: inline JSON or a path to a JSON file — entries "
        '{"name","workload","sync","workers","epochs","iterations",'
        '"sigma","seed","background"}',
    )
    p_multi.add_argument(
        "--workload", default="vgg16-cifar10", choices=sorted(MODEL_CARDS),
        help="default-scenario workload (ignored with --jobs)",
    )
    p_multi.add_argument("--workers", type=int, default=4)
    p_multi.add_argument("--epochs", type=int, default=3)
    p_multi.add_argument("--iterations", type=int, default=6)
    p_multi.add_argument("--sigma", type=float, default=0.1)
    p_multi.add_argument("--seed", type=int, default=7)
    p_multi.add_argument(
        "--hosts", type=int, default=None,
        help="pool size (default: exclusive fits all jobs at once; "
        "shared fits the widest job)",
    )
    p_multi.add_argument(
        "--placement", default="shared", choices=["exclusive", "shared"],
        help="exclusive hosts per job, or co-located hosts with slot "
        "contention (default: shared)",
    )
    p_multi.add_argument(
        "--admission", default="immediate",
        choices=["immediate", "fifo", "bandwidth"],
    )
    p_multi.add_argument(
        "--slots-per-host", type=int, default=2,
        help="tenant slots per host under shared placement",
    )
    p_multi.add_argument(
        "--gpus-per-host", type=int, default=None,
        help="compute slots per host (default: slots-per-host; lower "
        "values serialise co-located compute)",
    )
    p_multi.add_argument(
        "--headroom", type=float, default=1.0,
        help="bandwidth-admission capacity factor",
    )
    p_multi.add_argument("--json", action="store_true", help="emit JSON summary")
    p_multi.add_argument(
        "--summary", metavar="FILE", help="write the multijob summary JSON"
    )
    p_multi.add_argument(
        "--dash", metavar="FILE",
        help="sample the run and write a co-tenancy HTML dashboard",
    )
    p_multi.add_argument(
        "--net-prio", choices=["on", "off"], default=None,
        help="priority-aware network scheduling (default: on unless "
        "REPRO_NETPRIO=off)",
    )
    p_multi.set_defaults(fn=cmd_multirun)

    p_cmp = sub.add_parser("compare", help="compare the four paper sync models")
    add_common(p_cmp)
    p_cmp.set_defaults(fn=cmd_compare)

    p_cards = sub.add_parser("cards", help="list model cards")
    p_cards.set_defaults(fn=cmd_cards)

    p_figs = sub.add_parser("figures", help="list figure benchmarks")
    p_figs.set_defaults(fn=cmd_figures)

    p_ckpt = sub.add_parser("ckpt", help="checkpoint tools")
    ckpt_sub = p_ckpt.add_subparsers(dest="ckpt_command", required=True)
    p_inspect = ckpt_sub.add_parser(
        "inspect", help="summarise a checkpoint file (meta + array inventory)"
    )
    p_inspect.add_argument("file", help="path to a ckpt-epoch*.npz file")
    p_inspect.add_argument("--json", action="store_true", help="emit JSON")
    p_inspect.set_defaults(fn=cmd_ckpt)

    p_check = sub.add_parser(
        "check",
        help="run under invariant monitors, then differential replay "
        "(flat-arena vs dict plane, resumed vs uninterrupted)",
    )
    add_common(p_check)
    p_check.add_argument("--sync", default="osp", choices=sorted(SYNC_FACTORIES))
    p_check.add_argument("--json", action="store_true", help="emit JSON")
    p_check.add_argument(
        "--no-replay", action="store_true",
        help="monitors only: skip the two differential-replay runs",
    )
    p_check.set_defaults(fn=cmd_check)

    p_perf = sub.add_parser(
        "perf",
        help="hot-path microbenchmarks -> BENCH_hotpath.json (or --check one)",
    )
    p_perf.add_argument(
        "--out", default="BENCH_hotpath.json", help="output JSON path"
    )
    p_perf.add_argument(
        "--quick", action="store_true",
        help="smoke mode: small configs, seconds instead of minutes",
    )
    p_perf.add_argument(
        "--jobs", "-j", type=int, default=None,
        help="sweep-executor fan-out (default: min(4, cores))",
    )
    p_perf.add_argument("--seed", type=int, default=0)
    p_perf.add_argument(
        "--card", default="resnet50-cifar10", choices=sorted(MODEL_CARDS),
        help="end-to-end workload (fig6b scale)",
    )
    p_perf.add_argument(
        "--micro-card", default="inceptionv3-cifar100",
        choices=sorted(MODEL_CARDS), help="per-op microbenchmark workload",
    )
    p_perf.add_argument(
        "--check", metavar="FILE", default=None,
        help="validate an existing BENCH_hotpath.json instead of running",
    )
    p_perf.add_argument(
        "--min-speedup", type=float, default=1.0,
        help="regression threshold for --check",
    )
    p_perf.set_defaults(fn=cmd_perf)

    p_pnet = sub.add_parser(
        "perf-net",
        help="netsim scaling benchmark -> BENCH_netsim.json (or --check one)",
    )
    p_pnet.add_argument(
        "--out", default="BENCH_netsim.json", help="output JSON path"
    )
    p_pnet.add_argument(
        "--quick", action="store_true",
        help="smoke mode: stop the sweep at 64 workers, fewer iterations",
    )
    p_pnet.add_argument(
        "--repeats", type=int, default=None,
        help="best-of-N timing repeats per sweep point (default 2, quick 1)",
    )
    p_pnet.add_argument(
        "--check", metavar="FILE", default=None,
        help="validate an existing BENCH_netsim.json instead of running",
    )
    p_pnet.add_argument(
        "--min-speedup", type=float, default=None,
        help="64-worker regression threshold (default: the guarded 5.0)",
    )
    p_pnet.set_defaults(fn=cmd_perf_net)

    p_prio = sub.add_parser(
        "perf-prio",
        help="priority-scheduling benchmark -> BENCH_netprio.json "
        "(or --check one)",
    )
    p_prio.add_argument(
        "--out", default="BENCH_netprio.json", help="output JSON path"
    )
    p_prio.add_argument(
        "--quick", action="store_true",
        help="smoke mode: fewer epochs, smaller inert sweep",
    )
    p_prio.add_argument(
        "--check", metavar="FILE", default=None,
        help="validate an existing BENCH_netprio.json instead of running",
    )
    p_prio.add_argument(
        "--min-improvement", type=float, default=None,
        help="RS-stage p90 regression threshold (default: the guarded 1.5)",
    )
    p_prio.set_defaults(fn=cmd_perf_prio)

    p_pmj = sub.add_parser(
        "perf-multijob",
        help="co-tenancy benchmark -> BENCH_multijob.json (or --check one)",
    )
    p_pmj.add_argument(
        "--out", default="BENCH_multijob.json", help="output JSON path"
    )
    p_pmj.add_argument(
        "--quick", action="store_true",
        help="smoke mode: fewer epochs",
    )
    p_pmj.add_argument(
        "--check", metavar="FILE", default=None,
        help="validate an existing BENCH_multijob.json instead of running",
    )
    p_pmj.add_argument(
        "--min-improvement", type=float, default=None,
        help="co-tenant RS-stage p90 isolation threshold "
        "(default: the guarded 1.5)",
    )
    p_pmj.set_defaults(fn=cmd_perf_multijob)
    return parser


def main(argv=None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # stdout closed early (e.g. piped into `head`) — normal CLI exit.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
