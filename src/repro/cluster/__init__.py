"""The distributed-training engine: worker/PS processes on the simulator.

One engine serves both experiment families:

* **numeric mode** — workers hold real mini-model replicas and compute real
  gradients at their compute events; parameter updates execute in virtual-
  time order, so staleness (ASP) and partial/corrected updates (OSP's LGP)
  have their true numeric effect. Used for accuracy, iterations-to-accuracy
  and time-to-accuracy experiments (Figs. 6b, 6c, 7, 8).
* **timing mode** — gradients are byte counts from the paper-scale model
  cards; losses follow a calibrated synthetic curve. Used for throughput /
  BST / overhead experiments at the paper's real model sizes (Figs. 1, 2,
  3, 6a, 6d, 9).

Communication times always come from :mod:`repro.netsim`; compute times
from :mod:`repro.hardware`.
"""

from repro.cluster.spec import (
    ClusterSpec,
    MembershipSchedule,
    TrainingPlan,
    WorkerJoin,
    WorkerLeave,
)
from repro.cluster.ps import ParameterServer
from repro.cluster.engines import Engine, NumericEngine, TimingEngine
from repro.cluster.context import TrainerContext
from repro.cluster.trainer import DistributedTrainer, TrainingResult

__all__ = [
    "ClusterSpec",
    "DistributedTrainer",
    "Engine",
    "MembershipSchedule",
    "NumericEngine",
    "ParameterServer",
    "TimingEngine",
    "TrainerContext",
    "TrainingPlan",
    "TrainingResult",
    "WorkerJoin",
    "WorkerLeave",
]
