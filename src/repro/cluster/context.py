"""TrainerContext: everything a sync model's worker process can touch."""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.cluster.engines import Engine

from typing import Optional, Sequence

import numpy as np

from repro.cluster.ps import ParameterServer
from repro.cluster.spec import ClusterSpec, TrainingPlan, WorkerJoin
from repro.metrics.recorder import EpochRecord, IterationRecord, Recorder
from repro.netsim.network import Network
from repro.obs.tracer import NULL_TRACER
from repro.simcore.environment import Environment
from repro.simcore.events import Event
from repro.simcore.resources import Barrier, QuorumBarrier, Resource


class TrainerContext:
    """Shared state + primitives for worker processes.

    Created by :class:`~repro.cluster.trainer.DistributedTrainer`; sync
    models receive it in ``setup`` and in every worker process.
    """

    def __init__(
        self,
        env: Environment,
        network: Network,
        spec: ClusterSpec,
        plan: TrainingPlan,
        engine: Engine,
        ps: ParameterServer,
        recorder: Recorder,
        iterations_per_epoch: int,
    ) -> None:
        self.env = env
        self.network = network
        self.spec = spec
        self.plan = plan
        self.engine = engine
        self.ps = ps
        self.recorder = recorder
        self.iterations_per_epoch = iterations_per_epoch
        self._stop_after_epoch: Optional[int] = None
        self._alive = set(range(spec.n_workers))
        self._failure_schedule: dict[int, int] = {}
        self._restart_schedule: dict[int, int] = {}
        self._recover_modes: dict[int, str] = {}
        #: first epoch this run executes (> 0 when resumed from a checkpoint)
        self.start_epoch = 0
        #: the run's CheckpointManager, set by the trainer when enabled
        self.checkpoints = None
        #: called with the new alive-count after every membership change
        #: (crash, restart, elastic join/leave); OSP re-derives U_max here
        self.membership_hooks: list = []
        self._join_schedule: dict[int, int] = {}
        self._leave_schedule: dict[int, int] = {}
        if spec.membership is not None:
            for ev in spec.membership.events:
                if isinstance(ev, WorkerJoin):
                    self._join_schedule[ev.worker] = ev.epoch
                    self._alive.discard(ev.worker)
                else:
                    self._leave_schedule[ev.worker] = ev.epoch
        self._epoch_arrivals: dict[int, int] = {}
        self._epoch_losses: dict[int, list[float]] = {}
        self._completed: set[int] = set()
        self._completion_events: dict[int, Event] = {}
        self._quorum_barriers: list[QuorumBarrier] = []
        #: the run's FaultInjector, set by the trainer when a schedule exists
        self.faults = None
        self._best_metric = -np.inf
        self._epochs_since_improvement = 0
        self._lr_scheduler = None  # set by trainer
        self._agg_resources = (
            [Resource(env, capacity=1) for _ in spec.ps_nodes]
            if spec.ps_agg_bandwidth is not None
            else None
        )
        #: hooks the active sync model can register
        self.epoch_end_hooks: list = []
        #: Co-tenancy compute-slot contention: worker -> shared-host
        #: :class:`Resource` (set by the multi-job runner for shared-host
        #: placements). ``None`` — the single-tenant default — keeps
        #: :meth:`compute` on the exact legacy event sequence.
        self.compute_slots: Optional[dict[int, Resource]] = None

    # -- observability --------------------------------------------------------
    @property
    def trace(self):
        """The run's tracer, or the shared no-op tracer when disabled —
        call sites never need a None check."""
        return self.env.tracer or NULL_TRACER

    # -- lifecycle ------------------------------------------------------------
    @property
    def stopped(self) -> bool:
        """True once early stopping has triggered."""
        return self._stop_after_epoch is not None

    def skip_epoch(self, epoch: int) -> bool:
        """Should a worker skip (not start) this epoch?

        Early stopping is epoch-indexed rather than an instant flag: when it
        triggers during epoch ``e``'s evaluation, epoch ``e+1`` is declared
        the last. Workers that already started ``e+1`` finish it; workers
        that have not will still run it — so barrier-based models (BSP,
        OSP's RS) never end up with some workers inside a barrier that the
        rest have abandoned.
        """
        return self._stop_after_epoch is not None and epoch > self._stop_after_epoch

    # -- fault injection ----------------------------------------------------
    @property
    def alive_workers(self) -> frozenset[int]:
        """Workers still participating."""
        return frozenset(self._alive)

    def schedule_failure(
        self,
        worker: int,
        before_epoch: int,
        restart_epoch: Optional[int] = None,
        recover: str = "cold",
    ) -> None:
        """Inject a crash: ``worker`` dies before starting ``before_epoch``.

        This demonstrates the PS architecture's fault resilience the paper
        motivates in §1 (vs Ring-AllReduce's fragility): training continues
        with the surviving workers. Barrier-free sync models (ASP, SSP/DSSP,
        R²SP) shrink naturally; barrier-based models must use
        :meth:`quorum_barrier` so the quorum shrinks with the cluster (OSP
        does; plain BSP keeps its static barrier and is not crash-safe).

        ``restart_epoch`` (optional) makes this a crash/restart cycle: the
        worker rejoins once the survivors finish epoch ``restart_epoch−1``.
        ``recover="checkpoint"`` makes the restarted worker resume its
        replica from the latest checkpoint instead of cold-syncing from the
        PS (requires the run to have a checkpoint manager).
        """
        if not (0 <= worker < self.spec.n_workers):
            raise ValueError(f"unknown worker {worker}")
        if before_epoch < 1:
            raise ValueError("workers can only fail after completing an epoch")
        if restart_epoch is not None and restart_epoch <= before_epoch:
            raise ValueError("restart_epoch must be after before_epoch")
        if recover not in ("cold", "checkpoint"):
            raise ValueError(f"recover must be 'cold' or 'checkpoint', got {recover!r}")
        self._failure_schedule[worker] = before_epoch
        if restart_epoch is not None:
            self._restart_schedule[worker] = restart_epoch
        self._recover_modes[worker] = recover

    def should_fail(self, worker: int, epoch: int) -> bool:
        """Does the injected fault schedule kill this worker now?"""
        target = self._failure_schedule.get(worker)
        return target is not None and epoch >= target

    def retire_worker(self, worker: int) -> Optional[int]:
        """Remove a (crashed) worker; completes any epochs it was the last
        missing arrival for; shrinks registered quorum barriers. Returns the
        worker's scheduled restart epoch (None = permanent loss)."""
        if worker in self._alive:
            self._alive.discard(worker)
            self.recorder.incr("faults.worker_crash")
            self.trace.instant(
                "faults.worker_crash", actor="faults", track="faults", worker=worker
            )
        # Consume the schedule entry so a restarted worker does not re-crash.
        self._failure_schedule.pop(worker, None)
        if self._alive:
            self._notify_membership()
            for epoch in sorted(self._epoch_arrivals):
                self._maybe_complete_epoch(epoch)
        return self._restart_schedule.pop(worker, None)

    def revive_worker(self, worker: int) -> bool:
        """Re-admit a restarted worker.

        The replica is cold-synced from the PS unless the worker's crash
        was scheduled with ``recover="checkpoint"`` and a snapshot is
        available, in which case it resumes from the checkpointed replica.

        Returns False — and leaves the worker retired — if early stopping
        already ended the run; rejoining closed epochs would hang.
        """
        if self.stopped:
            return False
        self._alive.add(worker)
        self.recorder.incr("faults.worker_restart")
        self.trace.instant(
            "faults.worker_restart", actor="faults", track="faults", worker=worker
        )
        self._notify_membership()
        recovered = False
        if self._recover_modes.get(worker) == "checkpoint" and self.checkpoints is not None:
            recovered = self.checkpoints.recover_worker(worker)
            if recovered:
                self.recorder.incr("ckpt.worker_recover")
                self.trace.instant(
                    "ckpt.worker_recover", actor="ckpt", track="ckpt", worker=worker
                )
        if not recovered:
            self.engine.sync_replica(worker, self.ps)
        return True

    def _notify_membership(self) -> None:
        """Resize quorum barriers and tell listeners the cluster changed size."""
        n = len(self._alive)
        for barrier in self._quorum_barriers:
            barrier.set_parties(max(1, n))
        for hook in self.membership_hooks:
            hook(n)

    # -- elastic membership ---------------------------------------------------
    def entry_epoch(self, worker: int) -> Optional[int]:
        """First epoch ``worker`` participates in, or None if it never will.

        ``start_epoch`` for initially-present workers; the scheduled join
        epoch for elastic joiners; the restart epoch for workers whose
        crash/restart cycle spans a checkpoint resume.
        """
        if worker in self._alive:
            return self.start_epoch
        join = self._join_schedule.get(worker)
        if join is not None and join > self.start_epoch:
            return join
        restart = self._restart_schedule.get(worker)
        if restart is not None and restart > self.start_epoch:
            return restart
        return None

    def admit_worker(self, worker: int) -> bool:
        """Bring an absent worker in at an epoch boundary (elastic join, or
        a restart whose crash happened before a checkpoint resume)."""
        if worker in self._join_schedule and worker not in self._restart_schedule:
            return self.join_worker(worker)
        self._restart_schedule.pop(worker, None)
        return self.revive_worker(worker)

    def join_worker(self, worker: int) -> bool:
        """Elastic join: admit a brand-new worker with a fresh model copy."""
        if self.stopped:
            return False
        self._alive.add(worker)
        self._join_schedule.pop(worker, None)
        self.recorder.incr("elastic.worker_join")
        self.trace.instant(
            "elastic.worker_join", actor="elastic", track="elastic", worker=worker
        )
        self._notify_membership()
        self.engine.sync_replica(worker, self.ps)
        return True

    def should_leave(self, worker: int, epoch: int) -> bool:
        """Does the membership schedule retire this worker at this boundary?"""
        target = self._leave_schedule.get(worker)
        return target is not None and epoch >= target

    def depart_worker(self, worker: int) -> None:
        """Elastic leave: gracefully remove a worker at an epoch boundary."""
        if worker not in self._alive:
            return
        self._alive.discard(worker)
        self._leave_schedule.pop(worker, None)
        self.recorder.incr("elastic.worker_leave")
        self.trace.instant(
            "elastic.worker_leave", actor="elastic", track="elastic", worker=worker
        )
        if self._alive:
            self._notify_membership()
            for epoch in sorted(self._epoch_arrivals):
                self._maybe_complete_epoch(epoch)

    # -- checkpointing --------------------------------------------------------
    def checkpoint_pause(self, worker: int, epoch: int):
        """Generator: epoch-boundary checkpoint barrier (no-op when no
        manager is attached or the epoch is not a checkpoint boundary)."""
        manager = self.checkpoints
        if manager is not None:
            yield from manager.pause(self, worker, epoch)

    def checkpoint_gate(self, epoch: int):
        """Pending checkpoint-release event for ``epoch``, or None.

        Workers admitted at a boundary yield this so they cannot race
        ahead of an in-progress snapshot drain.
        """
        manager = self.checkpoints
        if manager is None:
            return None
        return manager.gate(epoch)

    def load_checkpoint_meta(self, meta: dict) -> None:
        """Restore context state from a checkpoint's metadata blob."""
        self.start_epoch = int(meta["next_epoch"])
        self._alive = set(int(w) for w in meta["alive"])
        self._failure_schedule = {int(w): int(e) for w, e in meta["failure_schedule"].items()}
        self._restart_schedule = {int(w): int(e) for w, e in meta["restart_schedule"].items()}
        self._recover_modes = {int(w): str(m) for w, m in meta.get("recover_modes", {}).items()}
        self._join_schedule = {int(w): int(e) for w, e in meta.get("join_schedule", {}).items()}
        self._leave_schedule = {int(w): int(e) for w, e in meta.get("leave_schedule", {}).items()}
        # Epochs before the resume point are history; completion events for
        # them must fire immediately (restarting workers may wait on them).
        self._completed = set(range(self.start_epoch))
        early = meta.get("early_stop", {})
        self._best_metric = float(early.get("best_metric", -np.inf))
        self._epochs_since_improvement = int(early.get("epochs_since_improvement", 0))
        stop_after = early.get("stop_after_epoch")
        self._stop_after_epoch = None if stop_after is None else int(stop_after)

    def epoch_completion(self, epoch: int) -> Event:
        """Event that succeeds once ``epoch`` has been completed by all
        alive workers (immediately if it already has, or if the run ended
        early — a restarting worker must never wait on an epoch that will
        no longer happen)."""
        ev = self._completion_events.get(epoch)
        if ev is None:
            ev = Event(self.env)
            self._completion_events[epoch] = ev
            if epoch in self._completed or self.stopped:
                ev.succeed(epoch)
        return ev

    @property
    def current_lr(self) -> float:
        """The effective learning rate right now (PS optimizer's, if any)."""
        if self.ps.optimizer is not None:
            return self.ps.optimizer.lr
        return self.plan.lr

    # -- communication ----------------------------------------------------------
    def transfer_to_ps(
        self,
        worker: int,
        nbytes: float,
        tag=None,
        ps_index: int = 0,
        **flow_kwargs,
    ) -> Event:
        """Worker → PS transfer; returns an event that fires once the bytes
        have arrived AND that PS's (serialised, memory-bound) aggregator has
        ingested them — see ``ClusterSpec.ps_agg_bandwidth``. Extra keyword
        arguments (``prio``, ``weight``, ``slice_bytes``) pass through to
        :meth:`repro.netsim.network.Network.transfer`."""
        net_done = self.network.transfer(
            self.spec.worker_node(worker),
            self.spec.ps_nodes[ps_index],
            nbytes,
            tag=tag,
            **flow_kwargs,
        )
        if self._agg_resources is None or nbytes <= 0:
            return net_done
        done = Event(self.env)
        self.env.process(
            self._ingest(net_done, nbytes, done, self._agg_resources[ps_index])
        )
        return done

    def _ingest(self, net_done: Event, nbytes: float, done: Event, agg: Resource):
        record = yield net_done
        req = agg.request()
        yield req
        try:
            yield self.env.timeout(nbytes / self.spec.ps_agg_bandwidth)
        finally:
            agg.release()
        done.succeed(record)

    def transfer_from_ps(
        self,
        worker: int,
        nbytes: float,
        tag=None,
        ps_index: int = 0,
        **flow_kwargs,
    ) -> Event:
        """PS → worker transfer; returns the completion event. Extra
        keyword arguments pass through to ``Network.transfer``."""
        return self.network.transfer(
            self.spec.ps_nodes[ps_index],
            self.spec.worker_node(worker),
            nbytes,
            tag=tag,
            **flow_kwargs,
        )

    def barrier(self) -> Barrier:
        """A fresh cyclic barrier over all workers."""
        return Barrier(self.env, self.spec.n_workers)

    def quorum_barrier(self, timeout=None, on_degraded=None) -> QuorumBarrier:
        """A crash-aware barrier: its party count tracks the alive-worker
        set (:meth:`retire_worker`/:meth:`revive_worker` resize every
        barrier created here), and an optional virtual-time ``timeout``
        releases a degraded quorum instead of deadlocking."""
        barrier = QuorumBarrier(
            self.env,
            max(1, len(self._alive)),
            timeout=timeout,
            on_degraded=on_degraded,
        )
        self._quorum_barriers.append(barrier)
        return barrier

    # -- compute -----------------------------------------------------------------
    def compute(self, worker: int, epoch: int, batch: int, extra_time: float = 0.0):
        """Generator: advance virtual time by this iteration's (jittered)
        compute time, then run the numeric math. Returns
        ``(grads, loss, samples, t_compute, t_start)``.

        Under a shared-host co-tenant placement (``compute_slots`` set) the
        worker first acquires its host's compute-slot Resource, so jobs
        oversubscribing a GPU serialise their compute phases; the queue
        wait is folded into the returned compute time so iteration
        accounting stays conservative. Single-tenant runs (``compute_slots``
        is None) take the legacy event sequence untouched.
        """
        iteration = epoch * self.iterations_per_epoch + batch
        base = self.engine.base_compute_time(self.spec) + extra_time
        if self.faults is not None:
            base *= self.faults.compute_factor(worker, self.env.now)
        t_c = self.spec.jitter.sample(base, worker, iteration)
        t_start = self.env.now
        slot = None if self.compute_slots is None else self.compute_slots.get(worker)
        span = self.trace.begin(
            "compute", f"worker {worker}", worker=worker, iteration=iteration
        )
        if slot is not None:
            yield slot.request()
            try:
                yield self.env.timeout(t_c)
                grads, loss, samples = self.engine.compute(worker, epoch, batch)
            finally:
                slot.release()
            # Fold the slot queue wait into the reported compute time so
            # start + compute + sync still tiles the iteration.
            t_c = self.env.now - t_start
        else:
            yield self.env.timeout(t_c)
            grads, loss, samples = self.engine.compute(worker, epoch, batch)
        self.trace.end(span, loss=loss)
        self._epoch_losses.setdefault(epoch, []).append(loss)
        return grads, loss, samples, t_c, t_start

    # -- recording ------------------------------------------------------------------
    def record_iteration(
        self,
        worker: int,
        iteration: int,
        t_start: float,
        t_compute: float,
        t_sync: float,
        loss: float,
        samples: int,
    ) -> None:
        self.recorder.record_iteration(
            IterationRecord(
                worker=worker,
                iteration=iteration,
                start_time=t_start,
                compute_time=t_compute,
                sync_time=t_sync,
                loss=loss,
                samples=samples,
            )
        )

    def epoch_done(self, worker: int, epoch: int) -> None:
        """Signal that ``worker`` finished ``epoch``; the last (alive)
        arrival triggers evaluation, LR scheduling, sync-model hooks and
        the early-stopping check."""
        self._epoch_arrivals[epoch] = self._epoch_arrivals.get(epoch, 0) + 1
        self._maybe_complete_epoch(epoch)

    def _maybe_complete_epoch(self, epoch: int) -> None:
        if epoch in self._completed or not self._alive:
            return
        count = self._epoch_arrivals.get(epoch, 0)
        if count < len(self._alive):
            return
        # mark completed so retire_worker re-checks cannot double-fire
        self._completed.add(epoch)

        losses = self._epoch_losses.get(epoch, [0.0])
        train_loss = float(np.mean(losses))
        iterations_done = self.recorder.total_iterations
        metric = self.engine.evaluate(self.ps, iterations_done)
        self.recorder.record_epoch(
            EpochRecord(
                epoch=epoch,
                time=self.env.now,
                train_loss=train_loss,
                metric=metric,
                iterations_done=iterations_done,
            )
        )
        if self._lr_scheduler is not None:
            self._lr_scheduler.epoch_end(epoch)
        for hook in self.epoch_end_hooks:
            hook(epoch, train_loss, metric)
        self._check_early_stop(metric, epoch)
        ev = self._completion_events.get(epoch)
        if ev is not None and not ev.triggered:
            ev.succeed(epoch)

    def _check_early_stop(self, metric: float, epoch: int) -> None:
        patience = self.plan.early_stop_patience
        if patience is None:
            return
        if metric > self._best_metric + self.plan.early_stop_delta:
            self._best_metric = metric
            self._epochs_since_improvement = 0
        else:
            self._epochs_since_improvement += 1
            if (
                self._epochs_since_improvement >= patience
                and self._stop_after_epoch is None
            ):
                self._stop_after_epoch = epoch + 1
                # Epochs beyond the stop point will never complete; release
                # anyone (a restarting worker) waiting on them.
                for ev in self._completion_events.values():
                    if not ev.triggered:
                        ev.succeed(None)


__all__ = ["TrainerContext"]
