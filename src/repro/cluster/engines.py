"""Engines: what happens at a worker's compute event.

``NumericEngine`` runs real forward/backward passes on per-worker mini-model
replicas (accuracy fidelity); ``TimingEngine`` substitutes calibrated
synthetic losses and uses only the paper-scale byte/FLOP bookkeeping
(timing fidelity at full model size). Both expose identical interfaces so
every sync model runs unchanged in either mode.

Wire sizes: in numeric mode each mini-layer's byte count is scaled so the
whole model weighs exactly the paper-scale ``card.model_bytes``; in timing
mode layers follow :func:`repro.nn.models.registry.synthetic_layer_sizes`.
Either way OSP's GIB splits real per-layer byte distributions.
"""

from __future__ import annotations

import math
import os
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.autograd.tensor import no_grad
from repro.cluster.ps import ParameterServer
from repro.cluster.spec import ClusterSpec, TrainingPlan
from repro.core.pgp import layer_importance
from repro.core.splitter import GradientSplitter
from repro.data.dataset import Dataset
from repro.data.loader import BatchLoader
from repro.data.shard import shard_dirichlet, shard_iid
from repro.hardware.compute import ComputeModel
from repro.nn.arena import (
    AggregateView,
    ArenaLayout,
    ParamArena,
    arena_of,
    flat_layer_importance,
    pack_plane,
    unpack_plane,
)
from repro.nn.loss import accuracy, cross_entropy, qa_span_accuracy, qa_span_loss
from repro.nn.models.registry import BYTES_PER_PARAM, ModelCard, synthetic_layer_sizes
from repro.optim.sgd import SGD


def _arena_enabled(use_arena: bool) -> bool:
    """Env kill-switch: ``REPRO_FLAT_ARENA=0`` forces the dict path (used
    by the bit-parity tests and as an escape hatch)."""
    return use_arena and os.environ.get("REPRO_FLAT_ARENA", "1").lower() not in (
        "0",
        "false",
    )


class Engine:
    """Common interface (see module docstring). Subclasses implement the
    numeric or timing behaviour."""

    card: ModelCard
    splitter: GradientSplitter
    layer_bytes: dict[str, int]
    #: Optional :class:`repro.obs.Tracer` (set by the trainer when tracing
    #: is enabled); evaluations become PS-track instants.
    tracer = None

    def _trace_eval(self, metric: float, iterations_done: int) -> None:
        if self.tracer:
            self.tracer.instant(
                "eval", actor="ps", track="ps",
                metric=metric, iterations_done=iterations_done,
            )

    # -- sizes -------------------------------------------------------------
    @property
    def model_bytes(self) -> float:
        """Total gradient/parameter wire size."""
        return float(sum(self.layer_bytes.values()))

    def bytes_of_layers(self, layers: Sequence[str]) -> float:
        """Wire bytes of a set of layers."""
        return float(sum(self.layer_bytes[l] for l in layers))

    # -- abstract ------------------------------------------------------------
    def base_compute_time(self, spec: ClusterSpec) -> float:
        """Nominal per-iteration T_c on this cluster's GPU (the card's
        kernel-efficiency factor applied)."""
        cm = ComputeModel(spec.gpu, fixed_overhead=spec.fixed_overhead)
        return (
            cm.iteration_time(self.card.paper_flops_per_sample, self.card.batch_size)
            / self.card.efficiency_factor
        )

    def pgp_compute_time(self, spec: ClusterSpec) -> float:
        """PS-side PGP + sort cost (charged to a co-located worker, §4.4)."""
        cm = ComputeModel(spec.gpu, fixed_overhead=0.0)
        return cm.pgp_time(self.card.paper_params, self.card.paper_layers)

    def make_ps(self, plan: TrainingPlan) -> ParameterServer:
        raise NotImplementedError

    def compute(self, worker: int, epoch: int, batch: int):
        """Run one iteration's math. Returns (grads|None, loss, samples)."""
        raise NotImplementedError

    def worker_params(self, worker: int) -> dict[str, np.ndarray]:
        """Live views of the worker replica's parameter arrays ({} in
        timing mode)."""
        raise NotImplementedError

    def replica_arena(self, worker: int):
        """The worker replica's :class:`ParamArena`, or None when the
        engine does not use flat storage (timing mode, arena disabled)."""
        return None

    def sync_replica(
        self, worker: int, ps: ParameterServer, names: Optional[Sequence[str]] = None
    ) -> None:
        """Overwrite a replica's parameters (all or subset) from the PS."""
        raise NotImplementedError

    def evaluate(self, ps: ParameterServer, iterations_done: int) -> float:
        """Global model quality (top-1 or F1-style, in [0,1])."""
        raise NotImplementedError

    def ps_layer_importance(self, ps: ParameterServer) -> dict[str, float]:
        """PGP layer importance from the PS's state (Eq. 4)."""
        raise NotImplementedError

    # -- checkpointing -------------------------------------------------------
    def checkpoint_state(self) -> dict:
        """JSON-able engine state beyond the parameter planes (default none)."""
        return {}

    def restore_checkpoint_state(self, state: dict) -> None:
        """Restore state captured by :meth:`checkpoint_state`."""


class NumericEngine(Engine):
    """Real gradients on mini-model replicas.

    Parameters
    ----------
    card:
        Workload card (timing numbers + mini-model factory).
    train, test:
        Datasets; ``train`` is sharded IID across workers.
    spec:
        Cluster description (worker count).
    batch_size:
        Mini-batch size for the numeric models (timing always uses the
        card's paper batch size).
    eval_samples:
        Test-set subsample size per evaluation (speed knob).
    sharding:
        ``"iid"`` (default) or ``"dirichlet"`` — the non-IID regime the
        paper highlights as HSP's weakness (§2.2.1). ``dirichlet_alpha``
        controls the skew (smaller = more skewed).
    use_arena:
        Bind every replica and the global model to flat parameter arenas
        (:mod:`repro.nn.arena`) so the PS/PGP/LGP/sync hot path runs
        vectorized. Bit-identical to the dict path; disable for A/B
        parity checks (or via ``REPRO_FLAT_ARENA=0``).
    """

    def __init__(
        self,
        card: ModelCard,
        train: Dataset,
        test: Dataset,
        spec: ClusterSpec,
        batch_size: int = 16,
        seed: int = 0,
        eval_samples: int = 512,
        sharding: str = "iid",
        dirichlet_alpha: float = 0.5,
        use_arena: bool = True,
    ) -> None:
        self.card = card
        self.spec = spec
        self.seed = seed
        self.test = test
        self.eval_samples = eval_samples
        self.global_model = card.make_mini(seed=seed)
        self.replicas = [card.make_mini(seed=seed) for _ in range(spec.n_workers)]
        if sharding == "iid":
            shards = shard_iid(train, spec.n_workers, seed=seed)
        elif sharding == "dirichlet":
            shards = shard_dirichlet(
                train, spec.n_workers, alpha=dirichlet_alpha, seed=seed
            )
        else:
            raise ValueError(f"unknown sharding {sharding!r}")
        # Dirichlet shards can be smaller than a batch; keep partial
        # batches there (IID keeps the fixed-size fast path).
        drop_last = sharding == "iid"
        self.loaders = [
            BatchLoader(
                s,
                batch_size=min(batch_size, len(s)) if not drop_last else batch_size,
                seed=seed + 1000 + w,
                drop_last=drop_last,
            )
            for w, s in enumerate(shards)
        ]
        self.shard_sizes = [len(s) for s in shards]
        self.splitter = GradientSplitter.from_module(self.global_model)
        sizes = {n: p.size for n, p in self.global_model.named_parameters()}
        raw = self.splitter.layer_bytes(sizes, bytes_per_param=BYTES_PER_PARAM)
        scale = card.model_bytes / sum(raw.values())
        self.layer_bytes = {l: int(round(b * scale)) for l, b in raw.items()}
        self._eval_model = card.make_mini(seed=seed)
        self._eval_model.eval()
        self._use_arena = _arena_enabled(use_arena)
        if self._use_arena:
            sizes_shapes = {
                n: p.data.shape for n, p in self.global_model.named_parameters()
            }
            self._layout = ArenaLayout(self.splitter.layer_params, sizes_shapes)
            self._global_arena = ParamArena(self.global_model, self._layout)
            self._replica_arenas = [
                ParamArena(r, self._layout) for r in self.replicas
            ]
            self._eval_arena = ParamArena(self._eval_model, self._layout)
        else:
            self._layout = None
            self._global_arena = None
            self._replica_arenas = [None] * spec.n_workers
            self._eval_arena = None
        self._ckpt_layout: Optional[ArenaLayout] = None

    @property
    def iterations_per_epoch(self) -> int:
        # One epoch = a full pass over the *largest* shard; workers with
        # smaller shards wrap around (see the modulo in :meth:`compute`).
        # Under IID sharding all shards are equal so this is exact; under
        # Dirichlet sharding the alternative (min) would starve the big
        # shards of their own data.
        return max(l.batches_per_epoch for l in self.loaders)

    def make_ps(self, plan: TrainingPlan) -> ParameterServer:
        opt = SGD(
            self.global_model,
            lr=plan.lr,
            momentum=plan.momentum,
            weight_decay=plan.weight_decay,
        )
        weights = np.asarray(self.shard_sizes, dtype=float)
        return ParameterServer(
            self.global_model, opt, self.spec.n_workers, worker_weights=weights
        )

    def compute(self, worker: int, epoch: int, batch: int):
        model = self.replicas[worker]
        loader = self.loaders[worker]
        x, y = loader.batch(epoch, batch % loader.batches_per_epoch)
        model.train()
        model.zero_grad()
        if self.card.task == "classification":
            loss = cross_entropy(model(x), y)
        else:
            s_logits, e_logits = model(x)
            loss = qa_span_loss(s_logits, e_logits, y[:, 0], y[:, 1])
        loss.backward()
        arena = self._replica_arenas[worker]
        if arena is not None:
            grads = arena.gather_grads()
        else:
            grads = {
                name: p.grad.copy()
                for name, p in model.named_parameters()
                if p.grad is not None
            }
        # Virtual samples follow the paper-scale batch so throughput numbers
        # are comparable with timing-mode runs.
        return grads, float(loss.item()), self.card.batch_size

    def worker_params(self, worker: int) -> dict[str, np.ndarray]:
        return {n: p.data for n, p in self.replicas[worker].named_parameters()}

    def replica_arena(self, worker: int):
        return self._replica_arenas[worker]

    def sync_replica(
        self, worker: int, ps: ParameterServer, names: Optional[Sequence[str]] = None
    ) -> None:
        arena = self._replica_arenas[worker]
        if (
            arena is not None
            and ps.arena is not None
            and ps.arena.layout is arena.layout
        ):
            src, dst = ps.arena.flat, arena.flat
            if names is None:
                dst[:] = src
            else:
                for sl in arena.layout.slices_of(tuple(names)):
                    dst[sl] = src[sl]
            return
        snap = ps.snapshot(names, copy=False)
        replica = dict(self.replicas[worker].named_parameters())
        for name, value in snap.items():
            replica[name].data[...] = value

    def evaluate(self, ps: ParameterServer, iterations_done: int) -> float:
        if (
            self._eval_arena is not None
            and ps.arena is not None
            and ps.arena.layout is self._eval_arena.layout
        ):
            self._eval_arena.flat[:] = ps.arena.flat
        else:
            state = ps.snapshot(copy=False)
            self._eval_model.load_state_dict(state)
        # Train mode so BatchNorm uses batch statistics: the PS's canonical
        # model never runs forward passes, so it has no meaningful running
        # stats to evaluate with. None of the registry models use dropout
        # at a non-zero rate, so train mode is otherwise equivalent.
        self._eval_model.train()
        n = min(self.eval_samples, len(self.test))
        x = self.test.inputs[:n]
        y = self.test.targets[:n]
        with no_grad():
            if self.card.task == "classification":
                metric = accuracy(self._eval_model(x), y)
            else:
                s_logits, e_logits = self._eval_model(x)
                metric = qa_span_accuracy(s_logits, e_logits, y[:, 0], y[:, 1])
        self._trace_eval(metric, iterations_done)
        return metric

    def state_layout(self) -> ArenaLayout:
        """Layout used to (de)serialise checkpoint planes.

        The arena layout when one exists; otherwise an equivalent layout is
        built on demand so dict-mode checkpoints have the same byte layout.
        """
        if self._layout is not None:
            return self._layout
        if self._ckpt_layout is None:
            shapes = {n: p.data.shape for n, p in self.global_model.named_parameters()}
            self._ckpt_layout = ArenaLayout(self.splitter.layer_params, shapes)
        return self._ckpt_layout

    def replica_plane(self, worker: int) -> np.ndarray:
        """Worker replica's parameters packed into one plane (checkpointing)."""
        arena = self._replica_arenas[worker]
        if arena is not None:
            return arena.flat.copy()
        return pack_plane(
            self.state_layout(),
            {n: p.data for n, p in self.replicas[worker].named_parameters()},
        )

    def load_replica_plane(self, worker: int, plane: np.ndarray) -> None:
        """Restore a worker replica from a checkpoint plane, in place."""
        arena = self._replica_arenas[worker]
        if arena is not None:
            arena.flat[:] = plane
            return
        unpack_plane(
            self.state_layout(),
            plane,
            {n: p.data for n, p in self.replicas[worker].named_parameters()},
        )

    def ps_layer_importance(self, ps: ParameterServer) -> dict[str, float]:
        grads = ps.last_aggregated
        if isinstance(grads, AggregateView) and ps.arena is not None:
            # One |g·p| pass over the planes + per-parameter slice sums;
            # bit-identical to the dict path (see flat_layer_importance).
            return flat_layer_importance(
                grads, ps.arena.view(), self.splitter.layer_params
            )
        params = ps.snapshot(copy=False)
        out: dict[str, float] = {}
        for layer, names in self.splitter.layer_params.items():
            if all(n in grads for n in names):
                out[layer] = layer_importance(
                    grads, params, {layer: names}
                )[layer]
            else:
                # Never-synchronized layer: treat as maximally important so
                # it stays in RS until we have evidence.
                out[layer] = float("inf")
        return out


class TimingEngine(Engine):
    """Paper-scale byte/FLOP bookkeeping with synthetic learning curves.

    The loss curve is ``floor + (L0 − floor)·exp(−step/tau)`` — the standard
    empirical shape — feeding Algorithm 1; the metric curve rises toward
    ``max_metric`` correspondingly.

    ``tau`` (the curve's time constant, in per-worker iterations) is a
    constructor argument; it defaults to ``total_iterations / 3``. The
    attribute remains a plain writable alias for backwards compatibility,
    but callers should prefer passing it at construction.
    """

    def __init__(
        self,
        card: ModelCard,
        spec: ClusterSpec,
        total_iterations: int,
        initial_loss: float = 2.3,
        loss_floor: float = 0.05,
        max_metric: float = 0.93,
        seed: int = 0,
        tau: Optional[float] = None,
    ) -> None:
        if total_iterations < 1:
            raise ValueError(f"total_iterations must be >= 1, got {total_iterations}")
        if tau is not None and tau <= 0:
            raise ValueError(f"tau must be positive, got {tau}")
        self.card = card
        self.spec = spec
        self.total_iterations = total_iterations
        self.initial_loss = initial_loss
        self.loss_floor = loss_floor
        self.max_metric = max_metric
        self.tau = float(tau) if tau is not None else max(1.0, total_iterations / 3.0)
        sizes = synthetic_layer_sizes(card)
        width = len(str(len(sizes)))
        layer_params = {
            f"layer{str(i).zfill(width)}": (f"layer{str(i).zfill(width)}.w",)
            for i in range(len(sizes))
        }
        self.splitter = GradientSplitter(layer_params)
        self.layer_bytes = {
            layer: int(sizes[i]) * BYTES_PER_PARAM
            for i, layer in enumerate(layer_params)
        }
        rng = np.random.default_rng(seed)
        # Static pseudo-importance: heavy-tailed noise on a depth-decaying
        # prior. Taylor/PGP importance is empirically concentrated in early
        # conv layers and low in late/classifier layers (Molchanov et al.,
        # the paper's ref [31]) — without this prior a giant low-importance
        # layer (VGG's fc6) could be randomly ranked important and never
        # deferred, which no real importance profile exhibits.
        n_layers = len(sizes)
        prior = np.geomspace(4.0, 0.25, n_layers)
        noise = np.exp(rng.normal(0.0, 0.5, size=n_layers))
        self._importance = {
            layer: float(p * v)
            for layer, p, v in zip(layer_params, prior, noise)
        }
        self._steps_done = np.zeros(spec.n_workers, dtype=np.int64)

    def synthetic_loss(self, step: int) -> float:
        """Loss after ``step`` per-worker iterations."""
        return self.loss_floor + (self.initial_loss - self.loss_floor) * math.exp(
            -step / self.tau
        )

    def make_ps(self, plan: TrainingPlan) -> ParameterServer:
        return ParameterServer(None, None, self.spec.n_workers)

    def compute(self, worker: int, epoch: int, batch: int):
        step = int(self._steps_done[worker])
        self._steps_done[worker] += 1
        return None, self.synthetic_loss(step), self.card.batch_size

    def worker_params(self, worker: int) -> dict[str, np.ndarray]:
        return {}

    def sync_replica(
        self, worker: int, ps: ParameterServer, names: Optional[Sequence[str]] = None
    ) -> None:
        pass

    def evaluate(self, ps: ParameterServer, iterations_done: int) -> float:
        per_worker = iterations_done / max(1, self.spec.n_workers)
        metric = self.max_metric * (1.0 - math.exp(-per_worker / self.tau))
        self._trace_eval(metric, iterations_done)
        return metric

    def ps_layer_importance(self, ps: ParameterServer) -> dict[str, float]:
        return dict(self._importance)

    def checkpoint_state(self) -> dict:
        # The synthetic loss curve is a function of per-worker step counts;
        # they are the engine's only mutable state.
        return {"steps_done": [int(s) for s in self._steps_done]}

    def restore_checkpoint_state(self, state: dict) -> None:
        steps = state.get("steps_done")
        if steps is None:
            return
        if len(steps) != self.spec.n_workers:
            raise ValueError(
                f"checkpoint has {len(steps)} worker step counts; spec has "
                f"{self.spec.n_workers} workers"
            )
        self._steps_done = np.asarray(steps, dtype=np.int64)


__all__ = ["Engine", "NumericEngine", "TimingEngine"]
