"""Parameter-server state: the canonical model, its optimizer, and the
gradient aggregation buffers every sync model shares.

In numeric mode the PS owns the single source-of-truth parameter arrays
and an SGD optimizer (standard PS design: optimizer state lives server-
side). In timing mode (no arrays) the same bookkeeping runs on byte counts
so sync-model control flow is identical.

When the global model is arena-backed (see :mod:`repro.nn.arena`) the
aggregation hot path — weighted averaging across worker deposits, the
ASP-scaled immediate apply, and ``last_aggregated`` bookkeeping — runs as
vectorized ops over one contiguous aggregate plane instead of per-name
dict loops, bit-identically to the dict path. Deposits that are plain
dicts (e.g. lossy-compressed gradients) still take the dict path and are
recorded into the same aggregate plane, so both paths share state.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

from repro.nn.arena import AggregateView, ArenaView, arena_of, pack_plane, unpack_plane
from repro.nn.module import Module
from repro.optim.sgd import SGD


class ParameterServer:
    """Aggregation buffers + global model update logic.

    Parameters
    ----------
    model:
        The canonical global model (numeric mode) or None (timing mode).
    optimizer:
        Server-side SGD over ``model`` (numeric mode) or None.
    n_workers:
        Cluster size; used for full-quorum detection and default weights.
    worker_weights:
        Aggregation weight per worker, defaulting to uniform 1/N. The paper
        (§2.1.1) weights by each worker's data-shard fraction.
    """

    def __init__(
        self,
        model: Optional[Module],
        optimizer: Optional[SGD],
        n_workers: int,
        worker_weights: Optional[Sequence[float]] = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if (model is None) != (optimizer is None):
            raise ValueError("model and optimizer must both be set or both None")
        self.model = model
        self.optimizer = optimizer
        self.n_workers = n_workers
        if worker_weights is None:
            self.worker_weights = np.full(n_workers, 1.0 / n_workers)
        else:
            w = np.asarray(worker_weights, dtype=float)
            if w.shape != (n_workers,) or (w < 0).any() or w.sum() <= 0:
                raise ValueError(f"bad worker_weights {worker_weights}")
            self.worker_weights = w / w.sum()
        self._params = dict(model.named_parameters()) if model is not None else {}
        self._buffers: dict[str, dict[int, Mapping[str, np.ndarray]]] = {}
        #: Optional :class:`repro.obs.Tracer` (set by the trainer when
        #: tracing is enabled); apply events become PS-track spans.
        self.tracer = None
        #: bumps on every applied update; workers compare versions to detect
        #: staleness (diagnostics).
        self.version = 0
        self.arena = arena_of(model) if model is not None else None
        if self.arena is not None:
            self._agg = self.arena.layout.new_plane()
            self._agg_seen: set[str] = set()
            #: last full aggregated gradient (numeric; feeds PGP importance).
            #: ALIASING CONTRACT: with an arena this is a live window onto
            #: the PS's aggregate plane — values mutate in place on every
            #: apply and membership grows as layers first synchronize. Read
            #: it immediately after an apply (as PGP does); never hold
            #: references to its arrays across applies expecting history.
            self.last_aggregated: Mapping[str, np.ndarray] = AggregateView(
                self._agg, self.arena.layout, self._agg_seen
            )
        else:
            self._agg = None
            self._agg_seen = set()
            self.last_aggregated = {}

    @property
    def numeric(self) -> bool:
        return self.model is not None

    # -- aggregation buffers ---------------------------------------------------
    def accumulate(
        self, bucket: str, worker: int, grads: Optional[Mapping[str, np.ndarray]]
    ) -> int:
        """Deposit a worker's gradients in a named bucket; returns how many
        workers have deposited. ``grads`` may be None in timing mode."""
        buf = self._buffers.setdefault(bucket, {})
        if worker in buf:
            raise RuntimeError(
                f"worker {worker} deposited twice in bucket {bucket!r}"
            )
        buf[worker] = grads if grads is not None else {}
        return len(buf)

    def pending(self, bucket: str) -> int:
        """Number of deposits waiting in a bucket."""
        return len(self._buffers.get(bucket, {}))

    def pending_total(self) -> int:
        """Total deposits buffered across every open bucket (sampler probe)."""
        return sum(len(buf) for buf in self._buffers.values())

    def open_buckets(self) -> int:
        """Buckets currently holding at least one deposit (sampler probe)."""
        return sum(1 for buf in self._buffers.values() if buf)

    def apply_average(self, bucket: str) -> None:
        """Weighted-average the bucket's gradients, apply via the optimizer,
        clear the bucket, bump the version. No-op arrays in timing mode.

        ``last_aggregated`` is updated in place (no fresh dict per round):
        with an arena the averaged gradient is written straight into the
        aggregate plane the :class:`AggregateView` exposes.
        """
        buf = self._buffers.pop(bucket, None)
        if not buf:
            raise RuntimeError(f"apply_average on empty bucket {bucket!r}")
        if self.numeric and not self._apply_average_flat(buf):
            avg: dict[str, np.ndarray] = {}
            total_w = sum(self.worker_weights[w] for w in buf)
            for worker, grads in buf.items():
                weight = self.worker_weights[worker] / total_w
                for name, g in grads.items():
                    if name in avg:
                        avg[name] += weight * g
                    else:
                        avg[name] = weight * g
            if avg:
                self.optimizer.step_with_grads(avg)
                self._record_aggregate(avg)
        self.version += 1
        self._trace_apply(bucket, len(buf))

    def _apply_average_flat(self, buf) -> bool:
        """Vectorized weighted average when every deposit is an ArenaView
        over the PS layout with one common name set (the normal case: all
        workers split one iteration with one GIB). Returns False to fall
        back to the dict path.

        Op order matches the dict path element-for-element: the first
        deposit is *assigned* (``np.multiply(..., out=...)`` — never
        ``0 + w·g``, which would flip the sign of ``-0.0``), subsequent
        deposits accumulate ``+= w·g`` in deposit order.
        """
        if self.arena is None:
            return False
        layout = self.arena.layout
        deposits = list(buf.items())  # (worker, grads) in deposit order
        first = deposits[0][1]
        if not isinstance(first, ArenaView) or first.layout is not layout:
            return False
        names = first.names
        for _w, g in deposits[1:]:
            if (
                not isinstance(g, ArenaView)
                or g.layout is not layout
                or g.names != names
            ):
                return False
        if not names:
            return True  # nothing to apply (timing-style empty grads)
        total_w = sum(self.worker_weights[w] for w, _g in buf.items())
        agg = self._agg
        slices = first.slices
        w0, g0 = deposits[0]
        weight = self.worker_weights[w0] / total_w
        for sl in slices:
            np.multiply(g0.plane[sl], weight, out=agg[sl])
        for worker, g in deposits[1:]:
            weight = self.worker_weights[worker] / total_w
            for sl in slices:
                agg[sl] += weight * g.plane[sl]
        self.optimizer.step_with_grads(ArenaView(agg, layout, names))
        self._agg_seen.update(names)
        return True

    def apply_immediate(
        self, worker: int, grads: Optional[Mapping[str, np.ndarray]]
    ) -> None:
        """ASP-style: apply one worker's gradients now, scaled by its
        aggregation weight (so a full round of N pushes moves the model as
        far as one BSP step).

        Like :meth:`apply_average`, records what was applied into the live
        ``last_aggregated`` view in place rather than allocating a dict.
        """
        if self.numeric and grads:
            scale = float(self.worker_weights[worker])
            layout = self.arena.layout if self.arena is not None else None
            if (
                layout is not None
                and isinstance(grads, ArenaView)
                and grads.layout is layout
            ):
                agg = self._agg
                for sl in grads.slices:
                    np.multiply(grads.plane[sl], scale, out=agg[sl])
                self.optimizer.step_with_grads(ArenaView(agg, layout, grads.names))
                self._agg_seen.update(grads.names)
            else:
                scaled = {n: scale * g for n, g in grads.items()}
                self.optimizer.step_with_grads(scaled)
                # Store what was actually applied: apply_average records the
                # weighted average, so PGP importance sees consistently
                # scaled gradients whichever path produced them.
                self._record_aggregate(scaled)
        self.version += 1
        self._trace_apply(f"immediate:{worker}", 1)

    def _record_aggregate(self, applied: Mapping[str, np.ndarray]) -> None:
        """Record dict-path applied gradients into ``last_aggregated`` —
        straight into the aggregate plane when one exists, so dict and flat
        applies share a single source of truth."""
        if self.arena is not None:
            layout = self.arena.layout
            for name, g in applied.items():
                self._agg[layout.name_slices[name]] = np.asarray(g).ravel()
            self._agg_seen.update(applied)
        else:
            self.last_aggregated.update(applied)

    def _trace_apply(self, bucket: str, deposits: int) -> None:
        """Emit a zero-duration ``ps_apply`` span + version gauge when
        tracing is enabled (virtual time does not pass inside an apply)."""
        tr = self.tracer
        if tr:
            span = tr.begin(
                "ps_apply", "ps", track="ps", cat="ps",
                bucket=bucket, deposits=deposits,
            )
            tr.end(span)
            tr.gauge("obs.ps.version", self.version)

    # -- parameter access --------------------------------------------------------
    def snapshot(
        self, names: Optional[Sequence[str]] = None, copy: bool = True
    ) -> Mapping[str, np.ndarray]:
        """Global parameters (all, or the named subset).

        ``copy=True`` (default) returns arrays decoupled from the live
        model — with an arena that is one plane copy wrapped in an
        :class:`ArenaView`, otherwise a dict of array copies.

        ``copy=False`` returns *read-only-by-contract* live views: zero
        copies, but the values change under the caller's feet on the next
        apply. Use it only for same-instant consumption (the PGP importance
        read, LGP's Eq. 6 adoption, evaluation) — never hold it across a
        simulation yield.
        """
        if not self.numeric:
            return {}
        if self.arena is not None:
            layout = self.arena.layout
            if names is None:
                subset = None
            else:
                for n in names:
                    if n not in self._params:
                        raise KeyError(f"unknown parameter {n!r}")
                subset = tuple(names)
            if not copy:
                return ArenaView(self.arena.flat, layout, subset)
            plane = np.empty(layout.size, dtype=self.arena.flat.dtype)
            if subset is None:
                plane[:] = self.arena.flat
                return ArenaView(plane, layout, None)
            for sl in layout.slices_of(subset):
                plane[sl] = self.arena.flat[sl]
            return ArenaView(plane, layout, subset)
        if names is None:
            if not copy:
                return {n: p.data for n, p in self._params.items()}
            return {n: p.data.copy() for n, p in self._params.items()}
        out = {}
        for n in names:
            if n not in self._params:
                raise KeyError(f"unknown parameter {n!r}")
            out[n] = self._params[n].data.copy() if copy else self._params[n].data
        return out

    def param_names(self) -> tuple[str, ...]:
        return tuple(self._params.keys())

    # -- checkpoint serialisation ------------------------------------------------
    def params_plane(self, layout) -> np.ndarray:
        """Global parameters packed into one plane (checkpoint format).

        Bit-identical whether the PS is arena-backed or dict-backed.
        """
        if self.arena is not None:
            return self.arena.flat.copy()
        return pack_plane(layout, {n: p.data for n, p in self._params.items()})

    def load_params_plane(self, layout, plane: np.ndarray) -> None:
        """Restore global parameters from a checkpoint plane, in place."""
        if self.arena is not None:
            self.arena.flat[:] = plane
            return
        unpack_plane(layout, plane, {n: p.data for n, p in self._params.items()})

    def aggregate_state(self, layout) -> tuple[np.ndarray, tuple[str, ...]]:
        """``last_aggregated`` as (plane, seen-names) for checkpointing."""
        if self.arena is not None:
            return self._agg.copy(), tuple(sorted(self._agg_seen))
        if self.last_aggregated:
            return (
                pack_plane(layout, self.last_aggregated),
                tuple(sorted(self.last_aggregated)),
            )
        return layout.new_plane(), ()

    def load_aggregate_state(self, layout, plane: np.ndarray, seen) -> None:
        """Restore ``last_aggregated`` captured by :meth:`aggregate_state`.

        With an arena the live seen-set is updated in place — the
        :class:`AggregateView` in ``last_aggregated`` aliases it.
        """
        if self.arena is not None:
            self._agg[:] = plane
            self._agg_seen.clear()
            self._agg_seen.update(seen)
            return
        restored = {}
        for name in seen:
            shaped = plane[layout.name_slices[name]].reshape(layout.shapes[name])
            restored[name] = shaped.copy()
        self.last_aggregated = restored


__all__ = ["ParameterServer"]
