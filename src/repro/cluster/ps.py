"""Parameter-server state: the canonical model, its optimizer, and the
gradient aggregation buffers every sync model shares.

In numeric mode the PS owns the single source-of-truth parameter arrays
and an SGD optimizer (standard PS design: optimizer state lives server-
side). In timing mode (no arrays) the same bookkeeping runs on byte counts
so sync-model control flow is identical.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

from repro.nn.module import Module
from repro.optim.sgd import SGD


class ParameterServer:
    """Aggregation buffers + global model update logic.

    Parameters
    ----------
    model:
        The canonical global model (numeric mode) or None (timing mode).
    optimizer:
        Server-side SGD over ``model`` (numeric mode) or None.
    n_workers:
        Cluster size; used for full-quorum detection and default weights.
    worker_weights:
        Aggregation weight per worker, defaulting to uniform 1/N. The paper
        (§2.1.1) weights by each worker's data-shard fraction.
    """

    def __init__(
        self,
        model: Optional[Module],
        optimizer: Optional[SGD],
        n_workers: int,
        worker_weights: Optional[Sequence[float]] = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if (model is None) != (optimizer is None):
            raise ValueError("model and optimizer must both be set or both None")
        self.model = model
        self.optimizer = optimizer
        self.n_workers = n_workers
        if worker_weights is None:
            self.worker_weights = np.full(n_workers, 1.0 / n_workers)
        else:
            w = np.asarray(worker_weights, dtype=float)
            if w.shape != (n_workers,) or (w < 0).any() or w.sum() <= 0:
                raise ValueError(f"bad worker_weights {worker_weights}")
            self.worker_weights = w / w.sum()
        self._params = dict(model.named_parameters()) if model is not None else {}
        self._buffers: dict[str, dict[int, Mapping[str, np.ndarray]]] = {}
        #: Optional :class:`repro.obs.Tracer` (set by the trainer when
        #: tracing is enabled); apply events become PS-track spans.
        self.tracer = None
        #: bumps on every applied update; workers compare versions to detect
        #: staleness (diagnostics).
        self.version = 0
        #: last full aggregated gradient (numeric; feeds PGP importance).
        self.last_aggregated: dict[str, np.ndarray] = {}

    @property
    def numeric(self) -> bool:
        return self.model is not None

    # -- aggregation buffers ---------------------------------------------------
    def accumulate(
        self, bucket: str, worker: int, grads: Optional[Mapping[str, np.ndarray]]
    ) -> int:
        """Deposit a worker's gradients in a named bucket; returns how many
        workers have deposited. ``grads`` may be None in timing mode."""
        buf = self._buffers.setdefault(bucket, {})
        if worker in buf:
            raise RuntimeError(
                f"worker {worker} deposited twice in bucket {bucket!r}"
            )
        buf[worker] = grads if grads is not None else {}
        return len(buf)

    def pending(self, bucket: str) -> int:
        """Number of deposits waiting in a bucket."""
        return len(self._buffers.get(bucket, {}))

    def apply_average(self, bucket: str) -> None:
        """Weighted-average the bucket's gradients, apply via the optimizer,
        clear the bucket, bump the version. No-op arrays in timing mode."""
        buf = self._buffers.pop(bucket, None)
        if not buf:
            raise RuntimeError(f"apply_average on empty bucket {bucket!r}")
        if self.numeric:
            avg: dict[str, np.ndarray] = {}
            total_w = sum(self.worker_weights[w] for w in buf)
            for worker, grads in buf.items():
                weight = self.worker_weights[worker] / total_w
                for name, g in grads.items():
                    if name in avg:
                        avg[name] += weight * g
                    else:
                        avg[name] = weight * g
            if avg:
                self.optimizer.step_with_grads(avg)
                self.last_aggregated.update({n: g for n, g in avg.items()})
        self.version += 1
        self._trace_apply(bucket, len(buf))

    def apply_immediate(
        self, worker: int, grads: Optional[Mapping[str, np.ndarray]]
    ) -> None:
        """ASP-style: apply one worker's gradients now, scaled by its
        aggregation weight (so a full round of N pushes moves the model as
        far as one BSP step)."""
        if self.numeric and grads:
            scale = float(self.worker_weights[worker])
            scaled = {n: scale * g for n, g in grads.items()}
            self.optimizer.step_with_grads(scaled)
            # Store what was actually applied: apply_average records the
            # weighted average, so PGP importance sees consistently scaled
            # gradients whichever path produced them.
            self.last_aggregated.update(scaled)
        self.version += 1
        self._trace_apply(f"immediate:{worker}", 1)

    def _trace_apply(self, bucket: str, deposits: int) -> None:
        """Emit a zero-duration ``ps_apply`` span + version gauge when
        tracing is enabled (virtual time does not pass inside an apply)."""
        tr = self.tracer
        if tr:
            span = tr.begin(
                "ps_apply", "ps", track="ps", cat="ps",
                bucket=bucket, deposits=deposits,
            )
            tr.end(span)
            tr.gauge("obs.ps.version", self.version)

    # -- parameter access --------------------------------------------------------
    def snapshot(self, names: Optional[Sequence[str]] = None) -> dict[str, np.ndarray]:
        """Copy of global parameters (all, or the named subset)."""
        if not self.numeric:
            return {}
        if names is None:
            return {n: p.data.copy() for n, p in self._params.items()}
        out = {}
        for n in names:
            if n not in self._params:
                raise KeyError(f"unknown parameter {n!r}")
            out[n] = self._params[n].data.copy()
        return out

    def param_names(self) -> tuple[str, ...]:
        return tuple(self._params.keys())


__all__ = ["ParameterServer"]
