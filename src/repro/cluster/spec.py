"""Cluster and training-run configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.faults.schedule import FaultSchedule
from repro.hardware.gpu import GPUSpec, get_gpu
from repro.hardware.jitter import JitterModel, NoJitter
from repro.netsim.links import LinkSpec


@dataclass(frozen=True)
class WorkerJoin:
    """Worker ``worker`` joins the cluster when epoch ``epoch`` begins.

    The worker sits out epochs ``0..epoch-1`` (it is not counted alive) and
    enters at the epoch boundary with a fresh copy of the global model.
    """

    worker: int
    epoch: int

    def __post_init__(self) -> None:
        if self.worker < 0:
            raise ValueError(f"worker must be >= 0, got {self.worker}")
        if self.epoch < 1:
            raise ValueError(
                f"membership changes happen at epoch boundaries (epoch >= 1), got {self.epoch}"
            )


@dataclass(frozen=True)
class WorkerLeave:
    """Worker ``worker`` leaves the cluster when epoch ``epoch`` begins.

    The departure is graceful: the worker finishes epoch ``epoch-1``
    (including any in-flight ICS push) before leaving.
    """

    worker: int
    epoch: int

    def __post_init__(self) -> None:
        if self.worker < 0:
            raise ValueError(f"worker must be >= 0, got {self.worker}")
        if self.epoch < 1:
            raise ValueError(
                f"membership changes happen at epoch boundaries (epoch >= 1), got {self.epoch}"
            )


MembershipEvent = Union[WorkerJoin, WorkerLeave]


@dataclass(frozen=True)
class MembershipSchedule:
    """Elastic worker join/leave events, all at epoch boundaries.

    At most one join and one leave per worker; a worker that both joins
    and leaves must leave strictly after joining.
    """

    events: tuple[MembershipEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        joins: dict[int, int] = {}
        leaves: dict[int, int] = {}
        for ev in self.events:
            if isinstance(ev, WorkerJoin):
                if ev.worker in joins:
                    raise ValueError(f"worker {ev.worker} has multiple join events")
                joins[ev.worker] = ev.epoch
            elif isinstance(ev, WorkerLeave):
                if ev.worker in leaves:
                    raise ValueError(f"worker {ev.worker} has multiple leave events")
                leaves[ev.worker] = ev.epoch
            else:
                raise TypeError(f"unknown membership event {ev!r}")
        for worker, leave_epoch in leaves.items():
            join_epoch = joins.get(worker)
            if join_epoch is not None and leave_epoch <= join_epoch:
                raise ValueError(
                    f"worker {worker} leaves at epoch {leave_epoch} but only "
                    f"joins at epoch {join_epoch}"
                )

    def __len__(self) -> int:
        return len(self.events)

    @property
    def join_epochs(self) -> dict[int, int]:
        return {ev.worker: ev.epoch for ev in self.events if isinstance(ev, WorkerJoin)}

    @property
    def leave_epochs(self) -> dict[int, int]:
        return {ev.worker: ev.epoch for ev in self.events if isinstance(ev, WorkerLeave)}

    @property
    def initially_absent(self) -> frozenset[int]:
        """Workers that only come into existence at their join epoch."""
        return frozenset(self.join_epochs)


@dataclass(frozen=True)
class ClusterSpec:
    """Physical cluster description (paper §5.1.1 defaults).

    ``colocated_ps=False`` gives the 9-node layout: N workers (nodes
    0..N−1) plus a standalone PS (node N). ``colocated_ps=True`` puts the
    PS on worker 0's node (OSP-C, §4.4/§5.4): their traffic is loopback and
    worker 0 pays the PS-side PGP compute. ``n_ps > 1`` adds further
    standalone PS nodes for §6.1 sharded synchronization (BytePS-style).
    """

    n_workers: int = 8
    link: LinkSpec = field(default_factory=LinkSpec)
    gpu: GPUSpec = field(default_factory=lambda: get_gpu("tesla-t4"))
    jitter: JitterModel = field(default_factory=NoJitter)
    colocated_ps: bool = False
    fixed_overhead: float = 4e-3  # per-iteration host-side cost (seconds)
    #: PS-side aggregation throughput in bytes/second (deserialise + add,
    #: memory-bound, one aggregator thread per PS — so concurrent pushes to
    #: one PS serialise). ``None`` disables the model (infinitely fast PS).
    ps_agg_bandwidth: float | None = 6e9
    #: Number of parameter servers (§6.1 synchronization groups).
    n_ps: int = 1
    #: Scheduled faults replayed against the run (None = fault-free).
    faults: Optional[FaultSchedule] = None
    #: Elastic worker join/leave schedule (None = static membership).
    membership: Optional[MembershipSchedule] = None

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")
        if self.faults is not None:
            for crash in self.faults.crash_events:
                if crash.worker >= self.n_workers:
                    raise ValueError(
                        f"fault schedule crashes unknown worker {crash.worker}"
                    )
        if self.membership is not None:
            crash_workers = (
                {c.worker for c in self.faults.crash_events} if self.faults else set()
            )
            for ev in self.membership.events:
                if ev.worker >= self.n_workers:
                    raise ValueError(
                        f"membership schedule references unknown worker {ev.worker}"
                    )
                if ev.worker in crash_workers:
                    raise ValueError(
                        f"worker {ev.worker} appears in both the crash and "
                        "membership schedules"
                    )
            if len(self.membership.initially_absent) >= self.n_workers:
                raise ValueError("at least one worker must be present at epoch 0")
        if self.ps_agg_bandwidth is not None and self.ps_agg_bandwidth <= 0:
            raise ValueError(
                f"ps_agg_bandwidth must be positive or None, got {self.ps_agg_bandwidth}"
            )
        if self.n_ps < 1:
            raise ValueError(f"n_ps must be >= 1, got {self.n_ps}")
        if self.colocated_ps and self.n_ps != 1:
            raise ValueError("colocated_ps supports a single PS only")

    @property
    def n_nodes(self) -> int:
        """Hosts in the topology (workers + standalone PSes if present)."""
        return self.n_workers if self.colocated_ps else self.n_workers + self.n_ps

    @property
    def ps_node(self) -> int:
        """Topology node id hosting the (first) PS."""
        return 0 if self.colocated_ps else self.n_workers

    @property
    def ps_nodes(self) -> tuple[int, ...]:
        """Topology node ids of all parameter servers."""
        if self.colocated_ps:
            return (0,)
        return tuple(range(self.n_workers, self.n_workers + self.n_ps))

    def worker_node(self, worker: int) -> int:
        """Topology node id of a worker (currently the identity map)."""
        if not (0 <= worker < self.n_workers):
            raise ValueError(f"worker {worker} out of range")
        return worker


@dataclass(frozen=True)
class TrainingPlan:
    """How long and how to train.

    ``iterations_per_epoch`` is per-worker. In numeric mode it defaults to
    the shard loader's batch count; in timing mode it must be given.
    """

    n_epochs: int = 10
    iterations_per_epoch: Optional[int] = None
    lr: float = 0.1
    momentum: float = 0.9
    weight_decay: float = 0.0
    lr_step_epochs: int = 10  # paper: halve every 10 epochs
    lr_gamma: float = 0.5
    early_stop_patience: Optional[int] = None  # epochs without improvement
    early_stop_delta: float = 1e-3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_epochs < 1:
            raise ValueError(f"n_epochs must be >= 1, got {self.n_epochs}")
        if self.iterations_per_epoch is not None and self.iterations_per_epoch < 1:
            raise ValueError("iterations_per_epoch must be >= 1 when given")
        if self.lr <= 0:
            raise ValueError(f"lr must be positive, got {self.lr}")
        if self.early_stop_patience is not None and self.early_stop_patience < 1:
            raise ValueError("early_stop_patience must be >= 1 when given")


__all__ = [
    "ClusterSpec",
    "MembershipSchedule",
    "TrainingPlan",
    "WorkerJoin",
    "WorkerLeave",
]
