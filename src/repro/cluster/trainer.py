"""DistributedTrainer: wires engine + PS + network + sync model together
and runs the simulation to completion."""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.cluster.context import TrainerContext
from repro.cluster.engines import Engine, NumericEngine
from repro.cluster.spec import ClusterSpec, TrainingPlan
from repro.metrics.recorder import Recorder
from repro.netsim.network import Network
from repro.netsim.topology import StarTopology
from repro.optim.lr_scheduler import StepLR
from repro.simcore.environment import Environment


@dataclass
class TrainingResult:
    """Everything a benchmark needs after a run.

    ``wall_time`` is the simulation clock when the last worker process
    finished — it *includes* background work still draining after the last
    recorded iteration (OSP's final ICS). ``iteration_end_time`` is the old
    metric (last iteration's compute+sync end) and is what throughput is
    computed against, so throughput stays comparable across sync models.
    """

    sync_name: str
    recorder: Recorder
    wall_time: float  # virtual seconds of the whole run, drain included
    context: TrainerContext
    iteration_end_time: float = 0.0  # when the last *iteration* finished
    #: populated when the trainer ran with :meth:`DistributedTrainer.enable_tracing`
    tracer: object = None
    #: populated when the trainer ran with :meth:`DistributedTrainer.enable_sampling`
    sampler: object = None

    @property
    def throughput(self) -> float:
        return self.recorder.throughput()

    @property
    def best_metric(self) -> float:
        return self.recorder.best_metric()

    @property
    def mean_bst(self) -> float:
        return self.recorder.mean_bst()

    @property
    def mean_bct(self) -> float:
        return self.recorder.mean_bct()


class DistributedTrainer:
    """Run one (cluster, workload, sync model) training simulation.

    Parameters
    ----------
    spec, plan, engine:
        Cluster description, run plan, and the numeric/timing engine.
    sync_model:
        An instance from :mod:`repro.sync` or :mod:`repro.core.osp`.
    checkpoint_every, checkpoint_dir, checkpoint_policy:
        Enable periodic checkpointing: every ``checkpoint_every`` epochs the
        workers pause at the epoch boundary, in-flight ICS traffic is drained
        (or discarded, per ``checkpoint_policy``), and the full training
        state is written atomically under ``checkpoint_dir``.
    resume_from:
        A checkpoint path (or loaded :class:`repro.ckpt.Checkpoint`) to
        resume from. The virtual clock, recorder history, schedules and all
        parameter/momentum/sync state continue from the snapshot, so a
        resumed run is bit-identical to one that never stopped.
    env, network:
        Co-tenancy hooks: hand the trainer a *shared* environment and a
        network (normally a :class:`repro.multijob.JobNetworkView` that
        maps job-local node ids onto the shared fabric and tags flows with
        the job name). When omitted the trainer owns both, exactly as
        before. A shared environment is incompatible with checkpointing
        and resume (the snapshot would capture the whole fabric's clock).
    job:
        Optional co-tenant job name; worker processes are created inside
        ``env.job_scope(job)`` so tracer spans carry the job dimension.
    """

    def __init__(
        self,
        spec: ClusterSpec,
        plan: TrainingPlan,
        engine: Engine,
        sync_model,
        topology=None,
        checkpoint_every: Optional[int] = None,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        checkpoint_policy: str = "drain",
        resume_from=None,
        env: Optional[Environment] = None,
        network: Optional[Network] = None,
        job: Optional[str] = None,
    ) -> None:
        """``topology`` (optional) overrides the default single-rack star —
        e.g. :func:`repro.netsim.make_multirack_topology` for cross-rack
        studies. It must route between the spec's node ids (workers
        0..N−1 and the PS node(s))."""
        self.spec = spec
        self.plan = plan
        self.engine = engine
        self.sync_model = sync_model
        self._topology_override = topology
        self.job = job
        if network is not None and topology is not None:
            raise ValueError("pass either a shared network= or a topology=, not both")
        if network is not None and env is None:
            env = network.env
        if network is not None and network.env is not env:
            raise ValueError("network= and env= belong to different environments")
        if env is not None and (resume_from is not None or checkpoint_every is not None):
            raise ValueError(
                "checkpointing/resume is not supported on a shared env= "
                "(the snapshot would capture the whole fabric)"
            )

        if spec.membership is not None and not getattr(
            sync_model, "supports_elastic", False
        ):
            raise ValueError(
                f"sync model {sync_model.name!r} does not support elastic "
                "membership changes (supports_elastic is False)"
            )

        ipe = plan.iterations_per_epoch
        if ipe is None:
            if isinstance(engine, NumericEngine):
                ipe = engine.iterations_per_epoch
            else:
                raise ValueError(
                    "iterations_per_epoch must be set in the plan for timing mode"
                )
        self.iterations_per_epoch = ipe

        self._snapshot = None
        if resume_from is not None:
            from repro.ckpt import Checkpoint, load_checkpoint

            self._snapshot = (
                resume_from
                if isinstance(resume_from, Checkpoint)
                else load_checkpoint(resume_from)
            )

        # Resumed runs continue the virtual clock where the snapshot left it,
        # so traces, iteration timestamps, and fault windows stay on one
        # coherent timeline.
        self.env = env if env is not None else Environment(
            initial_time=self._snapshot.time if self._snapshot else 0.0
        )
        if network is not None:
            self.network = network
        else:
            topo = (
                topology
                if topology is not None
                else StarTopology(spec.n_nodes, default_spec=spec.link)
            )
            self.network = Network(self.env, topo)
        self.ps = engine.make_ps(plan)
        self.recorder = Recorder()
        # Mirror netsim.* scheduler counters into the run's counter table.
        self.network.recorder = self.recorder
        self.ctx = TrainerContext(
            env=self.env,
            network=self.network,
            spec=spec,
            plan=plan,
            engine=engine,
            ps=self.ps,
            recorder=self.recorder,
            iterations_per_epoch=ipe,
        )
        if self.ps.optimizer is not None:
            self.ctx._lr_scheduler = StepLR(
                self.ps.optimizer,
                step_epochs=plan.lr_step_epochs,
                gamma=plan.lr_gamma,
            )
        self.checkpoints = None
        if checkpoint_every is not None:
            from repro.ckpt import CheckpointManager

            if checkpoint_dir is None:
                raise ValueError("checkpoint_every requires checkpoint_dir")
            self.checkpoints = CheckpointManager(
                self,
                every=checkpoint_every,
                directory=checkpoint_dir,
                policy=checkpoint_policy,
            )
            self.ctx.checkpoints = self.checkpoints
        self.injector = None
        if spec.faults:
            from repro.faults.injector import FaultInjector

            self.injector = FaultInjector(self.ctx, spec.faults)
            self.ctx.faults = self.injector
            self.injector.start()
        if self._snapshot is not None:
            # Applied last so the restored failure/restart/membership
            # schedules overwrite whatever the injector registered above,
            # and the restored lr overrides the freshly-built scheduler.
            from repro.ckpt import apply_checkpoint

            apply_checkpoint(self, self._snapshot)
            if self.checkpoints is not None:
                # The resumed snapshot is the manager's latest until it
                # writes its own — checkpoint-mode crash recovery must see
                # the same "latest" the uninterrupted run saw.
                self.checkpoints.latest = self._snapshot

    def enable_tracing(self):
        """Attach a :class:`repro.obs.Tracer` to every traced component.

        Must be called before :meth:`run`. The tracer is strictly passive
        (it never schedules simulation events), so a traced run's virtual
        timeline is identical to an untraced one. Returns the tracer.
        """
        from repro.obs.tracer import Tracer

        tracer = Tracer(self.env)
        self.env.tracer = tracer
        self.ps.tracer = tracer
        self.engine.tracer = tracer
        return tracer

    def enable_sampling(self, interval: Optional[float] = None, capacity: Optional[int] = None):
        """Attach a :class:`repro.obs.timeseries.MetricSampler`.

        Must be called before :meth:`run`. Implies :meth:`enable_tracing`
        (worker signals and gauge mirrors read tracer state). The sampler
        is driven from ``Environment.step`` and never schedules events, so
        a sampled run's :class:`TrainingResult` is bit-identical to an
        unsampled one. Returns the sampler.

        ``interval`` defaults to half the engine's base compute time
        (≥ 2 samples per iteration).
        """
        from repro.obs.timeseries import (
            MetricSampler,
            attach_standard_probes,
            default_interval,
        )

        if self.env.tracer is None:
            self.enable_tracing()
        if interval is None:
            interval = default_interval(self)
        kwargs = {} if capacity is None else {"capacity": capacity}
        sampler = MetricSampler(self.env, interval, **kwargs)
        attach_standard_probes(sampler, self)
        self.env.metric_sampler = sampler
        return sampler

    def start(self):
        """Launch the worker processes without driving the event loop.

        Returns the all-workers-finished event. Single-tenant callers use
        :meth:`run`; the multi-job runner calls ``start()`` on every
        co-tenant trainer over one shared environment, drives the loop
        itself, then collects each job via :meth:`finish`.
        """
        self.sync_model.setup(self.ctx)
        order = list(range(self.spec.n_workers))
        if self._snapshot is not None:
            self.sync_model.restore_state(
                self.ctx,
                self._snapshot.meta.get("sync_state", {}),
                self._snapshot.sync_arrays(),
            )
            self.recorder.incr("ckpt.restore")
            self.ctx.trace.instant(
                "ckpt.restore", actor="ckpt", track="ckpt",
                next_epoch=self._snapshot.next_epoch,
            )
            # Process creation order fixes event-id tie-breaks in the kernel,
            # which in turn fixes floating-point summation order at the PS.
            # Recreate workers in the order they arrived at the snapshot
            # barrier so the resumed timeline matches the uninterrupted one.
            release = self._snapshot.meta.get("release_order") or []
            seen = [w for w in release if 0 <= w < self.spec.n_workers]
            order = seen + [w for w in order if w not in seen]
        with self.env.job_scope(self.job):
            procs = [
                self.env.process(self.sync_model.worker_process(self.ctx, w))
                for w in order
            ]
        self._procs = procs
        done = self.env.all_of(procs)
        # Record the instant the last worker finished: under co-tenancy the
        # shared clock keeps running for other jobs, so wall_time must be
        # captured when *this* job's processes complete, not at collection.
        done.callbacks.append(lambda _ev: setattr(self, "_end_time", self.env.now))
        return done

    def finish(self) -> TrainingResult:
        """Collect the result after the workers launched by :meth:`start`
        have finished (re-raising the first failed worker's exception)."""
        for p in self._procs:
            if not p.ok:  # pragma: no cover - defensive
                raise p.value
        return TrainingResult(
            sync_name=self.sync_model.name,
            recorder=self.recorder,
            wall_time=self._end_time,
            context=self.ctx,
            iteration_end_time=self.recorder.end_time(),
            tracer=self.env.tracer,
            sampler=self.env.metric_sampler,
        )

    def run(self) -> TrainingResult:
        """Execute the simulation to completion and collect results."""
        done = self.start()
        # Run until every worker process has finished (not until the event
        # queue drains): wall_time then covers in-flight ICS drain but not
        # unrelated trailing timers such as open-ended fault windows. A
        # deadlocked cluster raises SimulationError instead of returning.
        self.env.run(until=done)
        return self.finish()


__all__ = ["DistributedTrainer", "TrainingResult"]
