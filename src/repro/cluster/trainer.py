"""DistributedTrainer: wires engine + PS + network + sync model together
and runs the simulation to completion."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.context import TrainerContext
from repro.cluster.engines import Engine, NumericEngine
from repro.cluster.spec import ClusterSpec, TrainingPlan
from repro.metrics.recorder import Recorder
from repro.netsim.network import Network
from repro.netsim.topology import StarTopology
from repro.optim.lr_scheduler import StepLR
from repro.simcore.environment import Environment


@dataclass
class TrainingResult:
    """Everything a benchmark needs after a run.

    ``wall_time`` is the simulation clock when the last worker process
    finished — it *includes* background work still draining after the last
    recorded iteration (OSP's final ICS). ``iteration_end_time`` is the old
    metric (last iteration's compute+sync end) and is what throughput is
    computed against, so throughput stays comparable across sync models.
    """

    sync_name: str
    recorder: Recorder
    wall_time: float  # virtual seconds of the whole run, drain included
    context: TrainerContext
    iteration_end_time: float = 0.0  # when the last *iteration* finished
    #: populated when the trainer ran with :meth:`DistributedTrainer.enable_tracing`
    tracer: object = None

    @property
    def throughput(self) -> float:
        return self.recorder.throughput()

    @property
    def best_metric(self) -> float:
        return self.recorder.best_metric()

    @property
    def mean_bst(self) -> float:
        return self.recorder.mean_bst()

    @property
    def mean_bct(self) -> float:
        return self.recorder.mean_bct()


class DistributedTrainer:
    """Run one (cluster, workload, sync model) training simulation.

    Parameters
    ----------
    spec, plan, engine:
        Cluster description, run plan, and the numeric/timing engine.
    sync_model:
        An instance from :mod:`repro.sync` or :mod:`repro.core.osp`.
    """

    def __init__(
        self,
        spec: ClusterSpec,
        plan: TrainingPlan,
        engine: Engine,
        sync_model,
        topology=None,
    ) -> None:
        """``topology`` (optional) overrides the default single-rack star —
        e.g. :func:`repro.netsim.make_multirack_topology` for cross-rack
        studies. It must route between the spec's node ids (workers
        0..N−1 and the PS node(s))."""
        self.spec = spec
        self.plan = plan
        self.engine = engine
        self.sync_model = sync_model
        self._topology_override = topology

        ipe = plan.iterations_per_epoch
        if ipe is None:
            if isinstance(engine, NumericEngine):
                ipe = engine.iterations_per_epoch
            else:
                raise ValueError(
                    "iterations_per_epoch must be set in the plan for timing mode"
                )
        self.iterations_per_epoch = ipe

        self.env = Environment()
        topo = (
            topology
            if topology is not None
            else StarTopology(spec.n_nodes, default_spec=spec.link)
        )
        self.network = Network(self.env, topo)
        self.ps = engine.make_ps(plan)
        self.recorder = Recorder()
        self.ctx = TrainerContext(
            env=self.env,
            network=self.network,
            spec=spec,
            plan=plan,
            engine=engine,
            ps=self.ps,
            recorder=self.recorder,
            iterations_per_epoch=ipe,
        )
        if self.ps.optimizer is not None:
            self.ctx._lr_scheduler = StepLR(
                self.ps.optimizer,
                step_epochs=plan.lr_step_epochs,
                gamma=plan.lr_gamma,
            )
        self.injector = None
        if spec.faults:
            from repro.faults.injector import FaultInjector

            self.injector = FaultInjector(self.ctx, spec.faults)
            self.ctx.faults = self.injector
            self.injector.start()

    def enable_tracing(self):
        """Attach a :class:`repro.obs.Tracer` to every traced component.

        Must be called before :meth:`run`. The tracer is strictly passive
        (it never schedules simulation events), so a traced run's virtual
        timeline is identical to an untraced one. Returns the tracer.
        """
        from repro.obs.tracer import Tracer

        tracer = Tracer(self.env)
        self.env.tracer = tracer
        self.ps.tracer = tracer
        self.engine.tracer = tracer
        return tracer

    def run(self) -> TrainingResult:
        """Execute the simulation to completion and collect results."""
        self.sync_model.setup(self.ctx)
        procs = [
            self.env.process(self.sync_model.worker_process(self.ctx, w))
            for w in range(self.spec.n_workers)
        ]
        # Run until every worker process has finished (not until the event
        # queue drains): wall_time then covers in-flight ICS drain but not
        # unrelated trailing timers such as open-ended fault windows. A
        # deadlocked cluster raises SimulationError instead of returning.
        self.env.run(until=self.env.all_of(procs))
        for p in procs:
            if not p.ok:  # pragma: no cover - defensive
                raise p.value
        return TrainingResult(
            sync_name=self.sync_model.name,
            recorder=self.recorder,
            wall_time=self.env.now,
            context=self.ctx,
            iteration_end_time=self.recorder.end_time(),
            tracer=self.env.tracer,
        )


__all__ = ["DistributedTrainer", "TrainingResult"]
