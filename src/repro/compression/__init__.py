"""Gradient compression baselines (paper §2.2.2 / §7).

OSP's pitch is that unlike sparsification it *defers* rather than *drops*
gradients. To demonstrate that contrast we implement the standard
compressors the paper cites — Top-K, Random-K (Aji & Heafield; Stich et
al.), 8-bit quantisation (Dettmers) — plus the error-feedback residual
memory used by Deep Gradient Compression-style systems.

All compressors share one interface: ``compress(grads) → (payload,
bytes_on_wire)``; ``decompress(payload) → grads``. The "grads" type is a
name→ndarray dict, the same shape the sync models move around.
"""

from repro.compression.base import Compressor, GradientDict, dense_bytes
from repro.compression.topk import TopK
from repro.compression.randomk import RandomK
from repro.compression.quantize import Uniform8Bit
from repro.compression.residual import ResidualMemory

__all__ = [
    "Compressor",
    "GradientDict",
    "RandomK",
    "ResidualMemory",
    "TopK",
    "Uniform8Bit",
    "dense_bytes",
]
