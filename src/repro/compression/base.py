"""Compressor interface and helpers."""

from __future__ import annotations

from typing import Any, Mapping, Protocol

import numpy as np

#: The canonical gradient container: parameter name -> ndarray.
GradientDict = dict[str, np.ndarray]

#: float32 wire format.
_BYTES_PER_FLOAT = 4
#: int32 index on the wire.
_BYTES_PER_INDEX = 4


def dense_bytes(grads: Mapping[str, np.ndarray]) -> int:
    """Wire size of an uncompressed gradient dict."""
    return sum(g.size for g in grads.values()) * _BYTES_PER_FLOAT


class Compressor(Protocol):
    """Lossy/lossless gradient codec."""

    def compress(self, grads: GradientDict) -> tuple[Any, int]:
        """Return (payload, bytes_on_wire)."""
        ...

    def decompress(self, payload: Any) -> GradientDict:
        """Reconstruct a (possibly lossy) gradient dict from payload."""
        ...


__all__ = [
    "Compressor",
    "GradientDict",
    "dense_bytes",
    "_BYTES_PER_FLOAT",
    "_BYTES_PER_INDEX",
]
