"""8-bit uniform quantisation (Dettmers-style, paper ref [42])."""

from __future__ import annotations

import numpy as np

from repro.compression.base import GradientDict


class Uniform8Bit:
    """Per-tensor symmetric uniform quantisation to int8.

    Each tensor is scaled by its max-abs into [-127, 127] and rounded. Wire
    cost: 1 byte/entry + 4 bytes/tensor for the scale.

    A tensor containing any non-finite entry (NaN/inf) makes the max-abs
    scale non-finite, and ``np.round(g / scale).astype(np.int8)`` on such
    values is undefined behaviour (C-cast of NaN). Those tensors take the
    zero-tensor path instead — the poisoned gradient is dropped
    deterministically (scale 0.0, all-zero int8) and round-trips to zeros.
    """

    levels = 127

    def compress(self, grads: GradientDict):
        payload = {}
        wire = 0
        for name, g in grads.items():
            scale = float(np.abs(g).max())
            if scale == 0.0 or not np.isfinite(scale):
                q = np.zeros(g.shape, dtype=np.int8)
                scale = 0.0
            else:
                q = np.clip(
                    np.round(g / scale * self.levels), -self.levels, self.levels
                ).astype(np.int8)
            payload[name] = (q, scale)
            wire += g.size + 4
        return payload, wire

    def decompress(self, payload) -> GradientDict:
        out: GradientDict = {}
        for name, (q, scale) in payload.items():
            out[name] = q.astype(np.float64) * (scale / self.levels)
        return out


__all__ = ["Uniform8Bit"]
