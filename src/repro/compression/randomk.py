"""Random-K sparsification (Stich et al., "Sparsified SGD with memory")."""

from __future__ import annotations

import numpy as np

from repro.compression.base import GradientDict
from repro.compression.topk import TopK, sparse_wire_bytes


class RandomK:
    """Keep a uniformly random ``ratio`` fraction of entries.

    Kept values are scaled by ``1/ratio`` so the compressed gradient is an
    unbiased estimator of the dense one.
    """

    def __init__(self, ratio: float, seed: int = 0, unbiased: bool = True) -> None:
        if not (0.0 < ratio <= 1.0):
            raise ValueError(f"ratio must be in (0,1], got {ratio}")
        self.ratio = float(ratio)
        self.unbiased = unbiased
        self._rng = np.random.default_rng(seed)

    def compress(self, grads: GradientDict):
        flat = np.concatenate([g.ravel() for g in grads.values()])
        k = max(1, int(round(self.ratio * flat.size)))
        indices = np.sort(self._rng.choice(flat.size, size=k, replace=False))
        values = flat[indices]
        if self.unbiased and self.ratio < 1.0:
            values = values / self.ratio
        payload = {
            "shapes": {name: g.shape for name, g in grads.items()},
            "order": list(grads.keys()),
            "indices": indices.astype(np.int64),
            "values": values,
        }
        wire = sparse_wire_bytes(indices.size, len(grads))
        return payload, wire

    # Same payload layout as TopK; reuse its decoder.
    decompress = TopK.decompress


__all__ = ["RandomK"]
