"""Error-feedback residual memory (the mechanism behind Deep Gradient
Compression and Sparsified-SGD-with-memory, paper refs [26, 27]).

Wraps any compressor: the difference between the true gradient and what the
compressor transmitted is carried forward and added to the next gradient,
so nothing is permanently lost — only delayed. (OSP achieves "delay, don't
drop" differently: by scheduling the full gradient across RS+ICS.)
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.compression.base import Compressor, GradientDict


class ResidualMemory:
    """Error-feedback wrapper around an inner compressor."""

    def __init__(self, inner: Compressor) -> None:
        self.inner = inner
        self._residual: GradientDict = {}

    def compress(self, grads: GradientDict) -> tuple[Any, int]:
        corrected: GradientDict = {}
        for name, g in grads.items():
            r = self._residual.pop(name, None)
            corrected[name] = g + r if r is not None else g.copy()
        payload, wire = self.inner.compress(corrected)
        sent = self.inner.decompress(payload)
        # Only the keys seen in this call get fresh residuals; residuals for
        # layers absent from `grads` stay carried forward untouched, so
        # "delay, don't drop" holds even across disjoint per-call layer sets.
        for name in corrected:
            self._residual[name] = corrected[name] - sent[name]
        return payload, wire

    def decompress(self, payload: Any) -> GradientDict:
        return self.inner.decompress(payload)

    @property
    def residual_norm(self) -> float:
        """L2 norm of the carried-forward error (diagnostics)."""
        if not self._residual:
            return 0.0
        return float(
            np.sqrt(sum(float((r**2).sum()) for r in self._residual.values()))
        )


__all__ = ["ResidualMemory"]
