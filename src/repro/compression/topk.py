"""Top-K sparsification: keep the K% largest-magnitude gradient entries."""

from __future__ import annotations

import numpy as np

from repro.compression.base import (
    GradientDict,
    _BYTES_PER_FLOAT,
    _BYTES_PER_INDEX,
)


def sparse_wire_bytes(n_kept: int, n_tensors: int) -> int:
    """Wire cost of a sparse (index, value) payload.

    Per kept entry one float + one index, plus per-tensor metadata (the
    element count needed to rebuild shapes) at index width — mirroring
    ``Uniform8Bit``'s 4-bytes-per-tensor scale convention so compression
    ratios against ``dense_bytes`` stay comparable across compressors.
    """
    return n_kept * (_BYTES_PER_FLOAT + _BYTES_PER_INDEX) + n_tensors * _BYTES_PER_INDEX


class TopK:
    """Keep the global top ``ratio`` fraction of entries by |value|.

    Selection is global across all tensors (as in Aji & Heafield), not
    per-tensor, so large layers do not crowd out small but important ones
    any more than their magnitudes warrant.
    """

    def __init__(self, ratio: float) -> None:
        if not (0.0 < ratio <= 1.0):
            raise ValueError(f"ratio must be in (0,1], got {ratio}")
        self.ratio = float(ratio)

    def compress(self, grads: GradientDict):
        flat = np.concatenate([g.ravel() for g in grads.values()])
        k = max(1, int(round(self.ratio * flat.size)))
        if k >= flat.size:
            keep_mask = np.ones(flat.size, dtype=bool)
        else:
            threshold = np.partition(np.abs(flat), flat.size - k)[flat.size - k]
            keep_mask = np.abs(flat) >= threshold
            # Ties can push us over k; trim deterministically from the end.
            excess = keep_mask.sum() - k
            if excess > 0:
                tie_positions = np.flatnonzero(
                    keep_mask & (np.abs(flat) == threshold)
                )
                keep_mask[tie_positions[-excess:]] = False
        indices = np.flatnonzero(keep_mask)
        payload = {
            "shapes": {name: g.shape for name, g in grads.items()},
            "order": list(grads.keys()),
            "indices": indices.astype(np.int64),
            "values": flat[indices],
        }
        wire = sparse_wire_bytes(indices.size, len(grads))
        return payload, wire

    def decompress(self, payload) -> GradientDict:
        shapes = payload["shapes"]
        total = sum(int(np.prod(s)) for s in shapes.values())
        # Preserve the input dtype: a bare np.zeros(total) is float64 and
        # silently upcast float32 gradients through the round-trip.
        flat = np.zeros(total, dtype=payload["values"].dtype)
        flat[payload["indices"]] = payload["values"]
        out: GradientDict = {}
        offset = 0
        for name in payload["order"]:
            shape = shapes[name]
            size = int(np.prod(shape))
            out[name] = flat[offset : offset + size].reshape(shape)
            offset += size
        return out


__all__ = ["TopK", "sparse_wire_bytes"]
