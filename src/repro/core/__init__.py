"""OSP — the paper's primary contribution.

Pure algorithmic pieces (independently testable):

- :mod:`repro.core.pgp` — Parameter-Gradient Production importance (Eq. 1–4)
- :mod:`repro.core.gib` — Gradient Importance Bitmap encode/partition
- :mod:`repro.core.tuning` — Eq. 5 upper bound + Algorithm 1 S(G^u) ramp
- :mod:`repro.core.lgp` — Local-Gradient-based Parameter correction
  (Eq. 6–7) and the EMA-LGP variant (§4.2)
- :mod:`repro.core.splitter` — gradient splitter (Fig. 5 worker module)

The 2-stage synchronization model itself (RS + ICS worker/PS processes,
§4.3 degradation, §4.4 co-location) lives in :mod:`repro.core.osp` /
:mod:`repro.core.colocated`; multi-PS synchronization groups (§6.1) in
:mod:`repro.core.groups`.
"""

from repro.core.pgp import layer_importance, pgp_importance
from repro.core.gib import GIB
from repro.core.tuning import SGuTuner, ics_upper_bound
from repro.core.lgp import EMALGPCorrector, LGPCorrector
from repro.core.splitter import GradientSplitter
from repro.core.osp import OSP
from repro.core.colocated import ColocatedOSP
from repro.core.groups import SyncGroupPlan, plan_sync_groups

__all__ = [
    "ColocatedOSP",
    "EMALGPCorrector",
    "GIB",
    "GradientSplitter",
    "LGPCorrector",
    "OSP",
    "SGuTuner",
    "SyncGroupPlan",
    "ics_upper_bound",
    "layer_importance",
    "pgp_importance",
    "plan_sync_groups",
]
