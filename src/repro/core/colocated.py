"""OSP-C — OSP with a co-located parameter server (paper §4.4, §5.4).

The PS runs on worker 0's node. Two effects:

* worker 0's traffic to/from the PS is loopback (free — shared memory);
* worker 0 additionally executes the PS's PGP computation and per-layer
  sort during its own FP/BP, inflating its **batch computation time**
  (BCT). Fig. 9 measures this overhead at 3–8%, smallest for the
  FLOP-heavy/param-light InceptionV3, largest for the param-heavy VGG16 —
  PGP cost scales with parameters while T_c scales with FLOPs, a ratio our
  :meth:`repro.cluster.engines.Engine.pgp_compute_time` model preserves.

Use with ``ClusterSpec(colocated_ps=True)`` so the topology actually
places the PS on node 0 (the loopback effect); this class adds the compute
effect.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.cluster.context import TrainerContext

from repro.core.osp import OSP


class ColocatedOSP(OSP):
    """OSP-C: worker ``ps_worker`` doubles as the parameter server."""

    name = "osp-c"

    def __init__(self, ps_worker: int = 0, **osp_kwargs) -> None:
        super().__init__(**osp_kwargs)
        if ps_worker < 0:
            raise ValueError(f"ps_worker must be >= 0, got {ps_worker}")
        self.ps_worker = ps_worker
        self.name = "osp-c"

    def setup(self, ctx: TrainerContext) -> None:
        if ctx.spec.ps_node != ctx.spec.worker_node(self.ps_worker):
            raise ValueError(
                "ColocatedOSP requires ClusterSpec(colocated_ps=True) with "
                f"the PS on worker {self.ps_worker}'s node"
            )
        super().setup(ctx)
        self._pgp_time = ctx.engine.pgp_compute_time(ctx.spec)

    def extra_compute_time(self, ctx: TrainerContext, worker: int) -> float:
        """The preliminary OSP-C deployment (§5.4): the PS worker begins
        training only after completing PGP calculation and sorting."""
        return self._pgp_time if worker == self.ps_worker else 0.0


__all__ = ["ColocatedOSP"]
