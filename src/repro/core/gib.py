"""GIB — Gradient Importance Bitmap (paper §3.2, §4.1.1).

One bit per layer: 1 ⇒ the layer's gradients are *important* and travel in
RS; 0 ⇒ they defer to ICS. The PS builds the bitmap by ranking layers with
PGP importance and moving the least-important layers to ICS until the
deferred byte budget S(G^u) is filled; workers receive the bitmap (≤1 KB
for <1K-layer models, §4.1.2) and split their gradients accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class GIB:
    """Immutable importance bitmap over an ordered layer list."""

    layers: tuple[str, ...]
    important: tuple[bool, ...]

    def __post_init__(self) -> None:
        if len(self.layers) != len(self.important):
            raise ValueError(
                f"{len(self.layers)} layers vs {len(self.important)} bits"
            )
        if len(set(self.layers)) != len(self.layers):
            raise ValueError("duplicate layer names")

    # -- queries ------------------------------------------------------------
    def is_important(self, layer: str) -> bool:
        try:
            return self.important[self.layers.index(layer)]
        except ValueError:
            raise KeyError(f"unknown layer {layer!r}") from None

    @property
    def important_layers(self) -> tuple[str, ...]:
        return tuple(l for l, im in zip(self.layers, self.important) if im)

    @property
    def unimportant_layers(self) -> tuple[str, ...]:
        return tuple(l for l, im in zip(self.layers, self.important) if not im)

    @property
    def n_important(self) -> int:
        return sum(self.important)

    def wire_bytes(self) -> int:
        """Size on the wire: one bit per layer, byte-padded (§4.1.2:
        <1 KB for models under 1K layers)."""
        return (len(self.layers) + 7) // 8

    # -- constructors --------------------------------------------------------
    @classmethod
    def all_important(cls, layers: Sequence[str]) -> "GIB":
        """Degenerate bitmap: everything in RS ⇒ OSP behaves as BSP (§4.3)."""
        layers = tuple(layers)
        return cls(layers, tuple(True for _ in layers))

    @classmethod
    def all_unimportant(cls, layers: Sequence[str]) -> "GIB":
        """Degenerate bitmap: everything in ICS ⇒ OSP behaves as ASP (§4.3)."""
        layers = tuple(layers)
        return cls(layers, tuple(False for _ in layers))

    @classmethod
    def from_importance(
        cls,
        importance: Mapping[str, float],
        layer_bytes: Mapping[str, int],
        budget_bytes: float,
        layers: Optional[Sequence[str]] = None,
    ) -> "GIB":
        """Build the bitmap from PGP scores and a deferred-byte budget.

        Layers are deferred in ascending order of **importance density**
        (``I^l`` per byte): Eq. 1–3 derive importance *per parameter*, so
        the per-byte density is the mean parameter importance of the layer
        — ranking by it avoids the knapsack pathology where many small
        slightly-less-important layers exhaust the budget and a huge
        low-importance layer (VGG's fc6) can never be deferred. A layer
        that does not fit the remaining budget is skipped (not a stopping
        point) so smaller layers behind it can still use the budget. Ties
        break by layer order for determinism.

        ``layers`` pins the bitmap's layer order — the PS↔worker shared
        state :meth:`pack`/:meth:`unpack` rely on. Pass the canonical
        splitter order; relying on the default (``importance`` insertion
        order) couples on-wire layout to whichever dict the caller built.
        """
        if set(importance) != set(layer_bytes):
            raise ValueError("importance and layer_bytes must cover the same layers")
        if not (budget_bytes >= 0):  # rejects negatives AND NaN
            raise ValueError(f"budget must be a number >= 0, got {budget_bytes}")
        if layers is None:
            layers = tuple(importance.keys())
        else:
            layers = tuple(layers)
            if len(set(layers)) != len(layers) or set(layers) != set(importance):
                raise ValueError(
                    "layers must be a duplicate-free permutation of the "
                    "importance keys"
                )

        def density(i: int) -> float:
            b = layer_bytes[layers[i]]
            return importance[layers[i]] / b if b > 0 else float("inf")

        order = sorted(range(len(layers)), key=lambda i: (density(i), i))
        important = [True] * len(layers)
        remaining = float(budget_bytes)
        for i in order:
            b = layer_bytes[layers[i]]
            if b <= remaining:
                important[i] = False
                remaining -= b
        return cls(layers, tuple(important))

    # -- serialisation ----------------------------------------------------------
    def pack(self) -> bytes:
        """Pack to the on-wire byte string (layer order is implicit shared
        state between PS and workers, as in the prototype)."""
        return np.packbits(np.array(self.important, dtype=bool)).tobytes()

    @classmethod
    def unpack(cls, payload: bytes, layers: Sequence[str]) -> "GIB":
        """Inverse of :meth:`pack` given the shared layer order.

        Strict: the payload must be exactly the byte-padded size for
        ``layers`` and the padding bits must be zero — an oversized or
        bit-dirty payload means PS and worker disagree on the layer list,
        which must fail loudly rather than silently truncate.
        """
        layers = tuple(layers)
        expected = (len(layers) + 7) // 8
        if len(payload) != expected:
            raise ValueError(
                f"payload is {len(payload)} bytes, expected {expected} "
                f"for {len(layers)} layers"
            )
        bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8))
        if bits[len(layers) :].any():
            raise ValueError("nonzero padding bits in GIB payload")
        return cls(layers, tuple(bool(b) for b in bits[: len(layers)]))


__all__ = ["GIB"]
