"""Multi-PS synchronization groups (paper §6.1, "Handling Scaling-up").

The paper proposes sharding the model across multiple PSes (BytePS-style)
so each PS aggregates one parameter partition for all workers, dividing
the incast by the shard ratio. It leaves orchestration as future work; we
implement the planning math: a balanced layer→PS assignment (greedy
longest-processing-time, the classic makespan heuristic) and the predicted
BST, so the scaling ablation bench can quantify the §6.1 claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import heapq


@dataclass(frozen=True)
class SyncGroupPlan:
    """A layer partition across PS shards and its predicted sync cost."""

    n_ps: int
    assignment: dict[str, int]  # layer -> ps index
    shard_bytes: tuple[float, ...]

    @property
    def max_shard_bytes(self) -> float:
        return max(self.shard_bytes)

    @property
    def balance(self) -> float:
        """max/mean shard load; 1.0 = perfectly balanced."""
        mean = sum(self.shard_bytes) / len(self.shard_bytes)
        return self.max_shard_bytes / mean if mean > 0 else 1.0

    def predicted_bst(self, n_workers: int, bandwidth: float) -> float:
        """Predicted per-iteration sync time: every worker pushes its shard
        slice to each PS in parallel; each PS's downlink serves N flows of
        its shard size; push + pull ⇒ factor 2. The largest shard is the
        critical path."""
        if n_workers < 1 or bandwidth <= 0:
            raise ValueError("need n_workers >= 1 and positive bandwidth")
        return 2.0 * n_workers * self.max_shard_bytes / bandwidth


def plan_sync_groups(layer_bytes: Mapping[str, int], n_ps: int) -> SyncGroupPlan:
    """Partition layers across ``n_ps`` servers, balancing bytes (LPT).

    Deterministic: ties break by layer name.
    """
    if n_ps < 1:
        raise ValueError(f"n_ps must be >= 1, got {n_ps}")
    if not layer_bytes:
        raise ValueError("no layers to assign")
    loads = [(0.0, i) for i in range(n_ps)]
    heapq.heapify(loads)
    assignment: dict[str, int] = {}
    shard = [0.0] * n_ps
    for layer in sorted(layer_bytes, key=lambda l: (-layer_bytes[l], l)):
        load, idx = heapq.heappop(loads)
        assignment[layer] = idx
        load += layer_bytes[layer]
        shard[idx] = load
        heapq.heappush(loads, (load, idx))
    return SyncGroupPlan(n_ps=n_ps, assignment=assignment, shard_bytes=tuple(shard))


__all__ = ["SyncGroupPlan", "plan_sync_groups"]
