"""LGP — Local-Gradient-based Parameter correction (paper §4.2).

While a worker's unimportant gradients are still in flight (ICS), the
worker must not train on stale unimportant parameters. LGP:

* **Eq. 6 (at RS end)** — build ``P_partial``: important parameters take
  the freshly synchronized global values; unimportant parameters are
  advanced with the worker's *local* gradient as a prediction of the global
  aggregate.
* **Eq. 7 (when ICS delivers)** — replace the local prediction with the
  global result: subtract the locally-applied gradient, add the global
  one. Since the prediction started from the same base as the PS's update,
  this is exactly "overwrite unimportant parameters with the PS's values",
  which is how we implement it (robust to multi-iteration ICS lag: any
  number of stacked local predictions is undone by one overwrite).

EMA-LGP (§4.2) predicts with an exponential moving average of past global
gradients blended with the current local gradient. The paper found it adds
compute/memory overhead without accuracy gains and omitted it from OSP; we
implement it as an ablation (see ``bench_ablation_lgp``).
"""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np

from repro.nn.arena import ArenaView, ParamArena


class LGPCorrector:
    """Applies Eq. 6 / Eq. 7 to a worker's live parameter arrays.

    Parameters
    ----------
    params:
        Name → ndarray mapping of the worker replica's parameters. Arrays
        are mutated in place.
    arena:
        Optional :class:`ParamArena` backing those same parameters. When
        given (and the subclass has no per-name prediction hooks —
        ``vectorized`` is True), corrections over :class:`ArenaView`
        inputs run as contiguous slice ops on the flat plane,
        bit-identically to the per-name loop.
    """

    #: subclasses with per-name hooks (_predict/_on_global) must set this
    #: False so the slice fast path never bypasses them.
    vectorized = True

    def __init__(
        self,
        params: Mapping[str, np.ndarray],
        arena: Optional[ParamArena] = None,
    ) -> None:
        self.params = dict(params)
        self.arena = arena if (arena is not None and self.vectorized) else None

    def _flat_target(self, view: Mapping[str, np.ndarray]) -> Optional[np.ndarray]:
        """The worker's flat plane, iff ``view`` is an ArenaView sharing
        the worker arena's layout (so slices index both plains alike)."""
        if (
            self.arena is not None
            and isinstance(view, ArenaView)
            and view.layout is self.arena.layout
        ):
            return self.arena.flat
        return None

    def apply_rs(
        self,
        important_global: Mapping[str, np.ndarray],
        unimportant_local_grads: Mapping[str, np.ndarray],
        lr: float,
    ) -> None:
        """Eq. 6: adopt global important params; locally predict the rest."""
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        dst = self._flat_target(important_global)
        if dst is not None:
            for sl in important_global.slices:
                dst[sl] = important_global.plane[sl]
        else:
            for name, value in important_global.items():
                self._get(name)[...] = value
        dst = self._flat_target(unimportant_local_grads)
        if dst is not None:
            for sl in unimportant_local_grads.slices:
                dst[sl] -= lr * unimportant_local_grads.plane[sl]
        else:
            for name, grad in unimportant_local_grads.items():
                self._get(name)[...] -= lr * self._predict(name, grad)

    def apply_ics(self, unimportant_global: Mapping[str, np.ndarray]) -> None:
        """Eq. 7: replace local predictions with the global result."""
        dst = self._flat_target(unimportant_global)
        if dst is not None:
            for sl in unimportant_global.slices:
                dst[sl] = unimportant_global.plane[sl]
            return
        for name, value in unimportant_global.items():
            self._get(name)[...] = value
            self._on_global(name, value)

    # -- hooks for the EMA variant ------------------------------------------
    def _predict(self, name: str, local_grad: np.ndarray) -> np.ndarray:
        return local_grad

    def _on_global(self, name: str, value: np.ndarray) -> None:
        pass

    def _get(self, name: str) -> np.ndarray:
        try:
            return self.params[name]
        except KeyError:
            raise KeyError(f"LGP: unknown parameter {name!r}") from None


class EMALGPCorrector(LGPCorrector):
    """EMA-LGP: predict with a blend of the global-gradient EMA and the
    current local gradient.

    ``prediction = beta · EMA(global grads) + (1 − beta) · g_local``

    The EMA is updated from the *observed global parameter deltas* at each
    Eq. 7 correction (the worker never sees raw global gradients, only
    parameter values, so it reconstructs the effective gradient from the
    value it predicted vs. what arrived).
    """

    vectorized = False  # per-name _predict/_on_global hooks must run

    def __init__(
        self,
        params: Mapping[str, np.ndarray],
        beta: float = 0.5,
        decay: float = 0.9,
        lr_hint: float = 0.1,
        arena: Optional[ParamArena] = None,
    ) -> None:
        super().__init__(params, arena=arena)  # vectorized=False ⇒ ignored
        if not (0.0 <= beta <= 1.0):
            raise ValueError(f"beta must be in [0,1], got {beta}")
        if not (0.0 <= decay < 1.0):
            raise ValueError(f"decay must be in [0,1), got {decay}")
        self.beta = beta
        self.decay = decay
        self.lr_hint = lr_hint
        self._ema: dict[str, np.ndarray] = {}
        self._pre_correction: dict[str, np.ndarray] = {}

    def apply_ics(self, unimportant_global: Mapping[str, np.ndarray]) -> None:
        # Snapshot current (predicted) values to reconstruct global deltas.
        self._pre_correction = {
            name: self._get(name).copy() for name in unimportant_global
        }
        super().apply_ics(unimportant_global)

    def _predict(self, name: str, local_grad: np.ndarray) -> np.ndarray:
        ema = self._ema.get(name)
        if ema is None:
            return local_grad
        return self.beta * ema + (1.0 - self.beta) * local_grad

    def _on_global(self, name: str, value: np.ndarray) -> None:
        prev = self._pre_correction.get(name)
        if prev is None:
            return
        # effective global gradient ≈ (predicted_value − global_value)/lr
        implied = (prev - value) / self.lr_hint
        ema = self._ema.get(name)
        if ema is None:
            self._ema[name] = implied
        else:
            ema *= self.decay
            ema += (1.0 - self.decay) * implied

    @property
    def memory_overhead_bytes(self) -> int:
        """Extra worker memory EMA-LGP carries (the §4.2 objection)."""
        return sum(a.nbytes for a in self._ema.values())


__all__ = ["EMALGPCorrector", "LGPCorrector"]
