"""OSP — Overlapped Synchronization Parallel (paper §3–§4).

Per iteration, each worker:

1. waits for its previous iteration's ICS *push* to clear its uplink (the
   Eq. 5 budget makes this wait ≈0 in the common case);
2. splits its gradients by the current GIB into important ``G^i`` /
   unimportant ``G^u`` (Fig. 5 "Gradient splitter");
3. **RS** — pushes ``G^i``; the PS averages and applies once all workers
   deposit; a barrier closes the stage; the worker pulls the updated
   important parameters;
4. applies **LGP Eq. 6**: adopt global important params, advance
   unimportant params with the local gradient as a prediction;
5. launches **ICS** in the background: push ``G^u`` (overlapping the next
   iteration's compute), PS averages and applies when all arrive, worker
   pulls the global unimportant parameters and applies **LGP Eq. 7**
   (replace prediction with the global result, filtered by the current GIB
   so re-classified layers are never regressed).

The PS recomputes PGP importance and the GIB whenever an ICS round
completes (i.e. during the workers' compute — §3.2 challenge 1) and
broadcasts the new bitmap (tiny transfer); workers adopt it at the next RS
barrier so every worker always splits one iteration with one bitmap.

Degradation (§4.3): ``force="bsp"`` pins the GIB to all-important (OSP ≡
BSP + no-op ICS); ``force="asp"`` pins all-unimportant (RS carries no
payload; all traffic overlaps compute, ASP-like).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.cluster.context import TrainerContext

from typing import Optional

import numpy as np

from repro.core.gib import GIB
from repro.core.lgp import EMALGPCorrector, LGPCorrector
from repro.core.tuning import MAX_MODEL_FRACTION, SGuTuner, ics_upper_bound
from repro.netsim.prio import PRIO_BULK, PRIO_HIGH, PRIO_URGENT
from repro.nn.arena import ArenaView
from repro.sync.base import SyncModel


class OSP(SyncModel):
    """Overlapped Synchronization Parallel.

    Parameters
    ----------
    max_model_fraction:
        Algorithm 1 line 2 cap on U_max (paper: 0.8).
    lgp:
        ``"local"`` (paper's LGP), ``"ema"`` (EMA-LGP ablation, §4.2) or
        ``"none"`` (no correction — stale-parameter ablation).
    force:
        ``None`` (adaptive, Algorithm 1), ``"bsp"`` or ``"asp"`` (§4.3
        degradation modes).
    fixed_budget_fraction:
        Ablation knob: bypass Algorithm 1 and hold S(G^u) constant at this
        fraction of the model size from the first iteration (still clipped
        to U_max so Eq. 5 is honoured).
    quorum_timeout:
        Optional virtual-seconds deadline for the RS barrier, measured from
        a round's first arrival. On expiry the round proceeds with whoever
        arrived (reweighted average over the present deposits) instead of
        deadlocking — the PS-side resilience of §4.3. ``None`` keeps the
        classic blocking barrier (though the quorum still shrinks when a
        worker is *known* dead via the fault schedule).
    deadline_k:
        §4.3 degradation trigger: after this many *consecutive* RS rounds
        in which some worker found its previous ICS push still on the
        uplink (the Eq. 5 deadline was blown), pin the GIB to
        all-important — BSP mode — for ``fallback_rounds`` rounds, then
        resume adaptive operation. ``None`` (default) disables the
        fallback; deadline misses are still counted.
    fallback_rounds:
        How long a triggered BSP fallback lasts, in RS rounds.
    """

    name = "osp"

    #: RS uses a quorum barrier and U_max is re-derived per membership
    #: change, so elastic join/leave schedules are supported.
    supports_elastic = True

    def __init__(
        self,
        max_model_fraction: float = MAX_MODEL_FRACTION,
        lgp: str = "local",
        force: Optional[str] = None,
        fixed_budget_fraction: Optional[float] = None,
        quorum_timeout: Optional[float] = None,
        deadline_k: Optional[int] = None,
        fallback_rounds: int = 8,
    ) -> None:
        if lgp not in ("local", "ema", "none"):
            raise ValueError(f"unknown lgp mode {lgp!r}")
        if force not in (None, "bsp", "asp"):
            raise ValueError(f"unknown force mode {force!r}")
        if fixed_budget_fraction is not None and not (
            0.0 <= fixed_budget_fraction <= 1.0
        ):
            raise ValueError(
                f"fixed_budget_fraction must be in [0,1], got {fixed_budget_fraction}"
            )
        if quorum_timeout is not None and quorum_timeout <= 0:
            raise ValueError(f"quorum_timeout must be positive, got {quorum_timeout}")
        if deadline_k is not None and deadline_k < 1:
            raise ValueError(f"deadline_k must be >= 1, got {deadline_k}")
        if fallback_rounds < 1:
            raise ValueError(f"fallback_rounds must be >= 1, got {fallback_rounds}")
        self.max_model_fraction = max_model_fraction
        self.lgp_mode = lgp
        self.force = force
        self.fixed_budget_fraction = fixed_budget_fraction
        self.quorum_timeout = quorum_timeout
        self.deadline_k = deadline_k
        self.fallback_rounds = fallback_rounds
        if force:
            self.name = f"osp-forced-{force}"
        elif fixed_budget_fraction is not None:
            self.name = f"osp-fixed-{fixed_budget_fraction:.0%}"

    # ------------------------------------------------------------- setup
    def setup(self, ctx: TrainerContext) -> None:
        super().setup(ctx)
        engine = ctx.engine
        self.splitter = engine.splitter
        layers = self.splitter.layers
        # Crash-aware RS barrier: retiring a worker shrinks the quorum, and
        # an optional timeout releases a degraded round instead of hanging.
        self._barrier = ctx.quorum_barrier(
            timeout=self.quorum_timeout,
            on_degraded=lambda gen, size: ctx.recorder.incr("osp.quorum_timeout"),
        )

        # Eq. 5: the PS-side link is the shared bottleneck for N ICS pushes.
        # N is the *alive* worker count — it equals spec.n_workers for
        # static runs, and the checkpoint-restored / elastic-initial count
        # otherwise; membership changes re-derive it via _on_membership.
        self._route_loss = 1.0 - (1.0 - ctx.spec.link.loss_rate) ** 2
        self._compute_time = engine.base_compute_time(ctx.spec)
        u_max = ics_upper_bound(
            bandwidth=ctx.spec.link.bandwidth,
            loss_rate=self._route_loss,
            compute_time=self._compute_time,
            n_workers=max(1, len(ctx.alive_workers)),
            model_bytes=engine.model_bytes,
            max_model_fraction=self.max_model_fraction,
        )
        self._tuner = SGuTuner(u_max)
        ctx.trace.gauge("osp.u_max", u_max)
        ctx.membership_hooks.append(lambda n_alive: self._on_membership(ctx, n_alive))
        if self.fixed_budget_fraction is not None:
            # Ablation: constant budget from the start, Eq. 5-clipped.
            self._budget = min(
                self.fixed_budget_fraction * engine.model_bytes, u_max
            )
        else:
            self._budget = 0.0  # Algorithm 1: S(G^u)_1 = 0

        ctx.trace.gauge("osp.sgu_budget", self._budget)

        if self.force == "bsp":
            self._gib = GIB.all_important(layers)
        elif self.force == "asp":
            self._gib = GIB.all_unimportant(layers)
        else:
            self._gib = GIB.all_important(layers)
        self._pending_gib: Optional[GIB] = None
        self._last_round_gen = -1
        #: iteration -> RS deposits present when the round closed; the ICS
        #: round for that iteration expects the same quorum (a dead worker
        #: never pushes its ICS share, so waiting for N would hang).
        self._ics_expected: dict[int, int] = {}
        #: Eq. 5 deadline tracking for the §4.3 BSP fallback.
        self._round_blown: dict[int, bool] = {}
        self._consecutive_blown = 0
        self._fallback_remaining = 0

        n = ctx.spec.n_workers
        self._ics_push_done = [None] * n
        self._ics_proc = [None] * n
        self._ics_ready: dict[int, object] = {}
        #: worker -> wire bytes of an ICS push not yet fully arrived at the
        #: PS (checkpoint discard-policy accounting).
        self._ics_unarrived: dict[int, float] = {}
        corrector_cls = {
            "local": LGPCorrector,
            "ema": EMALGPCorrector,
            "none": None,
        }[self.lgp_mode]
        self._correctors = [
            corrector_cls(engine.worker_params(w), arena=engine.replica_arena(w))
            if corrector_cls
            else None
            for w in range(n)
        ]

    def _on_membership(self, ctx, n_alive: int) -> None:
        """Eq. 5 re-derivation when the worker set changes (elastic
        join/leave or crash/restart): N concurrent ICS pushes share the PS
        link, so U_max — and therefore the budget ceiling — moves with N.
        The GIB itself rebuilds at the next PGP pass."""
        if n_alive < 1:
            return
        u_max = ics_upper_bound(
            bandwidth=ctx.spec.link.bandwidth,
            loss_rate=self._route_loss,
            compute_time=self._compute_time,
            n_workers=n_alive,
            model_bytes=ctx.engine.model_bytes,
            max_model_fraction=self.max_model_fraction,
        )
        self._tuner.set_u_max(u_max)
        ctx.trace.gauge("osp.u_max", u_max)
        if self.fixed_budget_fraction is not None:
            self._budget = min(self.fixed_budget_fraction * ctx.engine.model_bytes, u_max)
        else:
            # A shrunk ceiling clips the current budget immediately; a grown
            # one takes effect at the next Algorithm 1 step.
            self._budget = min(self._budget, u_max)
        ctx.trace.gauge("osp.sgu_budget", self._budget)

    # ----------------------------------------------------------- tuning
    def on_epoch_end(self, ctx, epoch, train_loss, metric) -> None:
        if self.force is not None:
            return
        if self.fixed_budget_fraction is None:
            self._budget = self._tuner.budget(train_loss)
            ctx.trace.gauge("osp.sgu_budget", self._budget)
        # Recompute the bitmap now that the budget (or importance) moved —
        # this is also what bootstraps the first non-empty ICS (until then
        # the GIB is all-important and no ICS round ever completes to
        # trigger a refresh).
        self._refresh_gib(ctx)

    @property
    def u_max(self) -> float:
        """Eq. 5 upper bound in bytes (after the 80% cap)."""
        return self._tuner.u_max

    @property
    def current_budget(self) -> float:
        """Current S(G^u) in bytes."""
        return self._budget

    @property
    def current_gib(self) -> GIB:
        return self._gib

    @property
    def in_bsp_fallback(self) -> bool:
        """True while the §4.3 deadline-triggered BSP fallback is active."""
        return self._fallback_remaining > 0

    # ------------------------------------------------------ synchronization
    def synchronize(self, ctx, worker, epoch, iteration, grads, loss):
        trace = ctx.trace
        actor = f"worker {worker}"
        # (1) our previous ICS push must have left the uplink. Having to
        # wait here means the ICS blew its Eq. 5 deadline (the budget no
        # longer fits inside T_c — loss burst, bandwidth dip, ...).
        prev_push = self._ics_push_done[worker]
        if prev_push is not None and not prev_push.triggered:
            if not self._round_blown.get(iteration):
                self._round_blown[iteration] = True
                ctx.recorder.incr("osp.deadline_miss")
                trace.instant(
                    "osp.deadline_miss", actor="faults", track="faults",
                    worker=worker, iteration=iteration,
                )
            stall = trace.begin(
                "ics_stall", actor, worker=worker, iteration=iteration
            )
            yield prev_push
            trace.end(stall)

        gib = self._gib  # capture: one bitmap per iteration, all stages
        imp_layers = gib.important_layers
        unimp_layers = gib.unimportant_layers
        imp_bytes = ctx.engine.bytes_of_layers(imp_layers)
        unimp_bytes = ctx.engine.bytes_of_layers(unimp_layers)
        if trace:
            layer_bytes = ctx.engine.layer_bytes
            for l in imp_layers:  # push + pull both move these layers
                trace.add_traffic("rs", l, 2 * layer_bytes[l])
            for l in unimp_layers:
                trace.add_traffic("ics", l, 2 * layer_bytes[l])

        if grads is not None:
            g_imp, g_unimp = self.splitter.split(grads, gib)
        else:
            g_imp = g_unimp = None

        # (2) RS push; the round is aggregated when the barrier trips — on a
        # full quorum, a degraded quorum (timeout) or a shrunk one (crash) —
        # by the first worker released, so whatever deposits are present get
        # the reweighted average instead of the round hanging on the dead.
        span = trace.begin(
            "rs_push", actor, worker=worker, iteration=iteration, bytes=imp_bytes
        )
        yield ctx.transfer_to_ps(
            worker, imp_bytes, tag=("rs-push", worker, iteration), prio=PRIO_HIGH
        )
        trace.end(span)
        bucket = f"rs:{iteration}"
        ctx.ps.accumulate(bucket, worker, g_imp)
        span = trace.begin(
            "rs_barrier_wait", actor, worker=worker, iteration=iteration
        )
        generation = yield self._barrier.wait()
        trace.end(span)
        if generation != self._last_round_gen:
            self._last_round_gen = generation
            self._close_rs_round(ctx, iteration, bucket)

        # (3) RS pull: updated important parameters.
        span = trace.begin(
            "rs_pull", actor, worker=worker, iteration=iteration, bytes=imp_bytes
        )
        yield ctx.transfer_from_ps(
            worker, imp_bytes, tag=("rs-pull", worker, iteration), prio=PRIO_HIGH
        )
        trace.end(span)

        # (4) LGP Eq. 6.
        corrector = self._correctors[worker]
        if ctx.ps.numeric:
            with trace.span(
                "lgp_correction", actor, worker=worker, iteration=iteration, eq=6
            ):
                imp_names = self.splitter.params_of(imp_layers)
                if corrector is not None:
                    # Read-only, consumed before the next yield — safe to
                    # skip the deep copy (see ParameterServer.snapshot).
                    snap = ctx.ps.snapshot(imp_names, copy=False)
                    corrector.apply_rs(snap, g_unimp or {}, lr=ctx.current_lr)
                else:
                    # no-LGP ablation: adopt important params, leave the
                    # rest stale
                    ctx.engine.sync_replica(worker, ctx.ps, imp_names)

        # (5) ICS in the background (overlaps the next compute).
        if unimp_layers:
            self._ics_proc[worker] = ctx.env.process(
                self._ics_process(
                    ctx, worker, iteration, g_unimp, unimp_layers, unimp_bytes
                )
            )
        else:
            self._ics_push_done[worker] = None

    def _close_rs_round(self, ctx, iteration, bucket) -> None:
        """Executed once per barrier generation by the first released
        worker (URGENT trip → this straight-line code runs before any
        released worker's pull can complete, so ordering matches the old
        apply-on-last-deposit scheme on the full-quorum path)."""
        n = ctx.ps.pending(bucket)
        self._ics_expected[iteration] = n
        ctx.trace.gauge("osp.quorum_size", n)
        if n:
            if n < ctx.spec.n_workers:
                ctx.recorder.incr("osp.degraded_quorum")
            # apply_average renormalises over the present workers' weights —
            # the degraded-quorum reweighting.
            ctx.ps.apply_average(bucket)

        # Adopt a freshly-broadcast GIB exactly once per barrier generation,
        # i.e. after every worker has split this iteration with the old one.
        if self._pending_gib is not None:
            self._gib = self._pending_gib
            self._pending_gib = None

        if self.force is not None:
            return
        # §4.3 deadline-triggered degradation to BSP and back.
        blown = self._round_blown.pop(iteration, False)
        if self._fallback_remaining > 0:
            self._fallback_remaining -= 1
            if self._fallback_remaining == 0:
                ctx.recorder.incr("osp.bsp_fallback_exit")
                self._refresh_gib(ctx)  # resume adaptive splitting
            return
        if blown and self.deadline_k is not None:
            self._consecutive_blown += 1
            if self._consecutive_blown >= self.deadline_k:
                ctx.recorder.incr("osp.bsp_fallback")
                self._consecutive_blown = 0
                self._fallback_remaining = self.fallback_rounds
                self._gib = GIB.all_important(self.splitter.layers)
                self._pending_gib = None
        elif not blown:
            self._consecutive_blown = 0

    def _ics_process(self, ctx, worker, iteration, g_unimp, unimp_layers, unimp_bytes):
        trace = ctx.trace
        # Separate timeline row per worker: the whole point of ICS is that
        # these spans overlap the next iteration's compute span.
        actor = f"worker {worker} (ics)"
        trace.gauge_delta("osp.inflight_ics_bytes", unimp_bytes)
        span = trace.begin(
            "ics_push", actor, track="ics",
            worker=worker, iteration=iteration, bytes=unimp_bytes,
        )
        self._ics_unarrived[worker] = unimp_bytes
        push = ctx.transfer_to_ps(
            worker, unimp_bytes, tag=("ics-push", worker, iteration), prio=PRIO_BULK
        )
        self._ics_push_done[worker] = push
        yield push
        self._ics_unarrived.pop(worker, None)
        trace.end(span)
        trace.gauge_delta("osp.inflight_ics_bytes", -unimp_bytes)

        bucket = f"ics:{iteration}"
        # The RS round already fixed how many workers participate in this
        # iteration; a crashed worker's ICS share will never arrive.
        expected = self._ics_expected.get(iteration, ctx.spec.n_workers)
        ready = self._ready(ctx, iteration)
        if ctx.ps.accumulate(bucket, worker, g_unimp) >= expected and not ready.triggered:
            ctx.ps.apply_average(bucket)
            snapshot = (
                ctx.ps.snapshot(self.splitter.params_of(unimp_layers))
                if ctx.ps.numeric
                else {}
            )
            ready.succeed(snapshot)
            self._refresh_gib(ctx)
            # Hygiene: ready-events three iterations back are guaranteed
            # consumed (the RS barrier serialises rounds), so drop them to
            # keep memory flat over long runs.
            self._ics_ready.pop(iteration - 3, None)
            self._ics_expected.pop(iteration - 3, None)

        span = trace.begin(
            "ics_wait", actor, track="ics", worker=worker, iteration=iteration
        )
        snapshot = yield ready
        trace.end(span)
        span = trace.begin(
            "ics_pull", actor, track="ics",
            worker=worker, iteration=iteration, bytes=unimp_bytes,
        )
        yield ctx.transfer_from_ps(
            worker, unimp_bytes, tag=("ics-pull", worker, iteration), prio=PRIO_BULK
        )
        trace.end(span)

        # LGP Eq. 7, filtered by the *current* bitmap so layers promoted to
        # RS since are never overwritten with an older value.
        corrector = self._correctors[worker]
        if corrector is not None and ctx.ps.numeric and snapshot:
            with trace.span(
                "lgp_correction", actor, track="ics",
                worker=worker, iteration=iteration, eq=7,
            ):
                still_unimp = set(
                    self.splitter.params_of(self._gib.unimportant_layers)
                )
                if isinstance(snapshot, ArenaView):
                    filtered = snapshot.restrict(
                        [n for n in snapshot.names if n in still_unimp]
                    )
                else:
                    filtered = {
                        n: v for n, v in snapshot.items() if n in still_unimp
                    }
                corrector.apply_ics(filtered)

    def _ready(self, ctx, iteration):
        ev = self._ics_ready.get(iteration)
        if ev is None:
            ev = ctx.env.event()
            self._ics_ready[iteration] = ev
        return ev

    def _refresh_gib(self, ctx) -> None:
        """PS side: recompute importance + bitmap; broadcast to workers."""
        if self.force is not None:
            return
        if self._fallback_remaining > 0:
            # BSP fallback pins the bitmap; late ICS completions from
            # pre-fallback iterations must not stage a new one.
            return
        trace = ctx.trace
        with trace.span("pgp_compute", "ps", track="ps", cat="ps"):
            importance = ctx.engine.ps_layer_importance(ctx.ps)
            new_gib = GIB.from_importance(
                importance,
                ctx.engine.layer_bytes,
                self._budget,
                layers=self.splitter.layers,
            )
        self._pending_gib = new_gib
        trace.instant(
            "gib_fetch", actor="ps", track="ps",
            wire_bytes=new_gib.wire_bytes(),
            unimportant_layers=len(new_gib.unimportant_layers),
        )
        # Traffic accounting for the (tiny) bitmap broadcast (§4.1.2). The
        # bitmap gates the next split on every worker, so it jumps the queue
        # ahead of even RS payload traffic.
        for w in range(ctx.spec.n_workers):
            ctx.transfer_from_ps(
                w, new_gib.wire_bytes(), tag=("gib", w), prio=PRIO_URGENT
            )

    def finalize(self, ctx, worker):
        proc = self._ics_proc[worker]
        if proc is not None and not proc.triggered:
            yield proc

    # --------------------------------------------------------- checkpointing
    def checkpoint_state(self, ctx) -> dict:
        """OSP-specific state for a checkpoint: the SGuTuner (U_max and the
        Algorithm 1 normaliser L), the budget, the current and staged GIBs,
        and the §4.3 fallback counters.  Captured at a drained epoch
        boundary, so no per-round ICS bookkeeping needs to travel."""
        pending = self._pending_gib
        return {
            "kind": "osp",
            "force": self.force,
            "lgp": self.lgp_mode,
            "u_max": float(self._tuner.u_max),
            "initial_loss": self._tuner.initial_loss,
            "budget": float(self._budget),
            "gib_layers": list(self._gib.layers),
            "gib_bits": self._gib.pack().hex(),
            "pending_gib_bits": pending.pack().hex() if pending is not None else None,
            "consecutive_blown": int(self._consecutive_blown),
            "fallback_remaining": int(self._fallback_remaining),
        }

    def checkpoint_arrays(self, ctx) -> dict:
        out = {}
        for worker, corrector in enumerate(self._correctors):
            ema = getattr(corrector, "_ema", None)
            if ema:
                for name, arr in ema.items():
                    out[f"lgp_ema/{worker}/{name}"] = arr
        return out

    def restore_state(self, ctx, state, arrays) -> None:
        from repro.ckpt.snapshot import CheckpointError

        if state.get("kind") != "osp":
            raise CheckpointError("checkpoint was not written by an OSP run")
        if state.get("force") != self.force or state.get("lgp") != self.lgp_mode:
            raise CheckpointError(
                "OSP configuration (force/lgp mode) differs from the checkpointed run"
            )
        layers = tuple(state["gib_layers"])
        if layers != tuple(self.splitter.layers):
            raise CheckpointError("layer list differs from the checkpointed run")
        self._tuner.load_state({"u_max": state["u_max"], "initial_loss": state["initial_loss"]})
        self._budget = float(state["budget"])
        self._gib = GIB.unpack(bytes.fromhex(state["gib_bits"]), layers)
        pending = state.get("pending_gib_bits")
        self._pending_gib = GIB.unpack(bytes.fromhex(pending), layers) if pending else None
        self._consecutive_blown = int(state["consecutive_blown"])
        self._fallback_remaining = int(state["fallback_remaining"])
        for key, arr in arrays.items():
            if not key.startswith("lgp_ema/"):
                continue
            _prefix, worker, name = key.split("/", 2)
            corrector = self._correctors[int(worker)]
            if corrector is not None:
                corrector._ema[name] = np.array(arr, copy=True)
        ctx.trace.gauge("osp.u_max", self._tuner.u_max)
        ctx.trace.gauge("osp.sgu_budget", self._budget)

    def inflight_events(self, ctx) -> list:
        """Open ICS processes: draining them runs the push → apply → pull →
        Eq. 7 chain to completion before the snapshot is taken."""
        return [p for p in self._ics_proc if p is not None and not p.triggered]

    def inflight_bytes(self, ctx) -> float:
        """Wire bytes of ICS pushes still on the network (discard policy)."""
        return float(sum(self._ics_unarrived.values()))

    def worker_signals(self, ctx) -> dict:
        # ICS backlog per worker: unimportant-gradient bytes pushed but not
        # yet landed on the PS. A worker whose backlog never drains before
        # its next RS close is the one blowing the Eq. 5 budget.
        signals = {
            f"osp.worker.{w}.ics_backlog_bytes": 0.0 for w in ctx.alive_workers
        }
        for w, unarrived in self._ics_unarrived.items():
            signals[f"osp.worker.{w}.ics_backlog_bytes"] = float(unarrived)
        return signals


__all__ = ["OSP"]
