"""PGP — Parameter-Gradient Production importance (paper §4.1.1).

The importance of parameter ``k`` is the first-order Taylor estimate of the
squared loss change if the parameter were zeroed:

    D_k = (L(S, P) − L(S, P|_{P_k=0}))² ≈ (g_k · P_k)²        (Eq. 1–3)

simplified to the production ``I_k = |g_k · P_k|``. Per-layer (Eq. 4):

    I^l = Σ_{j ∈ l} |g_j · P_j|

computed on the PS so workers pay nothing (§3.2 challenge 1).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np


def pgp_importance(grad: np.ndarray, param: np.ndarray) -> float:
    """Per-parameter-group importance ``Σ |g · p|`` (Eq. 3/4 inner term)."""
    grad = np.asarray(grad)
    param = np.asarray(param)
    if grad.shape != param.shape:
        raise ValueError(f"shape mismatch: grad {grad.shape} vs param {param.shape}")
    return float(np.abs(grad * param).sum())


def layer_importance(
    grads: Mapping[str, np.ndarray],
    params: Mapping[str, np.ndarray],
    layer_params: Mapping[str, Sequence[str]],
) -> dict[str, float]:
    """Eq. 4: importance per layer.

    Parameters
    ----------
    grads, params:
        Name → array mappings (same keys).
    layer_params:
        Layer name → parameter names belonging to that layer (the grouping
        from :meth:`repro.nn.module.Module.leaf_layers`).

    Returns
    -------
    dict
        Layer name → ``I^l`` in the given layer order. Layers whose
        parameters are missing a gradient raise ``KeyError`` — silent zeros
        would corrupt the ranking.
    """
    out: dict[str, float] = {}
    for layer, names in layer_params.items():
        total = 0.0
        for name in names:
            if name not in grads:
                raise KeyError(f"layer {layer!r}: no gradient for parameter {name!r}")
            if name not in params:
                raise KeyError(f"layer {layer!r}: no value for parameter {name!r}")
            total += pgp_importance(grads[name], params[name])
        out[layer] = total
    return out


def taylor_reference_importance(
    loss_fn, params: Mapping[str, np.ndarray], name: str
) -> float:
    """Brute-force importance: |L(P) − L(P with params[name]=0)|.

    Exists to *validate* PGP in tests (the paper's Eq. 1 definition); never
    used in the training path — that is PGP's whole point.
    """
    base = float(loss_fn(params))
    zeroed = dict(params)
    zeroed[name] = np.zeros_like(params[name])
    return abs(base - float(loss_fn(zeroed)))


__all__ = ["layer_importance", "pgp_importance", "taylor_reference_importance"]
