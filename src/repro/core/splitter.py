"""Gradient splitter (Fig. 5, worker side): partition a gradient dict into
important (RS) and unimportant (ICS) halves according to the current GIB."""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.gib import GIB
from repro.nn.arena import ArenaView


class GradientSplitter:
    """Splits name→gradient dicts by layer membership and a GIB.

    Parameters
    ----------
    layer_params:
        Ordered mapping layer name → parameter names in that layer (from
        :meth:`Module.leaf_layers` + ``named_parameters``). Every gradient
        the splitter ever sees must belong to exactly one layer.
    """

    def __init__(self, layer_params: Mapping[str, Sequence[str]]) -> None:
        self.layer_params = {k: tuple(v) for k, v in layer_params.items()}
        self._param_to_layer: dict[str, str] = {}
        for layer, names in self.layer_params.items():
            for name in names:
                if name in self._param_to_layer:
                    raise ValueError(f"parameter {name!r} assigned to two layers")
                self._param_to_layer[name] = layer

    @property
    def layers(self) -> tuple[str, ...]:
        return tuple(self.layer_params.keys())

    def split(
        self, grads: Mapping[str, np.ndarray], gib: GIB
    ) -> tuple[Mapping[str, np.ndarray], Mapping[str, np.ndarray]]:
        """Return ``(G_i, G_u)`` — important and unimportant gradient
        mappings. A full-coverage :class:`ArenaView` input splits into two
        sub-views sharing the same plane (zero copies); anything else
        splits into plain dicts."""
        if set(gib.layers) != set(self.layers):
            raise ValueError("GIB layers do not match splitter layers")
        if isinstance(grads, ArenaView) and grads.is_full():
            return (
                grads.restrict(self.params_of(gib.important_layers)),
                grads.restrict(self.params_of(gib.unimportant_layers)),
            )
        important: dict[str, np.ndarray] = {}
        unimportant: dict[str, np.ndarray] = {}
        for name, g in grads.items():
            layer = self._param_to_layer.get(name)
            if layer is None:
                raise KeyError(f"gradient for unknown parameter {name!r}")
            (important if gib.is_important(layer) else unimportant)[name] = g
        return important, unimportant

    def params_of(self, layers: Sequence[str]) -> tuple[str, ...]:
        """Parameter names belonging to the given layers, in layer order."""
        out: list[str] = []
        for layer in layers:
            if layer not in self.layer_params:
                raise KeyError(f"unknown layer {layer!r}")
            out.extend(self.layer_params[layer])
        return tuple(out)

    def layer_bytes(
        self, sizes: Mapping[str, int], bytes_per_param: int = 4
    ) -> dict[str, int]:
        """Per-layer wire bytes given per-parameter element counts."""
        return {
            layer: sum(int(sizes[n]) for n in names) * bytes_per_param
            for layer, names in self.layer_params.items()
        }

    @classmethod
    def from_module(cls, module) -> "GradientSplitter":
        """Build from a Module's leaf layers (numeric mode)."""
        layer_params: dict[str, tuple[str, ...]] = {}
        # leaf_layers gives (layer_name, module); parameters of that module
        # are exactly the names prefixed by the layer name (or 'self').
        all_names = [n for n, _p in module.named_parameters()]
        for layer_name, sub in module.leaf_layers():
            own = tuple(
                n
                for n in all_names
                if n.rsplit(".", 1)[0] == layer_name
                or (layer_name == "self" and "." not in n)
            )
            layer_params[layer_name] = own
        return cls(layer_params)


__all__ = ["GradientSplitter"]
