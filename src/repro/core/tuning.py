"""S(G^u) sizing — Eq. 5 upper bound and Algorithm 1 (paper §4.1.2).

The ICS must fit inside one iteration's computation:

    T_c ≥ N · S(G^u) / (b(1+lr))   ⇒   S(G^u) ≤ b(1+lr)·T_c/N = U_max

(the ``(1+lr)`` term reflects that lost traffic is retransmitted, consuming
budget, so a lossier link *admits less deferral*; we follow the paper's
formula verbatim). U_max is further capped at 80% of the model size so OSP
never fully degenerates into ASP, and the actual S(G^u) ramps from 0 toward
U_max as the loss falls:

    S(G^u)_1 = 0,  L = loss_1,  S(G^u)_i = (1 − loss_i/L) · U_max
"""

from __future__ import annotations

import math

#: Algorithm 1 line 2: U_max never exceeds this fraction of the model.
MAX_MODEL_FRACTION = 0.8


def ics_upper_bound(
    bandwidth: float,
    loss_rate: float,
    compute_time: float,
    n_workers: int,
    model_bytes: float,
    max_model_fraction: float = MAX_MODEL_FRACTION,
) -> float:
    """Eq. 5 U_max (bytes), clamped to ``max_model_fraction`` of the model.

    Parameters
    ----------
    bandwidth:
        Link bandwidth ``b`` in bytes/second (the PS-side bottleneck link).
    loss_rate:
        Route loss rate ``lr`` in [0, 1).
    compute_time:
        Per-iteration computation time ``T_c`` (seconds).
    n_workers:
        Worker count ``N`` — all N workers' ICS pushes share the PS link.
    model_bytes:
        Total model/gradient size.
    """
    if not math.isfinite(bandwidth) or bandwidth <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth}")
    if not (0.0 <= loss_rate < 1.0):
        raise ValueError(f"loss_rate must be in [0,1), got {loss_rate}")
    if not math.isfinite(compute_time) or compute_time < 0:
        raise ValueError(f"compute_time must be >= 0, got {compute_time}")
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if not math.isfinite(model_bytes) or model_bytes <= 0:
        raise ValueError(f"model_bytes must be positive, got {model_bytes}")
    if not (0.0 < max_model_fraction <= 1.0):
        raise ValueError(f"bad max_model_fraction {max_model_fraction}")
    # NOTE: the paper writes U_max = b(1+lr)T_c/N. Taken literally a lossier
    # link would admit *more* deferral; the physically consistent reading
    # (effective bytes are inflated by retransmission, Eq. 5 line 3) is
    # division. We implement the physical form and flag the discrepancy in
    # EXPERIMENTS.md; at the paper's loss rates (~0) they coincide.
    u_max = bandwidth * compute_time / (n_workers * (1.0 + loss_rate))
    return min(u_max, max_model_fraction * model_bytes)


class SGuTuner:
    """Algorithm 1: per-epoch deferred-byte budget.

    Call :meth:`budget` once per epoch with the epoch's training loss.
    Epoch 1 fixes the normaliser ``L`` and returns 0 (all-RS, i.e. BSP-like
    warm start); later epochs return ``(1 − loss_i/L) · U_max``, floored at
    0 if the loss ever exceeds ``L``.
    """

    def __init__(self, u_max: float) -> None:
        if not math.isfinite(u_max) or u_max < 0:
            raise ValueError(f"u_max must be >= 0, got {u_max}")
        self.u_max = float(u_max)
        self._initial_loss: float | None = None

    @property
    def initial_loss(self) -> float | None:
        """The normaliser L (None until the first epoch reports)."""
        return self._initial_loss

    def budget(self, epoch_loss: float) -> float:
        """Deferred-byte budget S(G^u) for the epoch with this loss.

        A NaN/inf loss (numeric divergence) must not poison the normaliser
        ``L`` or the budget — ``epoch_loss < 0`` is False for NaN, so a
        naive range check would let NaN flow into GIB construction. Such
        epochs clamp to the all-RS floor (budget 0, BSP-safe) and leave
        ``L`` untouched.
        """
        if not math.isfinite(epoch_loss):
            return 0.0
        if epoch_loss < 0:
            raise ValueError(f"loss must be >= 0, got {epoch_loss}")
        if self._initial_loss is None:
            if epoch_loss == 0:
                # Degenerate: already converged at epoch 1; defer maximally.
                self._initial_loss = 1.0
                return self.u_max
            self._initial_loss = float(epoch_loss)
            return 0.0
        frac = 1.0 - epoch_loss / self._initial_loss
        return max(0.0, frac) * self.u_max

    def reset(self) -> None:
        """Forget L (start of a fresh training run)."""
        self._initial_loss = None

    def set_u_max(self, u_max: float) -> None:
        """Re-derive the budget ceiling for a new worker count (Eq. 5).

        Elastic membership changes alter ``N``; the normaliser ``L`` is a
        property of the training run, not of the cluster, so it survives.
        """
        if not math.isfinite(u_max) or u_max < 0:
            raise ValueError(f"u_max must be >= 0, got {u_max}")
        self.u_max = float(u_max)

    def state(self) -> dict:
        """Serialisable tuner state (for checkpointing)."""
        return {"u_max": self.u_max, "initial_loss": self._initial_loss}

    def load_state(self, state: dict) -> None:
        """Restore state captured by :meth:`state`."""
        self.set_u_max(float(state["u_max"]))
        initial = state.get("initial_loss")
        self._initial_loss = None if initial is None else float(initial)


__all__ = ["MAX_MODEL_FRACTION", "SGuTuner", "ics_upper_bound"]
