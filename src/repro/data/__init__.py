"""Synthetic datasets, worker sharding, and batch loading.

Substitutes for CIFAR-10/100, ImageNet-1K and SQuAD v1.1 (offline
environment — see DESIGN.md §2): Gaussian-mixture image classification
tasks with controllable class separability, and a synthetic extractive-QA
task where a transformer must locate an answer-token span.

Sharding supports IID splits and Dirichlet non-IID splits (the data regime
the paper notes HSP mishandles, §2.2.1). Loaders reshuffle every epoch, as
OSP requires (§4.2: "the local dataset is shuffled every epoch ... to
prevent a fixed portion of the dataset from always being trained with
outdated parameters after LGP").
"""

from repro.data.dataset import Dataset, train_test_split
from repro.data.synthetic_images import make_image_classification
from repro.data.synthetic_qa import ANSWER_VOCAB_RANGE, make_extractive_qa
from repro.data.shard import shard_dirichlet, shard_iid
from repro.data.loader import BatchLoader

__all__ = [
    "ANSWER_VOCAB_RANGE",
    "BatchLoader",
    "Dataset",
    "make_extractive_qa",
    "make_image_classification",
    "shard_dirichlet",
    "shard_iid",
    "train_test_split",
]
