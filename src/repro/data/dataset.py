"""Dataset container and splitting."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Dataset:
    """In-memory dataset.

    Parameters
    ----------
    inputs:
        Feature array; first axis is the sample axis. Images are NCHW
        floats, QA inputs are integer token matrices (N, seq).
    targets:
        For classification: integer labels (N,). For QA: integer array of
        shape (N, 2) holding (start, end) positions.
    task:
        ``"classification"`` or ``"qa"``.
    """

    inputs: np.ndarray
    targets: np.ndarray
    task: str = "classification"

    def __post_init__(self) -> None:
        if self.task not in ("classification", "qa"):
            raise ValueError(f"unknown task {self.task!r}")
        if len(self.inputs) != len(self.targets):
            raise ValueError(
                f"inputs ({len(self.inputs)}) and targets ({len(self.targets)}) "
                "length mismatch"
            )
        if self.task == "qa" and (self.targets.ndim != 2 or self.targets.shape[1] != 2):
            raise ValueError(f"qa targets must be (N, 2), got {self.targets.shape}")

    def __len__(self) -> int:
        return len(self.inputs)

    @property
    def n_classes(self) -> int:
        """Number of classes (classification only)."""
        if self.task != "classification":
            raise ValueError("n_classes is only defined for classification")
        return int(self.targets.max()) + 1

    def subset(self, indices: np.ndarray) -> "Dataset":
        """Dataset restricted to ``indices`` (copies)."""
        return Dataset(self.inputs[indices], self.targets[indices], self.task)


def train_test_split(
    dataset: Dataset, test_fraction: float = 0.2, seed: int = 0
) -> tuple[Dataset, Dataset]:
    """Shuffled split into (train, test)."""
    if not (0.0 < test_fraction < 1.0):
        raise ValueError(f"test_fraction must be in (0,1), got {test_fraction}")
    rng = np.random.default_rng(seed)
    perm = rng.permutation(len(dataset))
    n_test = max(1, int(round(len(dataset) * test_fraction)))
    return dataset.subset(perm[n_test:]), dataset.subset(perm[:n_test])


__all__ = ["Dataset", "train_test_split"]
