"""Per-worker batch loading with per-epoch reshuffling."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.data.dataset import Dataset


class BatchLoader:
    """Deterministic epoch-shuffled batch iterator over one worker's shard.

    The permutation for epoch ``e`` depends only on (seed, e), implementing
    the paper's §4.2 requirement that local data is reshuffled every epoch
    so no fixed subset always trains on post-LGP stale parameters.
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int,
        seed: int = 0,
        drop_last: bool = True,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if len(dataset) == 0:
            raise ValueError("empty dataset")
        if drop_last and len(dataset) < batch_size:
            raise ValueError(
                f"shard of {len(dataset)} samples smaller than batch {batch_size} "
                "with drop_last=True"
            )
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.seed = int(seed)
        self.drop_last = drop_last
        self._perm_cache: tuple[int, np.ndarray] | None = None

    @property
    def batches_per_epoch(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def epoch(self, epoch_index: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield (inputs, targets) batches for the given epoch."""
        rng = np.random.default_rng(
            np.random.SeedSequence([self.seed, epoch_index])
        )
        perm = rng.permutation(len(self.dataset))
        n_batches = self.batches_per_epoch
        for b in range(n_batches):
            idx = perm[b * self.batch_size : (b + 1) * self.batch_size]
            yield self.dataset.inputs[idx], self.dataset.targets[idx]

    def batch(self, epoch_index: int, batch_index: int) -> tuple[np.ndarray, np.ndarray]:
        """Random access to one batch (used by event-driven workers that
        interleave iterations rather than looping an iterator)."""
        if not (0 <= batch_index < self.batches_per_epoch):
            raise IndexError(
                f"batch {batch_index} out of range [0,{self.batches_per_epoch})"
            )
        if self._perm_cache is not None and self._perm_cache[0] == epoch_index:
            perm = self._perm_cache[1]
        else:
            rng = np.random.default_rng(
                np.random.SeedSequence([self.seed, epoch_index])
            )
            perm = rng.permutation(len(self.dataset))
            self._perm_cache = (epoch_index, perm)
        idx = perm[batch_index * self.batch_size : (batch_index + 1) * self.batch_size]
        return self.dataset.inputs[idx], self.dataset.targets[idx]


__all__ = ["BatchLoader"]
