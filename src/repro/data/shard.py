"""Partitioning a dataset across workers (data parallelism)."""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset


def shard_iid(dataset: Dataset, n_workers: int, seed: int = 0) -> list[Dataset]:
    """IID sharding: global shuffle, then contiguous equal splits.

    Sizes differ by at most one sample.
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if len(dataset) < n_workers:
        raise ValueError(f"{len(dataset)} samples cannot cover {n_workers} workers")
    rng = np.random.default_rng(seed)
    perm = rng.permutation(len(dataset))
    return [dataset.subset(chunk) for chunk in np.array_split(perm, n_workers)]


def shard_dirichlet(
    dataset: Dataset, n_workers: int, alpha: float = 0.5, seed: int = 0
) -> list[Dataset]:
    """Non-IID sharding via per-class Dirichlet proportions.

    Smaller ``alpha`` ⇒ more skew (each worker dominated by few classes) —
    the standard federated/distributed non-IID benchmark construction and
    the regime the paper notes HSP cannot handle (§2.2.1). Classification
    datasets only.
    """
    if dataset.task != "classification":
        raise ValueError("Dirichlet sharding requires a classification dataset")
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    rng = np.random.default_rng(seed)

    worker_indices: list[list[int]] = [[] for _ in range(n_workers)]
    for cls in range(dataset.n_classes):
        cls_idx = np.flatnonzero(dataset.targets == cls)
        rng.shuffle(cls_idx)
        props = rng.dirichlet(alpha * np.ones(n_workers))
        counts = np.floor(props * len(cls_idx)).astype(int)
        counts[-1] += len(cls_idx) - counts.sum()
        start = 0
        for w in range(n_workers):
            worker_indices[w].extend(cls_idx[start : start + counts[w]])
            start += counts[w]

    # Guarantee every worker has at least one sample (steal from largest).
    for w in range(n_workers):
        while not worker_indices[w]:
            donor = max(range(n_workers), key=lambda i: len(worker_indices[i]))
            worker_indices[w].append(worker_indices[donor].pop())

    shards = []
    for w in range(n_workers):
        idx = np.array(sorted(worker_indices[w]))
        shards.append(dataset.subset(idx))
    return shards


__all__ = ["shard_dirichlet", "shard_iid"]
