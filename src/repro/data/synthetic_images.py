"""Synthetic image-classification data: Gaussian class mixtures.

Each class gets a smooth random prototype image; samples are prototypes
plus per-sample Gaussian noise. ``noise`` controls separability, giving a
real generalisation gap and non-trivial convergence curves — what the
sync-model comparison needs from CIFAR-style data.
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import gaussian_filter

from repro.data.dataset import Dataset


def make_image_classification(
    n_samples: int,
    n_classes: int = 10,
    image_size: int = 16,
    channels: int = 3,
    noise: float = 1.0,
    prototype_smoothness: float = 2.0,
    seed: int = 0,
) -> Dataset:
    """Build a CIFAR-like synthetic classification dataset.

    Parameters
    ----------
    n_samples:
        Total samples; classes are balanced (±1).
    n_classes:
        10 for CIFAR-10-like, 100 for CIFAR-100-like, etc.
    image_size, channels:
        Spatial size and channel count (NCHW output).
    noise:
        Per-pixel noise std relative to prototype std; higher = harder.
    prototype_smoothness:
        Gaussian-blur sigma applied to prototypes so classes differ in
        low-frequency structure (convnet-learnable) rather than pixel hash.
    seed:
        Determinism seed.
    """
    if n_samples < n_classes:
        raise ValueError(f"need >= {n_classes} samples, got {n_samples}")
    if n_classes < 2:
        raise ValueError(f"need >= 2 classes, got {n_classes}")
    rng = np.random.default_rng(seed)

    prototypes = rng.normal(size=(n_classes, channels, image_size, image_size))
    prototypes = gaussian_filter(
        prototypes, sigma=(0, 0, prototype_smoothness, prototype_smoothness)
    )
    # Renormalise so the blur does not shrink class separation.
    prototypes /= prototypes.std(axis=(1, 2, 3), keepdims=True)

    labels = np.tile(np.arange(n_classes), n_samples // n_classes + 1)[:n_samples]
    rng.shuffle(labels)
    images = prototypes[labels] + noise * rng.normal(
        size=(n_samples, channels, image_size, image_size)
    )
    return Dataset(images.astype(np.float64), labels.astype(np.int64), "classification")


__all__ = ["make_image_classification"]
