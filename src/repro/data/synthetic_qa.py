"""Synthetic extractive QA: locate a span of answer-vocabulary tokens.

Sequences are drawn from a "context" sub-vocabulary; a contiguous answer
span is drawn from a disjoint "answer" sub-vocabulary. The model must
output the span's start and end positions — structurally the SQuAD v1.1
fine-tuning task (predict answer start/end in context), learnable by a
small transformer.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset

#: Token-id range [lo, hi) reserved for answer-span tokens.
ANSWER_VOCAB_RANGE = (2, 10)


def make_extractive_qa(
    n_samples: int,
    seq_len: int = 16,
    vocab_size: int = 64,
    max_answer_len: int = 3,
    noise_flip_prob: float = 0.02,
    seed: int = 0,
) -> Dataset:
    """Build a SQuAD-like synthetic QA dataset.

    ``noise_flip_prob`` randomly replaces context tokens with answer-vocab
    tokens (distractors), so the task is not trivially solvable by a single
    token lookup.
    """
    lo, hi = ANSWER_VOCAB_RANGE
    if vocab_size <= hi:
        raise ValueError(f"vocab_size must exceed {hi}, got {vocab_size}")
    if not (1 <= max_answer_len <= seq_len):
        raise ValueError(f"max_answer_len must be in [1,{seq_len}], got {max_answer_len}")
    rng = np.random.default_rng(seed)

    tokens = rng.integers(hi, vocab_size, size=(n_samples, seq_len))
    lengths = rng.integers(1, max_answer_len + 1, size=n_samples)
    starts = rng.integers(0, seq_len - lengths + 1)
    ends = starts + lengths - 1

    rows = np.arange(n_samples)
    for offset in range(max_answer_len):
        mask = offset < lengths
        tokens[rows[mask], starts[mask] + offset] = rng.integers(
            lo, hi, size=mask.sum()
        )

    if noise_flip_prob > 0:
        flips = rng.random(tokens.shape) < noise_flip_prob
        # Never corrupt the true span positions' labels: distractors may
        # duplicate answer vocab elsewhere, which is the point.
        tokens[flips] = rng.integers(lo, hi, size=flips.sum())
        # Restore the actual span tokens where flips hit them.
        for offset in range(max_answer_len):
            mask = offset < lengths
            pos = starts[mask] + offset
            resample = flips[rows[mask], pos]
            if resample.any():
                sel = rows[mask][resample]
                tokens[sel, pos[resample]] = rng.integers(lo, hi, size=sel.size)

    targets = np.stack([starts, ends], axis=1).astype(np.int64)
    return Dataset(tokens.astype(np.int64), targets, "qa")


__all__ = ["ANSWER_VOCAB_RANGE", "make_extractive_qa"]
