"""Fault injection: scheduled network/worker faults + PS-side resilience.

See :mod:`repro.faults.schedule` for the event taxonomy and
:mod:`repro.faults.injector` for how events are replayed against a live
simulation. PS-side resilience (degraded RS quorum, §4.3 BSP fallback)
lives in :class:`repro.simcore.resources.QuorumBarrier` and
:class:`repro.core.osp.OSP`.
"""

from repro.faults.injector import FLAP_RESIDUAL, FaultInjector
from repro.faults.schedule import (
    BandwidthDip,
    EVENT_KINDS,
    FaultEvent,
    FaultSchedule,
    LinkFlap,
    LossBurst,
    StragglerSlowdown,
    WorkerCrash,
    parse_faults,
)

__all__ = [
    "BandwidthDip",
    "EVENT_KINDS",
    "FLAP_RESIDUAL",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "LinkFlap",
    "LossBurst",
    "StragglerSlowdown",
    "WorkerCrash",
    "parse_faults",
]
