"""Replays a :class:`~repro.faults.schedule.FaultSchedule` against a run.

The injector bridges the declarative schedule and the live simulation:

* network events become simcore processes that toggle multiplicative fault
  state on the targeted :class:`~repro.netsim.links.Link` objects and ask
  the :class:`~repro.netsim.network.Network` to re-run fair sharing;
* crashes register with the :class:`~repro.cluster.context.TrainerContext`
  failure schedule (the worker loop consults it at epoch boundaries);
* straggler windows are answered on demand via :meth:`compute_factor`,
  which the context multiplies into each iteration's compute time.

Every fired fault increments a ``faults.*`` counter on the run's
:class:`~repro.metrics.recorder.Recorder`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.cluster.context import TrainerContext

from repro.faults.schedule import (
    BandwidthDip,
    FaultSchedule,
    LinkFlap,
    LossBurst,
    StragglerSlowdown,
)
from repro.netsim.links import Link
from repro.netsim.topology import StarTopology

#: Residual bandwidth factor for a flapped ("down") link. Not exactly zero:
#: max–min fair sharing needs positive capacities, and a crawling link is
#: the fluid-model analogue of TCP timeouts on a dead path.
FLAP_RESIDUAL = 1e-6


class FaultInjector:
    """Drives one schedule against one trainer context."""

    def __init__(self, ctx: "TrainerContext", schedule: FaultSchedule) -> None:
        self.ctx = ctx
        self.schedule = schedule
        self._started = False

    def start(self) -> None:
        """Register crashes and spawn the window processes (idempotent)."""
        if self._started:
            return
        self._started = True
        for crash in self.schedule.crash_events:
            self.ctx.schedule_failure(
                crash.worker,
                crash.before_epoch,
                restart_epoch=crash.restart_epoch,
                recover=crash.recover,
            )
        for ev in self.schedule.network_events:
            self.ctx.env.process(self._network_window(ev))
        for ev in self.schedule.straggler_events:
            self.ctx.env.process(self._straggler_window(ev))

    # -- worker-side ---------------------------------------------------------
    def compute_factor(self, worker: int, now: float) -> float:
        """Product of active straggler factors for ``worker`` at ``now``."""
        factor = 1.0
        for ev in self.schedule.straggler_events:
            if ev.worker == worker and ev.start <= now < ev.start + ev.duration:
                factor *= ev.factor
        return factor

    # -- network-side --------------------------------------------------------
    def _fault_args(self, ev) -> dict:
        if isinstance(ev, LossBurst):
            return {"extra_loss": ev.loss_rate}
        if isinstance(ev, BandwidthDip):
            return {"bandwidth_factor": ev.factor}
        if isinstance(ev, LinkFlap):
            return {"bandwidth_factor": FLAP_RESIDUAL}
        raise TypeError(f"not a network fault: {ev!r}")  # pragma: no cover

    def _links_for(self, nodes) -> list[Link]:
        topo = self.ctx.network.topology
        if nodes is None:
            return list(topo.links)
        if not isinstance(topo, StarTopology):
            raise ValueError(
                "node-targeted network faults require a StarTopology; "
                "use nodes=None for fabric-wide faults"
            )
        links: list[Link] = []
        for n in nodes:
            if not (0 <= n < topo.n_nodes):
                raise ValueError(f"fault targets unknown node {n}")
            links.append(topo.uplinks[n])
            links.append(topo.downlinks[n])
        return links

    def _network_window(self, ev):
        links = self._links_for(ev.nodes)  # validate before time passes
        args = self._fault_args(ev)
        # Event times are absolute virtual seconds; on a checkpoint resume the
        # clock starts past zero, so windows already over are skipped and the
        # counter/instant only fires for windows this run actually starts
        # (the restored recorder holds the counts for windows fired earlier).
        now = self.ctx.env.now
        if ev.start + ev.duration <= now:
            return
        fresh = ev.start >= now
        if ev.start > now:
            yield self.ctx.env.timeout(ev.start - now)
        trace = self.ctx.trace
        if fresh:
            self.ctx.recorder.incr(f"faults.{ev.kind}")
            trace.instant(
                f"faults.{ev.kind}", actor="faults", track="faults",
                nodes=list(ev.nodes) if ev.nodes is not None else "all", **args,
            )
        span = trace.begin(
            f"faults.{ev.kind}", "faults", track="faults", cat="fault", **args
        )
        for link in links:
            link.apply_fault(**args)
        self.ctx.network.refresh_capacities()
        yield self.ctx.env.timeout(ev.start + ev.duration - self.ctx.env.now)
        for link in links:
            link.clear_fault(**args)
        self.ctx.network.refresh_capacities()
        trace.end(span)

    def _straggler_window(self, ev: StragglerSlowdown):
        now = self.ctx.env.now
        if ev.start + ev.duration <= now:
            return  # fully in the past (checkpoint resume)
        fresh = ev.start >= now
        if ev.start > now:
            yield self.ctx.env.timeout(ev.start - now)
        # The slowdown itself is applied via compute_factor(); this process
        # only stamps the counter at window start.
        trace = self.ctx.trace
        if fresh:
            self.ctx.recorder.incr("faults.straggler")
            trace.instant(
                "faults.straggler", actor="faults", track="faults",
                worker=ev.worker, factor=ev.factor,
            )
        if trace:
            # Only traced runs pay for the window-end wakeup; untraced runs
            # keep their exact event schedule (the slowdown needs no timer).
            span = trace.begin(
                "faults.straggler", "faults", track="faults", cat="fault",
                worker=ev.worker, factor=ev.factor,
            )
            yield self.ctx.env.timeout(ev.start + ev.duration - self.ctx.env.now)
            trace.end(span)


__all__ = ["FLAP_RESIDUAL", "FaultInjector"]
