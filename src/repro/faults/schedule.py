"""Time-indexed fault schedules for robustness experiments.

The paper's case for OSP rests on behaviour under imperfect networks —
Eq. 5 bakes the loss rate into the ICS budget and §4.3 defines graceful
degradation — so the simulator must be able to *perturb* a run, not just
hold a constant loss rate. A :class:`FaultSchedule` is a declarative,
immutable list of fault events; :class:`~repro.faults.injector.FaultInjector`
replays it against a live simulation.

Event taxonomy
--------------
Network (applied to :class:`~repro.netsim.links.Link` state for a window):

* :class:`LossBurst` — extra loss rate on the targeted links.
* :class:`BandwidthDip` — capacity scaled by a factor < 1.
* :class:`LinkFlap` — the link effectively goes dark (a tiny residual
  capacity avoids divide-by-zero while making progress negligible).

Worker:

* :class:`StragglerSlowdown` — a worker's compute time is multiplied by a
  factor ≥ 1 inside the window (deterministic straggler, unlike the
  stochastic :class:`~repro.hardware.jitter.LognormalJitter`).
* :class:`WorkerCrash` — the worker dies before starting ``before_epoch``;
  with ``restart_epoch`` set it rejoins at that epoch after re-syncing its
  replica from the PS.

All times are virtual seconds; epochs are 0-based plan epochs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import ClassVar, Optional, Sequence, Union


def _check_window(start: float, duration: float) -> None:
    if start < 0:
        raise ValueError(f"start must be >= 0, got {start}")
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")


def _freeze_nodes(obj, nodes) -> None:
    if nodes is not None:
        object.__setattr__(obj, "nodes", tuple(int(n) for n in nodes))


@dataclass(frozen=True)
class LossBurst:
    """Extra packet loss on the targeted nodes' links for a window.

    ``nodes=None`` hits every link in the fabric; otherwise the listed
    nodes' uplink+downlink pairs (StarTopology only).
    """

    kind: ClassVar[str] = "loss_burst"
    start: float
    duration: float
    loss_rate: float = 0.05
    nodes: Optional[tuple[int, ...]] = None

    def __post_init__(self) -> None:
        _check_window(self.start, self.duration)
        if not (0.0 <= self.loss_rate < 1.0):
            raise ValueError(f"loss_rate must be in [0,1), got {self.loss_rate}")
        _freeze_nodes(self, self.nodes)


@dataclass(frozen=True)
class BandwidthDip:
    """Link capacity scaled by ``factor`` (< 1 is a dip) for a window."""

    kind: ClassVar[str] = "bandwidth_dip"
    start: float
    duration: float
    factor: float = 0.5
    nodes: Optional[tuple[int, ...]] = None

    def __post_init__(self) -> None:
        _check_window(self.start, self.duration)
        if not (0.0 < self.factor <= 1.0):
            raise ValueError(f"factor must be in (0,1], got {self.factor}")
        _freeze_nodes(self, self.nodes)


@dataclass(frozen=True)
class LinkFlap:
    """The targeted links go dark for a window (near-zero capacity)."""

    kind: ClassVar[str] = "link_flap"
    start: float
    duration: float
    nodes: Optional[tuple[int, ...]] = None

    def __post_init__(self) -> None:
        _check_window(self.start, self.duration)
        _freeze_nodes(self, self.nodes)


@dataclass(frozen=True)
class StragglerSlowdown:
    """Deterministic straggler: ``worker``'s compute × ``factor`` in-window."""

    kind: ClassVar[str] = "straggler"
    worker: int
    start: float
    duration: float
    factor: float = 2.0

    def __post_init__(self) -> None:
        _check_window(self.start, self.duration)
        if self.worker < 0:
            raise ValueError(f"worker must be >= 0, got {self.worker}")
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {self.factor}")


@dataclass(frozen=True)
class WorkerCrash:
    """``worker`` dies before starting epoch ``before_epoch`` (0-based).

    With ``restart_epoch`` set the worker rejoins once the cluster has
    finished epoch ``restart_epoch − 1`` — a crash/restart cycle rather
    than a permanent loss.  ``recover`` picks how the rejoining worker gets
    its state back: ``"cold"`` re-syncs the replica from the live PS;
    ``"checkpoint"`` restores it from the run's latest checkpoint (requires
    checkpointing to be enabled on the trainer).
    """

    kind: ClassVar[str] = "worker_crash"
    worker: int
    before_epoch: int
    restart_epoch: Optional[int] = None
    recover: str = "cold"

    def __post_init__(self) -> None:
        if self.worker < 0:
            raise ValueError(f"worker must be >= 0, got {self.worker}")
        if self.before_epoch < 1:
            raise ValueError(
                "workers can only fail after completing an epoch "
                f"(before_epoch >= 1), got {self.before_epoch}"
            )
        if self.restart_epoch is not None and self.restart_epoch <= self.before_epoch:
            raise ValueError(
                f"restart_epoch ({self.restart_epoch}) must be after "
                f"before_epoch ({self.before_epoch})"
            )
        if self.recover not in ("cold", "checkpoint"):
            raise ValueError(
                f"recover must be 'cold' or 'checkpoint', got {self.recover!r}"
            )
        if self.recover == "checkpoint" and self.restart_epoch is None:
            raise ValueError("recover='checkpoint' requires restart_epoch")


FaultEvent = Union[LossBurst, BandwidthDip, LinkFlap, StragglerSlowdown, WorkerCrash]

#: JSON ``kind`` → event class, for :func:`parse_faults`.
EVENT_KINDS: dict[str, type] = {
    cls.kind: cls
    for cls in (LossBurst, BandwidthDip, LinkFlap, StragglerSlowdown, WorkerCrash)
}


@dataclass(frozen=True)
class FaultSchedule:
    """Immutable, validated collection of fault events."""

    events: tuple[FaultEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        events = tuple(self.events)
        for ev in events:
            if type(ev) not in EVENT_KINDS.values():
                raise TypeError(f"not a fault event: {ev!r}")
        crashes = [ev.worker for ev in events if isinstance(ev, WorkerCrash)]
        if len(crashes) != len(set(crashes)):
            raise ValueError("at most one WorkerCrash per worker")
        object.__setattr__(self, "events", events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def network_events(self) -> tuple[FaultEvent, ...]:
        return tuple(
            ev for ev in self.events
            if isinstance(ev, (LossBurst, BandwidthDip, LinkFlap))
        )

    @property
    def straggler_events(self) -> tuple[StragglerSlowdown, ...]:
        return tuple(ev for ev in self.events if isinstance(ev, StragglerSlowdown))

    @property
    def crash_events(self) -> tuple[WorkerCrash, ...]:
        return tuple(ev for ev in self.events if isinstance(ev, WorkerCrash))

    def windows(self) -> list[tuple[str, float, float, str]]:
        """Time windows for dashboard shading: ``(kind, start, duration,
        detail)`` per windowed event, sorted by start time.

        Crashes are epoch-indexed rather than time-indexed, so they are
        excluded — the dashboard shades them from the tracer's fault spans,
        which carry the realised virtual-time window.
        """
        out: list[tuple[str, float, float, str]] = []
        for ev in self.events:
            if isinstance(ev, WorkerCrash):
                continue
            if isinstance(ev, StragglerSlowdown):
                detail = f"worker {ev.worker} x{ev.factor:g}"
            elif isinstance(ev, BandwidthDip):
                detail = f"factor {ev.factor:g}"
            elif isinstance(ev, LossBurst):
                detail = f"loss {ev.loss_rate:g}"
            else:
                detail = ""
            out.append((ev.kind, ev.start, ev.duration, detail))
        out.sort(key=lambda w: (w[1], w[0]))
        return out


def parse_faults(spec: Union[str, Path]) -> FaultSchedule:
    """Build a schedule from inline JSON or a JSON file path.

    Accepts either a JSON list of event objects or ``{"events": [...]}``;
    each object needs a ``"kind"`` from :data:`EVENT_KINDS` plus that
    event's fields::

        [{"kind": "loss_burst", "start": 2.0, "duration": 5.0,
          "loss_rate": 0.2},
         {"kind": "worker_crash", "worker": 3, "before_epoch": 2}]
    """
    text = str(spec).strip()
    if not text.startswith(("[", "{")):
        text = Path(text).read_text()
    payload = json.loads(text)
    if isinstance(payload, dict):
        payload = payload.get("events", [])
    if not isinstance(payload, list):
        raise ValueError("fault spec must be a JSON list or {'events': [...]}")
    events = []
    for entry in payload:
        if not isinstance(entry, dict) or "kind" not in entry:
            raise ValueError(f"fault entry needs a 'kind' field: {entry!r}")
        entry = dict(entry)
        kind = entry.pop("kind")
        cls = EVENT_KINDS.get(kind)
        if cls is None:
            raise ValueError(
                f"unknown fault kind {kind!r}; expected one of {sorted(EVENT_KINDS)}"
            )
        if "nodes" in entry and entry["nodes"] is not None:
            entry["nodes"] = tuple(entry["nodes"])
        events.append(cls(**entry))
    return FaultSchedule(tuple(events))


__all__ = [
    "BandwidthDip",
    "EVENT_KINDS",
    "FaultEvent",
    "FaultSchedule",
    "LinkFlap",
    "LossBurst",
    "StragglerSlowdown",
    "WorkerCrash",
    "parse_faults",
]
