"""Hardware models: GPUs, per-iteration compute time, stragglers.

The paper's timing claims hinge on the ratio of per-iteration computation
time ``T_c`` to synchronization time. We model ``T_c`` from first
principles: a training iteration costs roughly ``3 × FLOPs_forward`` (one
forward + a backward that is ~2× forward), divided by the GPU's *achieved*
throughput (peak TFLOPS × an efficiency factor — deep learning kernels on
real GPUs reach 25–45% of peak for these convnets).

Straggler models inject per-iteration compute-time jitter — the phenomenon
that makes BSP's barrier expensive (Fig. 1) and ASP attractive (Fig. 2).
"""

from repro.hardware.gpu import GPU_CATALOG, GPUSpec
from repro.hardware.compute import ComputeModel
from repro.hardware.jitter import (
    JitterModel,
    LognormalJitter,
    NoJitter,
    PersistentStraggler,
)

__all__ = [
    "ComputeModel",
    "GPU_CATALOG",
    "GPUSpec",
    "JitterModel",
    "LognormalJitter",
    "NoJitter",
    "PersistentStraggler",
]
