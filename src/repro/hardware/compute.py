"""Per-iteration compute-time model.

``T_c = (fwd + bwd) FLOPs / achieved FLOP/s + fixed overhead``, where
``bwd ≈ 2 × fwd`` (gradient w.r.t. activations + w.r.t. weights), i.e. the
standard ``3×`` rule. Fixed overhead covers kernel-launch, host-side data
loading and optimiser step — a few milliseconds per iteration on the
paper's testbed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hardware.gpu import GPUSpec

#: backward pass ≈ 2x the forward pass.
BACKWARD_FACTOR = 2.0


@dataclass(frozen=True)
class ComputeModel:
    """Computes iteration time for (model, batch) on a GPU.

    Parameters
    ----------
    gpu:
        The GPU executing the iteration.
    fixed_overhead:
        Per-iteration constant cost in seconds (data loading, launch,
        optimiser step).
    pgp_bandwidth:
        Effective parameter-processing rate (bytes/s) of the paper's
        *preliminary* PGP implementation (§5.4): one small kernel per layer
        for the ``|g·p|`` sums plus a host-side sort — launch- and
        PCIe-bound rather than FLOP-bound, hence far below memory
        bandwidth. Calibrated so OSP-C overhead lands in the paper's 3–8%
        band with the correct per-model ordering (params/FLOPs ratio).
    """

    gpu: GPUSpec
    fixed_overhead: float = 4e-3
    pgp_bandwidth: float = 3e9

    def __post_init__(self) -> None:
        if self.fixed_overhead < 0:
            raise ValueError(f"fixed_overhead must be >= 0, got {self.fixed_overhead}")
        if self.pgp_bandwidth <= 0:
            raise ValueError(f"pgp_bandwidth must be positive, got {self.pgp_bandwidth}")

    def iteration_time(self, flops_per_sample: float, batch_size: int) -> float:
        """Seconds for one forward+backward over ``batch_size`` samples."""
        if flops_per_sample <= 0:
            raise ValueError(f"flops_per_sample must be positive, got {flops_per_sample}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        flops = (1.0 + BACKWARD_FACTOR) * flops_per_sample * batch_size
        return flops / self.gpu.achieved_flops + self.fixed_overhead

    def forward_time(self, flops_per_sample: float, batch_size: int) -> float:
        """Seconds for the forward pass alone (used for evaluation passes)."""
        if flops_per_sample <= 0:
            raise ValueError(f"flops_per_sample must be positive, got {flops_per_sample}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        return flops_per_sample * batch_size / self.gpu.achieved_flops

    def pgp_time(self, n_params: int, n_layers: int) -> float:
        """Cost of PGP importance computation + per-layer sort (§4.4).

        Charged at :attr:`pgp_bandwidth` over the parameter bytes (one
        ``|g·p|`` reduction kernel per layer, launch/PCIe-bound in the
        paper's preliminary implementation) plus a per-layer launch cost
        and an ``O(L log L)`` host sort (both tiny, but modelled so the
        layer count matters at all).
        """
        if n_params < 0 or n_layers < 0:
            raise ValueError("n_params and n_layers must be >= 0")
        elementwise = 4.0 * n_params / self.pgp_bandwidth
        launch = 10e-6 * n_layers  # one kernel launch per layer
        log_l = math.log2(n_layers) if n_layers > 1 else 1.0
        sort = 1e-7 * n_layers * log_l
        return elementwise + launch + sort


__all__ = ["BACKWARD_FACTOR", "ComputeModel"]
