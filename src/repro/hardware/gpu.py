"""GPU specifications.

Peak FP32 throughputs match the figures the paper quotes in §1
(RTX 2080 Ti: 13.45 TFLOPS, RTX 3090: 35.58 TFLOPS) and the public
datasheet number for the testbed's Tesla T4 (§5.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GPUSpec:
    """A GPU model with its peak FP32 throughput.

    Parameters
    ----------
    name:
        Marketing name, used as the catalogue key.
    tflops:
        Peak FP32 TFLOPS.
    memory_gb:
        Device memory (used only for sanity checks on batch sizes).
    efficiency:
        Fraction of peak realistically achieved by DNN training kernels.
    """

    name: str
    tflops: float
    memory_gb: float = 16.0
    efficiency: float = 0.33

    def __post_init__(self) -> None:
        if self.tflops <= 0:
            raise ValueError(f"tflops must be positive, got {self.tflops}")
        if not (0 < self.efficiency <= 1):
            raise ValueError(f"efficiency must be in (0,1], got {self.efficiency}")

    @property
    def achieved_flops(self) -> float:
        """Sustained FLOP/s for training workloads."""
        return self.tflops * 1e12 * self.efficiency


#: Catalogue of GPUs referenced by the paper plus common comparators.
GPU_CATALOG: dict[str, GPUSpec] = {
    spec.name: spec
    for spec in [
        # T4 efficiency is set from measured ResNet50 training throughput
        # (~110 img/s ⇒ ~1.5 sustained TFLOPS ≈ 18% of the 8.1 peak).
        GPUSpec("tesla-t4", tflops=8.1, memory_gb=16.0, efficiency=0.18),
        GPUSpec("rtx2080ti", tflops=13.45, memory_gb=11.0),
        GPUSpec("rtx3090", tflops=35.58, memory_gb=24.0),
        GPUSpec("v100", tflops=14.0, memory_gb=32.0),
        GPUSpec("a100", tflops=19.5, memory_gb=40.0),
    ]
}


def get_gpu(name: str) -> GPUSpec:
    """Look up a GPU by catalogue name (raises KeyError with suggestions)."""
    try:
        return GPU_CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(GPU_CATALOG))
        raise KeyError(f"unknown GPU {name!r}; known: {known}") from None


__all__ = ["GPUSpec", "GPU_CATALOG", "get_gpu"]
