"""Compute-time jitter and straggler models.

Real clusters never execute identical iterations in identical time:
OS noise, thermal throttling, interfering jobs and data-loading hiccups
spread iteration times. This spread is what makes BSP's global barrier
expensive — each iteration costs the *max* over workers — and is the
mechanism behind the paper's Fig. 1/Fig. 2 contrast and the ``T_ASP`` up to
6× smaller than ``T_BSP`` observation (§2.1.2, citing Sync-Switch).

All models are deterministic given their seed.
"""

from __future__ import annotations

from typing import Protocol, Sequence

import numpy as np


class JitterModel(Protocol):
    """Maps a nominal iteration time to a realised one, per worker/iter."""

    def sample(self, base_time: float, worker: int, iteration: int) -> float:
        """Realised compute time for this worker at this iteration."""
        ...


class NoJitter:
    """Idealised homogeneous cluster: realised time == nominal time."""

    def sample(self, base_time: float, worker: int, iteration: int) -> float:
        return base_time


class LognormalJitter:
    """Multiplicative lognormal noise, the standard straggler model.

    ``realised = base × exp(N(0, sigma))``, normalised so the *median*
    equals the nominal time. ``sigma≈0.2`` gives mild OS noise; ``0.5``
    gives the heavy-tailed stragglers that make barriers hurt.

    Samples are indexed by (worker, iteration) through a counter-based
    construction (one child generator per worker) so results do not depend
    on the order in which workers ask.
    """

    def __init__(self, sigma: float = 0.2, seed: int = 0, n_workers: int = 64) -> None:
        if sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {sigma}")
        self.sigma = float(sigma)
        self.seed = int(seed)
        self._streams = [
            np.random.Generator(np.random.PCG64(np.random.SeedSequence([seed, w])))
            for w in range(n_workers)
        ]
        self._cache: dict[tuple[int, int], float] = {}

    def sample(self, base_time: float, worker: int, iteration: int) -> float:
        key = (worker, iteration)
        factor = self._cache.get(key)
        if factor is None:
            # Draw sequentially per worker; iterations are asked in order by
            # the trainer, and the cache makes re-asks consistent.
            factor = float(np.exp(self._streams[worker].normal(0.0, self.sigma)))
            self._cache[key] = factor
        return base_time * factor

    def state_dict(self) -> dict:
        """Serialisable per-worker RNG stream state (for checkpointing)."""
        return {
            "kind": "lognormal",
            "streams": [g.bit_generator.state for g in self._streams],
        }

    def load_state(self, state: dict) -> None:
        """Restore stream state captured by :meth:`state_dict`."""
        streams = state.get("streams", [])
        if len(streams) != len(self._streams):
            raise ValueError(
                f"jitter state has {len(streams)} streams; model has {len(self._streams)}"
            )
        for generator, saved in zip(self._streams, streams):
            generator.bit_generator.state = saved
        self._cache.clear()


class PersistentStraggler:
    """Some workers are permanently slow (e.g. a thermally-throttled node).

    Wraps an inner model; workers in ``slow_workers`` get their realised
    times multiplied by ``slow_factor``.
    """

    def __init__(
        self,
        slow_workers: Sequence[int],
        slow_factor: float = 2.0,
        inner: JitterModel | None = None,
    ) -> None:
        if slow_factor < 1.0:
            raise ValueError(f"slow_factor must be >= 1, got {slow_factor}")
        self.slow_workers = frozenset(int(w) for w in slow_workers)
        self.slow_factor = float(slow_factor)
        self.inner = inner or NoJitter()

    def sample(self, base_time: float, worker: int, iteration: int) -> float:
        t = self.inner.sample(base_time, worker, iteration)
        if worker in self.slow_workers:
            t *= self.slow_factor
        return t

    def state_dict(self) -> dict:
        inner = getattr(self.inner, "state_dict", None)
        return {"kind": "straggler-wrap", "inner": inner() if inner is not None else None}

    def load_state(self, state: dict) -> None:
        if state.get("inner") is not None:
            self.inner.load_state(state["inner"])


__all__ = ["JitterModel", "LognormalJitter", "NoJitter", "PersistentStraggler"]
