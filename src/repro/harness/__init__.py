"""Experiment harness: the paper's workloads and figure experiments.

:mod:`repro.harness.workloads` builds ready-to-run (spec, plan, engine)
triples for the five evaluation workloads (§5.1.2) in timing or numeric
mode; :mod:`repro.harness.figures` implements one function per paper
figure/table, returning plain data structures the benchmarks print.
"""

from repro.harness.workloads import (
    EVALUATION_WORKLOADS,
    WorkloadConfig,
    make_numeric_dataset,
    numeric_trainer,
    timing_trainer,
)
from repro.harness import figures, sweep
from repro.harness.cotenancy import (
    osp_with_background,
    shared_fabric_runner,
    uniform_jobs,
)
from repro.harness.stats import MultiSeedResult, SeedStats, run_seeds

__all__ = [
    "EVALUATION_WORKLOADS",
    "MultiSeedResult",
    "SeedStats",
    "WorkloadConfig",
    "figures",
    "make_numeric_dataset",
    "numeric_trainer",
    "osp_with_background",
    "run_seeds",
    "shared_fabric_runner",
    "sweep",
    "timing_trainer",
    "uniform_jobs",
]
