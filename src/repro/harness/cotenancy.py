"""Co-tenant scenario builders for the multi-job runner.

Small factories that turn workload cards into ready-to-run
:class:`~repro.multijob.JobSpec` lists, mirroring what
:mod:`repro.harness.workloads` does for single trainers. The canonical
scenario — an OSP tenant sharing hosts with a best-effort BSP tenant — is
what ``benchmarks/bench_multijob.py`` and ``repro multirun`` default to.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.harness.workloads import WorkloadConfig
from repro.multijob.job import JobSpec, background_job
from repro.multijob.runner import MultiJobRunner


def osp_with_background(
    card_name: str = "vgg16-cifar10",
    n_workers: int = 4,
    n_epochs: int = 3,
    iterations_per_epoch: int = 6,
    sigma: float = 0.1,
    seed: int = 7,
    bg_card_name: Optional[str] = None,
    bg_seed: Optional[int] = None,
) -> list[JobSpec]:
    """The paper-motivated pair: a latency-sensitive OSP job plus a
    best-effort BSP tenant whose traffic is demoted to BULK.

    Under priority scheduling the OSP job's RS stage preempts the
    background tenant's bulk pushes; with priorities off both compete at
    fair share — the gap is the isolation the multijob bench guards.
    """
    from repro.core.osp import OSP
    from repro.sync import BSP

    fg = WorkloadConfig(
        card_name,
        n_workers=n_workers,
        n_epochs=n_epochs,
        iterations_per_epoch=iterations_per_epoch,
        sigma=sigma,
        seed=seed,
    )
    bg = WorkloadConfig(
        bg_card_name or card_name,
        n_workers=n_workers,
        n_epochs=n_epochs,
        iterations_per_epoch=iterations_per_epoch,
        sigma=sigma,
        seed=seed if bg_seed is None else bg_seed,
    )
    return [
        JobSpec(name="osp", workload=fg, sync_factory=OSP),
        background_job("bulk", bg, BSP),
    ]


def uniform_jobs(
    n_jobs: int,
    card_name: str = "vgg16-cifar10",
    sync_factory: Optional[Callable] = None,
    n_workers: int = 4,
    n_epochs: int = 2,
    iterations_per_epoch: int = 4,
    sigma: float = 0.1,
    seed: int = 0,
) -> list[JobSpec]:
    """``n_jobs`` same-shape tenants (``j0``..) with per-job seeds — the
    admission-policy and queueing-study scenario."""
    if sync_factory is None:
        from repro.sync import BSP

        sync_factory = BSP
    return [
        JobSpec(
            name=f"j{i}",
            workload=WorkloadConfig(
                card_name,
                n_workers=n_workers,
                n_epochs=n_epochs,
                iterations_per_epoch=iterations_per_epoch,
                sigma=sigma,
                seed=seed + i,
            ),
            sync_factory=sync_factory,
        )
        for i in range(n_jobs)
    ]


def shared_fabric_runner(
    jobs: Sequence[JobSpec], gpus_per_host: Optional[int] = None, **kwargs
) -> MultiJobRunner:
    """A runner with the co-location the contention scenarios rely on:
    shared placement, one host slot per tenant, and (by default) enough
    GPUs per host that compute never serialises — the jobs contend on the
    network alone. Pass ``gpus_per_host=1`` to study GPU contention too.
    """
    n = len(jobs)
    return MultiJobRunner(
        jobs,
        placement="shared",
        slots_per_host=n,
        gpus_per_host=n if gpus_per_host is None else gpus_per_host,
        **kwargs,
    )


__all__ = ["osp_with_background", "shared_fabric_runner", "uniform_jobs"]
