"""One function per paper figure/table. Each returns plain data (rows or
series) that the corresponding benchmark prints and asserts shape
properties on. See DESIGN.md §4 for the experiment index and EXPERIMENTS.md
for paper-vs-measured results.

``quick=True`` (default) runs reduced-size configurations suitable for CI;
``quick=False`` uses larger budgets with the same structure.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.cluster.spec import ClusterSpec, TrainingPlan
from repro.cluster.engines import TimingEngine
from repro.cluster.trainer import DistributedTrainer
from repro.core.colocated import ColocatedOSP
from repro.core.osp import OSP
from repro.hardware.compute import ComputeModel
from repro.hardware.gpu import get_gpu
from repro.hardware.jitter import LognormalJitter
from repro.nn.models.registry import get_card
from repro.sync.asp import ASP
from repro.sync.bsp import BSP
from repro.sync.r2sp import R2SP
from repro.harness.workloads import (
    EVALUATION_WORKLOADS,
    WorkloadConfig,
    make_numeric_dataset,
    numeric_trainer,
    timing_trainer,
)


def paper_sync_models() -> list:
    """Fresh instances of the four compared models (§5.1.3), figure order."""
    return [ASP(), BSP(), R2SP(), OSP()]


def _steady_state_throughput(recorder, cutoff_iteration: int) -> float:
    iters = [r for r in recorder.iterations if r.iteration >= cutoff_iteration]
    if not iters:
        return recorder.throughput()
    span = max(
        r.start_time + r.compute_time + r.sync_time for r in iters
    ) - min(r.start_time for r in iters)
    return sum(r.samples for r in iters) / span if span > 0 else 0.0


# ----------------------------------------------------------- Figs. 1 & 2
def fig1_fig2_timelines(quick: bool = True) -> dict:
    """BSP vs ASP iteration timelines under stragglers (§2.1.2).

    Returns per-model mean iteration times and the per-worker spans of the
    first iterations (the Fig. 1/2 bar timelines), plus the T_BSP/T_ASP
    ratio the text discusses (ASP up to ~6x faster per iteration in [23]).
    """
    ipe = 6 if quick else 20
    out: dict = {"timelines": {}, "records": {}}
    for sync in (BSP(), ASP()):
        cfg = WorkloadConfig(
            "resnet50-cifar10",
            n_workers=8,
            n_epochs=2,
            iterations_per_epoch=ipe,
            sigma=0.45,  # heavy-straggler regime of the motivation figures
        )
        res = timing_trainer(cfg, sync).run()
        early = [r for r in res.recorder.iterations if r.iteration < 3]
        spans = [
            (r.worker, r.iteration, r.start_time, r.start_time + r.compute_time + r.sync_time)
            for r in early
        ]
        out["timelines"][sync.name] = sorted(spans)
        out["records"][sync.name] = early
        out[f"t_{sync.name}"] = res.recorder.mean_iteration_time()
    out["bsp_over_asp"] = out["t_bsp"] / out["t_asp"]
    return out


# ------------------------------------------------------------------ Fig. 3
def fig3_comm_share(quick: bool = True, node_counts: Sequence[int] = (1, 2, 4, 8)) -> list[tuple]:
    """Communication share of iteration time vs cluster size (ResNet50
    PS-based training, §2.2). Rows: (n_workers, bct_s, bst_s, comm_share)."""
    rows = []
    for n in node_counts:
        cfg = WorkloadConfig(
            "resnet50-cifar10",
            n_workers=n,
            n_epochs=1,
            iterations_per_epoch=4 if quick else 16,
            sigma=0.1,
        )
        res = timing_trainer(cfg, BSP()).run()
        rows.append(
            (n, res.mean_bct, res.mean_bst, res.recorder.communication_share())
        )
    return rows


# --------------------------------------------------- §1 motivation numbers
def motivation_gpu_comm(quick: bool = True) -> list[tuple]:
    """Comm overhead of ResNet152/CIFAR-10 training as GPUs get faster
    (§1: 10% on RTX 2080 Ti → 39% on RTX 3090 in the paper's measurement).

    The paper profiles a per-worker training loop whose framework overlaps
    gradient transfers with backpropagation (WFBP-style, §2.2.1), so the
    *visible* communication overhead is the part of the transfer that
    spills past the backward pass:

        exposed = max(0, 2·S/b − T_backward),  share = exposed/(T_c + exposed)

    Rows: (gpu, t_c_s, exposed_comm_s, comm_share).
    """
    card = get_card("resnet152-cifar10")
    link_bw = ClusterSpec().link.bandwidth
    comm = 2.0 * card.model_bytes / link_bw  # push + pull at full bandwidth
    rows = []
    for gpu_name in ("rtx2080ti", "rtx3090"):
        cm = ComputeModel(get_gpu(gpu_name))
        t_c = cm.iteration_time(card.paper_flops_per_sample, card.batch_size)
        t_backward = t_c * 2.0 / 3.0  # bwd ≈ 2x fwd of the 3x total
        exposed = max(0.0, comm - t_backward)
        share = exposed / (t_c + exposed)
        rows.append((gpu_name, t_c, exposed, share))
    return rows


# ----------------------------------------------------------------- Fig. 6a
def fig6a_throughput(quick: bool = True, workloads: Iterable[str] = EVALUATION_WORKLOADS) -> list[tuple]:
    """Training throughput per workload and sync model.

    Rows: (workload, sync, overall_throughput, steady_state_throughput).
    Units: samples/s (the bench divides BERT by 0.1 to report QAs per 10 s
    as the paper does).
    """
    epochs = 24 if quick else 60
    ipe = 6 if quick else 10
    rows = []
    for wname in workloads:
        for sync in paper_sync_models():
            cfg = WorkloadConfig(
                wname, n_epochs=epochs, iterations_per_epoch=ipe
            )
            res = timing_trainer(cfg, sync).run()
            ss = _steady_state_throughput(
                res.recorder, cutoff_iteration=epochs * ipe * 3 // 4
            )
            rows.append((wname, sync.name, res.throughput, ss))
    return rows


# ----------------------------------------------------------------- Fig. 6d
def fig6d_bst(quick: bool = True, workloads: Iterable[str] = EVALUATION_WORKLOADS) -> list[tuple]:
    """Batch synchronization time per workload and sync model.

    Rows: (workload, sync, mean_bst_s, steady_state_bst_s). Steady-state
    excludes OSP's warm-up epochs (Algorithm 1 ramps from all-RS).
    """
    epochs = 24 if quick else 60
    ipe = 6 if quick else 10
    rows = []
    for wname in workloads:
        for sync in paper_sync_models():
            cfg = WorkloadConfig(wname, n_epochs=epochs, iterations_per_epoch=ipe)
            res = timing_trainer(cfg, sync).run()
            cutoff = epochs * ipe * 3 // 4
            late = [
                r.sync_time for r in res.recorder.iterations if r.iteration >= cutoff
            ]
            rows.append((wname, sync.name, res.mean_bst, float(np.mean(late))))
    return rows


# ------------------------------------------------------- Figs. 6b, 6c, 7, 8
def accuracy_experiment(
    workload: str,
    quick: bool = True,
    seed: int = 0,
    sync_models: Sequence | None = None,
) -> dict[str, dict]:
    """Shared numeric run behind Figs. 6(b), 6(c), 7 and 8.

    Returns per-sync dicts with best metric, iterations-to-best, and the
    time-to-accuracy curve.
    """
    epochs = 8 if quick else 30
    n_samples = 1600 if quick else 6000
    # 8 workers as in the paper's testbed: R2SP's round-robin cycle only
    # starts queueing (its real cost) at this scale.
    cfg = WorkloadConfig(workload, n_workers=8, n_epochs=epochs, sigma=0.3, seed=seed)
    data = make_numeric_dataset(cfg.card, n_samples=n_samples, seed=seed)
    out = {}
    for sync in sync_models if sync_models is not None else paper_sync_models():
        res = numeric_trainer(cfg, sync, data=data).run()
        out[sync.name] = {
            "best_metric": res.best_metric,
            "iterations_to_best": res.recorder.iterations_to_best(),
            "tta": res.recorder.time_to_accuracy(),
            "wall_time": res.wall_time,
        }
    return out


def fig6b_fig6c_accuracy(quick: bool = True, workloads: Iterable[str] | None = None) -> dict[str, dict]:
    """Top-1/F1 and iterations-to-best per workload and sync model."""
    if workloads is None:
        workloads = (
            ("resnet50-cifar10", "bertbase-squad")
            if quick
            else EVALUATION_WORKLOADS
        )
    return {w: accuracy_experiment(w, quick=quick) for w in workloads}


def fig7_tta_images(quick: bool = True, workload: str = "resnet50-cifar10") -> dict[str, list]:
    """Time-to-accuracy curves on an image-classification task."""
    results = accuracy_experiment(workload, quick=quick)
    return {name: d["tta"] for name, d in results.items()}


def fig8_tta_nlp(quick: bool = True) -> dict[str, list]:
    """Time-to-F1 curves on the QA fine-tuning task."""
    results = accuracy_experiment("bertbase-squad", quick=quick)
    return {name: d["tta"] for name, d in results.items()}


# ------------------------------------------------------------------ Fig. 9
def fig9_bct_colocated(quick: bool = True, workloads: Iterable[str] = EVALUATION_WORKLOADS) -> list[tuple]:
    """Batch computation time: BSP vs OSP-S (standalone PS) vs OSP-C
    (co-located PS). Rows: (workload, bct_bsp, bct_osp_s, bct_osp_c_worker0,
    overhead_pct) — overhead is the PS-hosting worker's BCT inflation,
    which the paper measures at 3–8% (min InceptionV3, max VGG16)."""
    epochs = 3 if quick else 8
    ipe = 4 if quick else 8
    rows = []
    for wname in workloads:
        def run(sync, colocated):
            cfg = WorkloadConfig(
                wname,
                n_epochs=epochs,
                iterations_per_epoch=ipe,
                colocated_ps=colocated,
                sigma=0.0,
            )
            return timing_trainer(cfg, sync).run()

        res_bsp = run(BSP(), False)
        res_s = run(OSP(), False)
        res_c = run(ColocatedOSP(), True)
        bct_ps_worker = float(
            np.mean(
                [r.compute_time for r in res_c.recorder.iterations if r.worker == 0]
            )
        )
        overhead = (bct_ps_worker / res_bsp.mean_bct - 1.0) * 100.0
        rows.append(
            (wname, res_bsp.mean_bct, res_s.mean_bct, bct_ps_worker, overhead)
        )
    return rows


__all__ = [
    "accuracy_experiment",
    "fig1_fig2_timelines",
    "fig3_comm_share",
    "fig6a_throughput",
    "fig6b_fig6c_accuracy",
    "fig6d_bst",
    "fig7_tta_images",
    "fig8_tta_nlp",
    "fig9_bct_colocated",
    "motivation_gpu_comm",
    "paper_sync_models",
]
