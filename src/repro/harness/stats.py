"""Multi-seed statistics: run an experiment across seeds and aggregate.

Single-seed comparisons can flatter whichever method got a lucky draw;
`run_seeds` repeats a trainer-factory across seeds and reports mean ± std
for the headline metrics, so benchmark claims can be checked for
seed-robustness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.cluster.trainer import TrainingResult
from repro.perf.executor import parallel_map


@dataclass(frozen=True)
class SeedStats:
    """Aggregate of one metric across seeds."""

    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError(
                "SeedStats needs at least one value; got an empty tuple"
            )

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        return float(np.std(self.values))

    @property
    def min(self) -> float:
        return float(np.min(self.values))

    @property
    def max(self) -> float:
        return float(np.max(self.values))

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.std:.2g}"


@dataclass(frozen=True)
class MultiSeedResult:
    """Per-metric statistics for one (workload, sync) configuration."""

    throughput: SeedStats
    best_metric: SeedStats
    mean_bst: SeedStats

    @classmethod
    def from_results(cls, results: Sequence[TrainingResult]) -> "MultiSeedResult":
        return cls(
            throughput=SeedStats(tuple(r.throughput for r in results)),
            best_metric=SeedStats(tuple(r.best_metric for r in results)),
            mean_bst=SeedStats(tuple(r.mean_bst for r in results)),
        )


def run_seeds(
    trainer_factory: Callable[[int], "DistributedTrainer"],  # noqa: F821
    seeds: Sequence[int],
    jobs: int | None = 1,
) -> MultiSeedResult:
    """Run ``trainer_factory(seed)`` for each seed and aggregate.

    The factory must build a *fresh* trainer per call (trainers are
    single-use). ``jobs`` fans seeds across forked processes via
    :func:`repro.perf.parallel_map`; only the aggregated scalar metrics
    cross the process boundary (full ``TrainingResult`` objects hold live
    simulation state and do not pickle), so the statistics are identical
    to a serial run.
    """
    if not seeds:
        raise ValueError("need at least one seed")

    def one(seed: int) -> tuple[float, float, float]:
        res = trainer_factory(int(seed)).run()
        return res.throughput, res.best_metric, res.mean_bst

    metrics = parallel_map(one, [int(s) for s in seeds], jobs=jobs)
    return MultiSeedResult(
        throughput=SeedStats(tuple(m[0] for m in metrics)),
        best_metric=SeedStats(tuple(m[1] for m in metrics)),
        mean_bst=SeedStats(tuple(m[2] for m in metrics)),
    )


__all__ = ["MultiSeedResult", "SeedStats", "run_seeds"]
