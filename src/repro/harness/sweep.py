"""Parameter sweeps: sensitivity of the sync-model comparison to cluster
knobs (bandwidth, worker count, jitter, compute speed).

The headline use is the **crossover analysis**: OSP's advantage over BSP
and its parity with ASP depend on the compute/communication ratio
``rho = T_c / (2·N·S/b)``. Sweeping bandwidth (or GPU speed) moves rho
through three regimes:

* ``rho >> 1`` (fast network / slow GPU): communication is negligible —
  every sync model converges to the compute-bound throughput.
* ``rho ≈ 1``: OSP's overlap shines — it hides what BSP exposes.
* ``rho << 1`` (slow network): even ICS cannot fit inside T_c (Eq. 5
  binds); OSP degrades gracefully toward the best non-overlapped schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterable, Sequence

from repro.cluster.spec import ClusterSpec, TrainingPlan
from repro.cluster.engines import TimingEngine
from repro.cluster.trainer import DistributedTrainer
from repro.hardware.jitter import LognormalJitter
from repro.netsim.links import LinkSpec
from repro.nn.models.registry import get_card
from repro.perf.executor import parallel_map


@dataclass(frozen=True)
class SweepPoint:
    """One configuration's outcome in a sweep."""

    knob: str
    value: float
    sync: str
    throughput: float
    mean_bst: float
    comm_compute_ratio: float  # rho = T_c / (2 N S / b)


def _run_one(
    card_name: str,
    sync_factory: Callable,
    bandwidth: float,
    n_workers: int,
    sigma: float,
    epochs: int,
    ipe: int,
    seed: int,
) -> tuple[float, float, float]:
    spec = ClusterSpec(
        n_workers=n_workers,
        link=LinkSpec(bandwidth=bandwidth),
        jitter=LognormalJitter(sigma=sigma, seed=seed),
    )
    plan = TrainingPlan(n_epochs=epochs, iterations_per_epoch=ipe, seed=seed)
    engine = TimingEngine(
        get_card(card_name),
        spec,
        total_iterations=epochs * ipe,
        seed=seed,
        tau=max(1.0, epochs * ipe / 6.0),
    )
    res = DistributedTrainer(spec, plan, engine, sync_factory()).run()
    t_c = engine.base_compute_time(spec)
    rho = t_c / (2.0 * n_workers * engine.model_bytes / bandwidth)
    return res.throughput, res.mean_bst, rho


def sweep_bandwidth(
    sync_factories: Sequence[Callable],
    bandwidths: Iterable[float],
    card_name: str = "resnet50-cifar10",
    n_workers: int = 8,
    sigma: float = 0.1,
    epochs: int = 16,
    ipe: int = 6,
    seed: int = 0,
    jobs: int | None = 1,
) -> list[SweepPoint]:
    """Sweep the per-node link bandwidth (bytes/second).

    ``jobs`` fans the (bandwidth, sync) grid across forked worker
    processes (:func:`repro.perf.parallel_map`); the returned points are
    identical to the serial run for any value.
    """

    def one(task: tuple[float, Callable]) -> SweepPoint:
        b, factory = task
        thr, bst, rho = _run_one(
            card_name, factory, b, n_workers, sigma, epochs, ipe, seed
        )
        return SweepPoint("bandwidth", float(b), factory().name, thr, bst, rho)

    tasks = [(b, f) for b in bandwidths for f in sync_factories]
    return parallel_map(one, tasks, jobs=jobs, seed_base=seed)


def sweep_workers(
    sync_factories: Sequence[Callable],
    worker_counts: Iterable[int],
    card_name: str = "resnet50-cifar10",
    bandwidth: float | None = None,
    sigma: float = 0.1,
    epochs: int = 16,
    ipe: int = 6,
    seed: int = 0,
    jobs: int | None = 1,
) -> list[SweepPoint]:
    """Sweep the cluster size (``jobs``: see :func:`sweep_bandwidth`)."""
    b = bandwidth if bandwidth is not None else LinkSpec().bandwidth

    def one(task: tuple[int, Callable]) -> SweepPoint:
        n, factory = task
        thr, bst, rho = _run_one(
            card_name, factory, b, int(n), sigma, epochs, ipe, seed
        )
        return SweepPoint("workers", float(n), factory().name, thr, bst, rho)

    tasks = [(n, f) for n in worker_counts for f in sync_factories]
    return parallel_map(one, tasks, jobs=jobs, seed_base=seed)


def sweep_jitter(
    sync_factories: Sequence[Callable],
    sigmas: Iterable[float],
    card_name: str = "resnet50-cifar10",
    n_workers: int = 8,
    epochs: int = 16,
    ipe: int = 6,
    seed: int = 0,
    jobs: int | None = 1,
) -> list[SweepPoint]:
    """Sweep straggler severity (lognormal sigma; ``jobs``: see
    :func:`sweep_bandwidth`)."""
    b = LinkSpec().bandwidth

    def one(task: tuple[float, Callable]) -> SweepPoint:
        s, factory = task
        thr, bst, rho = _run_one(
            card_name, factory, b, n_workers, float(s), epochs, ipe, seed
        )
        return SweepPoint("sigma", float(s), factory().name, thr, bst, rho)

    tasks = [(s, f) for s in sigmas for f in sync_factories]
    return parallel_map(one, tasks, jobs=jobs, seed_base=seed)


def speedup_over(points: Sequence[SweepPoint], base_sync: str, sync: str) -> list[tuple[float, float]]:
    """(knob value, throughput ratio sync/base) pairs from a sweep."""
    base = {p.value: p.throughput for p in points if p.sync == base_sync}
    out = []
    for p in points:
        if p.sync == sync and p.value in base and base[p.value] > 0:
            out.append((p.value, p.throughput / base[p.value]))
    return sorted(out)


__all__ = [
    "SweepPoint",
    "speedup_over",
    "sweep_bandwidth",
    "sweep_jitter",
    "sweep_workers",
]
