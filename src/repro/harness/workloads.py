"""Workload builders shared by benchmarks and examples."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.cluster.engines import NumericEngine, TimingEngine
from repro.cluster.spec import ClusterSpec, MembershipSchedule, TrainingPlan
from repro.cluster.trainer import DistributedTrainer
from repro.faults.schedule import FaultSchedule
from repro.data.dataset import Dataset, train_test_split
from repro.data.synthetic_images import make_image_classification
from repro.data.synthetic_qa import make_extractive_qa
from repro.hardware.jitter import LognormalJitter
from repro.nn.models.registry import ModelCard, get_card

#: The five workloads of the paper's evaluation (§5.1.2), in figure order.
EVALUATION_WORKLOADS: tuple[str, ...] = (
    "resnet50-cifar10",
    "vgg16-cifar10",
    "inceptionv3-cifar100",
    "resnet101-imagenet",
    "bertbase-squad",
)

#: Default compute-time jitter for timing experiments: mild OS/datapath
#: noise, the realistic regime for the paper's homogeneous rack.
DEFAULT_SIGMA = 0.1


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs shared by timing and numeric experiment builders."""

    card_name: str
    n_workers: int = 8
    n_epochs: int = 30
    iterations_per_epoch: int = 8
    sigma: float = DEFAULT_SIGMA
    seed: int = 0
    colocated_ps: bool = False
    n_ps: int = 1
    faults: Optional[FaultSchedule] = None
    membership: Optional[MembershipSchedule] = None

    @property
    def card(self) -> ModelCard:
        return get_card(self.card_name)

    @property
    def total_iterations(self) -> int:
        return self.n_epochs * self.iterations_per_epoch


def _spec(cfg: WorkloadConfig) -> ClusterSpec:
    return ClusterSpec(
        n_workers=cfg.n_workers,
        jitter=LognormalJitter(sigma=cfg.sigma, seed=cfg.seed),
        colocated_ps=cfg.colocated_ps,
        n_ps=cfg.n_ps,
        faults=cfg.faults,
        membership=cfg.membership,
    )


def timing_trainer(cfg: WorkloadConfig, sync_model, **trainer_kwargs) -> DistributedTrainer:
    """Paper-scale timing-mode trainer for one (workload, sync) pair.

    Extra keyword arguments (``checkpoint_every``, ``resume_from``, ...)
    are forwarded to :class:`DistributedTrainer`.
    """
    spec = _spec(cfg)
    plan = TrainingPlan(
        n_epochs=cfg.n_epochs,
        iterations_per_epoch=cfg.iterations_per_epoch,
        seed=cfg.seed,
    )
    # Loss decays within the run so Algorithm 1's ramp completes (the paper
    # trains to convergence; our epoch budget is smaller).
    engine = TimingEngine(
        cfg.card,
        spec,
        total_iterations=cfg.total_iterations,
        seed=cfg.seed,
        tau=max(1.0, cfg.total_iterations / 6.0),
    )
    return DistributedTrainer(spec, plan, engine, sync_model, **trainer_kwargs)


def make_numeric_dataset(card: ModelCard, n_samples: int = 1600, seed: int = 0) -> tuple[Dataset, Dataset]:
    """(train, test) synthetic datasets matched to a card's mini model."""
    if card.task == "qa":
        ds = make_extractive_qa(n_samples, seq_len=16, vocab_size=64, seed=seed)
    else:
        n_classes = {"cifar10": 10, "cifar100": 20, "imagenet1k": 20}.get(
            card.dataset, 10
        )
        ds = make_image_classification(
            n_samples,
            n_classes=n_classes,
            image_size=16,
            noise=2.0,
            seed=seed,
        )
    return train_test_split(ds, test_fraction=0.25, seed=seed + 1)


def numeric_trainer(
    cfg: WorkloadConfig,
    sync_model,
    data: Optional[tuple[Dataset, Dataset]] = None,
    batch_size: int = 25,
    lr: float = 0.1,
    early_stop_patience: Optional[int] = None,
    **trainer_kwargs,
) -> DistributedTrainer:
    """Numeric-mode trainer: real gradients on the card's mini model,
    paper-scale timing, the paper's LR schedule (§5.1.3). Extra keyword
    arguments are forwarded to :class:`DistributedTrainer`."""
    card = cfg.card
    if data is None:
        data = make_numeric_dataset(card, seed=cfg.seed)
    train, test = data
    spec = _spec(cfg)
    plan = TrainingPlan(
        n_epochs=cfg.n_epochs,
        lr=lr,
        momentum=0.9,
        lr_step_epochs=10,
        lr_gamma=0.5,
        early_stop_patience=early_stop_patience,
        seed=cfg.seed,
    )
    engine = NumericEngine(
        card, train, test, spec, batch_size=batch_size, seed=cfg.seed
    )
    return DistributedTrainer(spec, plan, engine, sync_model, **trainer_kwargs)


__all__ = [
    "DEFAULT_SIGMA",
    "EVALUATION_WORKLOADS",
    "WorkloadConfig",
    "make_numeric_dataset",
    "numeric_trainer",
    "timing_trainer",
]
