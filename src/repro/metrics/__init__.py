"""Metric recording and reporting for the paper's five metrics (§5.1.4):
throughput, top-1/F1, iterations-to-accuracy, BST, time-to-accuracy curves —
plus BCT for the co-located-PS overhead study (§5.4)."""

from repro.metrics.recorder import EpochRecord, IterationRecord, Recorder
from repro.metrics.report import format_series, format_table
from repro.metrics.timeline import render_timeline
from repro.metrics.export import load_recorder, save_recorder

__all__ = [
    "EpochRecord",
    "IterationRecord",
    "Recorder",
    "format_series",
    "format_table",
    "load_recorder",
    "render_timeline",
    "save_recorder",
]
