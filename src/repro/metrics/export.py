"""JSON (de)serialisation for experiment results.

Benchmarks and the CLI can persist a :class:`Recorder` to disk and reload
it for post-hoc analysis without re-running simulations.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.metrics.recorder import EpochRecord, IterationRecord, Recorder


def recorder_to_dict(recorder: Recorder) -> dict:
    """Plain-dict form of a recorder (JSON-serialisable)."""
    return {
        "iterations": [vars(r).copy() for r in recorder.iterations],
        "epochs": [vars(r).copy() for r in recorder.epochs],
        "counters": dict(recorder.counters),
        "summary": {
            "throughput": recorder.throughput(),
            "mean_bst": recorder.mean_bst(),
            "mean_bct": recorder.mean_bct(),
            "best_metric": recorder.best_metric(),
            "iterations_to_best": recorder.iterations_to_best(),
            "total_iterations": recorder.total_iterations,
            "end_time": recorder.end_time(),
        },
    }


def recorder_from_dict(payload: dict) -> Recorder:
    """Inverse of :func:`recorder_to_dict` (summary is recomputed)."""
    rec = Recorder()
    for d in payload.get("iterations", []):
        rec.record_iteration(IterationRecord(**d))
    for d in payload.get("epochs", []):
        rec.record_epoch(EpochRecord(**d))
    for name, value in payload.get("counters", {}).items():
        rec.incr(name, int(value))
    return rec


def save_recorder(recorder: Recorder, path: Union[str, Path]) -> None:
    """Write a recorder to a JSON file."""
    Path(path).write_text(json.dumps(recorder_to_dict(recorder)))


def load_recorder(path: Union[str, Path]) -> Recorder:
    """Read a recorder from a JSON file."""
    return recorder_from_dict(json.loads(Path(path).read_text()))


__all__ = [
    "load_recorder",
    "recorder_from_dict",
    "recorder_to_dict",
    "save_recorder",
]
