"""JSON (de)serialisation for experiment results.

Benchmarks and the CLI can persist a :class:`Recorder` to disk and reload
it for post-hoc analysis without re-running simulations.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path
from typing import Union

from repro.metrics.recorder import EpochRecord, IterationRecord, Recorder


class ExportError(ValueError):
    """A persisted payload does not match the recorder schema."""


def _build_record(cls, payload: dict, where: str):
    """Construct a record dataclass, naming any schema mismatch.

    A hand-edited or version-skewed JSON file should fail with a message
    that says *which* entry is wrong and *how*, not a bare ``TypeError``
    from the dataclass constructor.
    """
    if not isinstance(payload, dict):
        raise ExportError(
            f"{where}: expected an object, got {type(payload).__name__}"
        )
    expected = {f.name for f in dataclasses.fields(cls)}
    missing = sorted(expected - set(payload))
    unknown = sorted(set(payload) - expected)
    if missing or unknown:
        parts = []
        if missing:
            parts.append(f"missing fields {missing}")
        if unknown:
            parts.append(f"unknown fields {unknown}")
        raise ExportError(f"{where}: {'; '.join(parts)}")
    return cls(**payload)


def recorder_to_dict(recorder: Recorder) -> dict:
    """Plain-dict form of a recorder (JSON-serialisable)."""
    return {
        "iterations": [vars(r).copy() for r in recorder.iterations],
        "epochs": [vars(r).copy() for r in recorder.epochs],
        "counters": dict(recorder.counters),
        "summary": {
            "throughput": recorder.throughput(),
            "mean_bst": recorder.mean_bst(),
            "mean_bct": recorder.mean_bct(),
            "best_metric": recorder.best_metric(),
            "iterations_to_best": recorder.iterations_to_best(),
            "total_iterations": recorder.total_iterations,
            "end_time": recorder.end_time(),
        },
    }


def recorder_from_dict(payload: dict) -> Recorder:
    """Inverse of :func:`recorder_to_dict` (summary is recomputed)."""
    rec = Recorder()
    for i, d in enumerate(payload.get("iterations", [])):
        rec.record_iteration(_build_record(IterationRecord, d, f"iterations[{i}]"))
    for i, d in enumerate(payload.get("epochs", [])):
        rec.record_epoch(_build_record(EpochRecord, d, f"epochs[{i}]"))
    for name, value in payload.get("counters", {}).items():
        rec.incr(name, int(value))
    return rec


def save_recorder(recorder: Recorder, path: Union[str, Path]) -> None:
    """Write a recorder to a JSON file (atomically: temp file + rename,
    so a crash mid-write never leaves a truncated file behind)."""
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(recorder_to_dict(recorder)))
    os.replace(tmp, path)


def load_recorder(path: Union[str, Path]) -> Recorder:
    """Read a recorder from a JSON file."""
    return recorder_from_dict(json.loads(Path(path).read_text()))


__all__ = [
    "ExportError",
    "load_recorder",
    "recorder_from_dict",
    "recorder_to_dict",
    "save_recorder",
]
