"""In-memory metric recorder shared by all experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class IterationRecord:
    """One worker-iteration's bookkeeping."""

    worker: int
    iteration: int
    start_time: float
    compute_time: float  # BCT: batch computation time (§5.4)
    sync_time: float  # BST: batch synchronization time (§5.1.4)
    loss: float
    samples: int


@dataclass(frozen=True)
class EpochRecord:
    """End-of-epoch evaluation snapshot."""

    epoch: int
    time: float  # virtual time at evaluation
    train_loss: float
    metric: float  # top-1 accuracy or F1
    iterations_done: int  # global iteration count at evaluation


@dataclass
class Recorder:
    """Accumulates iteration and epoch records; computes summaries."""

    iterations: list[IterationRecord] = field(default_factory=list)
    epochs: list[EpochRecord] = field(default_factory=list)
    #: Named event counters (``faults.*`` fault injections, ``osp.*``
    #: degradation events). Plain ints, absent until first incremented.
    counters: dict[str, int] = field(default_factory=dict)

    # -- recording ---------------------------------------------------------
    def record_iteration(self, rec: IterationRecord) -> None:
        self.iterations.append(rec)

    def record_epoch(self, rec: EpochRecord) -> None:
        self.epochs.append(rec)

    def incr(self, name: str, n: int = 1) -> None:
        """Bump a named event counter."""
        self.counters[name] = self.counters.get(name, 0) + n

    def counter(self, name: str) -> int:
        """Current value of a named counter (0 if never incremented)."""
        return self.counters.get(name, 0)

    def restore_from(self, other: "Recorder") -> None:
        """Prepend ``other``'s history to this recorder (checkpoint resume).

        The restored records come *before* anything already recorded, and
        counters merge additively, so after a resume the recorder reads as
        one continuous run.
        """
        self.iterations[:0] = other.iterations
        self.epochs[:0] = other.epochs
        for name, n in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + n

    # -- summaries ----------------------------------------------------------
    @property
    def total_samples(self) -> int:
        return sum(r.samples for r in self.iterations)

    @property
    def total_iterations(self) -> int:
        return len(self.iterations)

    def end_time(self) -> float:
        """Virtual time when the last iteration finished."""
        if not self.iterations:
            return 0.0
        return max(r.start_time + r.compute_time + r.sync_time for r in self.iterations)

    def throughput(self) -> float:
        """Samples processed per second of virtual time (§5.1.4 metric 1)."""
        t = self.end_time()
        return self.total_samples / t if t > 0 else 0.0

    def mean_bst(self) -> float:
        """Mean batch synchronization time (§5.1.4 metric 4)."""
        if not self.iterations:
            return 0.0
        return float(np.mean([r.sync_time for r in self.iterations]))

    def mean_bct(self) -> float:
        """Mean batch computation time (§5.4)."""
        if not self.iterations:
            return 0.0
        return float(np.mean([r.compute_time for r in self.iterations]))

    def bst_percentile(self, q: float) -> float:
        """Percentile of per-iteration sync time (``q`` in [0, 100]).

        The long-tail behaviour the incast literature targets (paper refs
        [18, 19]): p99/p50 spread quantifies how unevenly a sync model's
        rounds behave.
        """
        if not (0.0 <= q <= 100.0):
            raise ValueError(f"q must be in [0,100], got {q}")
        if not self.iterations:
            return 0.0
        return float(np.percentile([r.sync_time for r in self.iterations], q))

    def best_metric(self) -> float:
        """Best (max) evaluation metric seen (§5.1.4 metric 2)."""
        if not self.epochs:
            return 0.0
        return max(e.metric for e in self.epochs)

    def iterations_to_best(self) -> int:
        """Global iterations needed to first reach the best metric
        (§5.1.4 metric 3)."""
        best = self.best_metric()
        for e in self.epochs:
            if e.metric >= best:
                return e.iterations_done
        return self.total_iterations

    def time_to_accuracy(self) -> list[tuple[float, float]]:
        """(virtual time, metric) curve (§5.1.4 metric 5; Figs. 7–8)."""
        return [(e.time, e.metric) for e in self.epochs]

    def time_to_reach(self, target: float) -> Optional[float]:
        """Virtual time when the metric first reached ``target`` (None if
        never)."""
        for e in self.epochs:
            if e.metric >= target:
                return e.time
        return None

    def mean_iteration_time(self) -> float:
        """Mean wall time of one iteration (compute + sync)."""
        if not self.iterations:
            return 0.0
        return float(
            np.mean([r.compute_time + r.sync_time for r in self.iterations])
        )

    def communication_share(self) -> float:
        """Fraction of per-iteration time spent synchronizing (Fig. 3)."""
        denom = self.mean_bct() + self.mean_bst()
        return self.mean_bst() / denom if denom > 0 else 0.0


__all__ = ["EpochRecord", "IterationRecord", "Recorder"]
