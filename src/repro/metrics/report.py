"""ASCII table/series formatting for benchmark output."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str | None = None,
    float_fmt: str = "{:.4g}",
) -> str:
    """Render rows as a padded ASCII table (the benches print these)."""
    str_rows = []
    for row in rows:
        str_rows.append(
            [
                float_fmt.format(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} != header width {len(headers)}: {row}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells):
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(r) for r in str_rows)
    return "\n".join(lines)


def format_series(
    name: str,
    points: Sequence[tuple[float, float]],
    x_label: str = "time_s",
    y_label: str = "metric",
    max_points: int = 40,
) -> str:
    """Render an (x, y) series compactly, subsampling long curves."""
    pts = list(points)
    if len(pts) > max_points:
        stride = (len(pts) + max_points - 1) // max_points
        kept = pts[::stride]
        if kept[-1] != pts[-1]:
            kept.append(pts[-1])
        pts = kept
    body = "  ".join(f"({x:.4g},{y:.4g})" for x, y in pts)
    return f"{name} [{x_label} -> {y_label}]: {body}"


__all__ = ["format_series", "format_table"]
