"""ASCII timeline (Gantt) rendering for iteration/flow traces.

Turns iteration records into per-worker compute/sync bars — the textual
equivalent of the paper's Fig. 1/Fig. 2 timeline diagrams.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.metrics.recorder import IterationRecord

#: glyphs: compute, synchronization, idle
_COMPUTE = "#"
_SYNC = "="
_IDLE = "."


def render_timeline(
    iterations: Iterable[IterationRecord],
    width: int = 72,
    until: float | None = None,
) -> str:
    """Render per-worker compute (#) / sync (=) bars over virtual time.

    Parameters
    ----------
    iterations:
        Iteration records (any order); one row is drawn per worker.
    width:
        Characters across the full time span.
    until:
        Clip the horizon (defaults to the last record's end).
    """
    recs = sorted(iterations, key=lambda r: (r.worker, r.start_time))
    if not recs:
        return "(empty timeline)"
    horizon = until if until is not None else max(
        r.start_time + r.compute_time + r.sync_time for r in recs
    )
    if horizon <= 0:
        return "(zero-length timeline)"
    scale = width / horizon

    def span(a: float, b: float) -> tuple[int, int]:
        return int(a * scale), max(int(a * scale) + 1, int(b * scale))

    workers = sorted({r.worker for r in recs})
    lines = []
    for w in workers:
        row = [_IDLE] * width
        mine = [r for r in recs if r.worker == w and r.start_time < horizon]
        # Compute bars first: the 1-cell minimum that keeps short sync
        # phases visible must never swallow an adjacent compute glyph, so
        # sync is painted second and only into non-compute cells.
        for r in mine:
            c0, c1 = span(r.start_time, min(horizon, r.start_time + r.compute_time))
            for i in range(c0, min(c1, width)):
                row[i] = _COMPUTE
        for r in mine:
            s0, s1 = span(
                r.start_time + r.compute_time,
                min(horizon, r.start_time + r.compute_time + r.sync_time),
            )
            for i in range(s0, min(s1, width)):
                if row[i] != _COMPUTE:
                    row[i] = _SYNC
        lines.append(f"w{w:<2d} |{''.join(row)}|")
    label = f"{horizon:.2f}"
    pad = max(1, width - len(label) - 1)
    lines.append(
        f"     0{' ' * pad}{label}s   "
        f"({_COMPUTE}=compute, {_SYNC}=sync, {_IDLE}=idle)"
    )
    return "\n".join(lines)


__all__ = ["render_timeline"]
