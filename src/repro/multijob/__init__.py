"""Multi-job co-tenancy on the shared fabric.

Run N independent training jobs — each with its own cluster spec, sync
model, workload card and recorder — over ONE shared simulation clock and
ONE shared network, with admission control, node placement, per-job flow
tagging through the priority scheduler, and cross-job interference
attribution. See ``docs/multijob.md``.
"""

from repro.multijob.job import JobSpec, background_job
from repro.multijob.netview import FabricAccounting, JobNetworkView, MappedStarTopology
from repro.multijob.pool import PLACEMENT_MODES, NodePool, Placement
from repro.multijob.report import (
    MULTIJOB_SCHEMA,
    multijob_summary,
    render_report,
)
from repro.multijob.runner import (
    ADMISSION_MODES,
    JobRun,
    JobScheduler,
    MultiJobResult,
    MultiJobRunner,
    run_jobs,
)

__all__ = [
    "ADMISSION_MODES",
    "FabricAccounting",
    "JobNetworkView",
    "JobRun",
    "JobScheduler",
    "JobSpec",
    "MULTIJOB_SCHEMA",
    "MappedStarTopology",
    "MultiJobResult",
    "MultiJobRunner",
    "NodePool",
    "PLACEMENT_MODES",
    "Placement",
    "background_job",
    "multijob_summary",
    "render_report",
    "run_jobs",
]
