"""Job specifications for multi-job co-tenancy.

A :class:`JobSpec` names one independent training job — its workload
card/shape, its sync model, and its tenant class — that the
:class:`~repro.multijob.runner.MultiJobRunner` admits, places onto the
shared node pool, and runs over the shared fabric. Each job keeps its own
:class:`~repro.cluster.spec.ClusterSpec` (derived from the workload
config) and its own recorder; only the clock and the network are shared.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.netsim.prio import CLASS_NAMES, PRIO_BULK

if TYPE_CHECKING:  # harness imports this module back (cotenancy builders)
    from repro.harness.workloads import WorkloadConfig

#: Job names become counter segments (``netsim.job_bytes.{job}``) and
#: timeseries-track segments (``multijob.{job}.active_flows``); the
#: registry's ``{...}`` wildcards match exactly one dot-free segment.
_NAME_RE = re.compile(r"[A-Za-z0-9_-]+")


@dataclass(frozen=True)
class JobSpec:
    """One co-tenant training job.

    Parameters
    ----------
    name:
        Unique tenant name (letters/digits/``_``/``-`` only — it becomes a
        counter and track segment).
    workload:
        The job's workload shape (card, workers, epochs, ...). The
        embedded link spec is *not* used on the shared fabric: the pool's
        links carry all tenants.
    sync_factory:
        Zero-argument callable returning a **fresh** sync-model instance
        (sync models hold per-run state and are single-use).
    mode:
        ``"timing"`` (paper-scale timing engine, the default) or
        ``"numeric"`` (real gradients on the card's mini model).
    default_prio:
        Optional priority-class override for the job's *default-class*
        flows: every flow the job submits without an explicit class
        (NORMAL) is re-tagged to this class at the fabric boundary.
        Flows with an explicit class (OSP's HIGH RS, URGENT GIB, BULK
        ICS) keep it. Use :func:`background_job` for the common
        demote-to-BULK tenant.
    """

    name: str
    workload: WorkloadConfig
    sync_factory: Callable[[], Any]
    mode: str = "timing"
    default_prio: Optional[int] = None
    numeric_kwargs: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not _NAME_RE.fullmatch(self.name):
            raise ValueError(
                f"job name {self.name!r} must match {_NAME_RE.pattern} "
                "(it becomes a counter/track segment)"
            )
        if self.mode not in ("timing", "numeric"):
            raise ValueError(f"mode must be 'timing' or 'numeric', got {self.mode!r}")
        if self.default_prio is not None and self.default_prio not in CLASS_NAMES:
            raise ValueError(f"unknown priority class {self.default_prio!r}")

    @property
    def n_nodes(self) -> int:
        """Nodes this job places: its workers plus its PS node(s)."""
        return self.workload.n_workers + (
            0 if self.workload.colocated_ps else self.workload.n_ps
        )

    def build_trainer(self, env, network):
        """Fresh :class:`~repro.cluster.trainer.DistributedTrainer` for
        this job over the shared environment and (view of the) network."""
        from repro.harness.workloads import numeric_trainer, timing_trainer

        sync_model = self.sync_factory()
        kwargs = dict(env=env, network=network, job=self.name)
        if self.mode == "numeric":
            return numeric_trainer(
                self.workload, sync_model, **self.numeric_kwargs, **kwargs
            )
        return timing_trainer(self.workload, sync_model, **kwargs)


def background_job(name: str, workload: WorkloadConfig, sync_factory) -> JobSpec:
    """A best-effort tenant: all of its default-class traffic is demoted
    to BULK, so under priority scheduling it yields to every co-tenant's
    latency-sensitive stages (the P3 regime the bench demonstrates)."""
    return JobSpec(
        name=name,
        workload=workload,
        sync_factory=sync_factory,
        default_prio=PRIO_BULK,
    )


__all__ = ["JobSpec", "background_job"]
