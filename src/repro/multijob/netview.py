"""Per-job views of the shared fabric.

A :class:`JobNetworkView` is what a co-tenant trainer receives as its
``network``: it translates job-local node ids to pool hosts, tags every
flow with the job name (per-job byte accounting in netsim), optionally
demotes the job's default-class traffic (background tenants), keeps the
job's own completed-flow records, and feeds the fabric-wide
:class:`FabricAccounting` that attributes cross-job interference. All
fabric-wide operations (capacity refreshes after faults, stats, link
lookups) delegate to the one shared :class:`~repro.netsim.network.Network`.

Everything here is passive bookkeeping — no events are scheduled — so a
single job routed through a view on an identity placement is bit-identical
to the same run through a privately-owned network.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.netsim.network import Network
from repro.netsim.prio import PRIO_NORMAL
from repro.netsim.topology import StarTopology


class FabricAccounting:
    """Cross-job interference attribution over the shared fabric.

    Driven by the views at flow start/completion; between those calls the
    active set is constant, so integrating per-job busy/contended seconds
    and pairwise overlap over the gaps is exact. A flow counts as
    *contended* when any other job had at least one active flow at its
    start instant.
    """

    def __init__(self) -> None:
        self.active: dict[str, int] = {}
        self.inflight_bytes: dict[str, float] = {}
        self.contended_bytes: dict[str, float] = {}
        self.solo_bytes: dict[str, float] = {}
        self.active_seconds: dict[str, float] = {}
        self.contended_seconds: dict[str, float] = {}
        #: frozenset({a, b}) -> seconds both jobs had flows in flight
        self.pair_overlap: dict[frozenset, float] = {}
        self._last = 0.0

    def _advance(self, now: float) -> None:
        dt = now - self._last
        self._last = now
        if dt <= 0.0:
            return
        busy = [job for job, n in self.active.items() if n > 0]
        for job in busy:
            self.active_seconds[job] = self.active_seconds.get(job, 0.0) + dt
        if len(busy) > 1:
            for job in busy:
                self.contended_seconds[job] = (
                    self.contended_seconds.get(job, 0.0) + dt
                )
            for i, a in enumerate(busy):
                for b in busy[i + 1:]:
                    key = frozenset((a, b))
                    self.pair_overlap[key] = self.pair_overlap.get(key, 0.0) + dt

    def on_start(self, job: str, size: float, now: float) -> None:
        self._advance(now)
        others = any(n > 0 for j, n in self.active.items() if j != job)
        bucket = self.contended_bytes if others else self.solo_bytes
        bucket[job] = bucket.get(job, 0.0) + size
        self.active[job] = self.active.get(job, 0) + 1
        self.inflight_bytes[job] = self.inflight_bytes.get(job, 0.0) + size

    def on_end(self, job: str, size: float, now: float) -> None:
        self._advance(now)
        self.active[job] = self.active.get(job, 0) - 1
        self.inflight_bytes[job] = self.inflight_bytes.get(job, 0.0) - size

    def job_summary(self, job: str) -> dict:
        """Attribution snapshot for one job (JSON-able)."""
        return {
            "contended_bytes": self.contended_bytes.get(job, 0.0),
            "solo_bytes": self.solo_bytes.get(job, 0.0),
            "active_seconds": self.active_seconds.get(job, 0.0),
            "contended_seconds": self.contended_seconds.get(job, 0.0),
        }


class MappedStarTopology(StarTopology):
    """A job-local window onto the pool's star.

    Local node ``i``'s up/down links *are* pool host ``node_map[i]``'s
    links (shared objects, not copies), so node-targeted fault windows
    expressed in job-local ids hit the right fabric links — and
    ``isinstance(..., StarTopology)`` keeps holding for the injector's
    check. ``links`` is the job's slice of the fabric: a job's
    fabric-wide fault (``nodes=None``) degrades its own hosts' links,
    not every tenant's.
    """

    def __init__(self, base: StarTopology, node_map) -> None:
        # deliberately no super().__init__: links are borrowed, not built
        self.base = base
        self.node_map = list(node_map)
        self.n_nodes = len(self.node_map)
        self.default_spec = base.default_spec
        self.uplinks = [base.uplinks[h] for h in self.node_map]
        self.downlinks = [base.downlinks[h] for h in self.node_map]


class JobNetworkView:
    """A co-tenant trainer's window onto the shared Network.

    ``transfer``/``transfer_process``/``bulk_time`` translate job-local
    node ids through the placement's ``node_map`` and tag flows with the
    job name; completed flows are mirrored into the view's own
    :attr:`records`; everything else (``stats``, ``refresh_capacities``,
    ``link_utilization``, ``_links_by_name``, ``active_flows``, ...)
    delegates to the shared Network via ``__getattr__``, so probes,
    monitors and the fault injector keep working unmodified.
    """

    def __init__(
        self,
        network: Network,
        job: str,
        node_map,
        accounting: Optional[FabricAccounting] = None,
        default_prio: Optional[int] = None,
    ) -> None:
        self._net = network
        self.env = network.env
        self.job = job
        self.node_map = list(node_map)
        self.accounting = accounting
        self.default_prio = default_prio
        #: This job's completed transfers only (the shared Network's
        #: ``records`` interleaves every tenant).
        self.records: list = []
        self.keep_records = network.keep_records
        #: Recorder mirror slot — the trainer assigns its per-job recorder
        #: here (NOT on the shared Network, whose mirror stays unset so
        #: fabric counters never leak into one tenant's stream).
        self.recorder = None
        base = network.topology
        self.topology = (
            MappedStarTopology(base, self.node_map)
            if isinstance(base, StarTopology)
            else base
        )

    # -- node mapping -------------------------------------------------------
    def _host(self, node) -> int:
        try:
            return self.node_map[node]
        except (IndexError, TypeError) as exc:
            raise ValueError(
                f"job {self.job!r} has no local node {node!r} "
                f"(placement has {len(self.node_map)} nodes)"
            ) from exc

    # -- traffic ------------------------------------------------------------
    def transfer(
        self, src, dst, size: float, tag: Any = None,
        prio: int = PRIO_NORMAL, **kwargs,
    ):
        if self.default_prio is not None and prio == PRIO_NORMAL:
            prio = self.default_prio
        done = self._net.transfer(
            self._host(src), self._host(dst), size,
            tag=tag, prio=prio, job=self.job, **kwargs,
        )
        acct = self.accounting
        if acct is not None:
            acct.on_start(self.job, float(size), self.env.now)
            done.callbacks.append(
                lambda ev: acct.on_end(self.job, float(size), self.env.now)
            )
        if self.keep_records:
            done.callbacks.append(lambda ev: self.records.append(ev.value))
        return done

    def transfer_process(self, src, dst, size: float, tag: Any = None, **kwargs):
        record = yield self.transfer(src, dst, size, tag=tag, **kwargs)
        return record

    def bulk_time(self, src, dst, size: float) -> float:
        return self._net.bulk_time(self._host(src), self._host(dst), size)

    def job_bytes(self) -> float:
        """Effective bytes the fabric has drained for this job so far."""
        return self._net.job_bytes(self.job)

    # -- delegation ---------------------------------------------------------
    def __getattr__(self, name: str):
        # only reached for attributes not set on the view itself
        return getattr(self._net, name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<JobNetworkView job={self.job!r} nodes={len(self.node_map)}>"


__all__ = ["FabricAccounting", "JobNetworkView", "MappedStarTopology"]
