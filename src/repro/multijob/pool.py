"""Shared node pool: host inventory, placement, compute-slot contention.

The pool owns the co-tenant fabric's hosts (nodes ``0..n_hosts-1`` of one
shared :class:`~repro.netsim.topology.StarTopology`) and hands jobs
*placements* — a job-local→pool node map. Two modes:

* ``exclusive`` — every pool host carries at most one job node; co-tenant
  jobs contend only where their placements share links (never, on a pure
  star — use shared placement or an oversubscribed GraphTopology for
  fabric contention studies).
* ``shared`` — hosts carry up to ``slots_per_host`` job nodes; co-located
  tenants share the host's up/down links (real network contention) and
  its ``gpus_per_host``-deep compute-slot :class:`Resource`, so
  oversubscribed GPUs serialise compute phases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.netsim.links import LinkSpec
from repro.netsim.topology import StarTopology
from repro.simcore.environment import Environment
from repro.simcore.resources import Resource

PLACEMENT_MODES = ("exclusive", "shared")


@dataclass(frozen=True)
class Placement:
    """One job's node assignment: local node ``i`` lives on ``hosts[i]``."""

    job: str
    mode: str
    hosts: tuple[int, ...]
    #: placement slots consumed per host (freed on release)
    consumed: dict[int, int] = field(default_factory=dict)

    def node_map(self) -> list[int]:
        return list(self.hosts)


class NodePool:
    """Host inventory + placement accounting for the shared fabric.

    Purely passive at construction (no events scheduled): building a pool
    around an environment does not perturb any co-tenant timeline.
    """

    def __init__(
        self,
        env: Environment,
        n_hosts: int,
        link: Optional[LinkSpec] = None,
        slots_per_host: int = 1,
        gpus_per_host: Optional[int] = None,
    ) -> None:
        if n_hosts < 1:
            raise ValueError(f"n_hosts must be >= 1, got {n_hosts}")
        if slots_per_host < 1:
            raise ValueError(f"slots_per_host must be >= 1, got {slots_per_host}")
        self.env = env
        self.n_hosts = int(n_hosts)
        self.link = link or LinkSpec()
        self.slots_per_host = int(slots_per_host)
        self.gpus_per_host = (
            self.slots_per_host if gpus_per_host is None else int(gpus_per_host)
        )
        if self.gpus_per_host < 1:
            raise ValueError(f"gpus_per_host must be >= 1, got {self.gpus_per_host}")
        #: The shared fabric all tenants ride; built exactly like a
        #: single-tenant trainer's star so exclusive identity placements
        #: reproduce the direct-run topology bit-for-bit.
        self.topology = StarTopology(self.n_hosts, default_spec=self.link)
        self._free = [self.slots_per_host] * self.n_hosts
        #: Per-host compute-slot resource (lazy: only shared placements
        #: route compute through it).
        self.compute_slots = [
            Resource(env, capacity=self.gpus_per_host) for _ in range(self.n_hosts)
        ]

    # -- capacity -----------------------------------------------------------
    def free_slots(self, host: int) -> int:
        return self._free[host]

    def can_allocate(self, n_nodes: int, mode: str) -> bool:
        """Would :meth:`allocate` succeed right now?"""
        self._check_mode(mode)
        if mode == "exclusive":
            whole = sum(1 for f in self._free if f == self.slots_per_host)
            return whole >= n_nodes
        return sum(self._free) >= n_nodes

    def allocate(self, job: str, n_nodes: int, mode: str) -> Placement:
        """Place ``n_nodes`` job-local nodes onto pool hosts.

        ``exclusive`` takes the ``n_nodes`` lowest-id fully-free hosts and
        consumes them whole. ``shared`` assigns each local node in order
        to the host with the most free slots (lowest id on ties) — so two
        same-shape jobs on a just-big-enough pool land on identical hosts,
        the co-location the contention bench relies on. Raises
        ``RuntimeError`` when the pool cannot fit the job (admission
        policies call :meth:`can_allocate` first).
        """
        self._check_mode(mode)
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        consumed: dict[int, int] = {}
        if mode == "exclusive":
            hosts = [
                h for h in range(self.n_hosts)
                if self._free[h] == self.slots_per_host
            ][:n_nodes]
            if len(hosts) < n_nodes:
                raise RuntimeError(
                    f"pool cannot place job {job!r}: needs {n_nodes} free "
                    f"hosts, has {len(hosts)}"
                )
            for h in hosts:
                self._free[h] = 0
                consumed[h] = self.slots_per_host
        else:
            hosts = []
            for _ in range(n_nodes):
                h = max(range(self.n_hosts), key=lambda i: (self._free[i], -i))
                if self._free[h] <= 0:
                    # roll back partial assignment before failing
                    for taken in hosts:
                        self._free[taken] += 1
                    raise RuntimeError(
                        f"pool cannot place job {job!r}: out of host slots "
                        f"after {len(hosts)}/{n_nodes} nodes"
                    )
                self._free[h] -= 1
                consumed[h] = consumed.get(h, 0) + 1
                hosts.append(h)
        return Placement(job=job, mode=mode, hosts=tuple(hosts), consumed=consumed)

    def release(self, placement: Placement) -> None:
        """Return a placement's slots to the pool."""
        for host, n in placement.consumed.items():
            self._free[host] += n
            if self._free[host] > self.slots_per_host:  # pragma: no cover
                raise RuntimeError(f"double release on host {host}")

    def compute_slot(self, host: int) -> Resource:
        """The host's shared compute-slot resource."""
        return self.compute_slots[host]

    @staticmethod
    def _check_mode(mode: str) -> None:
        if mode not in PLACEMENT_MODES:
            raise ValueError(
                f"placement mode must be one of {PLACEMENT_MODES}, got {mode!r}"
            )


__all__ = ["NodePool", "Placement", "PLACEMENT_MODES"]
