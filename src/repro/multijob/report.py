"""Reporting for co-tenant runs: per-job table, interference attribution.

``multijob_summary`` is the JSON artifact (schema-tagged like the
single-run summaries in :mod:`repro.obs.compare`); ``render_report`` is
the human-readable view the CLI prints.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.metrics.report import format_table
from repro.multijob.runner import MultiJobResult

MULTIJOB_SCHEMA = "repro.multijob_summary/1"


def _job_dict(run) -> dict:
    res = run.result
    return {
        "sync": res.sync_name,
        "hosts": list(run.placement.hosts),
        "placement_mode": run.placement.mode,
        "submitted": run.submitted,
        "admitted": run.admitted,
        "finished": run.finished,
        "queue_wait": run.queue_wait,
        "wall_time": run.wall_time,
        "throughput": res.throughput,
        "mean_bst": res.mean_bst,
        "mean_bct": res.mean_bct,
        "iterations": res.recorder.total_iterations,
        "job_bytes": run.job_bytes,
        "contended_bytes": run.contended_bytes,
        "solo_bytes": run.solo_bytes,
        "contended_share": run.contended_share,
        "active_seconds": run.active_seconds,
        "contended_seconds": run.contended_seconds,
        "counters": dict(res.recorder.counters),
    }


def multijob_summary(result: MultiJobResult) -> dict:
    """JSON-able snapshot of a co-tenant run (per-job + fabric-wide)."""
    return {
        "schema": MULTIJOB_SCHEMA,
        "wall_time": result.wall_time,
        "admission": result.admission,
        "placement": result.placement,
        "n_hosts": result.n_hosts,
        "slots_per_host": result.slots_per_host,
        "gpus_per_host": result.gpus_per_host,
        "jobs": {name: _job_dict(run) for name, run in result.jobs.items()},
        "interference": result.interference_matrix(),
        "network": {
            k: v for k, v in sorted(result.network_stats.items())
        },
    }


def save_summary(summary: dict, path: Union[str, Path]) -> Path:
    path = Path(path)
    path.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    return path


def render_report(result: MultiJobResult) -> str:
    """Per-job table plus cross-job interference attribution."""
    rows = []
    for name, run in result.jobs.items():
        res = run.result
        rows.append(
            (
                name,
                res.sync_name,
                f"{run.queue_wait:.2f}",
                f"{run.wall_time:.2f}",
                f"{res.throughput:.1f}",
                f"{res.mean_bst * 1e3:.0f}",
                f"{run.job_bytes / 1e9:.2f}",
                f"{run.contended_share:.1%}",
            )
        )
    table = format_table(
        [
            "job",
            "sync",
            "queued (s)",
            "wall (s)",
            "samples/s",
            "BST (ms)",
            "GB moved",
            "contended",
        ],
        rows,
        title=(
            f"{len(result.jobs)} jobs · {result.placement} placement · "
            f"{result.admission} admission · {result.n_hosts} hosts"
        ),
    )
    lines = [table]
    matrix = result.interference_matrix()
    pairs = [
        (a, b, matrix[a][b])
        for i, a in enumerate(matrix)
        for b in list(matrix)[i + 1:]
        if matrix[a][b] > 0.0
    ]
    if pairs:
        lines.append("")
        lines.append("cross-job fabric overlap (seconds both tenants had flows):")
        for a, b, seconds in sorted(pairs, key=lambda p: -p[2]):
            lines.append(f"  {a} <-> {b}: {seconds:.2f}s")
    return "\n".join(lines)


__all__ = ["MULTIJOB_SCHEMA", "multijob_summary", "render_report", "save_summary"]
