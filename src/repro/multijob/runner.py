"""The co-tenancy runner: admission, placement, shared-fabric execution.

:class:`MultiJobRunner` runs N independent :class:`~repro.multijob.job.
JobSpec` jobs over ONE shared :class:`~repro.simcore.environment.
Environment` and :class:`~repro.netsim.network.Network`. Each job gets a
small driver process that (1) waits for admission, (2) takes a placement
from the :class:`~repro.multijob.pool.NodePool`, (3) builds its own
:class:`~repro.cluster.trainer.DistributedTrainer` over a
:class:`~repro.multijob.netview.JobNetworkView`, (4) runs its workers to
completion, and (5) returns its hosts to the pool (waking queued jobs).

Admission policies (:data:`ADMISSION_MODES`):

* ``immediate`` — every job starts at t=0; the pool must fit them all.
* ``fifo`` — jobs admit strictly in submission order, each waiting until
  the pool can place it.
* ``bandwidth`` — FIFO ordering plus a fabric-headroom gate: a job only
  admits while the sum of running jobs' estimated offered load (workers ×
  host line rate) stays within ``headroom`` × the pool's aggregate
  capacity — a deterministic stand-in for a telemetry-driven admission
  controller.

A single job on an ``exclusive`` identity placement reproduces the direct
``DistributedTrainer`` run bit-for-bit (same topology construction, same
process creation order, passive views) — the differential test in
``tests/multijob/test_identity.py`` pins this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.cluster.trainer import TrainingResult
from repro.multijob.job import JobSpec
from repro.multijob.netview import FabricAccounting, JobNetworkView
from repro.multijob.pool import PLACEMENT_MODES, NodePool, Placement
from repro.netsim.links import LinkSpec
from repro.netsim.network import Network
from repro.simcore.environment import Environment
from repro.simcore.events import Event

ADMISSION_MODES = ("immediate", "fifo", "bandwidth")


@dataclass
class JobRun:
    """One finished job's outcome on the shared fabric."""

    name: str
    result: TrainingResult
    placement: Placement
    submitted: float
    admitted: float
    finished: float
    #: effective bytes the fabric drained for this job
    job_bytes: float = 0.0
    #: bytes started while ≥1 other tenant had flows in flight
    contended_bytes: float = 0.0
    solo_bytes: float = 0.0
    active_seconds: float = 0.0
    contended_seconds: float = 0.0

    @property
    def queue_wait(self) -> float:
        """Virtual seconds spent waiting for admission."""
        return self.admitted - self.submitted

    @property
    def wall_time(self) -> float:
        """Admission-to-finish virtual seconds (excludes queue wait)."""
        return self.finished - self.admitted

    @property
    def contended_share(self) -> float:
        """Fraction of this job's traffic that faced a co-tenant."""
        total = self.contended_bytes + self.solo_bytes
        return self.contended_bytes / total if total > 0 else 0.0


@dataclass
class MultiJobResult:
    """Everything the report plane needs after a co-tenant run."""

    jobs: dict[str, JobRun]
    wall_time: float
    admission: str
    placement: str
    n_hosts: int
    slots_per_host: int
    gpus_per_host: int
    #: shared-fabric scheduler counters (netsim.* incl. per-job/per-class
    #: byte accounting), snapshotted at collection
    network_stats: dict = field(default_factory=dict)
    #: frozenset({a, b}) -> seconds both tenants had flows in flight
    pair_overlap: dict = field(default_factory=dict)
    tracer: object = None
    sampler: object = None

    def __getitem__(self, name: str) -> JobRun:
        return self.jobs[name]

    def interference_matrix(self) -> dict[str, dict[str, float]]:
        """``matrix[a][b]`` = seconds jobs *a* and *b* overlapped on the
        fabric (symmetric, zero diagonal)."""
        names = list(self.jobs)
        matrix = {a: {b: 0.0 for b in names} for a in names}
        for pair, seconds in self.pair_overlap.items():
            a, b = sorted(pair)
            matrix[a][b] = matrix[b][a] = seconds
        return matrix


class JobScheduler:
    """Admission control over the shared pool.

    Driver processes call :meth:`wait_admission` (a generator) before
    placing; the scheduler wakes all waiters whenever an admission or a
    job completion changes what might fit. All policies admit in strict
    submission order (no overtaking), so admission is deterministic.
    """

    def __init__(
        self,
        env: Environment,
        pool: NodePool,
        mode: str,
        placement: str,
        headroom: float = 1.0,
    ) -> None:
        if mode not in ADMISSION_MODES:
            raise ValueError(
                f"admission mode must be one of {ADMISSION_MODES}, got {mode!r}"
            )
        self.env = env
        self.pool = pool
        self.mode = mode
        self.placement = placement
        self.headroom = float(headroom)
        self._admitted: set[int] = set()
        self._running_demand: dict[int, float] = {}
        self._waiters: list[Event] = []

    # -- policy -------------------------------------------------------------
    def _demand(self, job: JobSpec) -> float:
        """Estimated offered load: every worker can saturate one line."""
        return job.workload.n_workers * self.pool.link.bandwidth

    def _capacity(self) -> float:
        return self.pool.n_hosts * self.pool.link.bandwidth * self.headroom

    def _may_admit(self, job: JobSpec, idx: int) -> bool:
        if self.mode == "immediate":
            return True
        if any(i < idx and i not in self._admitted for i in range(idx)):
            return False  # strict submission order
        if not self.pool.can_allocate(job.n_nodes, self.placement):
            return False
        if self.mode == "bandwidth":
            used = sum(self._running_demand.values())
            if used + self._demand(job) > self._capacity() + 1e-9:
                return False
        return True

    # -- driver-side --------------------------------------------------------
    def wait_admission(self, job: JobSpec, idx: int):
        """Generator: yields until the policy admits job ``idx``."""
        while not self._may_admit(job, idx):
            gate = Event(self.env)
            self._waiters.append(gate)
            yield gate
        self._admitted.add(idx)
        self._running_demand[idx] = self._demand(job)
        self._wake()

    def job_done(self, idx: int) -> None:
        self._running_demand.pop(idx, None)
        self._wake()

    def _wake(self) -> None:
        waiters, self._waiters = self._waiters, []
        for gate in waiters:
            gate.succeed()


class MultiJobRunner:
    """Run a set of co-tenant jobs to completion on one shared fabric."""

    def __init__(
        self,
        jobs: Sequence[JobSpec],
        n_hosts: Optional[int] = None,
        link: Optional[LinkSpec] = None,
        placement: str = "exclusive",
        admission: str = "immediate",
        slots_per_host: int = 1,
        gpus_per_host: Optional[int] = None,
        headroom: float = 1.0,
    ) -> None:
        if not jobs:
            raise ValueError("need at least one job")
        names = [j.name for j in jobs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate job names: {names}")
        if placement not in PLACEMENT_MODES:
            raise ValueError(
                f"placement mode must be one of {PLACEMENT_MODES}, got {placement!r}"
            )
        self.jobs = list(jobs)
        self.placement = placement
        self.admission = admission
        if n_hosts is None:
            # Exclusive: room for every job at once (immediate-friendly).
            # Shared: the widest job; co-tenants stack onto host slots.
            if placement == "exclusive":
                n_hosts = sum(j.n_nodes for j in self.jobs)
            else:
                n_hosts = max(j.n_nodes for j in self.jobs)
        self.env = Environment()
        self.pool = NodePool(
            self.env,
            n_hosts,
            link=link,
            slots_per_host=slots_per_host,
            gpus_per_host=gpus_per_host,
        )
        self.network = Network(self.env, self.pool.topology)
        self.accounting = FabricAccounting()
        self.scheduler = JobScheduler(
            self.env, self.pool, admission, placement, headroom=headroom
        )
        self._runs: dict[str, JobRun] = {}
        self._tracer = None
        self._sampler = None

    # -- observability ------------------------------------------------------
    def enable_tracing(self):
        """One shared passive tracer across every tenant; spans carry the
        job dimension (``Span.job``), so per-tenant filtering works even
        though worker ids are job-local. Returns the tracer."""
        from repro.obs.tracer import Tracer

        self._tracer = Tracer(self.env)
        self.env.tracer = self._tracer
        return self._tracer

    def enable_sampling(self, interval: float = 1.0, capacity: Optional[int] = None):
        """Attach a MetricSampler with the fabric-wide network probe and
        the per-tenant ``multijob.{job}.*`` probe. Returns the sampler."""
        from repro.obs.timeseries import MetricSampler, MultiJobProbe, NetworkProbe

        if self.env.tracer is None:
            self.enable_tracing()
        kwargs = {} if capacity is None else {"capacity": capacity}
        sampler = MetricSampler(self.env, interval, **kwargs)
        sampler.add_probe(NetworkProbe(self.network))
        sampler.add_probe(MultiJobProbe(self.accounting, [j.name for j in self.jobs]))
        self.env.metric_sampler = sampler
        self._sampler = sampler
        return sampler

    # -- execution ----------------------------------------------------------
    def run(self) -> MultiJobResult:
        """Drive every job to completion and collect the result."""
        drivers = [
            self.env.process(self._drive(job, idx))
            for idx, job in enumerate(self.jobs)
        ]
        self.env.run(until=self.env.all_of(drivers))
        for d in drivers:
            if not d.ok:  # pragma: no cover - defensive
                raise d.value
        self.accounting._advance(self.env.now)
        # Per-job interference counters land on each job's own recorder
        # (multijob.* is excluded from replay streams, so a solo job's
        # stream stays bit-identical to a direct run's).
        for name, run in self._runs.items():
            rec = run.result.recorder
            rec.incr("multijob.job_bytes", run.job_bytes)
            rec.incr("multijob.contended_bytes", run.contended_bytes)
            rec.incr("multijob.solo_bytes", run.solo_bytes)
        return MultiJobResult(
            jobs={j.name: self._runs[j.name] for j in self.jobs},
            wall_time=self.env.now,
            admission=self.admission,
            placement=self.placement,
            n_hosts=self.pool.n_hosts,
            slots_per_host=self.pool.slots_per_host,
            gpus_per_host=self.pool.gpus_per_host,
            network_stats=dict(self.network.stats),
            pair_overlap=dict(self.accounting.pair_overlap),
            tracer=self._tracer,
            sampler=self._sampler,
        )

    def _drive(self, job: JobSpec, idx: int):
        """Per-job driver process: admit → place → train → release."""
        submitted = self.env.now
        yield from self.scheduler.wait_admission(job, idx)
        placement = self.pool.allocate(job.name, job.n_nodes, self.placement)
        admitted = self.env.now
        view = JobNetworkView(
            self.network,
            job.name,
            placement.node_map(),
            accounting=self.accounting,
            default_prio=job.default_prio,
        )
        trainer = job.build_trainer(self.env, view)
        if self._tracer is not None:
            trainer.ps.tracer = self._tracer
            trainer.engine.tracer = self._tracer
        if self.placement == "shared":
            trainer.ctx.compute_slots = {
                w: self.pool.compute_slot(placement.hosts[trainer.spec.worker_node(w)])
                for w in range(trainer.spec.n_workers)
            }
        done = trainer.start()
        yield done
        result = trainer.finish()
        self.pool.release(placement)
        self.scheduler.job_done(idx)
        acct = self.accounting.job_summary(job.name)
        self._runs[job.name] = JobRun(
            name=job.name,
            result=result,
            placement=placement,
            submitted=submitted,
            admitted=admitted,
            finished=self.env.now,
            job_bytes=self.network.job_bytes(job.name),
            contended_bytes=acct["contended_bytes"],
            solo_bytes=acct["solo_bytes"],
            active_seconds=acct["active_seconds"],
            contended_seconds=acct["contended_seconds"],
        )


def run_jobs(jobs: Sequence[JobSpec], **runner_kwargs) -> MultiJobResult:
    """One-shot convenience: build a runner, run it, return the result."""
    return MultiJobRunner(jobs, **runner_kwargs).run()


__all__ = [
    "ADMISSION_MODES",
    "JobRun",
    "JobScheduler",
    "MultiJobResult",
    "MultiJobRunner",
    "run_jobs",
]
