"""Fluid-flow network simulator.

Models the paper's testbed (§5.1.1): *n* nodes, each with a full-duplex
link (uplink + downlink) into a top-of-rack switch with a non-blocking
backplane. Concurrent flows share link bandwidth by **max–min fairness**
(progressive filling), recomputed event-wise whenever a flow starts or
finishes — this is the standard fluid approximation of TCP-fair sharing and
is what makes the *incast problem* (Fig. 1) emerge naturally: N simultaneous
pushes into the PS's downlink each get ``b/N``.

Packet loss is modelled as goodput inflation: a route with loss rate ``p``
must move ``size × (1 + p)`` bytes (retransmissions), matching the
``b(1+lr)`` term in the paper's Eq. 5.

Public API
----------
:class:`Network` — facade; ``transfer(src, dst, size)`` returns a simcore
event that succeeds when the flow completes.
"""

from repro.netsim.links import Link, LinkSpec
from repro.netsim.topology import GraphTopology, StarTopology, SWITCH, make_multirack_topology
from repro.netsim.fairshare import (
    fair_rates,
    fairshare_mode,
    fast_fair_rates,
    max_min_fair_rates,
    prio_fair_rates,
    weighted_max_min_fair_rates,
)
from repro.netsim.flows import Flow, FlowRecord
from repro.netsim.network import Network
from repro.netsim.prio import (
    CLASS_NAMES,
    PRIO_BULK,
    PRIO_HIGH,
    PRIO_NORMAL,
    PRIO_URGENT,
    netprio_enabled,
)

__all__ = [
    "CLASS_NAMES",
    "Flow",
    "FlowRecord",
    "GraphTopology",
    "Link",
    "LinkSpec",
    "Network",
    "PRIO_BULK",
    "PRIO_HIGH",
    "PRIO_NORMAL",
    "PRIO_URGENT",
    "StarTopology",
    "fair_rates",
    "fairshare_mode",
    "fast_fair_rates",
    "SWITCH",
    "make_multirack_topology",
    "max_min_fair_rates",
    "netprio_enabled",
    "prio_fair_rates",
    "weighted_max_min_fair_rates",
]
