"""Max–min fair rate allocation by progressive filling.

Pure function so it can be property-tested in isolation. Given flows (each a
set of links it crosses) and link capacities, compute each flow's rate such
that:

1. no link's capacity is exceeded,
2. every flow is *bottlenecked*: its rate cannot be increased without
   decreasing the rate of another flow with an equal-or-smaller rate.

Algorithm: repeatedly find the link with the smallest per-flow fair share
among its unfrozen flows, freeze those flows at that share, subtract their
consumption from all their links, repeat. O(L²·F) worst case — fine for the
dozens of concurrent flows a PS rack produces.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

_EPS = 1e-12


def max_min_fair_rates(
    flow_routes: Mapping[Hashable, Sequence[Hashable]],
    capacities: Mapping[Hashable, float],
) -> dict[Hashable, float]:
    """Compute max–min fair rates.

    Parameters
    ----------
    flow_routes:
        Map ``flow_id -> sequence of link_ids`` the flow crosses. A flow
        with an empty route (loopback) gets rate ``inf``.
    capacities:
        Map ``link_id -> capacity`` (bytes/second, must be positive).

    Returns
    -------
    dict
        ``flow_id -> rate``. Deterministic for identical inputs (iteration
        follows insertion order of the mappings; ties broken by first link
        encountered).
    """
    for link, cap in capacities.items():
        if cap <= 0:
            raise ValueError(f"link {link!r} has non-positive capacity {cap}")

    rates: dict[Hashable, float] = {}
    unfrozen: dict[Hashable, tuple[Hashable, ...]] = {}
    for fid, route in flow_routes.items():
        route = tuple(route)
        for link in route:
            if link not in capacities:
                raise ValueError(f"flow {fid!r} crosses unknown link {link!r}")
        if not route:
            rates[fid] = float("inf")
        else:
            unfrozen[fid] = route

    remaining = dict(capacities)
    # flows per link (only unfrozen ones matter)
    link_flows: dict[Hashable, set] = {}
    for fid, route in unfrozen.items():
        for link in set(route):
            link_flows.setdefault(link, set()).add(fid)

    while unfrozen:
        # Find bottleneck: smallest remaining/num_flows among loaded links.
        bottleneck = None
        best_share = float("inf")
        for link, flows in link_flows.items():
            if not flows:
                continue
            share = remaining[link] / len(flows)
            if share < best_share - _EPS:
                best_share = share
                bottleneck = link
        if bottleneck is None:  # pragma: no cover - defensive
            raise RuntimeError("no bottleneck found with unfrozen flows left")

        frozen_now = sorted(link_flows[bottleneck], key=_sort_key)
        for fid in frozen_now:
            rates[fid] = best_share
            for link in set(unfrozen[fid]):
                remaining[link] = max(0.0, remaining[link] - best_share)
                link_flows[link].discard(fid)
            del unfrozen[fid]

    return rates


def _sort_key(fid) -> tuple:
    """Deterministic ordering key for heterogeneous flow ids."""
    return (str(type(fid).__name__), str(fid))


__all__ = ["max_min_fair_rates"]
