"""Max–min fair rate allocation by progressive filling.

Pure functions so they can be property-tested in isolation. Given flows
(each a set of links it crosses) and link capacities, compute each flow's
rate such that:

1. no link's capacity is exceeded,
2. every flow is *bottlenecked*: its rate cannot be increased without
   decreasing the rate of another flow with an equal-or-smaller rate.

Two interchangeable solvers are provided:

* :func:`max_min_fair_rates` — the reference scan: repeatedly find the
  link with the smallest per-flow fair share among its unfrozen flows,
  freeze those flows at that share, subtract their consumption from all
  their links, repeat. O(L²·F) worst case.
* :func:`fast_fair_rates` — the same progressive filling driven by a
  lazily-invalidated min-heap over per-link shares, so each round costs
  O(touched links · log L) instead of a full O(L) rescan. On the star
  topologies the trainer uses (every route = one worker edge + one PS
  trunk edge) a flow dirties at most two links when it freezes, giving
  O(F log F) overall. Results are bit-identical to the reference solver
  by construction: shares are computed from the same operands
  (``remaining[link] / len(flows)``), freezes subtract the same values in
  the same clamped sequential chains, and rounds pick the same bottleneck
  link (exact ties resolve to the earliest-inserted link in both solvers;
  the rare sub-``_EPS`` near-tie falls back to the reference scan for the
  round).

:func:`fair_rates` dispatches between them on the ``REPRO_FAIRSHARE``
environment variable (``legacy`` selects the reference solver; anything
else — the default — selects the fast one), mirroring the
``REPRO_FLAT_ARENA`` kill-switch convention.
"""

from __future__ import annotations

import heapq
import os
from typing import Callable, Hashable, Mapping, Optional, Sequence

_EPS = 1e-12


def fairshare_mode() -> str:
    """Active solver mode: ``"legacy"`` or ``"fast"`` (the default).

    Controlled by the ``REPRO_FAIRSHARE`` environment variable; read at
    call time so scoped overrides (benchmarks, differential replays) work.
    """
    if os.environ.get("REPRO_FAIRSHARE", "").strip().lower() == "legacy":
        return "legacy"
    return "fast"


def fair_rates(
    flow_routes: Mapping[Hashable, Sequence[Hashable]],
    capacities: Mapping[Hashable, float],
) -> dict[Hashable, float]:
    """Solve max–min fair rates with the mode-selected solver."""
    if fairshare_mode() == "legacy":
        return max_min_fair_rates(flow_routes, capacities)
    return fast_fair_rates(flow_routes, capacities)


def _validate_and_split(flow_routes, capacities):
    """Shared input validation; returns (rates, unfrozen) with loopback
    flows already rated at ``inf``."""
    for link, cap in capacities.items():
        if cap <= 0:
            raise ValueError(f"link {link!r} has non-positive capacity {cap}")

    rates: dict[Hashable, float] = {}
    unfrozen: dict[Hashable, tuple[Hashable, ...]] = {}
    for fid, route in flow_routes.items():
        route = tuple(route)
        for link in route:
            if link not in capacities:
                raise ValueError(f"flow {fid!r} crosses unknown link {link!r}")
        if not route:
            rates[fid] = float("inf")
        else:
            unfrozen[fid] = route
    return rates, unfrozen


def _link_flows_of(unfrozen):
    """Flows per link, insertion-ordered exactly like the reference scan."""
    link_flows: dict[Hashable, set] = {}
    for fid, route in unfrozen.items():
        for link in set(route):
            link_flows.setdefault(link, set()).add(fid)
    return link_flows


def _freeze_round(bottleneck, best_share, rates, unfrozen, link_flows, remaining):
    """Freeze the bottleneck's flows at ``best_share``; return dirtied links.

    Also applies the zero-share freeze fix: the ``max(0.0, ...)`` clamp can
    leave a *loaded* link with zero remaining capacity when shares tie
    within float fuzz (frozen flows crossing it consume its whole
    capacity while other flows still ride it). Left alone, the next round
    would "find" that link at share 0.0 and freeze its flows at rate 0 —
    a frozen transfer that never completes, and the defensive
    ``RuntimeError("active flows but no positive rate")`` in
    ``Network._rerate`` once every flow degenerates that way. Such flows
    were tied with the bottleneck to within ``_EPS``, so they are frozen
    *explicitly* at the same share, cascading until no loaded link is left
    with zero headroom.
    """
    dirty: list = []

    def freeze_link(link):
        for fid in sorted(link_flows[link], key=_sort_key):
            rates[fid] = best_share
            for l in set(unfrozen[fid]):
                remaining[l] = max(0.0, remaining[l] - best_share)
                link_flows[l].discard(fid)
                dirty.append(l)
            del unfrozen[fid]

    freeze_link(bottleneck)
    while True:
        zeroed = [
            l for l, fl in link_flows.items() if fl and remaining[l] <= 0.0
        ]
        if not zeroed:
            break
        for link in zeroed:
            freeze_link(link)
    return dirty


def max_min_fair_rates(
    flow_routes: Mapping[Hashable, Sequence[Hashable]],
    capacities: Mapping[Hashable, float],
) -> dict[Hashable, float]:
    """Compute max–min fair rates (reference solver).

    Parameters
    ----------
    flow_routes:
        Map ``flow_id -> sequence of link_ids`` the flow crosses. A flow
        with an empty route (loopback) gets rate ``inf``.
    capacities:
        Map ``link_id -> capacity`` (bytes/second, must be positive).

    Returns
    -------
    dict
        ``flow_id -> rate``. Deterministic for identical inputs (iteration
        follows insertion order of the mappings; ties broken by first link
        encountered).
    """
    rates, unfrozen = _validate_and_split(flow_routes, capacities)
    remaining = dict(capacities)
    link_flows = _link_flows_of(unfrozen)

    while unfrozen:
        # Find bottleneck: smallest remaining/num_flows among loaded links.
        bottleneck = None
        best_share = float("inf")
        for link, flows in link_flows.items():
            if not flows:
                continue
            share = remaining[link] / len(flows)
            if share < best_share - _EPS:
                best_share = share
                bottleneck = link
        if bottleneck is None:  # pragma: no cover - defensive
            raise RuntimeError("no bottleneck found with unfrozen flows left")

        _freeze_round(bottleneck, best_share, rates, unfrozen, link_flows, remaining)

    return rates


def fast_fair_rates(
    flow_routes: Mapping[Hashable, Sequence[Hashable]],
    capacities: Mapping[Hashable, float],
    *,
    validate: bool = True,
) -> dict[Hashable, float]:
    """Compute max–min fair rates via heap-driven progressive filling.

    Bit-identical to :func:`max_min_fair_rates` (see module docstring for
    why); asymptotically faster because a round only re-examines the links
    the previous round's freezes touched, and cheaper per operation because
    per-link membership is a lazy-deletion list plus live load count rather
    than mutated sets. Freeze *order* within a round is deliberately
    unspecified (the reference sorts for readability): every flow frozen in
    a round gets the same ``best_share``, and each link's capacity update
    is a clamped subtraction chain of that one value whose result depends
    only on how many of the round's flows crossed the link — never on the
    order they froze.

    ``validate=False`` skips input validation *and* loopback handling for
    trusted callers (the Network, whose route map never contains empty
    routes or unknown links) — every entry must be a non-empty sequence of
    known links with positive capacities.
    """
    if validate:
        rates, unfrozen = _validate_and_split(flow_routes, capacities)
    else:
        rates = {}
        unfrozen = flow_routes
    remaining = dict(capacities)

    # Per-flow unique links; per-link flow list (lazy deletion via the
    # ``frozen`` set) + live load count. Link discovery order matches the
    # reference's link_flows insertion order, so the near-tie fallback
    # scan below sees identical link ordering.
    uniq: dict[Hashable, tuple] = {}
    members: dict[Hashable, list] = {}
    load: dict[Hashable, int] = {}
    for fid, route in unfrozen.items():
        # set(route) — not tuple(route) — even for already-unique routes:
        # within the _EPS hysteresis band the winning bottleneck is the
        # *first-scanned* link, so discovery order must match the
        # reference's set iteration bit-for-bit.
        links = tuple(set(route))
        uniq[fid] = links
        for link in links:
            lst = members.get(link)
            if lst is None:
                members[link] = [fid]
                load[link] = 1
            else:
                lst.append(fid)
                load[link] += 1

    # Min-heap of (share, insertion_index, link) with lazy invalidation:
    # an entry is live only while it matches current_share[link] and the
    # link still carries unfrozen flows. insertion_index reproduces the
    # reference scan's first-link-wins tie-break on exact share ties.
    order = {link: i for i, link in enumerate(members)}
    current_share: dict[Hashable, float] = {}
    heap: list[tuple[float, int, Hashable]] = []
    for link, n in load.items():
        share = remaining[link] / n
        current_share[link] = share
        heap.append((share, order[link], link))
    heapq.heapify(heap)

    def pop_live():
        while heap:
            share, _idx, link = heap[0]
            if load[link] and current_share[link] == share:
                return heap[0]
            heapq.heappop(heap)
        return None

    n_unfrozen = len(unfrozen)
    frozen: set = set()
    while n_unfrozen:
        top = pop_live()
        if top is None:  # pragma: no cover - defensive
            raise RuntimeError("no bottleneck found with unfrozen flows left")
        best_share, _idx, bottleneck = top

        # Near-tie guard. The reference scan adopts a new bottleneck only
        # when its share undercuts the incumbent by more than _EPS, so it
        # can settle on a link whose share sits up to _EPS *above* the true
        # minimum. When every non-minimal live share clears the minimum by
        # more than 2·_EPS that hysteresis cannot bite and the heap order
        # (share, then insertion index — the scan's exact-tie rule) gives
        # the scan's answer; otherwise replay the reference round verbatim.
        # The probe skips entries tied exactly at the minimum to find the
        # first *distinct* live share.
        ties = [heapq.heappop(heap)]
        second = None
        while True:
            nxt = pop_live()
            if nxt is None:
                break
            if nxt[0] == best_share:
                ties.append(heapq.heappop(heap))
                continue
            second = nxt
            break
        for entry in ties:
            heapq.heappush(heap, entry)
        if second is not None and second[0] - best_share <= 2 * _EPS:
            bottleneck = None
            best_share = float("inf")
            for link in members:
                n = load[link]
                if not n:
                    continue
                share = remaining[link] / n
                if share < best_share - _EPS:
                    best_share = share
                    bottleneck = link

        # Freeze the bottleneck's flows; cascade through links the round
        # drives to zero remaining capacity while still loaded (the
        # zero-share hazard — see _freeze_round). Only links that just
        # received a subtraction can newly hit zero, so the cascade check
        # walks this round's dirty links rather than every link.
        dirty: list = []

        def freeze_link(link):
            nonlocal n_unfrozen
            for fid in members[link]:
                if fid in frozen:
                    continue
                frozen.add(fid)
                rates[fid] = best_share
                n_unfrozen -= 1
                for l in uniq[fid]:
                    remaining[l] = max(0.0, remaining[l] - best_share)
                    load[l] -= 1
                    dirty.append(l)

        freeze_link(bottleneck)
        scan_from = 0
        while True:
            zeroed = []
            for l in dirty[scan_from:]:
                if load[l] and remaining[l] <= 0.0 and l not in zeroed:
                    zeroed.append(l)
            if not zeroed:
                break
            scan_from = len(dirty)
            for link in zeroed:
                if load[link]:
                    freeze_link(link)

        for link in dirty:
            n = load[link]
            if not n:
                continue
            share = remaining[link] / n
            if share != current_share[link]:
                current_share[link] = share
                heapq.heappush(heap, (share, order[link], link))

    return rates


def _sort_key(fid) -> tuple:
    """Deterministic ordering key for heterogeneous flow ids."""
    return (str(type(fid).__name__), str(fid))


def weighted_max_min_fair_rates(
    flow_routes: Mapping[Hashable, Sequence[Hashable]],
    capacities: Mapping[Hashable, float],
    weights: Mapping[Hashable, float],
) -> dict[Hashable, float]:
    """Weighted max–min fair rates (reference scan, progressive filling).

    Each flow ``f`` carries a positive weight ``w_f``; a link's fair
    *share* is ``remaining / Σ w`` over its unfrozen flows and a flow
    freezes at ``share · w_f`` — i.e. rates are max–min fair in the
    normalized coordinates ``rate / weight``. With every weight equal the
    allocation degenerates to plain max–min fairness (and with every
    weight exactly ``1.0`` the float operations — ``Σ 1.0 == n`` and
    ``share · 1.0 == share`` — are bit-identical to
    :func:`max_min_fair_rates`).

    The zero-share freeze cascade mirrors :func:`_freeze_round`: a loaded
    link clamped to zero remaining capacity freezes its flows at the
    bottleneck share explicitly rather than letting a later round "find"
    it at share 0.
    """
    for fid, w in weights.items():
        if not w > 0:
            raise ValueError(f"flow {fid!r} has non-positive weight {w}")
    rates, unfrozen = _validate_and_split(flow_routes, capacities)
    for fid in unfrozen:
        if fid not in weights:
            raise ValueError(f"flow {fid!r} has no weight")
    remaining = dict(capacities)
    link_flows = _link_flows_of(unfrozen)
    wsum = {
        link: sum(weights[fid] for fid in flows)
        for link, flows in link_flows.items()
    }

    def freeze_link(link, best_share):
        for fid in sorted(link_flows[link], key=_sort_key):
            rate = best_share * weights[fid]
            rates[fid] = rate
            for l in set(unfrozen[fid]):
                remaining[l] = max(0.0, remaining[l] - rate)
                link_flows[l].discard(fid)
                wsum[l] -= weights[fid]
            del unfrozen[fid]

    while unfrozen:
        bottleneck = None
        best_share = float("inf")
        for link, flows in link_flows.items():
            if not flows:
                continue
            share = remaining[link] / wsum[link]
            if share < best_share - _EPS:
                best_share = share
                bottleneck = link
        if bottleneck is None:  # pragma: no cover - defensive
            raise RuntimeError("no bottleneck found with unfrozen flows left")
        freeze_link(bottleneck, best_share)
        while True:
            zeroed = [
                l for l, fl in link_flows.items() if fl and remaining[l] <= 0.0
            ]
            if not zeroed:
                break
            for link in zeroed:
                freeze_link(link, best_share)

    return rates


#: Relative headroom below which a link counts as saturated by higher
#: classes: the clamped subtraction chains of a max–min solve leave float
#: residue of at most a few ulps per frozen flow, so anything under
#: ``capacity × 1e-9`` is scheduling noise, not real leftover bandwidth.
_SAT_REL = 1e-9


def prio_fair_rates(
    flow_routes: Mapping[Hashable, Sequence[Hashable]],
    capacities: Mapping[Hashable, float],
    prios: Mapping[Hashable, int],
    weights: Optional[Mapping[Hashable, float]] = None,
    *,
    solver: Optional[Callable[..., dict]] = None,
) -> dict[Hashable, float]:
    """Strict-priority-then-weighted max–min fair rates.

    Classes are solved highest first; each class sees only the capacity
    left over after every higher class took its allocation, so on a
    saturated link higher classes starve lower ones outright (rate 0.0)
    while flows of equal class keep the plain (or, with non-uniform
    weights, weighted) max–min semantics within the leftover.

    When every flow sits in a single class — *any* class — and its
    weights are uniform, the call delegates to the plain solver over the
    full capacities, making the result bit-identical to the non-priority
    scheduler. ``solver`` overrides the mode-dispatched plain solver
    (:func:`fair_rates`) for uniform-weight subproblems.
    """
    plain = solver if solver is not None else fair_rates
    classes = sorted({prios[fid] for fid in flow_routes}, reverse=True)
    uniform = weights is None or len(set(weights.values())) <= 1
    if len(classes) <= 1 and uniform:
        return plain(flow_routes, capacities)

    leftover = dict(capacities)
    floor = {link: cap * _SAT_REL for link, cap in capacities.items()}
    rates: dict[Hashable, float] = {}
    for cls in classes:
        solve_routes: dict[Hashable, Sequence[Hashable]] = {}
        caps: dict[Hashable, float] = {}
        for fid, route in flow_routes.items():
            if prios[fid] != cls:
                continue
            uniq = set(route)
            if any(leftover[l] <= floor[l] for l in uniq):
                rates[fid] = 0.0  # starved by a higher class
            else:
                solve_routes[fid] = route
                for l in uniq:
                    caps[l] = leftover[l]
        if not solve_routes:
            continue
        if weights is None or len({weights[f] for f in solve_routes}) <= 1:
            sub = plain(solve_routes, caps)
        else:
            sub = weighted_max_min_fair_rates(
                solve_routes, caps, {f: weights[f] for f in solve_routes}
            )
        for fid, rate in sub.items():
            rates[fid] = rate
            if rate > 0 and rate != float("inf"):
                for l in set(flow_routes[fid]):
                    leftover[l] = max(0.0, leftover[l] - rate)
    return rates


__all__ = [
    "fair_rates",
    "fairshare_mode",
    "fast_fair_rates",
    "max_min_fair_rates",
    "prio_fair_rates",
    "weighted_max_min_fair_rates",
]
