"""Flow state and completed-flow records."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.netsim.links import Link
from repro.netsim.prio import PRIO_NORMAL
from repro.simcore.events import Event


@dataclass
class Flow:
    """An in-flight transfer (mutable scheduler state).

    ``remaining`` counts *effective* bytes (payload inflated by the route
    loss rate); ``rate`` is the current max–min fair allocation.
    """

    fid: int
    src: int | str
    dst: int | str
    size: float  # payload bytes as requested by the caller
    remaining: float  # effective bytes still to move
    route: tuple[Link, ...]
    latency: float  # one-way route latency (added after draining)
    done: Event  # succeeds with a FlowRecord
    tag: Any = None
    start_time: float = 0.0
    rate: float = 0.0
    #: Interned link-name tuple for the route, cached per (src, dst) by the
    #: Network so the fair-share solver never rebuilds name lists per call.
    names: tuple[str, ...] = ()
    #: Strict-priority transmission class (repro.netsim.prio constants).
    prio: int = PRIO_NORMAL
    #: DRR-style weight within the class (uniform weights = plain max–min).
    weight: float = 1.0
    #: Effective bytes per P3-style slice, or ``None`` for an unsliced
    #: flow (rate changes apply instantly). Sliced flows only accept a new
    #: allocation at slice boundaries under multi-class contention.
    slice_eff: Optional[float] = None
    #: Remaining-bytes threshold of the current slice boundary; ``-1.0``
    #: means no slice has been anchored yet.
    slice_next: float = -1.0
    #: Owning job name under multi-job co-tenancy, or ``None`` for a
    #: single-tenant flow. Drained bytes of tagged flows are accounted to
    #: ``netsim.job_bytes.{job}``.
    job: Optional[str] = None

    def __hash__(self) -> int:
        return self.fid

    def __repr__(self) -> str:
        return (
            f"<Flow #{self.fid} {self.src}->{self.dst} "
            f"{self.size / 1e6:.2f}MB tag={self.tag!r}>"
        )


@dataclass(frozen=True)
class FlowRecord:
    """Immutable record of a completed transfer (the ``done`` event value)."""

    fid: int
    src: int | str
    dst: int | str
    size: float
    tag: Any
    start_time: float
    end_time: float

    @property
    def duration(self) -> float:
        """Wall-clock (virtual) duration of the transfer in seconds."""
        return self.end_time - self.start_time

    @property
    def effective_rate(self) -> float:
        """Average goodput in bytes/second."""
        if self.duration <= 0:
            return float("inf")
        return self.size / self.duration


__all__ = ["Flow", "FlowRecord"]
