"""Link specifications and runtime link objects."""

from __future__ import annotations

from dataclasses import dataclass, field


#: Bytes per second for a 10 Gigabit/s Ethernet link (the paper's testbed).
TEN_GBPS = 10e9 / 8.0
#: Bytes per second for 1/25/40/100 GbE, for scaling studies.
ONE_GBPS = 1e9 / 8.0
TWENTY_FIVE_GBPS = 25e9 / 8.0
FORTY_GBPS = 40e9 / 8.0
HUNDRED_GBPS = 100e9 / 8.0


@dataclass(frozen=True)
class LinkSpec:
    """Static description of a (directed) link.

    Parameters
    ----------
    bandwidth:
        Capacity in **bytes per second**.
    latency:
        One-way propagation + switching delay in seconds.
    loss_rate:
        Fraction of traffic lost and retransmitted (0 ≤ p < 1). Modelled as
        goodput inflation: effective bytes = size × (1 + p) per Eq. 5.
    """

    bandwidth: float = TEN_GBPS
    latency: float = 50e-6
    loss_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth}")
        if self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency}")
        if not (0.0 <= self.loss_rate < 1.0):
            raise ValueError(f"loss_rate must be in [0,1), got {self.loss_rate}")


@dataclass
class Link:
    """A directed link instance in a topology.

    ``name`` is globally unique within a topology (e.g. ``"up:3"`` for node
    3's uplink). Runtime counters track cumulative bytes for utilisation
    reporting.
    """

    name: str
    spec: LinkSpec
    #: Cumulative bytes drained through this link. A *tolerance* surface,
    #: not a bit-identity one: the vectorized drain accumulates per-link
    #: totals in a different float summation order than the scalar loop,
    #: so consumers (utilization reports, the conservation monitor) must
    #: — and do — compare with a relative tolerance.
    bytes_carried: float = field(default=0.0, init=False)
    busy_time: float = field(default=0.0, init=False)
    #: Multiplicative fault state (see :meth:`apply_fault`). Factors rather
    #: than absolute values so overlapping faults compose and revert exactly.
    bandwidth_factor: float = field(default=1.0, init=False)
    keep_factor: float = field(default=1.0, init=False)

    @property
    def bandwidth(self) -> float:
        """Effective capacity in bytes/second (spec × active fault factors)."""
        return self.spec.bandwidth * self.bandwidth_factor

    @property
    def loss_rate(self) -> float:
        """Effective loss rate: spec loss compounded with fault bursts."""
        return 1.0 - (1.0 - self.spec.loss_rate) * self.keep_factor

    def apply_fault(self, bandwidth_factor: float = 1.0, extra_loss: float = 0.0) -> None:
        """Overlay a fault on this link.

        ``bandwidth_factor`` scales capacity (0 < f; < 1 is a dip);
        ``extra_loss`` compounds with the spec loss as independent drop
        probabilities. Faults stack multiplicatively, so nested windows
        revert cleanly via :meth:`clear_fault` with the same arguments.
        """
        if bandwidth_factor <= 0:
            raise ValueError(f"bandwidth_factor must be positive, got {bandwidth_factor}")
        if not (0.0 <= extra_loss < 1.0):
            raise ValueError(f"extra_loss must be in [0,1), got {extra_loss}")
        self.bandwidth_factor *= bandwidth_factor
        self.keep_factor *= 1.0 - extra_loss

    def clear_fault(self, bandwidth_factor: float = 1.0, extra_loss: float = 0.0) -> None:
        """Undo a previous :meth:`apply_fault` with identical arguments."""
        if bandwidth_factor <= 0:
            raise ValueError(f"bandwidth_factor must be positive, got {bandwidth_factor}")
        if not (0.0 <= extra_loss < 1.0):
            raise ValueError(f"extra_loss must be in [0,1), got {extra_loss}")
        self.bandwidth_factor /= bandwidth_factor
        self.keep_factor /= 1.0 - extra_loss
        # Snap float drift so a fully-reverted link is bit-exact again.
        if abs(self.bandwidth_factor - 1.0) < 1e-12:
            self.bandwidth_factor = 1.0
        if abs(self.keep_factor - 1.0) < 1e-12:
            self.keep_factor = 1.0

    def window_utilization(self, bytes_in_window: float, elapsed: float) -> float:
        """Utilisation of one sampling window against nominal capacity.

        The caller supplies the window's byte delta (``bytes_carried`` is
        cumulative); same nominal-capacity convention as
        :meth:`utilization` so fault windows read as *low* utilisation of a
        healthy link, not 100% of a degraded one.
        """
        if elapsed <= 0:
            return 0.0
        return min(1.0, bytes_in_window / (self.spec.bandwidth * elapsed))

    def utilization(self, elapsed: float) -> float:
        """Average utilisation over ``elapsed`` seconds of simulated time.

        Measured against the *nominal* (spec) capacity: ``bytes_carried``
        is whole-run history, so dividing by the fault-adjusted effective
        bandwidth would overstate utilisation whenever the report is taken
        during an active bandwidth dip.
        """
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.bytes_carried / (self.spec.bandwidth * elapsed))

    def __hash__(self) -> int:
        return hash(self.name)

    def __repr__(self) -> str:
        gbps = self.bandwidth * 8 / 1e9
        return f"<Link {self.name} {gbps:.1f}Gbps>"


__all__ = [
    "Link",
    "LinkSpec",
    "ONE_GBPS",
    "TEN_GBPS",
    "TWENTY_FIVE_GBPS",
    "FORTY_GBPS",
    "HUNDRED_GBPS",
]
