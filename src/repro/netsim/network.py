"""The Network facade: event-driven fluid-flow transfer scheduling.

Whenever a flow starts or finishes, the scheduler (1) *drains* all active
flows by their current rates over the elapsed interval, (2) recomputes
max–min fair rates, and (3) schedules a wake-up at the earliest projected
completion. Wake-ups are versioned so a superseded timer is ignored rather
than cancelled (the kernel has no cancellation primitive — versioning is
cheaper and deterministic).

Scaling machinery (default; ``REPRO_FAIRSHARE=legacy`` disables all of it
and restores the one-recompute-per-event reference path):

* **Coalesced rerates** — flow starts batch same-instant work into a single
  fair-share recompute via :meth:`Environment.defer` instead of re-solving
  once per ``transfer()``. Virtual-time outcomes are unchanged: no bytes
  move within an instant, intermediate allocations are unobservable, and
  the coalesced solve sees exactly the flow set the last per-event solve
  would have seen.
* **Decoupled-delta skipping** — when every flow added/removed since the
  last solve rides links carrying no *other* flow, the surviving rates are
  provably unchanged and a new flow's rate is exactly the min capacity on
  its route, so the solver is skipped outright (``netsim.rerate_skipped``).
* **Vectorized drain** — ``remaining``/``rate`` live in parallel numpy
  arrays keyed by a stable per-flow slot; per-link ``bytes_carried`` is
  accumulated with ``np.bincount``. Per-flow remaining values are
  bit-identical to the scalar loop (elementwise IEEE ops, no
  reassociation); per-link byte totals may differ from the scalar loop
  only in float summation order, which every consumer (utilization
  reports, conservation monitor) already reads with a tolerance.
* **Route caching** — interned ``(route, link-name tuple)`` per (src, dst),
  so the solver never rebuilds name lists and topologies are only asked to
  route each pair once. Topologies are static by contract (fault windows
  change link *attributes*, never the link set or routes).

``stats`` tracks the ``netsim.*`` counters registered in
:mod:`repro.obs.registry`; when a :class:`~repro.metrics.recorder.Recorder`
is attached (the trainer does) they are mirrored there for summaries and
checkpoints. Replay streams exclude the ``netsim.`` namespace: the two
solver modes intentionally differ in how *often* they recompute, not in
what they compute.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Iterable, Optional

import numpy as np

from repro.netsim.fairshare import (
    _SAT_REL,
    fairshare_mode,
    fast_fair_rates,
    max_min_fair_rates,
    prio_fair_rates,
)
from repro.netsim.flows import Flow, FlowRecord
from repro.netsim.links import Link
from repro.netsim.prio import (
    CLASS_NAMES,
    DEFAULT_CLASS_WEIGHTS,
    PRIO_NORMAL,
    netprio_enabled,
)
from repro.netsim.topology import StarTopology
from repro.simcore.environment import Environment
from repro.simcore.events import Event
from repro.simcore.priority import URGENT

#: Flows with fewer remaining effective bytes than this are complete.
_BYTE_EPS = 1e-6

#: Per-class drained-byte counter names, indexed by class value.
_BYTE_COUNTERS = tuple(
    f"netsim.prio_bytes.{CLASS_NAMES[cls]}" for cls in range(4)
)


def _job_counter(job: str) -> str:
    """Drained-byte counter name for a job-tagged flow.

    Matches the ``netsim.job_bytes.{job}`` template registered in
    :mod:`repro.obs.registry`.
    """
    return f"netsim.job_bytes.{job}"


class Network:
    """Transfer scheduler over a topology.

    Parameters
    ----------
    env:
        Simulation environment (clock source and event queue).
    topology:
        Any object exposing ``route``, ``route_latency``, ``route_loss`` and
        ``links`` (see :class:`~repro.netsim.topology.StarTopology`).
    keep_records:
        If True (default), completed transfers are appended to
        :attr:`records` for post-hoc analysis (BST breakdowns, Fig. 1/2
        timelines).
    max_records:
        Optional cap on :attr:`records`. When set, the newest
        ``max_records`` records are kept (keep-latest ring) and each drop
        increments the ``netsim.records_dropped`` counter — long
        elastic/fault runs with records enabled stay memory-bounded.
    """

    def __init__(
        self,
        env: Environment,
        topology: StarTopology,
        keep_records: bool = True,
        max_records: Optional[int] = None,
    ) -> None:
        self.env = env
        self.topology = topology
        self.keep_records = keep_records
        self.max_records = max_records
        if keep_records and max_records is not None:
            self.records = deque(maxlen=max_records)
        else:
            self.records: list[FlowRecord] = []
        #: Optional Recorder mirror for the ``netsim.*`` counters in
        #: :attr:`stats` (the trainer attaches its recorder).
        self.recorder = None
        #: Scheduler work counters (see repro.obs.registry COUNTERS).
        self.stats: dict[str, int] = {
            "netsim.rerates": 0,
            "netsim.rerate_skipped": 0,
            "netsim.fairshare_calls": 0,
            "netsim.records_dropped": 0,
            "netsim.prio_preemptions": 0,
            "netsim.prio_bytes.bulk": 0.0,
            "netsim.prio_bytes.normal": 0.0,
            "netsim.prio_bytes.high": 0.0,
            "netsim.prio_bytes.urgent": 0.0,
        }
        self._active: dict[int, Flow] = {}
        self._next_fid = 0
        self._last_update = env.now
        self._timer_version = 0
        self._capacities = {l.name: l.bandwidth for l in topology.links}
        self._links_by_name = {l.name: l for l in topology.links}

        self._fast = fairshare_mode() == "fast"
        #: REPRO_NETPRIO kill-switch, read once at construction. When off,
        #: every flow is coerced to NORMAL/unit-weight/unsliced at
        #: admission and the scheduler is exactly the single-class core.
        self._prio_on = netprio_enabled()
        #: Default per-class DRR weight applied to flows that don't pass
        #: an explicit ``weight=`` (mutable; uniform by default).
        self.class_weights = dict(DEFAULT_CLASS_WEIGHTS)
        #: Active-flow count per priority class (multi-class detector).
        self._class_count: dict[int, int] = {}
        #: Active flows with a non-unit weight / with slicing enabled.
        self._weighted_count = 0
        self._sliced_count = 0
        #: fids locked mid-slice by the last priority solve (their rates
        #: are pinned until the slice boundary).
        self._locked: list[int] = []
        self._route_cache: dict[tuple, tuple[tuple[Link, ...], tuple[str, ...]]] = {}
        #: active-flow count per link name (decoupling detector).
        self._link_load: dict[str, int] = {}
        #: True while a coalesced rerate is armed for the current instant.
        self._pending = False
        #: fids added since the last rate assignment.
        self._pending_new: list[int] = []
        #: True while every active flow's rate matches a full solve over the
        #: current flow set and capacities (trivially true when empty).
        self._rated = True
        #: set when a non-decoupled add/remove or a capacity change forces
        #: the next rerate through the solver.
        self._solver_dirty = False
        #: Persistent fid -> route-name-tuple map for the fast solver. fids
        #: are handed out in increasing order and never reused, so dict
        #: insertion order *is* sorted-fid order — the exact map the legacy
        #: path rebuilds (and sorts) from scratch on every solve.
        self._solver_routes: dict[int, tuple[str, ...]] = {}
        #: Parallel fid -> class / weight maps for the priority solver.
        self._solver_prios: dict[int, int] = {}
        self._solver_weights: dict[int, float] = {}

        # -- vectorized drain plane (fast mode, 2-link routes only) --------
        self._links_seq: list[Link] = list(topology.links)
        self._n_links = len(self._links_seq)
        self._link_index = {l.name: i for i, l in enumerate(self._links_seq)}
        self._vector_ok = True
        self._slot_of: dict[int, int] = {}
        self._slot_flow: list[Optional[Flow]] = []
        self._free_slots: list[int] = []
        self._arr_remaining = np.zeros(0)
        self._arr_rate = np.zeros(0)
        self._arr_links = np.zeros((0, 2), dtype=np.intp)
        self._arr_prio = np.zeros(0, dtype=np.intp)
        # -- per-job byte accounting (multi-job co-tenancy) ----------------
        #: job name -> stable small integer (index into _job_names).
        self._job_index: dict[str, int] = {}
        self._job_names: list[str] = []
        #: Active flows carrying a job tag; zero keeps single-tenant runs
        #: off the accounting path entirely.
        self._job_count = 0
        #: Per-slot job index (-1 = untagged), parallel to _arr_remaining.
        self._arr_job = np.zeros(0, dtype=np.intp)
        self._act_dirty = True
        self._act_list: list[int] = []
        self._act_arr = np.zeros(0, dtype=np.intp)

    # ------------------------------------------------------------------ API
    @property
    def active_flows(self) -> list[Flow]:
        """Snapshot of in-flight flows (ordered by flow id)."""
        return [self._active[fid] for fid in sorted(self._active)]

    def transfer(
        self,
        src,
        dst,
        size: float,
        tag: Any = None,
        prio: int = PRIO_NORMAL,
        weight: Optional[float] = None,
        slice_bytes: Optional[float] = None,
        job: Optional[str] = None,
    ) -> Event:
        """Start a transfer of ``size`` payload bytes from ``src`` to ``dst``.

        Returns an event that succeeds with a :class:`FlowRecord` when the
        last byte arrives (serialisation under fair sharing + route latency).
        Loopback (``src == dst``) completes after zero time at the same
        instant, modelling co-located PS communication through shared memory.

        ``prio`` picks the strict-priority class (repro.netsim.prio
        constants); ``weight`` overrides the class's DRR weight for
        weighted sharing *within* the class (default: the Network's
        ``class_weights`` entry); ``slice_bytes`` enables P3-style slicing
        — under multi-class contention the flow only accepts a *new* rate
        at slice boundaries, modelling bounded preemption latency. All
        three are ignored (coerced to NORMAL/unit/unsliced) when
        ``REPRO_NETPRIO=off``.

        ``job`` attributes the flow to a co-tenant training job: its
        drained bytes are accounted to ``netsim.job_bytes.{job}``.
        Untagged transfers (the single-tenant default) skip the job
        accounting path entirely.
        """
        if size < 0:
            raise ValueError(f"negative transfer size {size}")
        if prio not in CLASS_NAMES:
            raise ValueError(f"unknown priority class {prio!r}")
        if self._prio_on:
            if weight is None:
                weight = self.class_weights.get(prio, 1.0)
            if not weight > 0:
                raise ValueError(f"non-positive flow weight {weight}")
        else:
            prio, weight, slice_bytes = PRIO_NORMAL, 1.0, None
        cached = self._route_cache.get((src, dst))
        if cached is None:
            route = tuple(self.topology.route(src, dst))
            cached = (route, tuple(l.name for l in route))
            self._route_cache[(src, dst)] = cached
        route, names = cached
        # Latency/loss are *live* reads (fault windows move them); computed
        # over the cached route with the same folds the topologies use.
        latency = 0.0
        keep = 1.0
        for link in route:
            latency += link.spec.latency
            keep *= 1.0 - link.loss_rate
        loss = 1.0 - keep
        done = Event(self.env)
        fid = self._next_fid
        self._next_fid += 1

        # A slice grain at or below the completion epsilon is unresolvable
        # — treat the flow as unsliced rather than spin on the boundary.
        slice_eff = None
        if slice_bytes is not None and float(slice_bytes) > _BYTE_EPS:
            slice_eff = float(slice_bytes) * (1.0 + loss)

        flow = Flow(
            fid=fid,
            src=src,
            dst=dst,
            size=float(size),
            remaining=float(size) * (1.0 + loss),
            route=route,
            latency=latency,
            done=done,
            tag=tag,
            start_time=self.env.now,
            names=names,
            prio=prio,
            weight=weight if weight is not None else 1.0,
            slice_eff=slice_eff,
            job=job,
        )

        if not route or flow.remaining <= _BYTE_EPS:
            # Loopback or empty payload: only latency applies.
            self._finish(flow)
            return done

        self._drain()
        self._register(flow)
        tr = self.env.tracer
        if tr:
            tr.gauge_delta("obs.net.inflight_bytes", flow.size)
            tr.gauge_delta("obs.net.active_flows", 1)
        if self._fast:
            self._schedule_rerate()
        else:
            self._rerate()
        return done

    def transfer_process(self, src, dst, size: float, tag: Any = None, **kwargs):
        """Generator wrapper so callers can ``yield from`` a transfer."""
        record = yield self.transfer(src, dst, size, tag=tag, **kwargs)
        return record

    def bulk_time(self, src, dst, size: float) -> float:
        """Analytic duration of a *lone* transfer (no contention).

        Useful for closed-form expectations in tests and for the paper's
        Eq. 5 upper-bound computation.
        """
        route = self.topology.route(src, dst)
        latency = self.topology.route_latency(src, dst)
        if not route or size <= 0:
            return latency
        loss = self.topology.route_loss(src, dst)
        bottleneck = min(l.bandwidth for l in route)
        return size * (1.0 + loss) / bottleneck + latency

    def link_utilization(self, name: str) -> float:
        """Average utilisation of link ``name`` since t=0."""
        link = self._links_by_name[name]
        return link.utilization(self.env.now)

    def job_bytes(self, job: str) -> float:
        """Effective bytes drained so far for flows tagged ``job=``."""
        return float(self.stats.get(_job_counter(job), 0.0))

    def refresh_capacities(self) -> None:
        """Re-read link bandwidths after a fault changed them.

        Drains active flows at their old rates up to *now*, rebuilds the
        capacity map from the links' effective bandwidths, and re-runs the
        fair-share allocation — so a bandwidth dip/flap immediately slows
        (or a clear immediately speeds up) in-flight transfers. Loss-rate
        changes, by contrast, only affect flows started after the change:
        retransmission inflation is sampled at flow start.
        """
        self._drain()
        self._capacities = {l.name: l.bandwidth for l in self.topology.links}
        self._solver_dirty = True  # cached allocations assume old capacities
        if self._sliced_count:
            # A fault transition applies immediately even to mid-slice
            # flows: force every slice to a boundary so the coming solve
            # re-rates them against the new capacities.
            for flow in self._active.values():
                if flow.slice_eff is not None:
                    flow.slice_next = -1.0
        self._rerate()

    # ------------------------------------------------------------ internals
    def _count(self, name: str, n: int = 1) -> None:
        # .get: per-job counters (netsim.job_bytes.{job}) appear dynamically.
        self.stats[name] = self.stats.get(name, 0) + n
        if self.recorder is not None:
            self.recorder.incr(name, n)

    def _register(self, flow: Flow) -> None:
        """Add a flow to the active set and every bookkeeping plane."""
        self._active[flow.fid] = flow
        self._pending_new.append(flow.fid)
        self._solver_routes[flow.fid] = flow.names
        self._solver_prios[flow.fid] = flow.prio
        self._solver_weights[flow.fid] = flow.weight
        # The decoupled-delta skip path stays valid across classes and
        # weights: a flow alone on its links has no competitors of any
        # class, so its priority-fair rate is exactly its route's min
        # capacity — no extra dirtying needed here.
        self._class_count[flow.prio] = self._class_count.get(flow.prio, 0) + 1
        if flow.weight != 1.0:
            self._weighted_count += 1
        if flow.slice_eff is not None:
            self._sliced_count += 1
        if flow.job is not None:
            self._job_count += 1
            jidx = self._job_index.get(flow.job)
            if jidx is None:
                jidx = len(self._job_names)
                self._job_index[flow.job] = jidx
                self._job_names.append(flow.job)
        else:
            jidx = -1
        load = self._link_load
        for name in set(flow.names):
            n = load.get(name, 0)
            load[name] = n + 1
            if n > 0:
                self._solver_dirty = True  # couples with an existing flow
        if self._fast:
            slot = self._alloc_slot(flow)
            self._arr_remaining[slot] = flow.remaining
            self._arr_rate[slot] = 0.0
            self._arr_prio[slot] = flow.prio
            self._arr_job[slot] = jidx
            if self._vector_ok:
                if len(flow.names) == 2:
                    self._arr_links[slot, 0] = self._link_index[flow.names[0]]
                    self._arr_links[slot, 1] = self._link_index[flow.names[1]]
                else:
                    self._vector_ok = False
            self._act_dirty = True

    def _retire(self, flow: Flow, tr) -> None:
        """Remove a finished flow from every bookkeeping plane."""
        del self._active[flow.fid]
        del self._solver_routes[flow.fid]
        del self._solver_prios[flow.fid]
        del self._solver_weights[flow.fid]
        n_cls = self._class_count[flow.prio] - 1
        if n_cls:
            self._class_count[flow.prio] = n_cls
        else:
            del self._class_count[flow.prio]
        if flow.weight != 1.0:
            self._weighted_count -= 1
        if flow.slice_eff is not None:
            self._sliced_count -= 1
        if flow.job is not None:
            self._job_count -= 1
        if tr:
            tr.gauge_delta("obs.net.inflight_bytes", -flow.size)
            tr.gauge_delta("obs.net.active_flows", -1)
        load = self._link_load
        for name in set(flow.names):
            n = load[name] - 1
            load[name] = n
            if n > 0:
                self._solver_dirty = True  # survivors on this link speed up
        slot = self._slot_of.pop(flow.fid, None)
        if slot is not None:
            self._slot_flow[slot] = None
            self._free_slots.append(slot)
            self._act_dirty = True
        self._finish(flow)

    def _alloc_slot(self, flow: Flow) -> int:
        if self._free_slots:
            slot = self._free_slots.pop()
            self._slot_flow[slot] = flow
        else:
            slot = len(self._slot_flow)
            self._slot_flow.append(flow)
            if slot >= self._arr_remaining.size:
                new_cap = max(64, 2 * self._arr_remaining.size)
                for attr in ("_arr_remaining", "_arr_rate"):
                    old = getattr(self, attr)
                    grown = np.zeros(new_cap)
                    grown[: old.size] = old
                    setattr(self, attr, grown)
                old_links = self._arr_links
                grown_links = np.zeros((new_cap, 2), dtype=np.intp)
                grown_links[: old_links.shape[0]] = old_links
                self._arr_links = grown_links
                old_prio = self._arr_prio
                grown_prio = np.zeros(new_cap, dtype=np.intp)
                grown_prio[: old_prio.size] = old_prio
                self._arr_prio = grown_prio
                old_job = self._arr_job
                grown_job = np.full(new_cap, -1, dtype=np.intp)
                grown_job[: old_job.size] = old_job
                self._arr_job = grown_job
        self._slot_of[flow.fid] = slot
        return slot

    def _act_slots(self) -> np.ndarray:
        """Slot indices of active flows (insertion order), cached."""
        if self._act_dirty:
            self._act_list = [self._slot_of[fid] for fid in self._active]
            self._act_arr = np.array(self._act_list, dtype=np.intp)
            self._act_dirty = False
        return self._act_arr

    def _drain(self) -> None:
        """Advance all active flows to the current instant."""
        now = self.env.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0 or not self._active:
            return
        if self._fast and self._vector_ok:
            act = self._act_slots()
            rem = self._arr_remaining[act]
            moved = self._arr_rate[act] * dt
            # Elementwise, so bit-identical to the scalar loop per flow.
            new_rem = np.where(moved > 0.0, np.maximum(0.0, rem - moved), rem)
            self._arr_remaining[act] = new_rem
            per_link = np.bincount(
                self._arr_links[act].ravel(),
                weights=np.repeat(moved, 2),
                minlength=self._n_links,
            )
            links = self._links_seq
            for idx in np.flatnonzero(per_link):
                links[idx].bytes_carried += per_link[idx]
            if self._prio_on:
                per_cls = np.bincount(
                    self._arr_prio[act], weights=moved, minlength=4
                )
                for cls in np.flatnonzero(per_cls):
                    self._count(_BYTE_COUNTERS[cls], float(per_cls[cls]))
            if self._job_count:
                jobs = self._arr_job[act]
                tagged = jobs >= 0
                if tagged.any():
                    per_job = np.bincount(
                        jobs[tagged],
                        weights=moved[tagged],
                        minlength=len(self._job_names),
                    )
                    names = self._job_names
                    for jidx in np.flatnonzero(per_job):
                        self._count(_job_counter(names[jidx]), float(per_job[jidx]))
            slot_flow = self._slot_flow
            for i, slot in enumerate(self._act_list):
                slot_flow[slot].remaining = new_rem[i]
            return
        cls_bytes = [0.0, 0.0, 0.0, 0.0]
        job_bytes: dict[str, float] = {}
        for flow in self._active.values():
            moved = flow.rate * dt
            if moved > 0:
                flow.remaining = max(0.0, flow.remaining - moved)
                for link in flow.route:
                    link.bytes_carried += moved
                cls_bytes[flow.prio] += moved
                if flow.job is not None:
                    job_bytes[flow.job] = job_bytes.get(flow.job, 0.0) + moved
        if self._prio_on:
            for cls, nbytes in enumerate(cls_bytes):
                if nbytes > 0:
                    self._count(_BYTE_COUNTERS[cls], nbytes)
        for job, nbytes in job_bytes.items():
            self._count(_job_counter(job), nbytes)

    def _schedule_rerate(self) -> None:
        """Arm (at most) one coalesced rerate for the current instant."""
        if self._pending:
            return
        self._pending = True
        self.env.defer(self._on_deferred_rerate)

    def _on_deferred_rerate(self) -> None:
        if not self._pending:
            return  # an immediate rerate (timer/fault refresh) covered it
        self._drain()
        self._rerate()

    def _set_rate(self, flow: Flow, rate: float) -> None:
        flow.rate = rate
        if self._fast:
            self._arr_rate[self._slot_of[flow.fid]] = rate

    def _after_plain_solve(self) -> None:
        """Bookkeeping after a single-class full solve.

        Plain solves apply allocations instantly (slicing never defers a
        same-class fair-share adjustment), but each applied allocation
        *starts a fresh slice*: anchor it so a higher-class arrival
        mid-slice finds the flow locked at its running rate.
        """
        self._solver_dirty = False
        self._rated = True
        self._locked = []
        if self._sliced_count:
            for flow in self._active.values():
                if flow.slice_eff is not None:
                    flow.slice_next = max(0.0, flow.remaining - flow.slice_eff)

    def _prio_solve(self, fresh_anchor: set) -> None:
        """Strict-priority allocation over a multi-class active set.

        P3-style slicing first: a sliced flow that is mid-slice keeps its
        current rate (locked) until the boundary; its pinned consumption
        is subtracted from link capacities before the class loop, so even
        a higher-class arrival waits out at most one slice — the modelled
        preemption latency. Everything else goes through
        :func:`prio_fair_rates`: classes solved highest first over the
        leftover capacity, equal-class flows sharing by (weighted)
        max–min with the mode-dispatched solver, lower classes starved
        outright on saturated links (``netsim.prio_preemptions`` counts
        flows whose running rate that drops to zero).
        """
        active = self._active
        locked: list[int] = []
        if self._sliced_count:
            for fid, flow in active.items():
                if flow.slice_eff is None:
                    continue
                if (
                    flow.slice_next >= 0.0
                    and flow.slice_eff > 0.0
                    and flow.remaining < flow.slice_next - _BYTE_EPS
                ):
                    # Boundaries passed without a rerate (the flow ran
                    # uncontended): advance the anchor along its slice grid
                    # to the boundary of the slice `remaining` now sits in.
                    behind = flow.slice_next - flow.remaining
                    steps = math.ceil(behind / flow.slice_eff - 1e-9)
                    flow.slice_next = max(
                        0.0, flow.slice_next - steps * flow.slice_eff
                    )
                if (
                    flow.rate > 0.0
                    and flow.slice_next >= 0.0
                    and flow.remaining > flow.slice_next + _BYTE_EPS
                    and fid not in fresh_anchor
                ):
                    locked.append(fid)
                else:
                    flow.slice_next = max(0.0, flow.remaining - flow.slice_eff)
                    fresh_anchor.add(fid)
        self._locked = locked

        starved_by_lock: list[int] = []
        if locked:
            caps = dict(self._capacities)
            lockset = set(locked)
            for fid in locked:
                flow = active[fid]
                for name in set(flow.names):
                    caps[name] = max(0.0, caps[name] - flow.rate)
            # A flow crossing a link the locked slices fully consume is
            # starved for the rest of the slice, whatever its class; the
            # remaining links must reach the solver strictly positive.
            routes: dict[int, tuple] = {}
            full = self._capacities
            for fid, names in self._solver_routes.items():
                if fid in lockset:
                    continue
                if any(caps[n] <= full[n] * _SAT_REL for n in set(names)):
                    starved_by_lock.append(fid)
                else:
                    routes[fid] = names
        else:
            caps = self._capacities
            routes = self._solver_routes

        weights = self._solver_weights if self._weighted_count else None
        if self._fast:
            def solver(r, c):
                return fast_fair_rates(r, c, validate=False)
        else:
            solver = max_min_fair_rates
        rates = prio_fair_rates(
            routes, caps, self._solver_prios, weights, solver=solver
        )
        self._count("netsim.fairshare_calls")
        preempted = 0
        for fid in starved_by_lock:
            rates[fid] = 0.0
        for fid, rate in rates.items():
            flow = active[fid]
            if rate == 0.0 and flow.rate > 0.0:
                preempted += 1
            self._set_rate(flow, rate)
        if preempted:
            self._count("netsim.prio_preemptions", preempted)
        self._solver_dirty = False
        self._rated = True

    def _zero_remaining(self, flow: Flow) -> None:
        flow.remaining = 0.0
        if self._fast:
            slot = self._slot_of.get(flow.fid)
            if slot is not None:
                self._arr_remaining[slot] = 0.0

    def _rerate(self) -> None:
        """Recompute fair rates, complete drained flows, arm the next timer."""
        now = self.env.now
        self._pending = False
        self._count("netsim.rerates")
        tr = self.env.tracer
        #: fids whose slice was (re-)anchored during *this* rerate — they
        #: must not be considered mid-slice by a later loop iteration.
        fresh_anchor: set[int] = set()
        while True:
            # Complete flows that have fully drained.
            finished = [
                f for f in self._active.values() if f.remaining <= _BYTE_EPS
            ]
            for flow in finished:
                self._retire(flow, tr)

            self._timer_version += 1
            if not self._active:
                self._pending_new.clear()
                return

            multi = self._prio_on and len(self._class_count) > 1
            if self._fast and self._rated and not self._solver_dirty:
                # Every change since the last solve is decoupled: survivors
                # keep their rates; each new flow is alone on its links, so
                # its fair share is exactly its route's min capacity —
                # regardless of class (no competitors to preempt or defer
                # to) — so this path stays valid under priorities.
                for fid in self._pending_new:
                    flow = self._active.get(fid)
                    if flow is not None:
                        self._set_rate(
                            flow,
                            min(self._capacities[n] for n in set(flow.names)),
                        )
                        if flow.slice_eff is not None:
                            flow.slice_next = max(
                                0.0, flow.remaining - flow.slice_eff
                            )
                self._count("netsim.rerate_skipped")
            elif multi:
                self._prio_solve(fresh_anchor)
            elif self._fast:
                rates = fast_fair_rates(
                    self._solver_routes, self._capacities, validate=False
                )
                self._count("netsim.fairshare_calls")
                arr_rate = self._arr_rate
                slot_of = self._slot_of
                for fid, flow in self._active.items():
                    rate = rates[fid]
                    flow.rate = rate
                    arr_rate[slot_of[fid]] = rate
                self._after_plain_solve()
            else:
                routes = {
                    fid: [l.name for l in f.route]
                    for fid, f in sorted(self._active.items())
                }
                rates = max_min_fair_rates(routes, self._capacities)
                self._count("netsim.fairshare_calls")
                for fid, flow in self._active.items():
                    self._set_rate(flow, rates[fid])
                self._after_plain_solve()
            self._pending_new.clear()

            if self._fast and self._vector_ok:
                act = self._act_slots()
                rate_a = self._arr_rate[act]
                rem_a = self._arr_remaining[act]
                pos = rate_a > 0.0
                horizon = (
                    float(np.min(rem_a[pos] / rate_a[pos]))
                    if pos.any()
                    else float("inf")
                )
            else:
                horizon = float("inf")
                for flow in self._active.values():
                    if flow.rate > 0:
                        horizon = min(horizon, flow.remaining / flow.rate)
            if self._locked:
                # A mid-slice flow's pinned rate expires at its slice
                # boundary — wake there so deferred allocations apply.
                for fid in self._locked:
                    flow = self._active.get(fid)
                    if flow is not None and flow.rate > 0 and flow.slice_eff:
                        horizon = min(
                            horizon,
                            (flow.remaining - flow.slice_next) / flow.rate,
                        )
            if horizon == float("inf"):  # pragma: no cover - defensive
                raise RuntimeError("active flows but no positive rate")

            if now + horizon > now:
                break
            # Float-precision guard: the nearest completion is too close to
            # advance the clock (remaining bytes are sub-epsilon relative to
            # the current timestamp). Without this, the timer would re-arm
            # at the same instant forever. Zero those flows and loop.
            for flow in self._active.values():
                if flow.rate > 0 and now + flow.remaining / flow.rate <= now:
                    self._zero_remaining(flow)
            for fid in self._locked:
                # Same guard for slice boundaries: a grain too fine to
                # advance the clock degrades the flow to unsliced.
                flow = self._active.get(fid)
                if (
                    flow is not None
                    and flow.slice_eff is not None
                    and flow.rate > 0
                    and now + (flow.remaining - flow.slice_next) / flow.rate
                    <= now
                ):
                    flow.slice_eff = None
                    self._sliced_count -= 1
                    self._solver_dirty = True  # re-solve without the lock

        version = self._timer_version
        timer = self.env.timeout(horizon)
        timer.callbacks.append(lambda _ev, v=version: self._on_timer(v))

    def _on_timer(self, version: int) -> None:
        if version != self._timer_version:
            return  # superseded by a more recent flow start/finish
        self._drain()
        self._rerate()

    def _finish(self, flow: Flow) -> None:
        """Deliver the completion event after the route's one-way latency."""
        record = FlowRecord(
            fid=flow.fid,
            src=flow.src,
            dst=flow.dst,
            size=flow.size,
            tag=flow.tag,
            start_time=flow.start_time,
            end_time=self.env.now + flow.latency,
        )
        if self.keep_records:
            if (
                self.max_records is not None
                and len(self.records) >= self.max_records
            ):
                self._count("netsim.records_dropped")
            self.records.append(record)
        if flow.latency > 0:
            timer = self.env.timeout(flow.latency)
            timer.callbacks.append(
                lambda _ev: flow.done.succeed(record, priority=URGENT)
            )
        else:
            flow.done.succeed(record, priority=URGENT)


__all__ = ["Network"]
