"""The Network facade: event-driven fluid-flow transfer scheduling.

Whenever a flow starts or finishes, the scheduler (1) *drains* all active
flows by their current rates over the elapsed interval, (2) recomputes
max–min fair rates, and (3) schedules a wake-up at the earliest projected
completion. Wake-ups are versioned so a superseded timer is ignored rather
than cancelled (the kernel has no cancellation primitive — versioning is
cheaper and deterministic).
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.netsim.fairshare import max_min_fair_rates
from repro.netsim.flows import Flow, FlowRecord
from repro.netsim.links import Link
from repro.netsim.topology import StarTopology
from repro.simcore.environment import Environment
from repro.simcore.events import Event
from repro.simcore.priority import URGENT

#: Flows with fewer remaining effective bytes than this are complete.
_BYTE_EPS = 1e-6


class Network:
    """Transfer scheduler over a topology.

    Parameters
    ----------
    env:
        Simulation environment (clock source and event queue).
    topology:
        Any object exposing ``route``, ``route_latency``, ``route_loss`` and
        ``links`` (see :class:`~repro.netsim.topology.StarTopology`).
    keep_records:
        If True (default), completed transfers are appended to
        :attr:`records` for post-hoc analysis (BST breakdowns, Fig. 1/2
        timelines).
    """

    def __init__(self, env: Environment, topology: StarTopology, keep_records: bool = True) -> None:
        self.env = env
        self.topology = topology
        self.keep_records = keep_records
        self.records: list[FlowRecord] = []
        self._active: dict[int, Flow] = {}
        self._next_fid = 0
        self._last_update = env.now
        self._timer_version = 0
        self._capacities = {l.name: l.bandwidth for l in topology.links}
        self._links_by_name = {l.name: l for l in topology.links}

    # ------------------------------------------------------------------ API
    @property
    def active_flows(self) -> list[Flow]:
        """Snapshot of in-flight flows (ordered by flow id)."""
        return [self._active[fid] for fid in sorted(self._active)]

    def transfer(self, src, dst, size: float, tag: Any = None) -> Event:
        """Start a transfer of ``size`` payload bytes from ``src`` to ``dst``.

        Returns an event that succeeds with a :class:`FlowRecord` when the
        last byte arrives (serialisation under fair sharing + route latency).
        Loopback (``src == dst``) completes after zero time at the same
        instant, modelling co-located PS communication through shared memory.
        """
        if size < 0:
            raise ValueError(f"negative transfer size {size}")
        route = tuple(self.topology.route(src, dst))
        latency = self.topology.route_latency(src, dst)
        loss = self.topology.route_loss(src, dst)
        done = Event(self.env)
        fid = self._next_fid
        self._next_fid += 1

        flow = Flow(
            fid=fid,
            src=src,
            dst=dst,
            size=float(size),
            remaining=float(size) * (1.0 + loss),
            route=route,
            latency=latency,
            done=done,
            tag=tag,
            start_time=self.env.now,
        )

        if not route or flow.remaining <= _BYTE_EPS:
            # Loopback or empty payload: only latency applies.
            self._finish(flow)
            return done

        self._drain()
        self._active[fid] = flow
        tr = self.env.tracer
        if tr:
            tr.gauge_delta("obs.net.inflight_bytes", flow.size)
            tr.gauge_delta("obs.net.active_flows", 1)
        self._rerate()
        return done

    def transfer_process(self, src, dst, size: float, tag: Any = None):
        """Generator wrapper so callers can ``yield from`` a transfer."""
        record = yield self.transfer(src, dst, size, tag=tag)
        return record

    def bulk_time(self, src, dst, size: float) -> float:
        """Analytic duration of a *lone* transfer (no contention).

        Useful for closed-form expectations in tests and for the paper's
        Eq. 5 upper-bound computation.
        """
        route = self.topology.route(src, dst)
        latency = self.topology.route_latency(src, dst)
        if not route or size <= 0:
            return latency
        loss = self.topology.route_loss(src, dst)
        bottleneck = min(l.bandwidth for l in route)
        return size * (1.0 + loss) / bottleneck + latency

    def link_utilization(self, name: str) -> float:
        """Average utilisation of link ``name`` since t=0."""
        link = self._links_by_name[name]
        return link.utilization(self.env.now)

    def refresh_capacities(self) -> None:
        """Re-read link bandwidths after a fault changed them.

        Drains active flows at their old rates up to *now*, rebuilds the
        capacity map from the links' effective bandwidths, and re-runs the
        fair-share allocation — so a bandwidth dip/flap immediately slows
        (or a clear immediately speeds up) in-flight transfers. Loss-rate
        changes, by contrast, only affect flows started after the change:
        retransmission inflation is sampled at flow start.
        """
        self._drain()
        self._capacities = {l.name: l.bandwidth for l in self.topology.links}
        self._rerate()

    # ------------------------------------------------------------ internals
    def _drain(self) -> None:
        """Advance all active flows to the current instant."""
        now = self.env.now
        dt = now - self._last_update
        if dt > 0:
            for flow in self._active.values():
                moved = flow.rate * dt
                if moved > 0:
                    flow.remaining = max(0.0, flow.remaining - moved)
                    for link in flow.route:
                        link.bytes_carried += moved
        self._last_update = now

    def _rerate(self) -> None:
        """Recompute fair rates, complete drained flows, arm the next timer."""
        now = self.env.now
        while True:
            # Complete flows that have fully drained.
            finished = [
                f for f in self._active.values() if f.remaining <= _BYTE_EPS
            ]
            tr = self.env.tracer
            for flow in finished:
                del self._active[flow.fid]
                if tr:
                    tr.gauge_delta("obs.net.inflight_bytes", -flow.size)
                    tr.gauge_delta("obs.net.active_flows", -1)
                self._finish(flow)

            self._timer_version += 1
            if not self._active:
                return

            routes = {
                fid: [l.name for l in f.route]
                for fid, f in sorted(self._active.items())
            }
            rates = max_min_fair_rates(routes, self._capacities)
            horizon = float("inf")
            for fid, flow in self._active.items():
                flow.rate = rates[fid]
                if flow.rate > 0:
                    horizon = min(horizon, flow.remaining / flow.rate)
            if horizon == float("inf"):  # pragma: no cover - defensive
                raise RuntimeError("active flows but no positive rate")

            if now + horizon > now:
                break
            # Float-precision guard: the nearest completion is too close to
            # advance the clock (remaining bytes are sub-epsilon relative to
            # the current timestamp). Without this, the timer would re-arm
            # at the same instant forever. Zero those flows and loop.
            for flow in self._active.values():
                if flow.rate > 0 and now + flow.remaining / flow.rate <= now:
                    flow.remaining = 0.0

        version = self._timer_version
        timer = self.env.timeout(horizon)
        timer.callbacks.append(lambda _ev, v=version: self._on_timer(v))

    def _on_timer(self, version: int) -> None:
        if version != self._timer_version:
            return  # superseded by a more recent flow start/finish
        self._drain()
        self._rerate()

    def _finish(self, flow: Flow) -> None:
        """Deliver the completion event after the route's one-way latency."""
        record = FlowRecord(
            fid=flow.fid,
            src=flow.src,
            dst=flow.dst,
            size=flow.size,
            tag=flow.tag,
            start_time=flow.start_time,
            end_time=self.env.now + flow.latency,
        )
        if self.keep_records:
            self.records.append(record)
        if flow.latency > 0:
            timer = self.env.timeout(flow.latency)
            timer.callbacks.append(
                lambda _ev: flow.done.succeed(record, priority=URGENT)
            )
        else:
            flow.done.succeed(record, priority=URGENT)


__all__ = ["Network"]
