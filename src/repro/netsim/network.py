"""The Network facade: event-driven fluid-flow transfer scheduling.

Whenever a flow starts or finishes, the scheduler (1) *drains* all active
flows by their current rates over the elapsed interval, (2) recomputes
max–min fair rates, and (3) schedules a wake-up at the earliest projected
completion. Wake-ups are versioned so a superseded timer is ignored rather
than cancelled (the kernel has no cancellation primitive — versioning is
cheaper and deterministic).

Scaling machinery (default; ``REPRO_FAIRSHARE=legacy`` disables all of it
and restores the one-recompute-per-event reference path):

* **Coalesced rerates** — flow starts batch same-instant work into a single
  fair-share recompute via :meth:`Environment.defer` instead of re-solving
  once per ``transfer()``. Virtual-time outcomes are unchanged: no bytes
  move within an instant, intermediate allocations are unobservable, and
  the coalesced solve sees exactly the flow set the last per-event solve
  would have seen.
* **Decoupled-delta skipping** — when every flow added/removed since the
  last solve rides links carrying no *other* flow, the surviving rates are
  provably unchanged and a new flow's rate is exactly the min capacity on
  its route, so the solver is skipped outright (``netsim.rerate_skipped``).
* **Vectorized drain** — ``remaining``/``rate`` live in parallel numpy
  arrays keyed by a stable per-flow slot; per-link ``bytes_carried`` is
  accumulated with ``np.bincount``. Per-flow remaining values are
  bit-identical to the scalar loop (elementwise IEEE ops, no
  reassociation); per-link byte totals may differ from the scalar loop
  only in float summation order, which every consumer (utilization
  reports, conservation monitor) already reads with a tolerance.
* **Route caching** — interned ``(route, link-name tuple)`` per (src, dst),
  so the solver never rebuilds name lists and topologies are only asked to
  route each pair once. Topologies are static by contract (fault windows
  change link *attributes*, never the link set or routes).

``stats`` tracks the ``netsim.*`` counters registered in
:mod:`repro.obs.registry`; when a :class:`~repro.metrics.recorder.Recorder`
is attached (the trainer does) they are mirrored there for summaries and
checkpoints. Replay streams exclude the ``netsim.`` namespace: the two
solver modes intentionally differ in how *often* they recompute, not in
what they compute.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterable, Optional

import numpy as np

from repro.netsim.fairshare import fairshare_mode, fast_fair_rates, max_min_fair_rates
from repro.netsim.flows import Flow, FlowRecord
from repro.netsim.links import Link
from repro.netsim.topology import StarTopology
from repro.simcore.environment import Environment
from repro.simcore.events import Event
from repro.simcore.priority import URGENT

#: Flows with fewer remaining effective bytes than this are complete.
_BYTE_EPS = 1e-6


class Network:
    """Transfer scheduler over a topology.

    Parameters
    ----------
    env:
        Simulation environment (clock source and event queue).
    topology:
        Any object exposing ``route``, ``route_latency``, ``route_loss`` and
        ``links`` (see :class:`~repro.netsim.topology.StarTopology`).
    keep_records:
        If True (default), completed transfers are appended to
        :attr:`records` for post-hoc analysis (BST breakdowns, Fig. 1/2
        timelines).
    max_records:
        Optional cap on :attr:`records`. When set, the newest
        ``max_records`` records are kept (keep-latest ring) and each drop
        increments the ``netsim.records_dropped`` counter — long
        elastic/fault runs with records enabled stay memory-bounded.
    """

    def __init__(
        self,
        env: Environment,
        topology: StarTopology,
        keep_records: bool = True,
        max_records: Optional[int] = None,
    ) -> None:
        self.env = env
        self.topology = topology
        self.keep_records = keep_records
        self.max_records = max_records
        if keep_records and max_records is not None:
            self.records = deque(maxlen=max_records)
        else:
            self.records: list[FlowRecord] = []
        #: Optional Recorder mirror for the ``netsim.*`` counters in
        #: :attr:`stats` (the trainer attaches its recorder).
        self.recorder = None
        #: Scheduler work counters (see repro.obs.registry COUNTERS).
        self.stats: dict[str, int] = {
            "netsim.rerates": 0,
            "netsim.rerate_skipped": 0,
            "netsim.fairshare_calls": 0,
            "netsim.records_dropped": 0,
        }
        self._active: dict[int, Flow] = {}
        self._next_fid = 0
        self._last_update = env.now
        self._timer_version = 0
        self._capacities = {l.name: l.bandwidth for l in topology.links}
        self._links_by_name = {l.name: l for l in topology.links}

        self._fast = fairshare_mode() == "fast"
        self._route_cache: dict[tuple, tuple[tuple[Link, ...], tuple[str, ...]]] = {}
        #: active-flow count per link name (decoupling detector).
        self._link_load: dict[str, int] = {}
        #: True while a coalesced rerate is armed for the current instant.
        self._pending = False
        #: fids added since the last rate assignment.
        self._pending_new: list[int] = []
        #: True while every active flow's rate matches a full solve over the
        #: current flow set and capacities (trivially true when empty).
        self._rated = True
        #: set when a non-decoupled add/remove or a capacity change forces
        #: the next rerate through the solver.
        self._solver_dirty = False
        #: Persistent fid -> route-name-tuple map for the fast solver. fids
        #: are handed out in increasing order and never reused, so dict
        #: insertion order *is* sorted-fid order — the exact map the legacy
        #: path rebuilds (and sorts) from scratch on every solve.
        self._solver_routes: dict[int, tuple[str, ...]] = {}

        # -- vectorized drain plane (fast mode, 2-link routes only) --------
        self._links_seq: list[Link] = list(topology.links)
        self._n_links = len(self._links_seq)
        self._link_index = {l.name: i for i, l in enumerate(self._links_seq)}
        self._vector_ok = True
        self._slot_of: dict[int, int] = {}
        self._slot_flow: list[Optional[Flow]] = []
        self._free_slots: list[int] = []
        self._arr_remaining = np.zeros(0)
        self._arr_rate = np.zeros(0)
        self._arr_links = np.zeros((0, 2), dtype=np.intp)
        self._act_dirty = True
        self._act_list: list[int] = []
        self._act_arr = np.zeros(0, dtype=np.intp)

    # ------------------------------------------------------------------ API
    @property
    def active_flows(self) -> list[Flow]:
        """Snapshot of in-flight flows (ordered by flow id)."""
        return [self._active[fid] for fid in sorted(self._active)]

    def transfer(self, src, dst, size: float, tag: Any = None) -> Event:
        """Start a transfer of ``size`` payload bytes from ``src`` to ``dst``.

        Returns an event that succeeds with a :class:`FlowRecord` when the
        last byte arrives (serialisation under fair sharing + route latency).
        Loopback (``src == dst``) completes after zero time at the same
        instant, modelling co-located PS communication through shared memory.
        """
        if size < 0:
            raise ValueError(f"negative transfer size {size}")
        cached = self._route_cache.get((src, dst))
        if cached is None:
            route = tuple(self.topology.route(src, dst))
            cached = (route, tuple(l.name for l in route))
            self._route_cache[(src, dst)] = cached
        route, names = cached
        # Latency/loss are *live* reads (fault windows move them); computed
        # over the cached route with the same folds the topologies use.
        latency = 0.0
        keep = 1.0
        for link in route:
            latency += link.spec.latency
            keep *= 1.0 - link.loss_rate
        loss = 1.0 - keep
        done = Event(self.env)
        fid = self._next_fid
        self._next_fid += 1

        flow = Flow(
            fid=fid,
            src=src,
            dst=dst,
            size=float(size),
            remaining=float(size) * (1.0 + loss),
            route=route,
            latency=latency,
            done=done,
            tag=tag,
            start_time=self.env.now,
            names=names,
        )

        if not route or flow.remaining <= _BYTE_EPS:
            # Loopback or empty payload: only latency applies.
            self._finish(flow)
            return done

        self._drain()
        self._register(flow)
        tr = self.env.tracer
        if tr:
            tr.gauge_delta("obs.net.inflight_bytes", flow.size)
            tr.gauge_delta("obs.net.active_flows", 1)
        if self._fast:
            self._schedule_rerate()
        else:
            self._rerate()
        return done

    def transfer_process(self, src, dst, size: float, tag: Any = None):
        """Generator wrapper so callers can ``yield from`` a transfer."""
        record = yield self.transfer(src, dst, size, tag=tag)
        return record

    def bulk_time(self, src, dst, size: float) -> float:
        """Analytic duration of a *lone* transfer (no contention).

        Useful for closed-form expectations in tests and for the paper's
        Eq. 5 upper-bound computation.
        """
        route = self.topology.route(src, dst)
        latency = self.topology.route_latency(src, dst)
        if not route or size <= 0:
            return latency
        loss = self.topology.route_loss(src, dst)
        bottleneck = min(l.bandwidth for l in route)
        return size * (1.0 + loss) / bottleneck + latency

    def link_utilization(self, name: str) -> float:
        """Average utilisation of link ``name`` since t=0."""
        link = self._links_by_name[name]
        return link.utilization(self.env.now)

    def refresh_capacities(self) -> None:
        """Re-read link bandwidths after a fault changed them.

        Drains active flows at their old rates up to *now*, rebuilds the
        capacity map from the links' effective bandwidths, and re-runs the
        fair-share allocation — so a bandwidth dip/flap immediately slows
        (or a clear immediately speeds up) in-flight transfers. Loss-rate
        changes, by contrast, only affect flows started after the change:
        retransmission inflation is sampled at flow start.
        """
        self._drain()
        self._capacities = {l.name: l.bandwidth for l in self.topology.links}
        self._solver_dirty = True  # cached allocations assume old capacities
        self._rerate()

    # ------------------------------------------------------------ internals
    def _count(self, name: str, n: int = 1) -> None:
        self.stats[name] += n
        if self.recorder is not None:
            self.recorder.incr(name, n)

    def _register(self, flow: Flow) -> None:
        """Add a flow to the active set and every bookkeeping plane."""
        self._active[flow.fid] = flow
        self._pending_new.append(flow.fid)
        self._solver_routes[flow.fid] = flow.names
        load = self._link_load
        for name in set(flow.names):
            n = load.get(name, 0)
            load[name] = n + 1
            if n > 0:
                self._solver_dirty = True  # couples with an existing flow
        if self._fast:
            slot = self._alloc_slot(flow)
            self._arr_remaining[slot] = flow.remaining
            self._arr_rate[slot] = 0.0
            if self._vector_ok:
                if len(flow.names) == 2:
                    self._arr_links[slot, 0] = self._link_index[flow.names[0]]
                    self._arr_links[slot, 1] = self._link_index[flow.names[1]]
                else:
                    self._vector_ok = False
            self._act_dirty = True

    def _retire(self, flow: Flow, tr) -> None:
        """Remove a finished flow from every bookkeeping plane."""
        del self._active[flow.fid]
        del self._solver_routes[flow.fid]
        if tr:
            tr.gauge_delta("obs.net.inflight_bytes", -flow.size)
            tr.gauge_delta("obs.net.active_flows", -1)
        load = self._link_load
        for name in set(flow.names):
            n = load[name] - 1
            load[name] = n
            if n > 0:
                self._solver_dirty = True  # survivors on this link speed up
        slot = self._slot_of.pop(flow.fid, None)
        if slot is not None:
            self._slot_flow[slot] = None
            self._free_slots.append(slot)
            self._act_dirty = True
        self._finish(flow)

    def _alloc_slot(self, flow: Flow) -> int:
        if self._free_slots:
            slot = self._free_slots.pop()
            self._slot_flow[slot] = flow
        else:
            slot = len(self._slot_flow)
            self._slot_flow.append(flow)
            if slot >= self._arr_remaining.size:
                new_cap = max(64, 2 * self._arr_remaining.size)
                for attr in ("_arr_remaining", "_arr_rate"):
                    old = getattr(self, attr)
                    grown = np.zeros(new_cap)
                    grown[: old.size] = old
                    setattr(self, attr, grown)
                old_links = self._arr_links
                grown_links = np.zeros((new_cap, 2), dtype=np.intp)
                grown_links[: old_links.shape[0]] = old_links
                self._arr_links = grown_links
        self._slot_of[flow.fid] = slot
        return slot

    def _act_slots(self) -> np.ndarray:
        """Slot indices of active flows (insertion order), cached."""
        if self._act_dirty:
            self._act_list = [self._slot_of[fid] for fid in self._active]
            self._act_arr = np.array(self._act_list, dtype=np.intp)
            self._act_dirty = False
        return self._act_arr

    def _drain(self) -> None:
        """Advance all active flows to the current instant."""
        now = self.env.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0 or not self._active:
            return
        if self._fast and self._vector_ok:
            act = self._act_slots()
            rem = self._arr_remaining[act]
            moved = self._arr_rate[act] * dt
            # Elementwise, so bit-identical to the scalar loop per flow.
            new_rem = np.where(moved > 0.0, np.maximum(0.0, rem - moved), rem)
            self._arr_remaining[act] = new_rem
            per_link = np.bincount(
                self._arr_links[act].ravel(),
                weights=np.repeat(moved, 2),
                minlength=self._n_links,
            )
            links = self._links_seq
            for idx in np.flatnonzero(per_link):
                links[idx].bytes_carried += per_link[idx]
            slot_flow = self._slot_flow
            for i, slot in enumerate(self._act_list):
                slot_flow[slot].remaining = new_rem[i]
            return
        for flow in self._active.values():
            moved = flow.rate * dt
            if moved > 0:
                flow.remaining = max(0.0, flow.remaining - moved)
                for link in flow.route:
                    link.bytes_carried += moved

    def _schedule_rerate(self) -> None:
        """Arm (at most) one coalesced rerate for the current instant."""
        if self._pending:
            return
        self._pending = True
        self.env.defer(self._on_deferred_rerate)

    def _on_deferred_rerate(self) -> None:
        if not self._pending:
            return  # an immediate rerate (timer/fault refresh) covered it
        self._drain()
        self._rerate()

    def _set_rate(self, flow: Flow, rate: float) -> None:
        flow.rate = rate
        if self._fast:
            self._arr_rate[self._slot_of[flow.fid]] = rate

    def _zero_remaining(self, flow: Flow) -> None:
        flow.remaining = 0.0
        if self._fast:
            slot = self._slot_of.get(flow.fid)
            if slot is not None:
                self._arr_remaining[slot] = 0.0

    def _rerate(self) -> None:
        """Recompute fair rates, complete drained flows, arm the next timer."""
        now = self.env.now
        self._pending = False
        self._count("netsim.rerates")
        tr = self.env.tracer
        while True:
            # Complete flows that have fully drained.
            finished = [
                f for f in self._active.values() if f.remaining <= _BYTE_EPS
            ]
            for flow in finished:
                self._retire(flow, tr)

            self._timer_version += 1
            if not self._active:
                self._pending_new.clear()
                return

            if self._fast and self._rated and not self._solver_dirty:
                # Every change since the last solve is decoupled: survivors
                # keep their rates; each new flow is alone on its links, so
                # its fair share is exactly its route's min capacity.
                for fid in self._pending_new:
                    flow = self._active.get(fid)
                    if flow is not None:
                        self._set_rate(
                            flow,
                            min(self._capacities[n] for n in set(flow.names)),
                        )
                self._count("netsim.rerate_skipped")
            elif self._fast:
                rates = fast_fair_rates(
                    self._solver_routes, self._capacities, validate=False
                )
                self._count("netsim.fairshare_calls")
                arr_rate = self._arr_rate
                slot_of = self._slot_of
                for fid, flow in self._active.items():
                    rate = rates[fid]
                    flow.rate = rate
                    arr_rate[slot_of[fid]] = rate
                self._solver_dirty = False
                self._rated = True
            else:
                routes = {
                    fid: [l.name for l in f.route]
                    for fid, f in sorted(self._active.items())
                }
                rates = max_min_fair_rates(routes, self._capacities)
                self._count("netsim.fairshare_calls")
                for fid, flow in self._active.items():
                    self._set_rate(flow, rates[fid])
                self._solver_dirty = False
                self._rated = True
            self._pending_new.clear()

            if self._fast and self._vector_ok:
                act = self._act_slots()
                rate_a = self._arr_rate[act]
                rem_a = self._arr_remaining[act]
                pos = rate_a > 0.0
                horizon = (
                    float(np.min(rem_a[pos] / rate_a[pos]))
                    if pos.any()
                    else float("inf")
                )
            else:
                horizon = float("inf")
                for flow in self._active.values():
                    if flow.rate > 0:
                        horizon = min(horizon, flow.remaining / flow.rate)
            if horizon == float("inf"):  # pragma: no cover - defensive
                raise RuntimeError("active flows but no positive rate")

            if now + horizon > now:
                break
            # Float-precision guard: the nearest completion is too close to
            # advance the clock (remaining bytes are sub-epsilon relative to
            # the current timestamp). Without this, the timer would re-arm
            # at the same instant forever. Zero those flows and loop.
            for flow in self._active.values():
                if flow.rate > 0 and now + flow.remaining / flow.rate <= now:
                    self._zero_remaining(flow)

        version = self._timer_version
        timer = self.env.timeout(horizon)
        timer.callbacks.append(lambda _ev, v=version: self._on_timer(v))

    def _on_timer(self, version: int) -> None:
        if version != self._timer_version:
            return  # superseded by a more recent flow start/finish
        self._drain()
        self._rerate()

    def _finish(self, flow: Flow) -> None:
        """Deliver the completion event after the route's one-way latency."""
        record = FlowRecord(
            fid=flow.fid,
            src=flow.src,
            dst=flow.dst,
            size=flow.size,
            tag=flow.tag,
            start_time=flow.start_time,
            end_time=self.env.now + flow.latency,
        )
        if self.keep_records:
            if (
                self.max_records is not None
                and len(self.records) >= self.max_records
            ):
                self._count("netsim.records_dropped")
            self.records.append(record)
        if flow.latency > 0:
            timer = self.env.timeout(flow.latency)
            timer.callbacks.append(
                lambda _ev: flow.done.succeed(record, priority=URGENT)
            )
        else:
            flow.done.succeed(record, priority=URGENT)


__all__ = ["Network"]
