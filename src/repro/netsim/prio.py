"""Transmission priority classes for the fluid-flow scheduler.

OSP's protocol stages have sharply different latency sensitivity: the RS
stage is barrier-closed (every worker waits on it), the GIB bitmap
broadcast gates the *next* round's classification, while ICS rounds and
injected background tenants are explicitly off the critical path (PAPER
§3, Fig. 5). P3 (Jayarajan et al., MLSys'19) showed that class- and
slice-based transmission scheduling recovers exactly the overlap a
FIFO/fair-shared fabric loses. This module defines the class lattice the
:class:`~repro.netsim.network.Network` scheduler uses:

=========  =====  =============================================
class      value  canonical traffic
=========  =====  =============================================
URGENT       3    GIB bitmap broadcasts (tiny, gates a round)
HIGH         2    RS push/pull (barrier-closed important grads)
NORMAL       1    unclassified traffic (the default)
BULK         0    ICS rounds, background/cross-tenant load
=========  =====  =============================================

Scheduling is strict-priority *per link*: a higher class starves lower
classes on every link they share; flows of equal class keep today's
(weighted) max–min semantics. When every active flow is in one class —
any class — the allocation degenerates to the plain solver and is
bit-identical to the pre-priority scheduler.

``REPRO_NETPRIO=off`` (or ``0``) is the kill-switch, mirroring the
``REPRO_FLAT_ARENA`` / ``REPRO_FAIRSHARE`` convention: the Network then
coerces every flow to NORMAL at admission and the scheduler is
byte-for-byte the PR 7 core.
"""

from __future__ import annotations

import os

#: Strict-priority class values — higher value preempts lower per link.
PRIO_URGENT = 3
PRIO_HIGH = 2
PRIO_NORMAL = 1
PRIO_BULK = 0

#: Class value -> short name (counter suffixes, docs, dashboards).
CLASS_NAMES = {
    PRIO_URGENT: "urgent",
    PRIO_HIGH: "high",
    PRIO_NORMAL: "normal",
    PRIO_BULK: "bulk",
}

#: DRR-style per-class weights used *within* a class solve when a caller
#: overrides flow weights (``Network.transfer(..., weight=)``); between
#: classes scheduling is strict priority, so these defaults only name the
#: unit weight every flow starts with.
DEFAULT_CLASS_WEIGHTS = {
    PRIO_URGENT: 1.0,
    PRIO_HIGH: 1.0,
    PRIO_NORMAL: 1.0,
    PRIO_BULK: 1.0,
}


def netprio_enabled() -> bool:
    """Whether the priority scheduler is active (default: yes).

    Controlled by the ``REPRO_NETPRIO`` environment variable; ``off`` or
    ``0`` disables it. Read at Network construction so scoped overrides
    (benchmarks, differential tests) work per run.
    """
    return os.environ.get("REPRO_NETPRIO", "").strip().lower() not in ("off", "0")


__all__ = [
    "CLASS_NAMES",
    "DEFAULT_CLASS_WEIGHTS",
    "PRIO_BULK",
    "PRIO_HIGH",
    "PRIO_NORMAL",
    "PRIO_URGENT",
    "netprio_enabled",
]
