"""Topologies: which links a flow crosses.

The paper's testbed is a single rack: every node hangs off one ToR switch
with a non-blocking backplane, so a flow ``src → dst`` crosses exactly two
links — ``src``'s uplink and ``dst``'s downlink. :class:`StarTopology`
models this, with optional per-node heterogeneous link specs (§6.2
communication heterogeneity).

For generality (multi-rack studies), :class:`GraphTopology` routes over an
arbitrary ``networkx`` digraph by shortest path.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import networkx as nx

from repro.netsim.links import Link, LinkSpec

#: Pseudo-node id for the switch in :class:`GraphTopology` graphs.
SWITCH = "switch"


class StarTopology:
    """Single-switch rack: node *i* has directed links ``up:i`` and ``down:i``.

    Parameters
    ----------
    n_nodes:
        Number of hosts.
    default_spec:
        Link spec used for every link unless overridden.
    overrides:
        Optional map ``node_id -> LinkSpec`` applying to both of that node's
        links (models communication heterogeneity).
    """

    def __init__(
        self,
        n_nodes: int,
        default_spec: LinkSpec | None = None,
        overrides: Mapping[int, LinkSpec] | None = None,
    ) -> None:
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        self.n_nodes = int(n_nodes)
        self.default_spec = default_spec or LinkSpec()
        overrides = dict(overrides or {})
        for nid in overrides:
            if not (0 <= nid < n_nodes):
                raise ValueError(f"override for unknown node {nid}")
        self.uplinks: list[Link] = []
        self.downlinks: list[Link] = []
        for i in range(self.n_nodes):
            spec = overrides.get(i, self.default_spec)
            self.uplinks.append(Link(f"up:{i}", spec))
            self.downlinks.append(Link(f"down:{i}", spec))

    @property
    def links(self) -> list[Link]:
        """All links (uplinks then downlinks), deterministic order."""
        return self.uplinks + self.downlinks

    def route(self, src: int, dst: int) -> list[Link]:
        """Links crossed by a flow src→dst (empty for loopback)."""
        self._check(src)
        self._check(dst)
        if src == dst:
            return []  # loopback: co-located PS talks to itself for free
        return [self.uplinks[src], self.downlinks[dst]]

    def route_latency(self, src: int, dst: int) -> float:
        """One-way latency of the route in seconds."""
        return sum(l.spec.latency for l in self.route(src, dst))

    def route_loss(self, src: int, dst: int) -> float:
        """Combined loss rate of the route: 1 − Π(1 − p_link).

        Uses the links' *effective* loss (spec loss compounded with any
        active fault bursts), sampled at flow-start time.
        """
        keep = 1.0
        for l in self.route(src, dst):
            keep *= 1.0 - l.loss_rate
        return 1.0 - keep

    def _check(self, nid: int) -> None:
        if not (0 <= nid < self.n_nodes):
            raise ValueError(f"node {nid} out of range [0,{self.n_nodes})")


def make_multirack_topology(
    n_nodes: int,
    n_racks: int,
    default_spec: LinkSpec | None = None,
    oversubscription: float = 4.0,
) -> "GraphTopology":
    """Multi-rack fat-tree-lite: racks of hosts under ToR switches joined
    by a core switch whose rack uplinks are oversubscribed.

    Hosts are numbered round-robin across racks (host *i* sits in rack
    ``i % n_racks``), so a worker range 0..N−1 plus a PS node N spreads
    evenly. Each ToR↔core link carries the rack's aggregate bandwidth
    divided by ``oversubscription`` — the classic datacenter cost saving
    that makes cross-rack training traffic expensive.
    """
    if n_racks < 1:
        raise ValueError(f"n_racks must be >= 1, got {n_racks}")
    if n_nodes < n_racks:
        raise ValueError(f"need at least one host per rack ({n_racks})")
    if oversubscription < 1.0:
        raise ValueError(f"oversubscription must be >= 1, got {oversubscription}")
    spec = default_spec or LinkSpec()
    g = nx.DiGraph()
    hosts_per_rack = [0] * n_racks
    for host in range(n_nodes):
        rack = host % n_racks
        hosts_per_rack[rack] += 1
        tor = f"tor{rack}"
        g.add_edge(host, tor, spec=spec)
        g.add_edge(tor, host, spec=spec)
    for rack in range(n_racks):
        up_bw = spec.bandwidth * hosts_per_rack[rack] / oversubscription
        core_spec = LinkSpec(
            bandwidth=up_bw, latency=spec.latency, loss_rate=spec.loss_rate
        )
        g.add_edge(f"tor{rack}", "core", spec=core_spec)
        g.add_edge("core", f"tor{rack}", spec=core_spec)
    return GraphTopology(g)


class GraphTopology:
    """Arbitrary topology over a ``networkx.DiGraph``.

    Each edge must carry a ``spec`` attribute (:class:`LinkSpec`). Routes are
    shortest paths by hop count (deterministic tie-break via sorted
    neighbours).
    """

    def __init__(self, graph: nx.DiGraph) -> None:
        if not isinstance(graph, nx.DiGraph):
            raise TypeError("GraphTopology requires a networkx.DiGraph")
        self.graph = graph
        self._links: dict[tuple, Link] = {}
        for u, v, data in sorted(graph.edges(data=True), key=lambda e: (str(e[0]), str(e[1]))):
            spec = data.get("spec")
            if not isinstance(spec, LinkSpec):
                raise ValueError(f"edge ({u},{v}) missing LinkSpec 'spec' attribute")
            self._links[(u, v)] = Link(f"{u}->{v}", spec)

    @property
    def links(self) -> list[Link]:
        """All links in deterministic (sorted-edge) order."""
        return list(self._links.values())

    def route(self, src, dst) -> list[Link]:
        """Links along the shortest src→dst path."""
        if src == dst:
            return []
        try:
            path: Sequence = nx.shortest_path(self.graph, src, dst)
        except nx.NetworkXNoPath as exc:
            raise ValueError(f"no route {src} -> {dst}") from exc
        return [self._links[(path[i], path[i + 1])] for i in range(len(path) - 1)]

    def route_latency(self, src, dst) -> float:
        """One-way latency of the route in seconds."""
        return sum(l.spec.latency for l in self.route(src, dst))

    def route_loss(self, src, dst) -> float:
        """Combined route loss rate (effective, fault-aware)."""
        keep = 1.0
        for l in self.route(src, dst):
            keep *= 1.0 - l.loss_rate
        return 1.0 - keep


__all__ = ["GraphTopology", "StarTopology", "SWITCH", "make_multirack_topology"]
