"""Chrome-tracing export for simulation runs.

Converts flow records and iteration records into the Trace Event Format
(the JSON consumed by ``chrome://tracing`` / Perfetto), so a simulated
training run can be inspected on a real timeline UI: one row per node for
transfers, one row per worker for compute/sync phases.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Union

from repro.metrics.recorder import IterationRecord
from repro.netsim.flows import FlowRecord

#: Trace timestamps are microseconds.
_US = 1e6


def _tag_args(tag) -> dict:
    """Structured attribution from the conventional flow-tag tuple
    ``(phase, worker[, iteration])`` used by all sync models."""
    if not (isinstance(tag, tuple) and tag and isinstance(tag[0], str)):
        return {}
    args: dict = {"phase": tag[0]}
    if len(tag) > 1 and isinstance(tag[1], int):
        args["worker"] = tag[1]
    if len(tag) > 2 and isinstance(tag[2], int):
        args["iteration"] = tag[2]
    return args


def flows_to_trace_events(records: Iterable[FlowRecord]) -> list[dict]:
    """One complete ('X') event per flow, on the source node's row."""
    events = []
    for r in records:
        args = {"bytes": r.size, "src": str(r.src), "dst": str(r.dst)}
        args.update(_tag_args(r.tag))
        events.append(
            {
                "name": str(r.tag) if r.tag is not None else f"flow{r.fid}",
                "cat": "network",
                "ph": "X",
                "ts": r.start_time * _US,
                "dur": max(1.0, r.duration * _US),
                "pid": "network",
                "tid": f"node {r.src} -> {r.dst}",
                "args": args,
            }
        )
    return events


def iterations_to_trace_events(records: Iterable[IterationRecord]) -> list[dict]:
    """Two events per iteration: a compute span and a sync span."""
    events = []
    for r in records:
        base = {
            "cat": "training",
            "ph": "X",
            "pid": "workers",
            "tid": f"worker {r.worker}",
        }
        events.append(
            {
                **base,
                "name": f"compute it{r.iteration}",
                "ts": r.start_time * _US,
                "dur": max(1.0, r.compute_time * _US),
                "args": {"loss": r.loss},
            }
        )
        events.append(
            {
                **base,
                "name": f"sync it{r.iteration}",
                "ts": (r.start_time + r.compute_time) * _US,
                "dur": max(1.0, r.sync_time * _US),
                "args": {},
            }
        )
    return events


def write_chrome_trace(
    path: Union[str, Path],
    flow_records: Iterable[FlowRecord] = (),
    iteration_records: Iterable[IterationRecord] = (),
) -> int:
    """Write a combined trace file; returns the number of events."""
    events = flows_to_trace_events(flow_records) + iterations_to_trace_events(
        iteration_records
    )
    events.sort(key=lambda e: (e["ts"], str(e.get("pid", "")), str(e.get("tid", ""))))
    Path(path).write_text(json.dumps({"traceEvents": events}))
    return len(events)


__all__ = [
    "flows_to_trace_events",
    "iterations_to_trace_events",
    "write_chrome_trace",
]
