"""Background (cross-) traffic generators.

Production racks are multi-tenant: training shares the ToR with storage,
logging, and other jobs. These generators inject such cross-traffic as
ordinary flows so the fluid scheduler makes training and background flows
contend realistically — used by the congestion robustness study.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.netsim.network import Network
from repro.netsim.prio import PRIO_BULK
from repro.simcore.environment import Environment


def poisson_background(
    env: Environment,
    network: Network,
    pairs: Sequence[tuple[int, int]],
    mean_interarrival: float,
    mean_size: float,
    rng: np.random.Generator,
    until: float | None = None,
):
    """Generator process: Poisson arrivals of exponential-size flows.

    Each arrival picks a (src, dst) pair uniformly. Returns the number of
    flows injected (available as the process's value). Flows are
    fire-and-forget: their completion events are defused so an unfinished
    flow at simulation end is not an error.

    Parameters
    ----------
    pairs:
        Candidate (src, dst) node pairs.
    mean_interarrival:
        Mean seconds between flow arrivals (exponential).
    mean_size:
        Mean flow size in bytes (exponential).
    until:
        Stop injecting at this virtual time (None = run as long as the
        simulation has other work; the generator stops when interrupted or
        the horizon passes).
    """
    if not pairs:
        raise ValueError("need at least one (src, dst) pair")
    if mean_interarrival <= 0 or mean_size <= 0:
        raise ValueError("mean_interarrival and mean_size must be positive")
    count = 0
    while until is None or env.now < until:
        yield env.timeout(rng.exponential(mean_interarrival))
        if until is not None and env.now >= until:
            break
        src, dst = pairs[int(rng.integers(len(pairs)))]
        size = max(1.0, rng.exponential(mean_size))
        done = network.transfer(
            src, dst, size, tag=("background", count), prio=PRIO_BULK
        )
        done.defused = True
        count += 1
    return count


def constant_background_load(
    env: Environment,
    network: Network,
    src: int,
    dst: int,
    load_fraction: float,
    chunk_seconds: float = 0.1,
    until: float | None = None,
):
    """Generator process: saturate a fraction of the src→dst path.

    Sends back-to-back chunks sized so that, alone, the path would be busy
    ``load_fraction`` of the time — a steady competing tenant. The chunk
    size is derived from the route's *effective* bottleneck bandwidth
    (nominal × fault ``bandwidth_factor``) re-read before every chunk, so
    the tenant tracks its advertised fraction through bandwidth-dip fault
    windows instead of silently overshooting with chunks sized for the
    healthy link.
    """
    if not (0.0 < load_fraction <= 1.0):
        raise ValueError(f"load_fraction must be in (0,1], got {load_fraction}")
    route = network.topology.route(src, dst)
    if not route:
        raise ValueError("background load needs a non-loopback path")
    count = 0
    while until is None or env.now < until:
        bottleneck = min(l.bandwidth for l in route)
        chunk = bottleneck * chunk_seconds * load_fraction
        yield network.transfer(
            src, dst, chunk, tag=("bg-load", count), prio=PRIO_BULK
        )
        count += 1
        idle = chunk_seconds * (1.0 - load_fraction)
        if idle > 0:
            yield env.timeout(idle)
    return count


__all__ = ["constant_background_load", "poisson_background"]
