"""Neural-network library on top of :mod:`repro.autograd`.

Provides the :class:`Module` hierarchy with an ordered, layer-granular
parameter registry — the same granularity OSP's Gradient Importance Bitmap
(GIB) operates on (paper Eq. 4 computes importance per layer).
"""

from repro.nn.module import Module, Parameter, Sequential
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Embedding,
    Flatten,
    GELU,
    LayerNorm,
    Linear,
    MaxPool2d,
    ReLU,
    Tanh,
)
from repro.nn.attention import MultiHeadSelfAttention, TransformerBlock
from repro.nn.loss import (
    accuracy,
    cross_entropy,
    mse_loss,
    qa_span_accuracy,
    qa_span_loss,
)
from repro.nn import init

__all__ = [
    "AvgPool2d",
    "BatchNorm2d",
    "Conv2d",
    "Dropout",
    "Embedding",
    "Flatten",
    "GELU",
    "LayerNorm",
    "Linear",
    "MaxPool2d",
    "Module",
    "MultiHeadSelfAttention",
    "Parameter",
    "ReLU",
    "Sequential",
    "Tanh",
    "TransformerBlock",
    "accuracy",
    "cross_entropy",
    "init",
    "mse_loss",
    "qa_span_accuracy",
    "qa_span_loss",
]
