"""Flat parameter/gradient arena: one contiguous buffer per plane.

The numeric hot path used to move gradients through ``dict[str, ndarray]``
loops (PS weighted averaging, SGD apply, PGP importance, replica sync, LGP
correction) — thousands of tiny numpy calls per simulated iteration. The
arena keeps every parameter of a model in ONE contiguous 1-D float buffer
(a *plane*), with per-parameter shaped views sliced out of it, so those
operations collapse into a handful of vectorized ops over contiguous
slices while every existing name→array Mapping interface keeps working.

Planes
------
* **param plane** — ``ParamArena.flat``; each ``Parameter.data`` is
  repointed to a shaped view into it, so autograd/optimizer writes land in
  the plane automatically.
* **grad plane** — a fresh plane per backward pass (workers can hold
  gradients across overlapping ICS rounds, so planes are not reused);
  exposed as an :class:`ArenaView`.
* **aggregate / velocity planes** — owned by the PS and SGD respectively.

Bit-for-bit parity
------------------
Fast paths are constructed so every element sees the *same sequence of the
same floating-point operations* as the dict path (see
``docs/performance.md`` for the aliasing and parity rules). In particular:
first deposits are written with ``np.multiply(..., out=...)`` assignment
(never ``0.0 + x``, which would flip ``-0.0``), reductions use numpy's
pairwise ``.sum()`` over contiguous slices per parameter (identical to the
dict path's per-array sum), and momentum updates use the in-place form of
``v = momentum * v + g``.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Optional, Sequence

import numpy as np

from repro.autograd.tensor import DEFAULT_DTYPE
from repro.nn.module import Module


def merge_slices(slices: Sequence[slice]) -> list[slice]:
    """Coalesce adjacent/overlapping 1-D slices into maximal runs.

    Input slices must have ``step`` of None/1. Order of the output follows
    the (sorted) start offsets; OSP's layer groups are contiguous in layout
    order, so a GIB half typically merges to a handful of runs.
    """
    if not slices:
        return []
    spans = sorted((s.start, s.stop) for s in slices)
    merged: list[list[int]] = [list(spans[0])]
    for start, stop in spans[1:]:
        if start <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], stop)
        else:
            merged.append([start, stop])
    return [slice(a, b) for a, b in merged]


class ArenaLayout:
    """Shared name→offset map for one model architecture.

    All planes (params, grads, aggregates, velocity) of all replicas of the
    same model share a single layout, so a slice means the same parameters
    in every plane and cross-plane ops need no name translation.
    """

    def __init__(
        self,
        layer_params: Mapping[str, Sequence[str]],
        shapes: Mapping[str, tuple],
    ) -> None:
        self.layer_params = {k: tuple(v) for k, v in layer_params.items()}
        names: list[str] = []
        self.shapes: dict[str, tuple] = {}
        self.name_slices: dict[str, slice] = {}
        self.layer_slices: dict[str, slice] = {}
        offset = 0
        for layer, pnames in self.layer_params.items():
            layer_start = offset
            for name in pnames:
                shape = tuple(shapes[name])
                size = int(np.prod(shape)) if shape else 1
                names.append(name)
                self.shapes[name] = shape
                self.name_slices[name] = slice(offset, offset + size)
                offset += size
            self.layer_slices[layer] = slice(layer_start, offset)
        self.names: tuple[str, ...] = tuple(names)
        self.size = offset
        self._slice_cache: dict[tuple[str, ...], list[slice]] = {}
        self._sum_groups: Optional[tuple[np.ndarray, list]] = None
        self._sum_scratch: Optional[tuple[np.ndarray, np.ndarray]] = None

    @classmethod
    def from_module(cls, module: Module) -> "ArenaLayout":
        """Layout in ``named_parameters()`` order, grouped by leaf layer."""
        from repro.core.splitter import GradientSplitter

        splitter = GradientSplitter.from_module(module)
        shapes = {n: p.data.shape for n, p in module.named_parameters()}
        return cls(splitter.layer_params, shapes)

    def new_plane(self) -> np.ndarray:
        """Fresh zeroed 1-D buffer covering every parameter."""
        return np.zeros(self.size, dtype=DEFAULT_DTYPE)

    def slices_of(self, names: Sequence[str]) -> list[slice]:
        """Merged contiguous runs covering ``names`` (cached)."""
        key = tuple(names)
        out = self._slice_cache.get(key)
        if out is None:
            out = merge_slices([self.name_slices[n] for n in key])
            self._slice_cache[key] = out
        return out

    def sum_groups(self) -> tuple[np.ndarray, list]:
        """Cached machinery for batched per-parameter reductions.

        Returns ``(gather_idx, groups)``: ``gather_idx`` permutes the plane
        so parameters of equal size land adjacent, and each group is
        ``(offset, n_params, size, names)`` — a contiguous
        ``(n_params, size)`` block of the gathered buffer whose
        ``sum(axis=1)`` yields every per-parameter sum of that size class
        in one numpy call. A row-wise axis sum over a contiguous block uses
        the same pairwise reduction as a 1-D ``.sum()`` of the original
        slice, so results are bit-identical to summing each parameter
        separately (the dict path's operation).

        Size classes with a single member skip the gather (their slice is
        already contiguous — copying it would just burn bandwidth, which
        visibly hurts fc-heavy models like VGG) and are returned as the
        third element, ``singles = [(name, slice), ...]``."""
        if self._sum_groups is None:
            by_size: dict[int, list[str]] = {}
            for n in self.names:
                sl = self.name_slices[n]
                by_size.setdefault(sl.stop - sl.start, []).append(n)
            idx_parts: list[np.ndarray] = []
            groups: list[tuple[int, int, int, tuple[str, ...]]] = []
            singles: list[tuple[str, slice]] = []
            offset = 0
            for size, group in by_size.items():
                if len(group) == 1:
                    singles.append((group[0], self.name_slices[group[0]]))
                    continue
                for n in group:
                    sl = self.name_slices[n]
                    idx_parts.append(np.arange(sl.start, sl.stop, dtype=np.intp))
                groups.append((offset, len(group), size, tuple(group)))
                offset += len(group) * size
            gather_idx = (
                np.concatenate(idx_parts)
                if idx_parts
                else np.empty(0, dtype=np.intp)
            )
            self._sum_groups = (gather_idx, groups, singles)
        return self._sum_groups

    def sum_scratch(self) -> tuple[np.ndarray, np.ndarray]:
        """Reusable (product, gathered) buffers for :func:`flat_layer_importance`
        (single-threaded simulation: no call overlaps another)."""
        if self._sum_scratch is None:
            gather_idx = self.sum_groups()[0]
            self._sum_scratch = (
                np.empty(self.size, dtype=DEFAULT_DTYPE),
                np.empty(gather_idx.size, dtype=DEFAULT_DTYPE),
            )
        return self._sum_scratch


class ArenaView(Mapping):
    """``Mapping[str, np.ndarray]`` over (a subset of) one flat plane.

    ``view[name]`` returns a *live shaped view* into the plane — mutating
    it mutates the plane (and vice versa). Iteration order is layout order
    restricted to the view's names. ``.slices`` gives the merged contiguous
    runs backing the subset, which is what the vectorized fast paths
    consume.
    """

    __slots__ = ("plane", "layout", "names", "_shaped", "_slices", "_nameset")

    def __init__(
        self,
        plane: np.ndarray,
        layout: ArenaLayout,
        names: Optional[Sequence[str]] = None,
    ) -> None:
        self.plane = plane
        self.layout = layout
        if names is None:
            self.names = layout.names
        else:
            for n in names:
                if n not in layout.name_slices:
                    raise KeyError(f"unknown parameter {n!r}")
            self.names = tuple(names)
        self._nameset = frozenset(self.names)
        self._shaped: dict[str, np.ndarray] = {}
        self._slices: Optional[list[slice]] = None

    @property
    def slices(self) -> list[slice]:
        if self._slices is None:
            self._slices = self.layout.slices_of(self.names)
        return self._slices

    def restrict(self, names: Sequence[str]) -> "ArenaView":
        """Sub-view over ``names`` (must be a subset), same plane."""
        own = set(self.names)
        bad = [n for n in names if n not in own]
        if bad:
            raise KeyError(f"names not in view: {bad}")
        return ArenaView(self.plane, self.layout, names)

    def is_full(self) -> bool:
        """True when the view covers every parameter of the layout."""
        return len(self.names) == len(self.layout.names)

    def __getitem__(self, name: str) -> np.ndarray:
        arr = self._shaped.get(name)
        if arr is None:
            if name not in self._nameset:
                raise KeyError(name)
            sl = self.layout.name_slices[name]
            arr = self.plane[sl].reshape(self.layout.shapes[name])
            self._shaped[name] = arr
        return arr

    def __contains__(self, name) -> bool:
        return name in self._nameset

    def __iter__(self) -> Iterator[str]:
        return iter(self.names)

    def __len__(self) -> int:
        return len(self.names)

    def __repr__(self) -> str:
        return f"ArenaView({len(self.names)} params, {self.plane.size} floats)"


class AggregateView(Mapping):
    """The PS's ``last_aggregated``: a live window onto the aggregate plane.

    Membership is governed by a *live* ``seen`` set owned by the PS —
    parameters appear only once some round has actually aggregated them
    (never-synchronized layers must stay absent so PGP treats them as
    maximally important). Values are live views into the aggregate plane:
    they change in place on every apply. See ``docs/performance.md`` for
    the aliasing contract.
    """

    __slots__ = ("plane", "layout", "seen", "_shaped")

    def __init__(self, plane: np.ndarray, layout: ArenaLayout, seen: set) -> None:
        self.plane = plane
        self.layout = layout
        self.seen = seen  # shared, mutated by the PS
        self._shaped: dict[str, np.ndarray] = {}

    def __getitem__(self, name: str) -> np.ndarray:
        if name not in self.seen:
            raise KeyError(name)
        arr = self._shaped.get(name)
        if arr is None:
            sl = self.layout.name_slices[name]
            arr = self.plane[sl].reshape(self.layout.shapes[name])
            self._shaped[name] = arr
        return arr

    def __contains__(self, name) -> bool:
        return name in self.seen

    def __iter__(self) -> Iterator[str]:
        # layout order for determinism, filtered by what has been seen
        return (n for n in self.layout.names if n in self.seen)

    def __len__(self) -> int:
        return len(self.seen)

    def __repr__(self) -> str:
        return f"AggregateView({len(self.seen)}/{len(self.layout.names)} params)"


class ParamArena:
    """Binds a :class:`Module`'s parameters onto one contiguous plane.

    Construction copies the current parameter values into the plane and
    repoints every ``Parameter.data`` at a shaped view into it, then tags
    the module with ``module._flat_arena = self`` so downstream components
    (PS, SGD, engines) can detect and exploit the flat storage. In-place
    updates (``p.data -= ...``, ``p.data[...] = ...``) keep working and
    land in the plane; *rebinding* ``p.data`` to a fresh array would detach
    the parameter from the arena and must not be done.
    """

    def __init__(self, module: Module, layout: Optional[ArenaLayout] = None) -> None:
        self.module = module
        self.layout = layout if layout is not None else ArenaLayout.from_module(module)
        self.flat = np.empty(self.layout.size, dtype=DEFAULT_DTYPE)
        params = dict(module.named_parameters())
        if set(params) != set(self.layout.names):
            raise ValueError("module parameters do not match arena layout")
        for name in self.layout.names:
            p = params[name]
            sl = self.layout.name_slices[name]
            self.flat[sl] = np.asarray(p.data, dtype=DEFAULT_DTYPE).ravel()
            p.data = self.flat[sl].reshape(self.layout.shapes[name])
        module._flat_arena = self

    def view(self, names: Optional[Sequence[str]] = None) -> ArenaView:
        """Mapping view over the parameter plane (all or a subset)."""
        return ArenaView(self.flat, self.layout, names)

    def gather_grads(self, module: Optional[Module] = None) -> ArenaView:
        """Copy the module's current ``.grad`` arrays into a *fresh* grad
        plane and return a view over the parameters that have gradients.

        A fresh plane per call is required: OSP workers hold an iteration's
        unimportant gradients in flight (ICS) while computing the next
        iteration's gradients, so grad storage cannot be reused.
        """
        module = module if module is not None else self.module
        plane = np.empty(self.layout.size, dtype=DEFAULT_DTYPE)
        names: list[str] = []
        for name, p in module.named_parameters():
            if p.grad is not None:
                plane[self.layout.name_slices[name]] = p.grad.ravel()
                names.append(name)
        return ArenaView(plane, self.layout, names)


def arena_of(module) -> Optional[ParamArena]:
    """The arena a module is bound to, or None."""
    return getattr(module, "_flat_arena", None)


def flat_layer_importance(
    grads: ArenaView | AggregateView,
    params: ArenaView,
    layer_params: Mapping[str, Sequence[str]],
) -> dict[str, float]:
    """PGP Eq. 4 over flat planes: one ``|g·p|`` pass + batched slice sums.

    Bit-identical to :func:`repro.core.pgp.layer_importance`: the product
    is the same elementwise op; per-parameter reductions run batched per
    size class (:meth:`ArenaLayout.sum_groups` — same pairwise reduction as
    a per-slice ``.sum()``), accumulated per layer in Python float —
    exactly the dict path's operation sequence. Layers with any unseen
    parameter get ``inf`` (never-synchronized ⇒ maximally important).
    """
    layout = grads.layout
    gather_idx, groups, singles = layout.sum_groups()
    prod, gathered = layout.sum_scratch()
    np.multiply(grads.plane, params.plane, out=prod)
    np.abs(prod, out=prod)
    sums: dict[str, float] = {}
    if groups:
        np.take(prod, gather_idx, out=gathered)
        for offset, n_params, size, names in groups:
            block = gathered[offset : offset + n_params * size]
            values = block.reshape(n_params, size).sum(axis=1).tolist()
            for name, value in zip(names, values):
                sums[name] = value
    for name, sl in singles:
        sums[name] = float(prod[sl].sum())
    full = len(grads) == len(layout.names)
    out: dict[str, float] = {}
    for layer, names in layer_params.items():
        if full or all(n in grads for n in names):
            total = 0.0
            for n in names:
                total += sums[n]
            out[layer] = total
        else:
            out[layer] = float("inf")
    return out


def pack_plane(layout: ArenaLayout, mapping: Mapping[str, np.ndarray]) -> np.ndarray:
    """Serialise a name→array mapping into a fresh plane in layout order.

    Names absent from ``mapping`` stay zero.  Used by checkpointing so
    dict-mode (arena-off) state serialises to the same bytes as the flat
    arena would hold.
    """
    plane = layout.new_plane()
    for name, arr in mapping.items():
        plane[layout.name_slices[name]] = np.asarray(arr).ravel()
    return plane


def unpack_plane(
    layout: ArenaLayout,
    plane: np.ndarray,
    target: Mapping[str, np.ndarray],
) -> None:
    """Write plane slices back into existing shaped arrays, in place."""
    for name, arr in target.items():
        arr[...] = plane[layout.name_slices[name]].reshape(layout.shapes[name])


__all__ = [
    "AggregateView",
    "ArenaLayout",
    "ArenaView",
    "ParamArena",
    "arena_of",
    "flat_layer_importance",
    "merge_slices",
    "pack_plane",
    "unpack_plane",
]
