"""Self-attention and transformer blocks for the TinyBERT workload."""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn.layers import Dropout, GELU, LayerNorm, Linear
from repro.nn.module import Module


class MultiHeadSelfAttention(Module):
    """Standard multi-head self-attention (no mask; full bidirectional as in
    BERT encoders).

    Input/output: (batch, seq, dim).
    """

    def __init__(self, dim: int, n_heads: int, rng: np.random.Generator) -> None:
        super().__init__()
        if dim % n_heads:
            raise ValueError(f"dim {dim} not divisible by n_heads {n_heads}")
        self.dim = dim
        self.n_heads = n_heads
        self.head_dim = dim // n_heads
        self.q_proj = Linear(dim, dim, rng)
        self.k_proj = Linear(dim, dim, rng)
        self.v_proj = Linear(dim, dim, rng)
        self.out_proj = Linear(dim, dim, rng)

    def _split_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        # (B, S, D) -> (B, H, S, Dh)
        return x.reshape(batch, seq, self.n_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, x: Tensor) -> Tensor:
        batch, seq, dim = x.shape
        if dim != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {dim}")
        q = self._split_heads(self.q_proj(x), batch, seq)
        k = self._split_heads(self.k_proj(x), batch, seq)
        v = self._split_heads(self.v_proj(x), batch, seq)
        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(self.head_dim))
        attn = F.softmax(scores, axis=-1)
        ctx = attn @ v  # (B, H, S, Dh)
        merged = ctx.transpose(0, 2, 1, 3).reshape(batch, seq, dim)
        return self.out_proj(merged)


class TransformerBlock(Module):
    """Pre-norm transformer encoder block: LN → MHSA → residual, LN → MLP →
    residual."""

    def __init__(
        self,
        dim: int,
        n_heads: int,
        rng: np.random.Generator,
        mlp_ratio: int = 4,
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        self.ln1 = LayerNorm(dim)
        self.attn = MultiHeadSelfAttention(dim, n_heads, rng)
        self.ln2 = LayerNorm(dim)
        self.fc1 = Linear(dim, dim * mlp_ratio, rng)
        self.act = GELU()
        self.fc2 = Linear(dim * mlp_ratio, dim, rng)
        self.drop = Dropout(dropout, rng)

    def forward(self, x: Tensor) -> Tensor:
        x = x + self.attn(self.ln1(x))
        h = self.fc2(self.act(self.fc1(self.ln2(x))))
        return x + self.drop(h)


__all__ = ["MultiHeadSelfAttention", "TransformerBlock"]
