"""Weight initialisers. All take an explicit ``numpy.random.Generator`` so
model construction is deterministic given a seed."""

from __future__ import annotations

import numpy as np


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 2:  # Linear: (in, out)
        return shape[0], shape[1]
    if len(shape) == 4:  # Conv: (out, in, kh, kw)
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    raise ValueError(f"cannot infer fans for shape {shape}")


def kaiming_normal(shape, rng: np.random.Generator) -> np.ndarray:
    """He initialisation for ReLU networks: N(0, sqrt(2/fan_in))."""
    fan_in, _ = _fan_in_out(shape)
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


def xavier_uniform(shape, rng: np.random.Generator) -> np.ndarray:
    """Glorot uniform: U(-a, a), a = sqrt(6/(fan_in+fan_out))."""
    fan_in, fan_out = _fan_in_out(shape)
    a = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-a, a, size=shape)


def normal(shape, rng: np.random.Generator, std: float = 0.02) -> np.ndarray:
    """Plain Gaussian init (transformer convention)."""
    return rng.normal(0.0, std, size=shape)


def zeros(shape) -> np.ndarray:
    """Zero init (biases, norm offsets)."""
    return np.zeros(shape)


def ones(shape) -> np.ndarray:
    """Ones init (norm scales)."""
    return np.ones(shape)


__all__ = ["kaiming_normal", "normal", "ones", "xavier_uniform", "zeros"]
