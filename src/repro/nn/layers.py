"""Standard layers: linear, convolution, normalisation, pooling, etc.

Every parameterised layer takes an explicit ``rng`` for deterministic
initialisation.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn import init
from repro.nn.module import Module, Parameter


class Linear(Module):
    """Affine map ``y = x W + b`` with W of shape (in_features, out_features)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
        init_fn=init.kaiming_normal,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init_fn((in_features, out_features), rng))
        self.bias = Parameter(init.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Conv2d(Module):
    """2-D convolution (NCHW)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
    ) -> None:
        super().__init__()
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_normal(shape, rng))
        self.bias = Parameter(init.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)


class BatchNorm2d(Module):
    """Batch normalisation over (N, H, W) per channel, with running stats."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.gamma = Parameter(init.ones(num_features))
        self.beta = Parameter(init.zeros(num_features))
        self.momentum = momentum
        self.eps = eps
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"BatchNorm2d expects NCHW input, got shape {x.shape}")
        if self.training:
            mean = x.data.mean(axis=(0, 2, 3))
            var = x.data.var(axis=(0, 2, 3))
            self.running_mean = (1 - self.momentum) * self.running_mean + self.momentum * mean
            self.running_var = (1 - self.momentum) * self.running_var + self.momentum * var
        else:
            mean, var = self.running_mean, self.running_var
        # Normalise with the (non-differentiated) batch statistics. Treating
        # mean/var as constants is the "frozen statistics" approximation; it
        # keeps the tape small and is accurate for the small LR regime here.
        scale = self.gamma * (1.0 / np.sqrt(var + self.eps))
        shift = self.beta - Tensor(mean) * scale
        return x * scale.reshape(1, -1, 1, 1) + shift.reshape(1, -1, 1, 1)


class LayerNorm(Module):
    """Layer normalisation over the last dimension (transformer convention)."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.gamma = Parameter(init.ones(dim))
        self.beta = Parameter(init.zeros(dim))
        self.eps = eps

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / ((var + self.eps) ** 0.5)
        return normed * self.gamma + self.beta


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    """Hyperbolic tangent."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class GELU(Module):
    """Gaussian error linear unit (tanh approximation, as in BERT)."""

    def forward(self, x: Tensor) -> Tensor:
        inner = (x + x * x * x * 0.044715) * np.sqrt(2.0 / np.pi)
        return x * (inner.tanh() + 1.0) * 0.5


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, p: float, rng: np.random.Generator) -> None:
        super().__init__()
        self.p = p
        self.rng = rng

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.rng, training=self.training)


class MaxPool2d(Module):
    """Max pooling."""

    def __init__(self, kernel: int = 2, stride: int | None = None) -> None:
        super().__init__()
        self.kernel = kernel
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, kernel=self.kernel, stride=self.stride)


class AvgPool2d(Module):
    """Non-overlapping average pooling."""

    def __init__(self, kernel: int = 2) -> None:
        super().__init__()
        self.kernel = kernel

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, kernel=self.kernel)


class Flatten(Module):
    """Flatten all but the batch dimension."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)


class Embedding(Module):
    """Token embedding table."""

    def __init__(self, num_embeddings: int, dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.weight = Parameter(init.normal((num_embeddings, dim), rng))

    def forward(self, indices: np.ndarray) -> Tensor:
        return F.embedding(self.weight, indices)


__all__ = [
    "AvgPool2d",
    "BatchNorm2d",
    "Conv2d",
    "Dropout",
    "Embedding",
    "Flatten",
    "GELU",
    "LayerNorm",
    "Linear",
    "MaxPool2d",
    "ReLU",
    "Tanh",
]
