"""Loss functions and evaluation metrics."""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor, no_grad


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy of ``logits`` (N, C) against integer ``labels`` (N,)."""
    labels = np.asarray(labels)
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-D (N, C), got {logits.shape}")
    if labels.shape != (logits.shape[0],):
        raise ValueError(
            f"labels shape {labels.shape} incompatible with logits {logits.shape}"
        )
    if not np.issubdtype(labels.dtype, np.integer):
        raise TypeError(f"labels must be integers, got {labels.dtype}")
    log_probs = F.log_softmax(logits, axis=-1)
    n = logits.shape[0]
    picked = log_probs[np.arange(n), labels]
    return -picked.mean()


def mse_loss(pred: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error."""
    diff = pred - Tensor(np.asarray(target, dtype=pred.data.dtype))
    return (diff * diff).mean()


def qa_span_loss(
    start_logits: Tensor,
    end_logits: Tensor,
    start_labels: np.ndarray,
    end_labels: np.ndarray,
) -> Tensor:
    """Extractive-QA loss: mean of start- and end-position cross-entropies,
    the standard BERT/SQuAD fine-tuning objective (§5.1.2)."""
    return (
        cross_entropy(start_logits, start_labels)
        + cross_entropy(end_logits, end_labels)
    ) * 0.5


def accuracy(logits: Tensor | np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy in [0, 1]."""
    data = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    pred = data.argmax(axis=-1)
    return float((pred == np.asarray(labels)).mean())


def qa_span_accuracy(
    start_logits: Tensor,
    end_logits: Tensor,
    start_labels: np.ndarray,
    end_labels: np.ndarray,
) -> float:
    """Span-level F1 proxy: mean of start/end position accuracies.

    (With single-token gold spans, token-level F1 reduces to position
    accuracy; we report the mean of start and end accuracy as the paper's
    F1-style metric for the NLP workload.)
    """
    return 0.5 * (accuracy(start_logits, start_labels) + accuracy(end_logits, end_labels))


__all__ = [
    "accuracy",
    "cross_entropy",
    "mse_loss",
    "qa_span_accuracy",
    "qa_span_loss",
]
