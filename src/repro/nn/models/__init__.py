"""Model zoo: mini-scale versions of the paper's five workload models plus
the :class:`~repro.nn.models.registry.ModelCard` registry carrying the
paper-scale parameter/FLOP counts used by the timing simulator."""

from repro.nn.models.mlp import MLP
from repro.nn.models.vgg import MiniVGG
from repro.nn.models.resnet import MiniResNet, ResidualBlock
from repro.nn.models.inception import InceptionBlock, MiniInception
from repro.nn.models.bert import TinyBERT
from repro.nn.models.registry import (
    MODEL_CARDS,
    ModelCard,
    get_card,
    synthetic_layer_sizes,
)

__all__ = [
    "InceptionBlock",
    "MLP",
    "MODEL_CARDS",
    "MiniInception",
    "MiniResNet",
    "MiniVGG",
    "ModelCard",
    "ResidualBlock",
    "TinyBERT",
    "get_card",
    "synthetic_layer_sizes",
]
