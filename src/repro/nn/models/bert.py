"""TinyBERT: a small transformer encoder with a QA span head, standing in
for BERT-base fine-tuned on SQuAD v1.1 (§5.1.2)."""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor
from repro.nn.attention import TransformerBlock
from repro.nn.layers import Embedding, LayerNorm, Linear
from repro.nn.module import Module, Parameter, Sequential
from repro.nn import init


class TinyBERT(Module):
    """Token + position embeddings → transformer blocks → span head.

    ``forward(tokens)`` with integer tokens of shape (batch, seq) returns
    ``(start_logits, end_logits)``, each (batch, seq) — the extractive-QA
    output convention.
    """

    def __init__(
        self,
        vocab_size: int = 64,
        max_seq: int = 16,
        dim: int = 32,
        n_heads: int = 2,
        n_layers: int = 2,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.max_seq = max_seq
        self.tok_emb = Embedding(vocab_size, dim, rng)
        self.pos_emb = Parameter(init.normal((max_seq, dim), rng))
        self.blocks = Sequential(
            *[TransformerBlock(dim, n_heads, rng) for _ in range(n_layers)]
        )
        self.ln_f = LayerNorm(dim)
        self.qa_head = Linear(dim, 2, rng)

    def forward(self, tokens: np.ndarray) -> tuple[Tensor, Tensor]:
        tokens = np.asarray(tokens)
        if tokens.ndim != 2:
            raise ValueError(f"tokens must be (batch, seq), got {tokens.shape}")
        seq = tokens.shape[1]
        if seq > self.max_seq:
            raise ValueError(f"sequence length {seq} exceeds max {self.max_seq}")
        x = self.tok_emb(tokens) + self.pos_emb[:seq]
        x = self.blocks(x)
        x = self.ln_f(x)
        logits = self.qa_head(x)  # (B, S, 2)
        start_logits = logits[:, :, 0]
        end_logits = logits[:, :, 1]
        return start_logits, end_logits


__all__ = ["TinyBERT"]
