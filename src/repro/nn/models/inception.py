"""MiniInception: scaled-down InceptionV3 for the CIFAR-100 workload.

Preserves Inception's defining property for this paper: **FLOP-heavy,
parameter-light** parallel branches — the opposite end of the spectrum from
VGG, which is why Inception shows the *lowest* OSP-C overhead in Fig. 9.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor, concatenate
from repro.nn.layers import BatchNorm2d, Conv2d, Linear, MaxPool2d
from repro.nn.module import Module, Sequential


class InceptionBlock(Module):
    """Parallel 1x1 / 3x3 / double-3x3 / pool-1x1 branches, concatenated."""

    def __init__(self, in_channels: int, branch_channels: int, rng: np.random.Generator) -> None:
        super().__init__()
        c = branch_channels
        self.b1 = Conv2d(in_channels, c, 1, rng)
        self.b2_reduce = Conv2d(in_channels, c, 1, rng)
        self.b2 = Conv2d(c, c, 3, rng, padding=1)
        self.b3_reduce = Conv2d(in_channels, c, 1, rng)
        self.b3a = Conv2d(c, c, 3, rng, padding=1)
        self.b3b = Conv2d(c, c, 3, rng, padding=1)
        self.b4 = Conv2d(in_channels, c, 1, rng)
        self.out_channels = 4 * c

    def forward(self, x: Tensor) -> Tensor:
        y1 = self.b1(x).relu()
        y2 = self.b2(self.b2_reduce(x).relu()).relu()
        y3 = self.b3b(self.b3a(self.b3_reduce(x).relu()).relu()).relu()
        # Pool branch: 2x2 avg pool with stride 1 is approximated by identity
        # smoothing via 1x1 conv (keeps geometry simple at 16x16 scale).
        y4 = self.b4(x).relu()
        return concatenate([y1, y2, y3, y4], axis=1)


class MiniInception(Module):
    """Stem + inception blocks + global pool + classifier."""

    def __init__(
        self,
        n_classes: int = 100,
        in_channels: int = 3,
        width: int = 8,
        n_blocks: int = 2,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.stem = Conv2d(in_channels, width, 3, rng, padding=1)
        self.stem_bn = BatchNorm2d(width)
        self.pool = MaxPool2d(2)
        blocks: list[Module] = []
        channels = width
        for _ in range(n_blocks):
            block = InceptionBlock(channels, width, rng)
            blocks.append(block)
            channels = block.out_channels
        self.blocks = Sequential(*blocks)
        self.head = Linear(channels, n_classes, rng)

    def forward(self, x) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        out = self.stem_bn(self.stem(x)).relu()
        out = self.pool(out)
        out = self.blocks(out)
        out = F.global_avg_pool2d(out)
        return self.head(out)


__all__ = ["InceptionBlock", "MiniInception"]
