"""Plain multilayer perceptron — the quickstart/example model."""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor
from repro.nn.layers import Linear, ReLU
from repro.nn.module import Module, Sequential


class MLP(Module):
    """Fully connected classifier with ReLU hidden layers.

    Parameters
    ----------
    sizes:
        Layer widths, e.g. ``[64, 128, 10]`` for one hidden layer.
    seed:
        Initialisation seed.
    """

    def __init__(self, sizes: list[int], seed: int = 0) -> None:
        super().__init__()
        if len(sizes) < 2:
            raise ValueError(f"need at least input and output sizes, got {sizes}")
        rng = np.random.default_rng(seed)
        layers: list[Module] = []
        for i in range(len(sizes) - 1):
            layers.append(Linear(sizes[i], sizes[i + 1], rng))
            if i < len(sizes) - 2:
                layers.append(ReLU())
        self.net = Sequential(*layers)

    def forward(self, x) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        if x.ndim > 2:
            x = x.reshape(x.shape[0], -1)
        return self.net(x)


__all__ = ["MLP"]
