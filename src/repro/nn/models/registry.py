"""Model cards: paper-scale workload descriptions.

The accuracy experiments run *mini* models numerically; the timing
experiments (throughput, BST, Fig. 3/6a/6d/9) use the **paper-scale**
parameter and FLOP counts recorded here, so communication/computation
ratios match the paper's testbed. Parameter counts and per-sample forward
FLOPs are the standard published numbers for each architecture at the
paper's input resolutions.

``synthetic_layer_sizes`` generates a deterministic per-layer parameter
split with each family's characteristic skew (VGG: giant fc head; ResNet:
geometric channel growth; Inception: many mid-sized branches; BERT: uniform
blocks plus a large embedding), which OSP's layer-granular GIB splitting
operates on in timing mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.nn.models.bert import TinyBERT
from repro.nn.models.inception import MiniInception
from repro.nn.models.resnet import MiniResNet
from repro.nn.models.vgg import MiniVGG

#: gradients travel as float32 on the wire.
BYTES_PER_PARAM = 4


@dataclass(frozen=True)
class ModelCard:
    """Paper-scale description of one evaluation workload (§5.1.2)."""

    name: str
    family: str  # 'vgg' | 'resnet' | 'inception' | 'bert'
    dataset: str
    task: str  # 'classification' | 'qa'
    paper_params: int
    paper_flops_per_sample: float
    paper_layers: int
    batch_size: int
    metric: str  # 'top1' | 'f1'
    mini_factory: Callable[[int], object]  # seed -> Module
    #: Relative kernel efficiency vs. the GPU's baseline: convnets with
    #: balanced conv stacks ≈ 1.0; VGG's giant memory-bound FC layers and
    #: fp32 long-sequence attention run well below the GPU's typical
    #: training efficiency. Effective FLOP/s = gpu.achieved × this factor.
    efficiency_factor: float = 1.0

    @property
    def model_bytes(self) -> int:
        """Full gradient/model size on the wire."""
        return self.paper_params * BYTES_PER_PARAM

    def make_mini(self, seed: int = 0):
        """Instantiate the mini-scale model for numeric training."""
        return self.mini_factory(seed)


def synthetic_layer_sizes(card: ModelCard) -> np.ndarray:
    """Per-layer parameter counts (ints) summing exactly to paper_params."""
    l = card.paper_layers
    if card.family == "vgg":
        # 13 conv layers growing geometrically + 3 fc layers holding ~80%
        # of all parameters (VGG16's fc6 alone is 102M of 138M).
        n_conv = l - 3
        conv = np.geomspace(1.0, 40.0, n_conv)
        fc = np.array([280.0, 45.0, 11.0]) * conv.sum() / 80.0
        weights = np.concatenate([conv, fc])
    elif card.family == "resnet":
        # Channel counts double every stage: parameters per block grow 4x.
        stage = np.repeat(np.arange(4), np.diff(np.linspace(0, l, 5).astype(int)))
        weights = 4.0**stage * (1.0 + 0.1 * np.arange(l) / l)
    elif card.family == "inception":
        # Many mid-sized branch convs with mild growth, small head.
        weights = np.geomspace(1.0, 6.0, l)
    elif card.family == "bert":
        # Embedding matrix ~21% of BERT-base; encoder layers uniform.
        weights = np.ones(l)
        weights[0] = 0.27 * (l - 1)
    else:
        raise ValueError(f"unknown family {card.family!r}")

    raw = weights / weights.sum() * card.paper_params
    sizes = np.floor(raw).astype(np.int64)
    sizes[-1] += card.paper_params - sizes.sum()  # exact total
    if (sizes <= 0).any():
        raise RuntimeError(f"degenerate layer sizes for {card.name}")
    return sizes


MODEL_CARDS: dict[str, ModelCard] = {
    card.name: card
    for card in [
        ModelCard(
            name="resnet50-cifar10",
            family="resnet",
            dataset="cifar10",
            task="classification",
            paper_params=25_557_032,
            paper_flops_per_sample=4.1e9,
            paper_layers=54,
            batch_size=64,
            metric="top1",
            mini_factory=lambda seed: MiniResNet(
                n_classes=10, blocks_per_stage=(1, 1), seed=seed
            ),
        ),
        ModelCard(
            name="vgg16-cifar10",
            family="vgg",
            dataset="cifar10",
            task="classification",
            paper_params=138_357_544,
            paper_flops_per_sample=15.5e9,
            paper_layers=16,
            batch_size=64,
            metric="top1",
            mini_factory=lambda seed: MiniVGG(n_classes=10, seed=seed),
            efficiency_factor=0.7,  # memory-bound fc6/fc7
        ),
        ModelCard(
            name="inceptionv3-cifar100",
            family="inception",
            dataset="cifar100",
            task="classification",
            paper_params=23_851_784,
            paper_flops_per_sample=5.7e9,
            paper_layers=94,
            batch_size=64,
            metric="top1",
            mini_factory=lambda seed: MiniInception(n_classes=20, seed=seed),
        ),
        ModelCard(
            name="resnet101-imagenet",
            family="resnet",
            dataset="imagenet1k",
            task="classification",
            paper_params=44_549_160,
            paper_flops_per_sample=7.8e9,
            paper_layers=104,
            batch_size=64,
            metric="top1",
            mini_factory=lambda seed: MiniResNet(
                n_classes=20, blocks_per_stage=(2, 2), seed=seed
            ),
        ),
        ModelCard(
            # §1 motivation experiment (comm overhead on RTX 2080 Ti vs 3090).
            name="resnet152-cifar10",
            family="resnet",
            dataset="cifar10",
            task="classification",
            paper_params=60_192_808,
            paper_flops_per_sample=11.5e9,
            paper_layers=155,
            batch_size=64,
            metric="top1",
            mini_factory=lambda seed: MiniResNet(
                n_classes=10, blocks_per_stage=(2, 3), seed=seed
            ),
        ),
        ModelCard(
            name="bertbase-squad",
            family="bert",
            dataset="squad1.1",
            task="qa",
            paper_params=109_482_240,
            paper_flops_per_sample=4.5e10,
            paper_layers=199,
            batch_size=12,
            metric="f1",
            mini_factory=lambda seed: TinyBERT(seed=seed),
            efficiency_factor=0.45,  # fp32 seq-384 attention, small batch
        ),
    ]
}


def get_card(name: str) -> ModelCard:
    """Look up a model card by name (KeyError lists known names)."""
    try:
        return MODEL_CARDS[name]
    except KeyError:
        raise KeyError(
            f"unknown model card {name!r}; known: {', '.join(sorted(MODEL_CARDS))}"
        ) from None


__all__ = [
    "BYTES_PER_PARAM",
    "MODEL_CARDS",
    "ModelCard",
    "get_card",
    "synthetic_layer_sizes",
]
