"""MiniResNet: scaled-down ResNet-50/101 family for accuracy experiments.

Keeps residual connections and batch normalisation — the elements that give
ResNets their distinct optimisation dynamics under stale/partial updates.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn.layers import BatchNorm2d, Conv2d, Linear
from repro.nn.module import Module, Sequential


class ResidualBlock(Module):
    """Basic residual block: conv-bn-relu-conv-bn + skip, relu."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        rng: np.random.Generator,
        stride: int = 1,
    ) -> None:
        super().__init__()
        self.conv1 = Conv2d(in_channels, out_channels, 3, rng, stride=stride, padding=1, bias=False)
        self.bn1 = BatchNorm2d(out_channels)
        self.conv2 = Conv2d(out_channels, out_channels, 3, rng, padding=1, bias=False)
        self.bn2 = BatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.shortcut = Conv2d(in_channels, out_channels, 1, rng, stride=stride, bias=False)
        else:
            self.shortcut = None

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out))
        skip = x if self.shortcut is None else self.shortcut(x)
        return (out + skip).relu()


class MiniResNet(Module):
    """Stem conv + stages of residual blocks + global pool + linear head.

    ``blocks_per_stage`` controls depth: (1, 1) is a "MiniResNet50" stand-in,
    (2, 2) a deeper "MiniResNet101" stand-in.
    """

    def __init__(
        self,
        n_classes: int = 10,
        in_channels: int = 3,
        width: int = 8,
        blocks_per_stage: tuple[int, ...] = (1, 1),
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.stem = Conv2d(in_channels, width, 3, rng, padding=1, bias=False)
        self.stem_bn = BatchNorm2d(width)
        stages: list[Module] = []
        channels = width
        for stage_idx, n_blocks in enumerate(blocks_per_stage):
            out_ch = width * (2**stage_idx)
            for block_idx in range(n_blocks):
                stride = 2 if (stage_idx > 0 and block_idx == 0) else 1
                stages.append(ResidualBlock(channels, out_ch, rng, stride=stride))
                channels = out_ch
        self.stages = Sequential(*stages)
        self.head = Linear(channels, n_classes, rng)

    def forward(self, x) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        out = self.stem_bn(self.stem(x)).relu()
        out = self.stages(out)
        out = F.global_avg_pool2d(out)
        return self.head(out)


__all__ = ["MiniResNet", "ResidualBlock"]
