"""MiniVGG: a scaled-down VGG16 for the CIFAR-10 accuracy experiments.

Preserves VGG's defining property for this paper: a **parameter-heavy
fully-connected head** (most of VGG16's 138M parameters sit in fc layers),
which is why VGG shows the highest OSP-C PGP overhead in Fig. 9 — PGP cost
is O(params) while compute time is O(FLOPs).
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor
from repro.nn.layers import Conv2d, Flatten, Linear, MaxPool2d, ReLU
from repro.nn.module import Module, Sequential


class MiniVGG(Module):
    """VGG-style convnet: conv-conv-pool stacks + large fc head.

    Default input: (N, 3, 16, 16); output: class logits.
    """

    def __init__(
        self,
        n_classes: int = 10,
        in_channels: int = 3,
        image_size: int = 16,
        width: int = 8,
        head_width: int = 128,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        if image_size % 4:
            raise ValueError(f"image_size must be divisible by 4, got {image_size}")
        self.features = Sequential(
            Conv2d(in_channels, width, 3, rng, padding=1),
            ReLU(),
            Conv2d(width, width, 3, rng, padding=1),
            ReLU(),
            MaxPool2d(2),
            Conv2d(width, width * 2, 3, rng, padding=1),
            ReLU(),
            Conv2d(width * 2, width * 2, 3, rng, padding=1),
            ReLU(),
            MaxPool2d(2),
        )
        feat = width * 2 * (image_size // 4) ** 2
        self.classifier = Sequential(
            Flatten(),
            Linear(feat, head_width, rng),
            ReLU(),
            Linear(head_width, head_width, rng),
            ReLU(),
            Linear(head_width, n_classes, rng),
        )

    def forward(self, x) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        return self.classifier(self.features(x))


__all__ = ["MiniVGG"]
