"""Module base class with ordered parameter/submodule registries.

Registration is insertion-ordered (plain dicts), so ``named_parameters()``
and ``leaf_layers()`` yield a stable order across runs — required for the
bit positions of OSP's GIB to mean the same thing on every worker and the
PS.
"""

from __future__ import annotations

from typing import Iterator, Mapping

import numpy as np

from repro.autograd.tensor import Tensor


class Parameter(Tensor):
    """A Tensor registered as a trainable parameter of a Module."""

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; they are auto-registered. Define :meth:`forward`.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_params", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._params[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # -- forward -----------------------------------------------------------
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError(f"{type(self).__name__} must define forward()")

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # -- parameter access ----------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` in registration order."""
        for name, p in self._params.items():
            yield (f"{prefix}{name}", p)
        for mod_name, mod in self._modules.items():
            yield from mod.named_parameters(prefix=f"{prefix}{mod_name}.")

    def parameters(self) -> list[Parameter]:
        """All parameters in registration order."""
        return [p for _name, p in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.parameters())

    def leaf_layers(self, prefix: str = "") -> list[tuple[str, "Module"]]:
        """Ordered list of (name, module) for modules that *directly own*
        parameters — the paper's "layer" granularity for PGP/GIB (Eq. 4)."""
        layers: list[tuple[str, Module]] = []
        if self._params:
            layers.append((prefix.rstrip(".") or "self", self))
        for mod_name, mod in self._modules.items():
            layers.extend(mod.leaf_layers(prefix=f"{prefix}{mod_name}."))
        return layers

    def zero_grad(self) -> None:
        """Clear gradients of all parameters."""
        for p in self.parameters():
            p.zero_grad()

    # -- train/eval -----------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects dropout, batchnorm)."""
        object.__setattr__(self, "training", bool(mode))
        for mod in self._modules.values():
            mod.train(mode)
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively."""
        return self.train(False)

    # -- state dict -------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of all parameters as plain arrays, keyed by qualified name."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Mapping[str, np.ndarray]) -> None:
        """Load parameters in-place; names and shapes must match exactly."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        extra = set(state) - set(own)
        if missing or extra:
            raise KeyError(f"state mismatch: missing={sorted(missing)}, extra={sorted(extra)}")
        for name, p in own.items():
            arr = np.asarray(state[name], dtype=p.data.dtype)
            if arr.shape != p.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {p.data.shape}, got {arr.shape}"
                )
            p.data[...] = arr

    def __repr__(self) -> str:
        return f"{type(self).__name__}(params={self.num_parameters()})"


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._seq = []
        for i, mod in enumerate(modules):
            if not isinstance(mod, Module):
                raise TypeError(f"Sequential item {i} is not a Module: {mod!r}")
            setattr(self, f"m{i}", mod)
            self._seq.append(mod)

    def forward(self, x):
        for mod in self._seq:
            x = mod(x)
        return x

    def __len__(self) -> int:
        return len(self._seq)

    def __getitem__(self, i: int) -> Module:
        return self._seq[i]


__all__ = ["Module", "Parameter", "Sequential"]
