"""repro.obs — span-based tracing + phase-attribution observability.

The measurement substrate for every performance claim in this repo:

* :class:`Tracer` — hierarchical spans / instants / counter tracks /
  histograms over virtual time (passive: never perturbs the simulation);
* :mod:`repro.obs.registry` — the central counter/gauge/histogram name
  registry (``osp.* / faults.* / obs.*``), lint-enforced;
* :class:`OverlapReport` — hidden-sync ratio, exact BST decomposition and
  per-layer RS/ICS traffic accounting (the quantitative form of the
  paper's Figs. 1–3);
* :func:`write_unified_trace` — one Perfetto-loadable Chrome trace with
  spans + network flows + counter tracks + fault instants;
* :class:`MetricSampler` (``repro.obs.timeseries``) — clock-driven ring
  buffer sampling of gauges, links, PS and per-worker health signals;
* :func:`health_report` — per-worker straggler z-scores / utilisation /
  staleness histograms;
* :func:`render_dashboard` / :func:`export_csv` / :func:`export_prometheus`
  — the ``repro dash`` static-HTML dashboard and its exports;
* :func:`run_summary` / :func:`compare_runs` — cross-run regression
  diffing with per-phase / per-worker wall-clock attribution.

See ``docs/observability.md`` for the span taxonomy and workflow.
"""

from repro.obs.chrome import read_trace, tracer_to_trace_events, write_unified_trace
from repro.obs.compare import (
    PHASE_GROUPS,
    PHASES,
    RegressionReport,
    compare_runs,
    load_summary,
    run_summary,
    save_summary,
)
from repro.obs.dash import export_csv, export_prometheus, render_dashboard
from repro.obs.health import HealthReport, WorkerHealth, health_report
from repro.obs.overlap import (
    OverlapReport,
    overlap_report_from_run,
    overlap_report_from_trace,
)
from repro.obs.registry import ALL_NAMES, COUNTERS, GAUGES, HISTOGRAMS, TRACKS
from repro.obs.timeseries import MetricSampler, Series
from repro.obs.tracer import (
    NULL_TRACER,
    Histogram,
    Instant,
    NullTracer,
    Span,
    Tracer,
)

__all__ = [
    "ALL_NAMES",
    "COUNTERS",
    "GAUGES",
    "HISTOGRAMS",
    "HealthReport",
    "Histogram",
    "Instant",
    "MetricSampler",
    "NULL_TRACER",
    "NullTracer",
    "OverlapReport",
    "PHASES",
    "PHASE_GROUPS",
    "RegressionReport",
    "Series",
    "Span",
    "TRACKS",
    "Tracer",
    "WorkerHealth",
    "compare_runs",
    "export_csv",
    "export_prometheus",
    "health_report",
    "load_summary",
    "overlap_report_from_run",
    "overlap_report_from_trace",
    "read_trace",
    "render_dashboard",
    "run_summary",
    "save_summary",
    "tracer_to_trace_events",
    "write_unified_trace",
]
