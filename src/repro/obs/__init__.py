"""repro.obs — span-based tracing + phase-attribution observability.

The measurement substrate for every performance claim in this repo:

* :class:`Tracer` — hierarchical spans / instants / counter tracks /
  histograms over virtual time (passive: never perturbs the simulation);
* :mod:`repro.obs.registry` — the central counter/gauge/histogram name
  registry (``osp.* / faults.* / obs.*``), lint-enforced;
* :class:`OverlapReport` — hidden-sync ratio, exact BST decomposition and
  per-layer RS/ICS traffic accounting (the quantitative form of the
  paper's Figs. 1–3);
* :func:`write_unified_trace` — one Perfetto-loadable Chrome trace with
  spans + network flows + counter tracks + fault instants.

See ``docs/observability.md`` for the span taxonomy and workflow.
"""

from repro.obs.chrome import read_trace, tracer_to_trace_events, write_unified_trace
from repro.obs.overlap import (
    OverlapReport,
    overlap_report_from_run,
    overlap_report_from_trace,
)
from repro.obs.registry import ALL_NAMES, COUNTERS, GAUGES, HISTOGRAMS
from repro.obs.tracer import (
    NULL_TRACER,
    Histogram,
    Instant,
    NullTracer,
    Span,
    Tracer,
)

__all__ = [
    "ALL_NAMES",
    "COUNTERS",
    "GAUGES",
    "HISTOGRAMS",
    "Histogram",
    "Instant",
    "NULL_TRACER",
    "NullTracer",
    "OverlapReport",
    "Span",
    "Tracer",
    "overlap_report_from_run",
    "overlap_report_from_trace",
    "read_trace",
    "tracer_to_trace_events",
    "write_unified_trace",
]
