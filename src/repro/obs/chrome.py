"""Unified Chrome/Perfetto trace emission for traced runs.

One ``repro run --trace out.json`` produces a single Trace-Event-Format
file combining every observability stream:

* tracer **spans** → complete (``X``) events, grouped by track (``pid``)
  and actor (``tid``) so Perfetto shows one row per worker, one per
  worker's ICS background lane, and one for the PS;
* tracer **instants** (fault activations, GIB broadcasts) → ``i`` events;
* tracer **counter tracks** (in-flight ICS bytes, S(G^u) budget, quorum
  size, network backlog) → ``C`` events;
* network **flow records** → ``X`` events on the ``network`` track (via
  :mod:`repro.netsim.trace`), with structured phase/worker/iteration args.

Machine-readable extras (per-layer traffic, recorder counters, the sync
model name) ride along under the top-level ``otherData`` key, which the
Trace Event Format reserves for exactly this and viewers ignore — so the
same file feeds both Perfetto and ``repro report``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.netsim.trace import flows_to_trace_events, iterations_to_trace_events
from repro.obs.tracer import Tracer

_US = 1e6


def tracer_to_trace_events(tracer: Tracer) -> list[dict]:
    """Convert a tracer's spans/instants/counters to trace events."""
    events: list[dict] = []
    horizon = tracer.now
    for span in tracer.spans:
        end = span.end if span.end is not None else horizon
        args = {"sid": span.sid}
        if span.parent is not None:
            args["parent"] = span.parent
        if span.worker is not None:
            args["worker"] = span.worker
        if span.iteration is not None:
            args["iteration"] = span.iteration
        args.update(span.attrs)
        events.append(
            {
                "name": span.name,
                "cat": span.cat,
                "ph": "X",
                "ts": span.start * _US,
                "dur": max(1.0, (end - span.start) * _US),
                "pid": span.track,
                "tid": span.actor,
                "args": args,
            }
        )
    for inst in tracer.instants:
        events.append(
            {
                "name": inst.name,
                "cat": "instant",
                "ph": "i",
                "ts": inst.time * _US,
                "pid": inst.track,
                "tid": inst.actor or inst.track,
                "s": "g",  # global scope: draw the marker across all tracks
                "args": dict(inst.attrs),
            }
        )
    for name, samples in tracer.counters.items():
        short = name.rsplit(".", 1)[-1]
        for t, value in samples:
            events.append(
                {
                    "name": name,
                    "cat": "counter",
                    "ph": "C",
                    "ts": t * _US,
                    "pid": "counters",
                    "tid": name,
                    "args": {short: value},
                }
            )
    return events


def read_trace(path: Union[str, Path]) -> dict:
    """Load a trace file, normalising the bare-array JSON variant."""
    payload = json.loads(Path(path).read_text())
    if isinstance(payload, list):  # legacy bare event array form
        payload = {"traceEvents": payload}
    if "traceEvents" not in payload:
        raise ValueError(f"{path} is not a Chrome trace (no 'traceEvents' key)")
    return payload


def write_unified_trace(
    path: Union[str, Path],
    tracer: Optional[Tracer] = None,
    flow_records: Iterable = (),
    iteration_records: Iterable = (),
    recorder=None,
    sync_name: Optional[str] = None,
) -> int:
    """Write one Perfetto-loadable file; returns the event count.

    With a tracer, worker timelines come from its spans (hierarchical);
    ``iteration_records`` is the fallback for untraced runs and is ignored
    when a tracer is supplied (the spans subsume it).
    """
    events = list(flows_to_trace_events(flow_records))
    if tracer is not None:
        events += tracer_to_trace_events(tracer)
    else:
        events += iterations_to_trace_events(iteration_records)
    events.sort(key=lambda e: (e["ts"], e.get("pid", ""), e.get("tid", "")))

    other: dict = {}
    if sync_name is not None:
        other["sync"] = sync_name
    if tracer is not None and tracer.traffic:
        traffic: dict[str, dict[str, float]] = {}
        for (stage, layer), nbytes in tracer.traffic.items():
            traffic.setdefault(stage, {})[layer] = nbytes
        other["traffic"] = traffic
    if recorder is not None:
        other["recorderCounters"] = dict(recorder.counters)

    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    if other:
        payload["otherData"] = other
    Path(path).write_text(json.dumps(payload))
    return len(events)


__all__ = ["read_trace", "tracer_to_trace_events", "write_unified_trace"]
