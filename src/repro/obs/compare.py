"""Cross-run regression diffing: summaries, phase/worker attribution, verdicts.

:func:`run_summary` condenses a (traced) run into a JSON-able document:
wall clock, per-phase seconds (compute / rs / ics / lgp / pgp), the same
split per worker, counters and per-worker health. :func:`compare_runs`
diffs two summaries and attributes the wall-clock delta to the phase and
the worker that moved most — turning "run B is 12% slower" into "worker 2's
compute grew 9.3s inside the straggler window".

The verdict (``ok`` / ``improvement`` / ``regression``) uses the same
relative-slowdown convention as the committed ``BENCH_hotpath.json`` guard,
so CI can gate on ``repro report --compare A.json B.json`` directly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.obs.health import health_report

SUMMARY_SCHEMA = "repro.run_summary/1"

#: Leaf span name → attribution phase. Only leaf phases are listed, so
#: summing them never double-counts their ``iteration``/``sync`` parents.
#: ASP's blocking push/pull count as rs (they play RS's role). Barrier /
#: staleness / ICS-drain *waits* get their own phase: a wait is a symptom
#: of someone else's slowness (one straggler inflates every other worker's
#: barrier time), so regression attribution must keep it apart from the
#: phases where time is actively spent.
PHASE_GROUPS: dict[str, str] = {
    "compute": "compute",
    "rs_push": "rs",
    "rs_pull": "rs",
    "push": "rs",
    "pull": "rs",
    "ics_push": "ics",
    "ics_pull": "ics",
    "lgp_correction": "lgp",
    "pgp_compute": "pgp",
    "rs_barrier_wait": "wait",
    "staleness_wait": "wait",
    "ics_wait": "wait",
    "ics_stall": "wait",
}

PHASES: tuple[str, ...] = ("compute", "rs", "ics", "lgp", "pgp", "wait")

#: Phases that can *cause* a slowdown (waits only propagate one).
CAUSAL_PHASES: tuple[str, ...] = ("compute", "rs", "ics", "lgp", "pgp")


def _phase_times(tracer) -> tuple[dict[str, float], dict[int, dict[str, float]]]:
    """(cluster-wide, per-worker) seconds per phase from leaf spans."""
    total = {p: 0.0 for p in PHASES}
    per_worker: dict[int, dict[str, float]] = {}
    for span in getattr(tracer, "spans", []) or []:
        phase = PHASE_GROUPS.get(span.name)
        if phase is None or span.end is None:
            continue
        dur = span.end - span.start
        total[phase] += dur
        if span.worker is not None:
            per_worker.setdefault(span.worker, {p: 0.0 for p in PHASES})[
                phase
            ] += dur
    return total, per_worker


def run_summary(result, sampler=None) -> dict:
    """A JSON-able cross-run comparison document for one finished run."""
    if sampler is None:
        sampler = getattr(result, "sampler", None)
    tracer = getattr(result, "tracer", None)
    health = health_report(result, sampler)

    if tracer is not None:
        phases, worker_phases = _phase_times(tracer)
    else:
        # Untraced fallback: the recorder still splits compute vs sync, so
        # the sync side is attributed to rs (the blocking stage).
        phases = {p: 0.0 for p in PHASES}
        worker_phases = {}
        for rec in result.recorder.iterations:
            phases["compute"] += rec.compute_time
            phases["rs"] += rec.sync_time
            wp = worker_phases.setdefault(rec.worker, {p: 0.0 for p in PHASES})
            wp["compute"] += rec.compute_time
            wp["rs"] += rec.sync_time

    workers = {}
    for wh in health.workers:
        workers[str(wh.worker)] = {
            "phases": worker_phases.get(wh.worker, {p: 0.0 for p in PHASES}),
            "iterations": wh.iterations,
            "mean_compute": wh.mean_compute,
            "mean_sync": wh.mean_sync,
            "straggler_z": wh.straggler_z,
            "utilization": wh.utilization,
        }
    return {
        "schema": SUMMARY_SCHEMA,
        "sync": result.sync_name,
        "wall_time": float(result.wall_time),
        "iteration_end_time": float(result.iteration_end_time),
        "throughput": float(result.throughput),
        "mean_bst": float(result.mean_bst),
        "mean_bct": float(result.mean_bct),
        "iterations": len(result.recorder.iterations),
        "phases": phases,
        "workers": workers,
        "counters": dict(result.recorder.counters),
        "stragglers": health.stragglers,
    }


def save_summary(summary: dict, path: Union[str, Path]) -> Path:
    """Write a run summary as canonical (sorted-key) JSON and return the path."""
    path = Path(path)
    path.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    return path


def load_summary(path: Union[str, Path]) -> dict:
    """Read a run summary written by :func:`save_summary`, validating its schema."""
    doc = json.loads(Path(path).read_text())
    if doc.get("schema") != SUMMARY_SCHEMA:
        raise ValueError(
            f"{path}: not a run summary (schema={doc.get('schema')!r}, "
            f"expected {SUMMARY_SCHEMA!r}) — write one with "
            "`repro run --summary` or `repro dash`"
        )
    return doc


@dataclass
class RegressionReport:
    """The diff of two run summaries, wall-delta attributed."""

    wall_a: float
    wall_b: float
    threshold: float
    #: phase → (seconds in A, seconds in B, delta)
    phases: dict[str, tuple[float, float, float]] = field(default_factory=dict)
    #: worker id → (*active* seconds in A, in B, delta) — waits excluded,
    #: so one straggler doesn't smear its delta across everyone's barriers
    workers: dict[int, tuple[float, float, float]] = field(default_factory=dict)
    dominant_phase: Optional[str] = None
    dominant_worker: Optional[int] = None

    @property
    def delta(self) -> float:
        return self.wall_b - self.wall_a

    @property
    def pct(self) -> float:
        return self.delta / self.wall_a if self.wall_a else 0.0

    @property
    def verdict(self) -> str:
        if self.pct > self.threshold:
            return "regression"
        if self.pct < -self.threshold:
            return "improvement"
        return "ok"

    def as_dict(self) -> dict:
        return {
            "wall_a": self.wall_a,
            "wall_b": self.wall_b,
            "delta": self.delta,
            "pct": self.pct,
            "threshold": self.threshold,
            "verdict": self.verdict,
            "dominant_phase": self.dominant_phase,
            "dominant_worker": self.dominant_worker,
            "phases": {
                p: {"a": a, "b": b, "delta": d}
                for p, (a, b, d) in self.phases.items()
            },
            "workers": {
                str(w): {"a": a, "b": b, "delta": d}
                for w, (a, b, d) in self.workers.items()
            },
        }

    def render(self) -> str:
        lines = [
            f"wall time     {self.wall_a:>10.3f}s -> {self.wall_b:>10.3f}s  "
            f"({self.pct:+.1%})  verdict: {self.verdict.upper()}",
            "",
            f"{'phase':<10} {'A (s)':>10} {'B (s)':>10} {'delta':>10}",
        ]
        for p, (a, b, d) in self.phases.items():
            mark = "  <- dominant" if p == self.dominant_phase else ""
            lines.append(f"{p:<10} {a:>10.3f} {b:>10.3f} {d:>+10.3f}{mark}")
        lines.append("")
        lines.append(
            f"{'worker':<10} {'A (s)':>10} {'B (s)':>10} {'delta':>10}"
            "   (active time, waits excluded)"
        )
        for w in sorted(self.workers):
            a, b, d = self.workers[w]
            mark = "  <- dominant" if w == self.dominant_worker else ""
            lines.append(f"{w:<10} {a:>10.3f} {b:>10.3f} {d:>+10.3f}{mark}")
        return "\n".join(lines)


def compare_runs(
    a: Union[dict, str, Path], b: Union[dict, str, Path], max_slowdown: float = 0.05
) -> RegressionReport:
    """Diff two run summaries (dicts or paths) and attribute the delta.

    ``max_slowdown`` is the relative wall-clock growth tolerated before the
    verdict flips to ``regression`` (symmetric for ``improvement``).
    """
    if not isinstance(a, dict):
        a = load_summary(a)
    if not isinstance(b, dict):
        b = load_summary(b)
    report = RegressionReport(
        wall_a=float(a["wall_time"]),
        wall_b=float(b["wall_time"]),
        threshold=float(max_slowdown),
    )
    for phase in PHASES:
        pa = float(a["phases"].get(phase, 0.0))
        pb = float(b["phases"].get(phase, 0.0))
        report.phases[phase] = (pa, pb, pb - pa)

    def active(doc: dict, wid: str) -> float:
        phases = doc.get("workers", {}).get(wid, {}).get("phases", {})
        return sum(float(phases.get(p, 0.0)) for p in CAUSAL_PHASES)

    ids = set(a.get("workers", {})) | set(b.get("workers", {}))
    for wid in sorted(ids, key=int):
        wa, wb = active(a, wid), active(b, wid)
        report.workers[int(wid)] = (wa, wb, wb - wa)

    # Dominant phase: the causal phase that moved most. The wait phase only
    # wins when nothing causal explains it (e.g. the PS itself got slower),
    # i.e. the wait delta dwarfs every active delta.
    causal_dom = max(CAUSAL_PHASES, key=lambda p: abs(report.phases[p][2]))
    wait_delta = report.phases.get("wait", (0.0, 0.0, 0.0))[2]
    if abs(report.phases[causal_dom][2]) >= 0.25 * abs(wait_delta):
        report.dominant_phase = causal_dom
    else:
        report.dominant_phase = "wait"
    if report.workers:
        report.dominant_worker = max(
            report.workers, key=lambda w: abs(report.workers[w][2])
        )
    return report


__all__ = [
    "CAUSAL_PHASES",
    "PHASES",
    "PHASE_GROUPS",
    "RegressionReport",
    "SUMMARY_SCHEMA",
    "compare_runs",
    "load_summary",
    "run_summary",
    "save_summary",
]
