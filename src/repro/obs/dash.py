"""`repro dash`: self-contained static HTML dashboard + CSV/Prometheus exports.

Renders a sampled run (:class:`~repro.obs.timeseries.MetricSampler`) into a
single HTML file with inline-SVG time-series charts — no external scripts,
stylesheets, fonts or network fetches. Fault windows (from the tracer's
``cat="fault"`` spans, falling back to ``FaultSchedule.windows()``) are
shaded as labelled regions behind every chart.

Chart conventions (one consistent grammar across the file):

* lines are 2px round-capped with a ~10%-opacity area wash; the last point
  carries an 8px end-dot with a 2px surface ring and a direct end label;
* per-worker overlays use a fixed categorical palette (assigned by worker
  id, never re-ordered by rank) with a legend; single-series charts use
  slot 1 and no legend;
* text (labels, values, legends) always uses ink tokens, never the series
  color; every chart group has a table-view twin, and the full samples are
  available via :func:`export_csv`;
* hover shows a crosshair + tooltip (inline JS, keyboard-reachable values
  stay in the tables).
"""

from __future__ import annotations

import html
import json
from typing import Optional

from repro.obs.health import health_report

#: Validated categorical palette (light, dark) — fixed slot order; worker
#: *w* always wears slot ``w % 8`` so identity survives filtering/re-runs.
_PALETTE = [
    ("#2a78d6", "#3987e5"),  # blue
    ("#eb6834", "#d95926"),  # orange
    ("#1baf7a", "#199e70"),  # aqua
    ("#eda100", "#c98500"),  # yellow
    ("#e87ba4", "#d55181"),  # magenta
    ("#008300", "#008300"),  # green
    ("#4a3aa7", "#9085e9"),  # violet
    ("#e34948", "#e66767"),  # red
]

#: Cap on overlaid series per chart (past 8 the palette would cycle).
_MAX_OVERLAY = 8

_W, _H = 560, 120  # chart viewBox; plot area inset by the margins below
_ML, _MR, _MT, _MB = 8, 86, 8, 18


def _fmt(v: float) -> str:
    """Compact human number: 1.28K / 4.2M / 3.1G; small values get 3 sf."""
    a = abs(v)
    for cut, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "K")):
        if a >= cut:
            return f"{v / cut:.3g}{suffix}"
    if a >= 1:
        return f"{v:.3g}"
    if a == 0:
        return "0"
    return f"{v:.3g}"


def fault_windows_from_tracer(tracer) -> list[dict]:
    """``cat="fault"`` spans as ``{kind, start, end, detail}`` windows."""
    out = []
    for span in getattr(tracer, "spans", []) or []:
        if span.cat != "fault" or span.end is None:
            continue
        detail = ", ".join(
            f"{k}={v}" for k, v in sorted(span.attrs.items()) if k != "kind"
        )
        out.append(
            {
                "kind": span.name.removeprefix("faults."),
                "start": span.start,
                "end": span.end,
                "detail": detail,
            }
        )
    out.sort(key=lambda w: (w["start"], w["kind"]))
    return out


def fault_windows_from_schedule(schedule) -> list[dict]:
    """Planned windows from :meth:`FaultSchedule.windows` (untraced runs)."""
    if not schedule:
        return []
    return [
        {"kind": kind, "start": start, "end": start + duration, "detail": detail}
        for kind, start, duration, detail in schedule.windows()
    ]


class _Chart:
    """One inline-SVG line chart with overlay series + shaded fault regions."""

    def __init__(self, cid: str, title: str, t_max: float, faults: list[dict]) -> None:
        self.cid = cid
        self.title = title
        self.t_max = max(t_max, 1e-9)
        self.faults = faults
        self.series: list[tuple[str, int, list[float], list[float]]] = []

    def add(self, label: str, slot: int, times, values) -> None:
        if len(times):
            self.series.append((label, slot % 8, list(times), list(values)))

    def _scale(self):
        vals = [v for _l, _s, _t, vs in self.series for v in vs]
        lo, hi = min(vals), max(vals)
        if hi - lo < 1e-12:
            lo, hi = lo - 1.0, hi + 1.0
        pad = 0.05 * (hi - lo)
        lo, hi = lo - pad, hi + pad
        px = _W - _ML - _MR
        py = _H - _MT - _MB

        def x(t: float) -> float:
            return _ML + px * (t / self.t_max)

        def y(v: float) -> float:
            return _MT + py * (1.0 - (v - lo) / (hi - lo))

        return x, y, lo + pad, hi - pad

    def svg(self) -> str:
        if not self.series:
            return '<p class="muted">no samples</p>'
        x, y, vlo, vhi = self._scale()
        parts = [
            f'<svg class="spark" data-chart="{self.cid}" viewBox="0 0 {_W} {_H}" '
            f'role="img" aria-label="{html.escape(self.title)}" '
            'preserveAspectRatio="none">'
        ]
        # Fault windows first: shaded regions behind every mark.
        for w in self.faults:
            x0, x1 = x(w["start"]), x(min(w["end"], self.t_max))
            if x1 <= x0:
                continue
            parts.append(
                f'<rect class="fault" x="{x0:.1f}" y="{_MT}" '
                f'width="{x1 - x0:.1f}" height="{_H - _MT - _MB}">'
                f'<title>{html.escape(w["kind"])} {html.escape(w["detail"])}</title></rect>'
            )
        # Baseline + min/max tick labels (the values not directly labelled).
        parts.append(
            f'<line class="axis" x1="{_ML}" y1="{_H - _MB}" '
            f'x2="{_W - _MR}" y2="{_H - _MB}"/>'
        )
        parts.append(
            f'<text class="tick" x="{_W - _MR + 6}" y="{_MT + 8}">{_fmt(vhi)}</text>'
        )
        parts.append(
            f'<text class="tick" x="{_W - _MR + 6}" y="{_H - _MB}">{_fmt(vlo)}</text>'
        )
        for label, slot, ts, vs in self.series:
            pts = " ".join(f"{x(t):.1f},{y(v):.1f}" for t, v in zip(ts, vs))
            area = (
                f"{x(ts[0]):.1f},{_H - _MB} " + pts + f" {x(ts[-1]):.1f},{_H - _MB}"
            )
            parts.append(f'<polygon class="wash s{slot}" points="{area}"/>')
            parts.append(f'<polyline class="line s{slot}" points="{pts}"/>')
        # End-dots + one selective direct label (the last value) per series.
        for i, (label, slot, ts, vs) in enumerate(self.series):
            ex, ey = x(ts[-1]), y(vs[-1])
            parts.append(f'<circle class="dot s{slot}" cx="{ex:.1f}" cy="{ey:.1f}" r="4"/>')
            if len(self.series) == 1:
                parts.append(
                    f'<text class="end" x="{ex + 8:.1f}" y="{ey + 3:.1f}">'
                    f"{_fmt(vs[-1])}</text>"
                )
        parts.append(
            f'<line class="xhair" x1="-10" y1="{_MT}" x2="-10" y2="{_H - _MB}"/>'
        )
        parts.append("</svg>")
        return "".join(parts)

    def data_json(self) -> str:
        x, y, _lo, _hi = self._scale()
        payload = {
            "tmax": self.t_max,
            "ml": _ML,
            "pw": _W - _ML - _MR,
            "vw": _W,
            "series": [
                {"label": l, "slot": s, "t": [round(t, 6) for t in ts],
                 "v": vs}
                for l, s, ts, vs in self.series
            ],
        }
        return json.dumps(payload)

    def legend(self) -> str:
        if len(self.series) < 2:
            return ""
        chips = "".join(
            f'<span class="chip"><i class="sw s{s}"></i>{html.escape(l)}</span>'
            for l, s, _t, _v in self.series
        )
        return f'<div class="legend">{chips}</div>'

    def table(self) -> str:
        rows = "".join(
            f"<tr><td>{html.escape(l)}</td><td>{_fmt(min(vs))}</td>"
            f"<td>{_fmt(sum(vs) / len(vs))}</td><td>{_fmt(max(vs))}</td>"
            f"<td>{_fmt(vs[-1])}</td><td>{len(vs)}</td></tr>"
            for l, _s, _t, vs in self.series
        )
        return (
            "<details><summary>Table view</summary><table class=\"tv\">"
            "<thead><tr><th>series</th><th>min</th><th>mean</th><th>max</th>"
            "<th>last</th><th>n</th></tr></thead>"
            f"<tbody>{rows}</tbody></table></details>"
        )

    def render(self) -> str:
        return (
            f'<figure class="chart" id="fig-{self.cid}">'
            f"<figcaption>{html.escape(self.title)}</figcaption>"
            + self.svg()
            + f'<script type="application/json" id="d-{self.cid}">'
            + self.data_json().replace("</", "<\\/")
            + "</script>"
            + self.legend()
            + self.table()
            + "</figure>"
        )


def _style() -> str:
    light = "".join(f"--s{i}:{l};" for i, (l, _d) in enumerate(_PALETTE))
    dark = "".join(f"--s{i}:{d};" for i, (_l, d) in enumerate(_PALETTE))
    series_css = "".join(
        f".line.s{i}{{stroke:var(--s{i})}}"
        f".wash.s{i}{{fill:var(--s{i})}}"
        f".dot.s{i}{{fill:var(--s{i})}}"
        f".sw.s{i}{{background:var(--s{i})}}"
        for i in range(8)
    )
    return f"""<style>
:root{{color-scheme:light;
  --surface:#fcfcfb;--page:#f9f9f7;--ink:#0b0b0b;--ink2:#52514e;
  --muted:#898781;--grid:#e1e0d9;--axis:#c3c2b7;--critical:#d03b3b;
  --serious:#ec835a;{light}}}
@media (prefers-color-scheme: dark){{:root:not([data-theme=light]){{color-scheme:dark;
  --surface:#1a1a19;--page:#0d0d0d;--ink:#ffffff;--ink2:#c3c2b7;
  --muted:#898781;--grid:#2c2c2a;--axis:#383835;--critical:#d03b3b;
  --serious:#ec835a;{dark}}}}}
:root[data-theme=dark]{{color-scheme:dark;
  --surface:#1a1a19;--page:#0d0d0d;--ink:#ffffff;--ink2:#c3c2b7;
  --muted:#898781;--grid:#2c2c2a;--axis:#383835;--critical:#d03b3b;
  --serious:#ec835a;{dark}}}
*{{box-sizing:border-box}}
body{{margin:0;background:var(--page);color:var(--ink);
  font:14px/1.45 system-ui,-apple-system,"Segoe UI",sans-serif;padding:24px}}
h1{{font-size:20px;margin:0 0 2px}}
.sub{{color:var(--ink2);margin:0 0 20px}}
.muted{{color:var(--muted)}}
.tiles{{display:flex;gap:12px;flex-wrap:wrap;margin-bottom:24px}}
.tile{{background:var(--surface);border:1px solid var(--grid);border-radius:8px;
  padding:12px 16px;min-width:130px}}
.tile .label{{color:var(--ink2);font-size:12px}}
.tile .value{{font-size:26px;font-weight:600}}
.tile.hero .value{{font-size:48px}}
section{{margin-bottom:28px}}
section>h2{{font-size:15px;margin:0 0 10px;color:var(--ink)}}
.grid{{display:grid;grid-template-columns:repeat(auto-fill,minmax(380px,1fr));gap:14px}}
figure.chart{{background:var(--surface);border:1px solid var(--grid);
  border-radius:8px;margin:0;padding:10px 12px;position:relative}}
figcaption{{font-size:12px;color:var(--ink2);margin-bottom:4px}}
svg.spark{{width:100%;height:120px;display:block}}
.line{{fill:none;stroke-width:2;stroke-linecap:round;stroke-linejoin:round;
  vector-effect:non-scaling-stroke}}
.wash{{opacity:.1;stroke:none}}
.dot{{stroke:var(--surface);stroke-width:2}}
.axis{{stroke:var(--axis);stroke-width:1}}
.tick,.end{{font:10px system-ui,sans-serif;fill:var(--muted);
  font-variant-numeric:tabular-nums}}
.end{{fill:var(--ink2)}}
.fault{{fill:var(--serious);opacity:.14}}
.xhair{{stroke:var(--axis);stroke-width:1}}
.legend{{display:flex;gap:10px;flex-wrap:wrap;margin-top:6px}}
.chip{{display:inline-flex;align-items:center;gap:5px;font-size:11px;
  color:var(--ink2)}}
.sw{{display:inline-block;width:10px;height:10px;border-radius:3px}}
.chip .sw.fault-sw{{background:var(--serious);opacity:.4}}
details{{margin-top:6px;font-size:12px}}
summary{{color:var(--muted);cursor:pointer}}
table.tv{{border-collapse:collapse;margin-top:6px;width:100%}}
table.tv th,table.tv td{{text-align:right;padding:2px 8px;
  border-bottom:1px solid var(--grid);font-variant-numeric:tabular-nums}}
table.tv th:first-child,table.tv td:first-child{{text-align:left}}
table.health{{border-collapse:collapse;width:100%;background:var(--surface);
  border:1px solid var(--grid);border-radius:8px}}
table.health th,table.health td{{text-align:right;padding:6px 12px;
  border-bottom:1px solid var(--grid);font-variant-numeric:tabular-nums}}
table.health th:first-child,table.health td:first-child{{text-align:left}}
.flag{{color:var(--critical);font-weight:600}}
#tip{{position:fixed;pointer-events:none;background:var(--surface);
  border:1px solid var(--axis);border-radius:6px;padding:6px 9px;font-size:11px;
  color:var(--ink);display:none;z-index:9;box-shadow:0 2px 8px rgba(0,0,0,.12)}}
#tip .t{{color:var(--muted);margin-bottom:2px}}
#tip .row{{display:flex;align-items:center;gap:5px;
  font-variant-numeric:tabular-nums}}
{series_css}
</style>"""


_SCRIPT = """<script>
(function () {
  var tip = document.createElement('div');
  tip.id = 'tip';
  document.body.appendChild(tip);
  document.querySelectorAll('svg.spark').forEach(function (svg) {
    var data = JSON.parse(
      document.getElementById('d-' + svg.dataset.chart).textContent);
    var xhair = svg.querySelector('.xhair');
    svg.addEventListener('mousemove', function (ev) {
      var box = svg.getBoundingClientRect();
      var frac = ((ev.clientX - box.left) / box.width * data.vw - data.ml)
        / data.pw;
      var t = Math.min(Math.max(frac, 0), 1) * data.tmax;
      var rows = '<div class="t">t = ' + t.toFixed(2) + 's</div>';
      var tx = null;
      data.series.forEach(function (s) {
        var i = 0;
        while (i + 1 < s.t.length && s.t[i + 1] <= t) i++;
        if (i + 1 < s.t.length && t - s.t[i] > s.t[i + 1] - t) i++;
        if (tx === null) tx = s.t[i];
        rows += '<div class="row"><i class="sw s' + s.slot + '"></i>' +
          s.label + ': ' + Number(s.v[i].toPrecision(4)) + '</div>';
      });
      if (tx !== null) {
        xhair.setAttribute('x1', data.ml + tx / data.tmax * data.pw);
        xhair.setAttribute('x2', data.ml + tx / data.tmax * data.pw);
      }
      tip.innerHTML = rows;
      tip.style.display = 'block';
      tip.style.left = (ev.clientX + 14) + 'px';
      tip.style.top = (ev.clientY + 10) + 'px';
    });
    svg.addEventListener('mouseleave', function () {
      tip.style.display = 'none';
      xhair.setAttribute('x1', -10);
      xhair.setAttribute('x2', -10);
    });
  });
})();
</script>"""


def render_dashboard(result, sampler=None, title: Optional[str] = None) -> str:
    """Render a sampled run as one self-contained HTML page."""
    if sampler is None:
        sampler = getattr(result, "sampler", None)
    if sampler is None:
        raise ValueError(
            "render_dashboard needs a sampled run: call "
            "trainer.enable_sampling() before run(), or pass sampler="
        )
    tracer = getattr(result, "tracer", None)
    faults = fault_windows_from_tracer(tracer)
    if not faults:
        faults = fault_windows_from_schedule(
            getattr(result.context.spec, "faults", None)
        )
    t_max = float(result.wall_time)
    health = health_report(result, sampler)
    title = title or f"{result.sync_name} run"

    workers = sorted(
        {
            int(name.split(".")[2])
            for name in sampler.series
            if name.startswith("osp.worker.")
        }
    )
    shown = workers[:_MAX_OVERLAY]

    def worker_chart(cid: str, caption: str, suffix: str) -> Optional[_Chart]:
        chart = _Chart(cid, caption, t_max, faults)
        for w in shown:
            s = sampler.series.get(f"osp.worker.{w}.{suffix}")
            if s is not None and len(s):
                chart.add(f"worker {w}", w, s.times, s.values)
        return chart if chart.series else None

    sections: list[str] = []

    # -- per-worker health ---------------------------------------------------
    rows = []
    for wh in health.workers:
        flag = (
            ' <span class="flag" title="straggler">&#9888; straggler</span>'
            if wh.is_straggler
            else ""
        )
        stale_max = max(wh.staleness_hist) if wh.staleness_hist else 0
        rows.append(
            f"<tr><td>worker {wh.worker}{flag}</td><td>{wh.iterations}</td>"
            f"<td>{wh.mean_compute:.4f}</td><td>{wh.mean_sync:.4f}</td>"
            f"<td>{wh.straggler_z:+.2f}</td><td>{wh.utilization:.1%}</td>"
            f"<td>{stale_max}</td>"
            f"<td>{_fmt(wh.mean_effective_bandwidth)}B/s</td>"
            f"<td>{_fmt(wh.peak_ics_backlog)}B</td></tr>"
        )
    charts = [
        c
        for c in (
            worker_chart("w-compute", "compute time (s)", "compute_time"),
            worker_chart("w-sync", "sync time / BST (s)", "sync_time"),
            worker_chart("w-stale", "observed staleness (iterations)", "staleness"),
            worker_chart("w-backlog", "ICS backlog (bytes)", "ics_backlog_bytes"),
            worker_chart("w-bw", "effective uplink bandwidth (B/s)", "effective_bandwidth"),
        )
        if c is not None
    ]
    note = (
        f'<p class="muted">showing workers {shown[0]}–{shown[-1]} of '
        f"{len(workers)} in overlays; the table covers all workers</p>"
        if len(workers) > _MAX_OVERLAY
        else ""
    )
    sections.append(
        "<section><h2>Per-worker health</h2>"
        '<table class="health"><thead><tr><th>worker</th><th>iters</th>'
        "<th>mean compute (s)</th><th>mean BST (s)</th><th>straggler z</th>"
        "<th>util</th><th>stale max</th><th>mean uplink</th>"
        "<th>peak ICS backlog</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>{note}"
        f'<div class="grid" style="margin-top:14px">'
        + "".join(c.render() for c in charts)
        + "</div></section>"
    )

    # -- protocol + cluster gauges ------------------------------------------
    gauge_caps = {
        "osp.sgu_budget": "Eq. 5 S(Gᵘ) budget (bytes)",
        "osp.u_max": "U_max upper bound (bytes)",
        "osp.inflight_ics_bytes": "in-flight ICS (bytes)",
        "osp.quorum_size": "quorum size",
        "obs.ps.version": "PS version",
        "timeseries.net.inflight_bytes": "network in-flight (bytes)",
        "timeseries.net.active_flows": "active flows",
        "timeseries.ps.pending_deposits": "PS pending deposits",
        "timeseries.ps.open_buckets": "PS open buckets",
    }
    cluster = []
    for name, caption in gauge_caps.items():
        s = sampler.series.get(name)
        if s is None or not len(s):
            continue
        chart = _Chart(name.replace(".", "-"), caption, t_max, faults)
        chart.add(name, 0, s.times, s.values)
        cluster.append(chart.render())
    if cluster:
        sections.append(
            "<section><h2>Protocol &amp; cluster</h2>"
            f'<div class="grid">{"".join(cluster)}</div></section>'
        )

    # -- per-link utilisation ------------------------------------------------
    links = sorted(
        {
            name.split(".")[2]
            for name in sampler.series
            if name.startswith("timeseries.link.")
        }
    )
    link_charts = []
    for link in links:
        s = sampler.series.get(f"timeseries.link.{link}.utilization")
        if s is None or not len(s):
            continue
        chart = _Chart(
            "link-" + link.replace(":", "-"), f"link {link} utilisation", t_max, faults
        )
        chart.add(link, 0, s.times, s.values)
        link_charts.append(chart.render())
    if link_charts:
        sections.append(
            "<section><h2>Links</h2>"
            f'<div class="grid">{"".join(link_charts)}</div></section>'
        )

    fault_chip = (
        '<span class="chip"><i class="sw fault-sw"></i>&#9888; fault window'
        f" ({len(faults)})</span>"
        if faults
        else ""
    )
    stragglers = (
        ", ".join(f"worker {w}" for w in health.stragglers) or "none"
    )
    head = (
        f"<h1>{html.escape(title)}</h1>"
        f'<p class="sub">sync={html.escape(result.sync_name)} · '
        f"{len(result.recorder.iterations)} iterations · "
        f"{sampler.samples_taken} samples @ {sampler.interval:.3g}s · "
        f"stragglers: {html.escape(stragglers)} {fault_chip}</p>"
        '<div class="tiles">'
        '<div class="tile hero"><div class="label">wall time (virtual s)</div>'
        f'<div class="value">{result.wall_time:.2f}</div></div>'
        '<div class="tile"><div class="label">throughput (samples/s)</div>'
        f'<div class="value">{_fmt(result.throughput)}</div></div>'
        '<div class="tile"><div class="label">mean BST (s)</div>'
        f'<div class="value">{result.mean_bst:.3f}</div></div>'
        '<div class="tile"><div class="label">mean BCT (s)</div>'
        f'<div class="value">{result.mean_bct:.3f}</div></div>'
        "</div>"
    )
    return (
        "<!doctype html><html><head><meta charset=\"utf-8\">"
        f"<title>{html.escape(title)}</title>"
        '<meta name="viewport" content="width=device-width,initial-scale=1">'
        + _style()
        + "</head><body>"
        + head
        + "".join(sections)
        + _SCRIPT
        + "</body></html>"
    )


def export_csv(sampler) -> str:
    """All samples in long format: ``time,track,value`` (header included)."""
    lines = ["time,track,value"]
    for name in sorted(sampler.series):
        s = sampler.series[name]
        for t, v in zip(s.times.tolist(), s.values.tolist()):
            # .tolist() yields python floats: repr is the shortest exact
            # form, not numpy's "np.float64(...)" wrapper.
            lines.append(f"{t!r},{name},{v!r}")
    return "\n".join(lines) + "\n"


def export_prometheus(sampler, prefix: str = "repro") -> str:
    """Last sampled values in Prometheus text exposition format.

    Per-worker and per-link tracks become labelled metrics
    (``repro_osp_worker_compute_time{worker="3"}``); everything else is a
    plain gauge named after the track with dots → underscores.
    """
    groups: dict[str, list[tuple[str, float]]] = {}
    for name in sorted(sampler.series):
        s = sampler.series[name]
        last = s.last()
        if last is None:
            continue
        _t, value = last
        parts = name.split(".")
        if name.startswith("osp.worker.") and len(parts) == 4:
            metric = f"{prefix}_osp_worker_{parts[3]}"
            label = f'worker="{parts[2]}"'
        elif name.startswith("timeseries.link.") and len(parts) == 4:
            metric = f"{prefix}_timeseries_link_{parts[3]}"
            label = f'link="{parts[2]}"'
        else:
            metric = prefix + "_" + name.replace(".", "_")
            label = ""
        groups.setdefault(metric, []).append((label, value))
    lines = []
    for metric in sorted(groups):
        lines.append(f"# TYPE {metric} gauge")
        for label, value in groups[metric]:
            lines.append(f"{metric}{{{label}}} {value!r}" if label else f"{metric} {value!r}")
    return "\n".join(lines) + "\n"


def render_multijob_dashboard(result, title: Optional[str] = None) -> str:
    """Render a co-tenant :class:`~repro.multijob.MultiJobResult` as one
    self-contained HTML page: per-job tiles, an interference matrix, and
    (when the runner sampled) per-tenant fabric-occupancy charts."""
    title = title or f"{len(result.jobs)} co-tenant jobs"
    sampler = getattr(result, "sampler", None)
    t_max = float(result.wall_time)

    # -- per-job table -------------------------------------------------------
    rows = []
    for name, run in result.jobs.items():
        res = run.result
        rows.append(
            f"<tr><td>{html.escape(name)}</td>"
            f"<td>{html.escape(res.sync_name)}</td>"
            f"<td>{run.queue_wait:.2f}</td><td>{run.wall_time:.2f}</td>"
            f"<td>{_fmt(res.throughput)}</td>"
            f"<td>{res.mean_bst * 1e3:.0f}</td>"
            f"<td>{_fmt(run.job_bytes)}B</td>"
            f"<td>{run.contended_share:.1%}</td>"
            f"<td>{html.escape(','.join(map(str, run.placement.hosts)))}</td></tr>"
        )
    sections = [
        "<section><h2>Jobs</h2>"
        '<table class="health"><thead><tr><th>job</th><th>sync</th>'
        "<th>queued (s)</th><th>wall (s)</th><th>samples/s</th>"
        "<th>BST (ms)</th><th>moved</th><th>contended</th><th>hosts</th>"
        "</tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table></section>"
    ]

    # -- interference matrix -------------------------------------------------
    matrix = result.interference_matrix()
    names = list(matrix)
    if len(names) > 1:
        head_cells = "".join(f"<th>{html.escape(n)}</th>" for n in names)
        body = []
        for a in names:
            cells = "".join(
                f"<td>{'&mdash;' if a == b else f'{matrix[a][b]:.2f}'}</td>"
                for b in names
            )
            body.append(f"<tr><td>{html.escape(a)}</td>{cells}</tr>")
        sections.append(
            "<section><h2>Interference (seconds of fabric overlap)</h2>"
            f'<table class="health"><thead><tr><th></th>{head_cells}</tr>'
            f"</thead><tbody>{''.join(body)}</tbody></table></section>"
        )

    # -- per-tenant occupancy charts ----------------------------------------
    if sampler is not None:
        charts = []
        for suffix, caption in (
            ("active_flows", "active flows per tenant"),
            ("inflight_bytes", "in-flight bytes per tenant"),
        ):
            chart = _Chart(f"mj-{suffix}", caption, t_max, [])
            for slot, name in enumerate(result.jobs):
                s = sampler.series.get(f"multijob.{name}.{suffix}")
                if s is not None and len(s):
                    chart.add(name, slot, s.times, s.values)
            if chart.series:
                charts.append(chart.render())
        if charts:
            sections.append(
                "<section><h2>Fabric occupancy</h2>"
                f'<div class="grid">{"".join(charts)}</div></section>'
            )

    head = (
        f"<h1>{html.escape(title)}</h1>"
        f'<p class="sub">{html.escape(result.placement)} placement &middot; '
        f"{html.escape(result.admission)} admission &middot; "
        f"{result.n_hosts} hosts &times; {result.slots_per_host} slots</p>"
        '<div class="tiles">'
        '<div class="tile hero"><div class="label">makespan (virtual s)</div>'
        f'<div class="value">{result.wall_time:.2f}</div></div>'
        '<div class="tile"><div class="label">jobs</div>'
        f'<div class="value">{len(result.jobs)}</div></div>'
        "</div>"
    )
    return (
        "<!doctype html><html><head><meta charset=\"utf-8\">"
        f"<title>{html.escape(title)}</title>"
        '<meta name="viewport" content="width=device-width,initial-scale=1">'
        + _style()
        + "</head><body>"
        + head
        + "".join(sections)
        + _SCRIPT
        + "</body></html>"
    )


__all__ = [
    "export_csv",
    "export_prometheus",
    "fault_windows_from_schedule",
    "fault_windows_from_tracer",
    "render_dashboard",
    "render_multijob_dashboard",
]
