"""Per-worker health attribution: straggler scores, utilisation, staleness.

Built from a run's recorder (always available) and enriched with the
time-series plane when the run was sampled. The health model answers the
operator question behind the paper's §6.2 heterogeneity study: *which*
worker is slow, by how many standard deviations, and is its slowness
compute (straggling) or synchronization (backlog/staleness)?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass
class WorkerHealth:
    """Health summary for one worker over a whole run."""

    worker: int
    iterations: int
    mean_compute: float
    mean_sync: float
    #: Standard-deviations of this worker's mean compute time above the
    #: cluster mean-of-means. > 2 flags a straggler; < 0 is a fast worker.
    straggler_z: float
    #: Fraction of the run the worker spent computing (vs syncing/idle).
    utilization: float
    #: ``{observed staleness value: sample count}`` from the sampled
    #: ``osp.worker.{w}.staleness`` track (empty when the run was unsampled).
    staleness_hist: dict[int, int] = field(default_factory=dict)
    #: Mean sampled uplink goodput in bytes/s (0.0 when unsampled).
    mean_effective_bandwidth: float = 0.0
    #: Peak sampled ICS backlog in bytes (0.0 when unsampled or non-OSP).
    peak_ics_backlog: float = 0.0

    @property
    def is_straggler(self) -> bool:
        return self.straggler_z > 2.0

    def as_dict(self) -> dict:
        return {
            "worker": self.worker,
            "iterations": self.iterations,
            "mean_compute": self.mean_compute,
            "mean_sync": self.mean_sync,
            "straggler_z": self.straggler_z,
            "utilization": self.utilization,
            "staleness_hist": {str(k): v for k, v in sorted(self.staleness_hist.items())},
            "mean_effective_bandwidth": self.mean_effective_bandwidth,
            "peak_ics_backlog": self.peak_ics_backlog,
        }


@dataclass
class HealthReport:
    """Cluster-wide health: one :class:`WorkerHealth` per worker."""

    workers: list[WorkerHealth]
    wall_time: float

    @property
    def stragglers(self) -> list[int]:
        return [w.worker for w in self.workers if w.is_straggler]

    def as_dict(self) -> dict:
        return {
            "wall_time": self.wall_time,
            "stragglers": self.stragglers,
            "workers": [w.as_dict() for w in self.workers],
        }

    def render(self) -> str:
        lines = [
            f"{'worker':>6} {'iters':>6} {'compute':>9} {'sync':>9} "
            f"{'z':>6} {'util':>6} {'stale(max)':>10}"
        ]
        for w in self.workers:
            stale_max = max(w.staleness_hist) if w.staleness_hist else 0
            flag = " <- straggler" if w.is_straggler else ""
            lines.append(
                f"{w.worker:>6} {w.iterations:>6} {w.mean_compute:>9.4f} "
                f"{w.mean_sync:>9.4f} {w.straggler_z:>+6.2f} "
                f"{w.utilization:>6.1%} {stale_max:>10}{flag}"
            )
        return "\n".join(lines)


def health_report(result, sampler=None) -> HealthReport:
    """Build a :class:`HealthReport` from a :class:`TrainingResult`.

    ``sampler`` defaults to ``result.sampler``; pass one explicitly to
    attribute health from a detached sampler.
    """
    if sampler is None:
        sampler = getattr(result, "sampler", None)
    recorder = result.recorder
    wall = float(result.wall_time) or 1.0

    per_worker: dict[int, list] = {}
    for rec in recorder.iterations:
        per_worker.setdefault(rec.worker, []).append(rec)

    means = {
        w: float(np.mean([r.compute_time for r in recs]))
        for w, recs in per_worker.items()
    }

    workers = []
    for w in sorted(per_worker):
        recs = per_worker[w]
        # Leave-one-out z-score: measure each worker against the *other*
        # workers' spread. A straggler inflates the population std enough
        # to hide itself in small clusters; excluded from its own baseline
        # it sticks out at full strength.
        others = np.array(
            [m for ow, m in means.items() if ow != w], dtype=np.float64
        )
        if others.size >= 2:
            base_mean = float(others.mean())
            # Floor the spread at 1% of the baseline so a near-deterministic
            # cluster doesn't turn ordinary jitter into astronomical scores.
            base_std = max(float(others.std()), 0.01 * abs(base_mean), 1e-12)
            z = (means[w] - base_mean) / base_std
        else:
            z = 0.0
        health = WorkerHealth(
            worker=w,
            iterations=len(recs),
            mean_compute=means[w],
            mean_sync=float(np.mean([r.sync_time for r in recs])),
            straggler_z=z,
            utilization=min(1.0, sum(r.compute_time for r in recs) / wall),
        )
        if sampler is not None:
            stale = sampler.series.get(f"osp.worker.{w}.staleness")
            if stale is not None and len(stale):
                vals, counts = np.unique(
                    np.rint(stale.values).astype(np.int64), return_counts=True
                )
                health.staleness_hist = {
                    int(v): int(c) for v, c in zip(vals, counts)
                }
            bw = sampler.series.get(f"osp.worker.{w}.effective_bandwidth")
            if bw is not None and len(bw):
                health.mean_effective_bandwidth = float(bw.values.mean())
            backlog = sampler.series.get(f"osp.worker.{w}.ics_backlog_bytes")
            if backlog is not None and len(backlog):
                health.peak_ics_backlog = float(backlog.values.max())
        workers.append(health)
    return HealthReport(workers=workers, wall_time=float(result.wall_time))


__all__ = ["HealthReport", "WorkerHealth", "health_report"]
