"""Overlap analysis: how much synchronization was hidden inside compute.

The paper's central quantitative claim (Figs. 1–3) is that OSP's ICS stage
drains the unimportant gradients *while the next iteration computes*, so
its bytes cost (almost) no wall-clock time. :class:`OverlapReport` makes
that claim measurable for any recorded run:

* **hidden-sync ratio** — for every sync transfer, the fraction of its
  lifetime that overlapped the owning worker's compute intervals, weighted
  by payload bytes: ``Σ bytes·overlap_frac ÷ Σ bytes``. BSP/ASP score 0
  (every transfer happens inside the blocking sync phase); OSP scores > 0
  as soon as ICS carries traffic.
* **BST decomposition** — exact per-phase time attribution
  (``rs_push / rs_barrier_wait / rs_pull / ...``) from tracer spans.
* **per-layer RS/ICS traffic** — which layers the GIB kept synchronous
  and which it deferred, in bytes.

Reports build either from a finished in-memory run
(:func:`overlap_report_from_run`) or from a unified trace file written by
:func:`~repro.obs.chrome.write_unified_trace`
(:func:`overlap_report_from_trace`), so ``repro report trace.json`` works
offline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.metrics.report import format_table
from repro.obs.tracer import Histogram, Tracer

#: Span names that are whole-iteration envelopes, not sync phases.
_ENVELOPE_SPANS = frozenset({"iteration", "compute", "sync"})

#: Background-track span names (work overlapped with compute by design).
BACKGROUND_SPANS = frozenset({"ics_push", "ics_wait", "ics_pull"})


@dataclass
class OverlapReport:
    """Aggregated overlap/attribution statistics for one run."""

    sync_name: str = "?"
    n_iterations: int = 0
    n_flows: int = 0
    total_sync_bytes: float = 0.0
    hidden_bytes: float = 0.0
    #: phase -> (total bytes, hidden bytes)
    phase_bytes: dict[str, tuple[float, float]] = field(default_factory=dict)
    #: (iteration, total bytes, hidden bytes), iteration-ascending
    per_iteration: list[tuple[int, float, float]] = field(default_factory=list)
    #: per-iteration sync-time distribution (BST)
    bst: Histogram = field(default_factory=Histogram)
    #: span name -> total seconds across the run (BST decomposition)
    phase_time: dict[str, float] = field(default_factory=dict)
    #: stage ("rs"/"ics") -> layer -> payload bytes
    layer_traffic: dict[str, dict[str, float]] = field(default_factory=dict)
    #: recorder counters; most are event counts (int) but byte accumulators
    #: (e.g. ``netsim.prio_bytes.*``) are floats
    counters: dict[str, float] = field(default_factory=dict)

    @property
    def hidden_sync_ratio(self) -> float:
        """Bytes-weighted fraction of sync traffic overlapped with compute."""
        if self.total_sync_bytes <= 0:
            return 0.0
        return self.hidden_bytes / self.total_sync_bytes

    def to_dict(self) -> dict:
        """JSON-serialisable form (``repro report --json``)."""
        return {
            "sync": self.sync_name,
            "n_iterations": self.n_iterations,
            "n_flows": self.n_flows,
            "total_sync_bytes": self.total_sync_bytes,
            "hidden_bytes": self.hidden_bytes,
            "hidden_sync_ratio": self.hidden_sync_ratio,
            "phase_bytes": {
                p: {"bytes": b, "hidden": h} for p, (b, h) in self.phase_bytes.items()
            },
            "bst": self.bst.summary(),
            "phase_time": dict(self.phase_time),
            "layer_traffic": {s: dict(l) for s, l in self.layer_traffic.items()},
            "counters": dict(self.counters),
        }

    # -- rendering ---------------------------------------------------------
    def render(self) -> str:
        """Human-readable multi-table report."""
        lines = [
            f"Overlap report — {self.sync_name}",
            f"  iterations: {self.n_iterations}   sync flows: {self.n_flows}",
            f"  hidden-sync ratio: {self.hidden_sync_ratio:.3f}   "
            f"({_fmt_bytes(self.hidden_bytes)} of "
            f"{_fmt_bytes(self.total_sync_bytes)} sync traffic "
            "overlapped with compute)",
            "",
        ]
        if self.phase_bytes:
            rows = []
            for phase in sorted(self.phase_bytes):
                b, h = self.phase_bytes[phase]
                frac = h / b if b > 0 else 0.0
                rows.append((phase, _fmt_bytes(b), _fmt_bytes(h), f"{frac:.1%}"))
            lines.append(
                format_table(
                    ["phase", "bytes", "hidden", "hidden %"],
                    rows,
                    title="Sync traffic by phase",
                )
            )
            lines.append("")
        if self.phase_time:
            n = max(1, self.n_iterations)
            rows = []
            for name in sorted(self.phase_time, key=self.phase_time.get, reverse=True):
                total = self.phase_time[name]
                bg = " (overlapped)" if name in BACKGROUND_SPANS else ""
                rows.append(
                    (name + bg, f"{total:.3f}", f"{total / n * 1e3:.2f}")
                )
            lines.append(
                format_table(
                    ["span", "total s", "ms/iter"],
                    rows,
                    title="BST decomposition (span time attribution)",
                )
            )
            lines.append("")
        s = self.bst.summary()
        lines.append(
            format_table(
                ["metric", "mean", "p50", "p90", "p99", "max"],
                [
                    (
                        "BST (ms)",
                        f"{s['mean'] * 1e3:.1f}",
                        f"{s['p50'] * 1e3:.1f}",
                        f"{s['p90'] * 1e3:.1f}",
                        f"{s['p99'] * 1e3:.1f}",
                        f"{s['max'] * 1e3:.1f}",
                    )
                ],
                title="Batch synchronization time distribution",
            )
        )
        for stage in sorted(self.layer_traffic):
            per_layer = self.layer_traffic[stage]
            if not per_layer:
                continue
            top = sorted(per_layer.items(), key=lambda kv: -kv[1])[:5]
            lines.append("")
            lines.append(
                format_table(
                    ["layer", "bytes"],
                    [(l, _fmt_bytes(b)) for l, b in top],
                    title=f"Top {stage.upper()} traffic by layer",
                )
            )
        if self.counters:
            lines.append("")
            lines.append(
                format_table(
                    ["counter", "count"],
                    sorted(self.counters.items()),
                    title="Event counters",
                )
            )
        return "\n".join(lines)


def _fmt_bytes(n: float) -> str:
    for unit, div in (("GB", 1e9), ("MB", 1e6), ("KB", 1e3)):
        if abs(n) >= div:
            return f"{n / div:.2f} {unit}"
    return f"{n:.0f} B"


def _overlap_seconds(intervals: list[tuple[float, float]], s: float, e: float) -> float:
    total = 0.0
    for a, b in intervals:
        lo, hi = max(a, s), min(b, e)
        if hi > lo:
            total += hi - lo
    return total


def _accumulate(
    report: OverlapReport,
    compute_by_worker: dict[int, list[tuple[float, float]]],
    flows: Iterable[dict],
) -> None:
    """Fold sync-flow slices into the report's byte accounting."""
    per_it: dict[int, list[float]] = {}
    for f in flows:
        nbytes = float(f["bytes"])
        duration = f["end"] - f["start"]
        worker = f.get("worker")
        intervals = compute_by_worker.get(worker, ())
        if duration > 0 and intervals:
            frac = _overlap_seconds(list(intervals), f["start"], f["end"]) / duration
        else:
            frac = 0.0
        hidden = nbytes * frac
        report.n_flows += 1
        report.total_sync_bytes += nbytes
        report.hidden_bytes += hidden
        phase = str(f.get("phase", "?"))
        b, h = report.phase_bytes.get(phase, (0.0, 0.0))
        report.phase_bytes[phase] = (b + nbytes, h + hidden)
        it = f.get("iteration")
        if it is not None:
            acc = per_it.setdefault(int(it), [0.0, 0.0])
            acc[0] += nbytes
            acc[1] += hidden
    report.per_iteration = [(it, b, h) for it, (b, h) in sorted(per_it.items())]


def _flow_slice(record) -> Optional[dict]:
    """Parse a FlowRecord's conventional ``(phase, worker[, iteration])``
    tag into an attribution slice; None for untagged/foreign flows."""
    tag = record.tag
    if (
        isinstance(tag, tuple)
        and len(tag) >= 2
        and isinstance(tag[0], str)
        and isinstance(tag[1], int)
    ):
        return {
            "phase": tag[0],
            "worker": tag[1],
            "iteration": tag[2] if len(tag) > 2 else None,
            "bytes": record.size,
            "start": record.start_time,
            "end": record.end_time,
        }
    return None


def overlap_report_from_run(
    result, tracer: Optional[Tracer] = None
) -> OverlapReport:
    """Build a report from a finished
    :class:`~repro.cluster.trainer.TrainingResult` (flow records come from
    ``result.context.network``; tracer spans are used when available)."""
    recorder = result.recorder
    tracer = tracer if tracer is not None else getattr(result, "tracer", None)
    report = OverlapReport(sync_name=result.sync_name)
    report.n_iterations = recorder.total_iterations

    compute_by_worker: dict[int, list[tuple[float, float]]] = {}
    for r in recorder.iterations:
        compute_by_worker.setdefault(r.worker, []).append(
            (r.start_time, r.start_time + r.compute_time)
        )
        report.bst.observe(r.sync_time)

    flows = []
    for rec in result.context.network.records:
        sl = _flow_slice(rec)
        if sl is not None:
            flows.append(sl)
    _accumulate(report, compute_by_worker, flows)

    if tracer:
        for span in tracer.spans:
            if span.name in _ENVELOPE_SPANS or span.end is None:
                continue
            report.phase_time[span.name] = (
                report.phase_time.get(span.name, 0.0) + span.duration
            )
        for (stage, layer), nbytes in tracer.traffic.items():
            report.layer_traffic.setdefault(stage, {})[layer] = nbytes
    report.counters = dict(recorder.counters)
    return report


def overlap_report_from_recorder(recorder, sync_name: str = "?") -> OverlapReport:
    """Build a (flow-less) report from a bare
    :class:`~repro.metrics.recorder.Recorder` — e.g. a ``recorder.json``
    reloaded via :func:`repro.metrics.export.load_recorder`. BST stats and
    counters are exact; byte-level overlap needs flow records, so the
    hidden-sync ratio reads 0 here."""
    report = OverlapReport(sync_name=sync_name)
    report.n_iterations = recorder.total_iterations
    for r in recorder.iterations:
        report.bst.observe(r.sync_time)
    report.counters = dict(recorder.counters)
    return report


def overlap_report_from_trace(payload: dict) -> OverlapReport:
    """Build a report from a parsed unified trace file (the JSON written
    by :func:`~repro.obs.chrome.write_unified_trace`)."""
    events = payload.get("traceEvents", [])
    other = payload.get("otherData", {})
    report = OverlapReport(sync_name=str(other.get("sync", "?")))

    compute_by_worker: dict[int, list[tuple[float, float]]] = {}
    flows = []
    for ev in events:
        if ev.get("ph") != "X":
            continue
        args = ev.get("args", {})
        start = ev["ts"] / 1e6
        end = (ev["ts"] + ev.get("dur", 0.0)) / 1e6
        name = ev.get("name", "")
        if ev.get("pid") == "network":
            if "phase" in args:
                flows.append(
                    {
                        "phase": args["phase"],
                        "worker": args.get("worker"),
                        "iteration": args.get("iteration"),
                        "bytes": args.get("bytes", 0.0),
                        "start": start,
                        "end": end,
                    }
                )
            continue
        if name == "compute" and args.get("worker") is not None:
            compute_by_worker.setdefault(int(args["worker"]), []).append(
                (start, end)
            )
        elif name == "sync":
            report.bst.observe(end - start)
            report.n_iterations += 1
        elif name and name not in _ENVELOPE_SPANS and ev.get("cat") != "network":
            report.phase_time[name] = report.phase_time.get(name, 0.0) + (end - start)
    _accumulate(report, compute_by_worker, flows)

    report.layer_traffic = {
        str(stage): {str(l): float(b) for l, b in layers.items()}
        for stage, layers in other.get("traffic", {}).items()
    }
    # JSON round-trips ints as ints and floats exactly (repr), so keep the
    # stored numeric type — int() would truncate byte accumulators.
    report.counters = {
        str(k): v for k, v in other.get("recorderCounters", {}).items()
    }
    return report


__all__ = [
    "BACKGROUND_SPANS",
    "OverlapReport",
    "overlap_report_from_recorder",
    "overlap_report_from_run",
    "overlap_report_from_trace",
]
