"""Central registry of observable-name conventions.

Every ``recorder.incr(...)`` counter, tracer gauge (counter track) and
tracer histogram must use a name declared here. Namespaces:

* ``osp.*``    — OSP protocol events (degradations, deadline misses);
* ``faults.*`` — injected fault activations;
* ``ckpt.*``   — checkpoint/restore events (repro.ckpt);
* ``elastic.*`` — elastic membership changes (worker join/leave);
* ``check.*``  — runtime invariant checker (repro.check);
* ``obs.*``    — measurement-layer streams (network backlog, PS state,
  sync-time distributions).

A tier-1 lint test (``tests/obs/test_registry_lint.py``) greps the source
tree for ``.incr(`` call sites and fails on any name not declared here, so
counter names cannot silently drift between producers and the dashboards
/ benches that read them. Dynamic (f-string) call sites are matched with
``{...}`` treated as a wildcard; at least one declared name must match.
"""

from __future__ import annotations

import fnmatch
import re

#: Event counters recorded on :class:`~repro.metrics.recorder.Recorder`.
COUNTERS: frozenset[str] = frozenset(
    {
        # injected faults (repro.faults)
        "faults.loss_burst",
        "faults.bandwidth_dip",
        "faults.link_flap",
        "faults.straggler",
        "faults.worker_crash",
        "faults.worker_restart",
        # OSP protocol events (repro.core.osp)
        "osp.quorum_timeout",
        "osp.deadline_miss",
        "osp.degraded_quorum",
        "osp.bsp_fallback",
        "osp.bsp_fallback_exit",
        # checkpoint/restore (repro.ckpt)
        "ckpt.save",
        "ckpt.restore",
        "ckpt.roundtrip_verified",
        "ckpt.ics_discarded_bytes",
        "ckpt.worker_recover",
        # elastic membership changes (repro.cluster.context)
        "elastic.worker_join",
        "elastic.worker_leave",
        # runtime invariant checker (repro.check)
        "check.violation",
        "check.events_checked",
        # network scheduler work counters (repro.netsim.network)
        "netsim.rerates",
        "netsim.rerate_skipped",
        "netsim.fairshare_calls",
        "netsim.records_dropped",
        # priority scheduling (repro.netsim.network; see docs/performance.md)
        "netsim.prio_preemptions",
        "netsim.prio_bytes.urgent",
        "netsim.prio_bytes.high",
        "netsim.prio_bytes.normal",
        "netsim.prio_bytes.bulk",
        # multi-job co-tenancy attribution (repro.multijob.runner)
        "multijob.job_bytes",
        "multijob.contended_bytes",
        "multijob.solo_bytes",
    }
)

#: Counter-name *templates* with per-entity ``{...}`` segments (a tenant
#: job name, …). Like :data:`TRACKS` templates, each placeholder binds
#: exactly one dot-free segment — job names are validated against
#: ``[A-Za-z0-9_-]+`` at JobSpec construction so instantiations stay
#: single-segment.
COUNTER_TEMPLATES: frozenset[str] = frozenset(
    {
        # per-tenant effective bytes drained by the shared fabric
        "netsim.job_bytes.{job}",
    }
)

#: Streaming counter tracks sampled on the :class:`~repro.obs.Tracer`.
GAUGES: frozenset[str] = frozenset(
    {
        "osp.sgu_budget",
        "osp.u_max",
        "osp.inflight_ics_bytes",
        "osp.quorum_size",
        "obs.net.inflight_bytes",
        "obs.net.active_flows",
        "obs.ps.version",
    }
)

#: Histograms collected on the :class:`~repro.obs.Tracer`.
HISTOGRAMS: frozenset[str] = frozenset({"obs.bst", "obs.bct"})

#: Time-series track name *templates* sampled by
#: :class:`~repro.obs.timeseries.MetricSampler`. ``{...}`` placeholders
#: stand for a single dotted segment (a worker index, a link name, …).
#: Every series the sampler creates must either be a declared gauge
#: (sampler mirrors of tracer counter tracks keep the gauge's own name)
#: or match one of these templates — the sampler raises on anything else,
#: and the registry lint test enforces the same rule over the source tree.
TRACKS: frozenset[str] = frozenset(
    {
        # cluster-wide signals (repro.obs.timeseries standard probes)
        "timeseries.net.inflight_bytes",
        "timeseries.net.active_flows",
        # priority scheduling; {cls} is urgent / high / normal / bulk
        "timeseries.net.prio.preemptions",
        "timeseries.net.prio.{cls}.bytes",
        "timeseries.ps.pending_deposits",
        "timeseries.ps.open_buckets",
        # per-link signals; {link} is e.g. ``up:3`` / ``down:0``
        "timeseries.link.{link}.utilization",
        "timeseries.link.{link}.queue_depth",
        "timeseries.link.{link}.bandwidth_factor",
        # per-worker health signals; {w} is the worker index
        "osp.worker.{w}.compute_time",
        "osp.worker.{w}.sync_time",
        "osp.worker.{w}.progress",
        "osp.worker.{w}.staleness",
        "osp.worker.{w}.effective_bandwidth",
        "osp.worker.{w}.ics_backlog_bytes",
        # per-tenant fabric occupancy; {job} is the co-tenant job name
        "multijob.{job}.active_flows",
        "multijob.{job}.inflight_bytes",
    }
)

ALL_NAMES: frozenset[str] = COUNTERS | GAUGES | HISTOGRAMS


def is_registered_counter(name: str) -> bool:
    """Is ``name`` a declared recorder counter?

    True for literal :data:`COUNTERS` members and for concrete
    instantiations of the :data:`COUNTER_TEMPLATES` (one dot-free segment
    per placeholder, same semantics as track templates).
    """
    if name in COUNTERS:
        return True
    return any(_template_matches(t, name) for t in COUNTER_TEMPLATES)


def is_registered_track(name: str) -> bool:
    """Is ``name`` a valid time-series track?

    True for declared tracer gauges (the sampler mirrors those under their
    own names) and for concrete instantiations of the :data:`TRACKS`
    templates. Link names may themselves contain ``:`` (``up:3``) but never
    dots, so matching one template segment per placeholder stays exact.
    """
    if name in GAUGES:
        return True
    return any(_template_matches(t, name) for t in TRACKS)


def _template_matches(template: str, name: str) -> bool:
    pattern = re.escape(template)
    # re.escape turns { and } into \{ \} — rewrite each placeholder into a
    # "no dots" group so ``{w}`` can't swallow several dotted segments.
    pattern = re.sub(r"\\\{[^}]*\\\}", r"[^.]+", pattern)
    return re.fullmatch(pattern, name) is not None


def track_pattern_matches_registered(pattern: str) -> bool:
    """Does a (possibly f-string) track-name literal fit the registry?

    Each ``{expr}`` placeholder in ``pattern`` is a single-segment
    wildcard; the pattern must match a concrete instantiation of some
    :data:`TRACKS` template (placeholders instantiated with a sample
    segment) or a declared gauge. Handles concrete names, producer
    templates (``osp.worker.{w}.staleness``) and consumer templates with
    wildcard suffixes (``osp.worker.{w}.{suffix}``) uniformly.
    """
    regex = re.sub(r"\\\{[^}]*\\\}", r"[^.]+", re.escape(pattern))
    samples = [re.sub(r"\{[^}]*\}", "0", t) for t in TRACKS]
    samples.extend(GAUGES)
    return any(re.fullmatch(regex, s) for s in samples)


def pattern_matches_registered(pattern: str, names: frozenset[str] = COUNTERS) -> bool:
    """Does an f-string name template match ≥1 declared name?

    ``{expr}`` placeholders are treated as single-segment wildcards, so
    ``"faults.{ev.kind}"`` matches ``faults.loss_burst`` but a template
    with an undeclared static prefix matches nothing.
    """
    glob = re.sub(r"\{[^}]*\}", "*", pattern)
    if any(fnmatch.fnmatchcase(n, glob) for n in names):
        return True
    if names is COUNTERS:
        # f-string producers of templated counters ("netsim.job_bytes.{job}")
        # match a sample instantiation, exactly like track templates do.
        regex = re.sub(r"\\\{[^}]*\\\}", r"[^.]+", re.escape(pattern))
        samples = [re.sub(r"\{[^}]*\}", "0", t) for t in COUNTER_TEMPLATES]
        return any(re.fullmatch(regex, s) for s in samples)
    return False


__all__ = [
    "ALL_NAMES",
    "COUNTERS",
    "COUNTER_TEMPLATES",
    "GAUGES",
    "HISTOGRAMS",
    "TRACKS",
    "is_registered_counter",
    "is_registered_track",
    "pattern_matches_registered",
    "track_pattern_matches_registered",
]
