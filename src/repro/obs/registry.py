"""Central registry of observable-name conventions.

Every ``recorder.incr(...)`` counter, tracer gauge (counter track) and
tracer histogram must use a name declared here. Namespaces:

* ``osp.*``    — OSP protocol events (degradations, deadline misses);
* ``faults.*`` — injected fault activations;
* ``ckpt.*``   — checkpoint/restore events (repro.ckpt);
* ``elastic.*`` — elastic membership changes (worker join/leave);
* ``check.*``  — runtime invariant checker (repro.check);
* ``obs.*``    — measurement-layer streams (network backlog, PS state,
  sync-time distributions).

A tier-1 lint test (``tests/obs/test_registry_lint.py``) greps the source
tree for ``.incr(`` call sites and fails on any name not declared here, so
counter names cannot silently drift between producers and the dashboards
/ benches that read them. Dynamic (f-string) call sites are matched with
``{...}`` treated as a wildcard; at least one declared name must match.
"""

from __future__ import annotations

import fnmatch
import re

#: Event counters recorded on :class:`~repro.metrics.recorder.Recorder`.
COUNTERS: frozenset[str] = frozenset(
    {
        # injected faults (repro.faults)
        "faults.loss_burst",
        "faults.bandwidth_dip",
        "faults.link_flap",
        "faults.straggler",
        "faults.worker_crash",
        "faults.worker_restart",
        # OSP protocol events (repro.core.osp)
        "osp.quorum_timeout",
        "osp.deadline_miss",
        "osp.degraded_quorum",
        "osp.bsp_fallback",
        "osp.bsp_fallback_exit",
        # checkpoint/restore (repro.ckpt)
        "ckpt.save",
        "ckpt.restore",
        "ckpt.ics_discarded_bytes",
        "ckpt.worker_recover",
        # elastic membership changes (repro.cluster.context)
        "elastic.worker_join",
        "elastic.worker_leave",
        # runtime invariant checker (repro.check)
        "check.violation",
        "check.events_checked",
    }
)

#: Streaming counter tracks sampled on the :class:`~repro.obs.Tracer`.
GAUGES: frozenset[str] = frozenset(
    {
        "osp.sgu_budget",
        "osp.u_max",
        "osp.inflight_ics_bytes",
        "osp.quorum_size",
        "obs.net.inflight_bytes",
        "obs.net.active_flows",
        "obs.ps.version",
    }
)

#: Histograms collected on the :class:`~repro.obs.Tracer`.
HISTOGRAMS: frozenset[str] = frozenset({"obs.bst", "obs.bct"})

ALL_NAMES: frozenset[str] = COUNTERS | GAUGES | HISTOGRAMS


def is_registered_counter(name: str) -> bool:
    """Is ``name`` a declared recorder counter?"""
    return name in COUNTERS


def pattern_matches_registered(pattern: str, names: frozenset[str] = COUNTERS) -> bool:
    """Does an f-string name template match ≥1 declared name?

    ``{expr}`` placeholders are treated as single-segment wildcards, so
    ``"faults.{ev.kind}"`` matches ``faults.loss_burst`` but a template
    with an undeclared static prefix matches nothing.
    """
    glob = re.sub(r"\{[^}]*\}", "*", pattern)
    return any(fnmatch.fnmatchcase(n, glob) for n in names)


__all__ = [
    "ALL_NAMES",
    "COUNTERS",
    "GAUGES",
    "HISTOGRAMS",
    "is_registered_counter",
    "pattern_matches_registered",
]
