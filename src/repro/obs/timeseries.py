"""Time-series metrics plane: clock-driven sampling into ring buffers.

:class:`MetricSampler` hangs off ``Environment.metric_sampler`` and is
invoked by the kernel once per processed event (after its callbacks ran).
When the clock has crossed the next sampling edge it reads every attached
probe and every tracer counter track into fixed-capacity numpy ring
buffers (:class:`Series`) keyed by registered track names.

Two invariants, inherited from the tracer (see ``docs/observability.md``):

1. **Passive / non-perturbing.** Sampling never creates simulation
   events, timeouts or processes — it is a pure read of simulator state at
   event boundaries. A sampled run's ``TrainingResult`` is bit-identical
   to an unsampled one (property-tested under both ``REPRO_FLAT_ARENA``
   settings in ``tests/obs/test_timeseries.py``).
2. **Zero-cost when off.** ``Environment.metric_sampler`` defaults to
   ``None``; the kernel pays one attribute check per event. Sampling
   implies tracing (worker/gauge signals come from the tracer and sync
   hooks), so :meth:`DistributedTrainer.enable_sampling` attaches both.

Every series name must be a registered gauge or match a
``repro.obs.registry.TRACKS`` template — :meth:`MetricSampler.series_for`
raises on anything undeclared, and the registry lint test enforces the
same rule over literal call sites.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Optional

import numpy as np

from repro.obs.registry import is_registered_track

if TYPE_CHECKING:
    from repro.cluster.trainer import DistributedTrainer

#: Default ring capacity — at the default interval (half a base compute
#: time) this covers thousands of iterations before the ring wraps.
DEFAULT_CAPACITY = 4096

#: A probe reads simulator state and yields ``(track_name, value)`` pairs.
Probe = Callable[[float], Iterable[tuple[str, float]]]


class Series:
    """A fixed-capacity ring buffer of ``(virtual time, value)`` samples.

    Appending past capacity overwrites the oldest samples and counts them
    in :attr:`dropped`; :attr:`times` / :attr:`values` always return the
    retained window in chronological order.
    """

    __slots__ = ("name", "capacity", "_t", "_v", "_head", "_count", "dropped")

    def __init__(self, name: str, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.name = name
        self.capacity = int(capacity)
        self._t = np.empty(self.capacity, dtype=np.float64)
        self._v = np.empty(self.capacity, dtype=np.float64)
        self._head = 0  # next write slot
        self._count = 0
        self.dropped = 0

    def append(self, t: float, v: float) -> None:
        self._t[self._head] = t
        self._v[self._head] = v
        self._head = (self._head + 1) % self.capacity
        if self._count < self.capacity:
            self._count += 1
        else:
            self.dropped += 1

    def __len__(self) -> int:
        return self._count

    def _ordered(self, buf: np.ndarray) -> np.ndarray:
        if self._count < self.capacity:
            return buf[: self._count].copy()
        return np.concatenate([buf[self._head :], buf[: self._head]])

    @property
    def times(self) -> np.ndarray:
        """Sample timestamps (virtual seconds), oldest first."""
        return self._ordered(self._t)

    @property
    def values(self) -> np.ndarray:
        """Sample values, oldest first (aligned with :attr:`times`)."""
        return self._ordered(self._v)

    def last(self) -> Optional[tuple[float, float]]:
        """The most recent ``(t, value)`` sample, or None if empty."""
        if self._count == 0:
            return None
        idx = (self._head - 1) % self.capacity
        return float(self._t[idx]), float(self._v[idx])

    def __repr__(self) -> str:
        return f"<Series {self.name} n={self._count} dropped={self.dropped}>"


class MetricSampler:
    """Samples probes + tracer counter tracks on clock edges.

    Parameters
    ----------
    env:
        The simulation environment (clock source). The sampler reads
        ``env.tracer`` lazily at each edge so it works regardless of
        attach order.
    interval:
        Virtual seconds between sampling edges.
    capacity:
        Ring capacity for every series.
    """

    def __init__(self, env, interval: float, capacity: int = DEFAULT_CAPACITY) -> None:
        if interval <= 0:
            raise ValueError(f"sampling interval must be positive, got {interval}")
        self.env = env
        self.interval = float(interval)
        self.capacity = int(capacity)
        self.series: dict[str, Series] = {}
        self._probes: list[Probe] = []
        self._next = env.now  # first edge fires on the first event at/after start
        self.samples_taken = 0

    # ------------------------------------------------------------------ wiring
    def add_probe(self, probe: Probe) -> None:
        """Register a probe called at every sampling edge."""
        self._probes.append(probe)

    def series_for(self, name: str) -> Series:
        """The (lazily created) series for a registered track name."""
        s = self.series.get(name)
        if s is None:
            if not is_registered_track(name):
                raise ValueError(
                    f"unregistered time-series track {name!r}: declare it in "
                    "repro.obs.registry (GAUGES or TRACKS) first"
                )
            s = Series(name, self.capacity)
            self.series[name] = s
        return s

    # ------------------------------------------------------------------ kernel
    def on_advance(self, now: float) -> None:
        """Kernel hook: called after each processed event's callbacks."""
        if now < self._next:
            return
        self.sample(now)
        # One sample per crossing, however many edges the event jumped over
        # (multiplication, not repeated addition, keeps edges drift-free).
        crossed = int((now - self._next) // self.interval) + 1
        self._next += crossed * self.interval

    def sample(self, now: float) -> None:
        """Take one sample of every tracer gauge and attached probe."""
        self.samples_taken += 1
        tracer = getattr(self.env, "tracer", None)
        if tracer is not None:
            gauges = getattr(tracer, "_gauge_last", None)
            if gauges:
                for name, value in gauges.items():
                    self.series_for(name).append(now, value)
        for probe in self._probes:
            for name, value in probe(now):
                self.series_for(name).append(now, float(value))

    # ------------------------------------------------------------------ export
    def as_dict(self) -> dict[str, dict[str, list[float]]]:
        """All series as plain lists (JSON-friendly), keyed by track name."""
        return {
            name: {"t": s.times.tolist(), "v": s.values.tolist()}
            for name, s in sorted(self.series.items())
        }


# --------------------------------------------------------------------- probes
class NetworkProbe:
    """Cluster-wide and per-link network signals.

    * ``timeseries.net.inflight_bytes`` — remaining payload over all
      active flows (as of the last drain; sampling never forces one);
    * ``timeseries.net.active_flows`` — in-flight flow count;
    * ``timeseries.link.{name}.queue_depth`` — flows routed over the link;
    * ``timeseries.link.{name}.utilization`` — window byte delta over
      nominal capacity (fault dips read as *low* utilisation);
    * ``timeseries.link.{name}.bandwidth_factor`` — fault state;
    * ``timeseries.net.prio.preemptions`` / ``timeseries.net.prio.{cls}.bytes``
      — priority-scheduler activity (cumulative, from ``Network.stats``).
    """

    def __init__(self, network) -> None:
        self.network = network
        self._last_t: Optional[float] = None
        self._last_bytes: dict[str, float] = {
            link.name: link.bytes_carried for link in network.topology.links
        }

    def __call__(self, now: float) -> Iterable[tuple[str, float]]:
        net = self.network
        flows = net.active_flows
        yield "timeseries.net.inflight_bytes", float(
            sum(max(f.remaining, 0.0) for f in flows)
        )
        yield "timeseries.net.active_flows", float(len(flows))
        depth: dict[str, int] = {}
        for f in flows:
            for link in f.route:
                depth[link.name] = depth.get(link.name, 0) + 1
        elapsed = 0.0 if self._last_t is None else now - self._last_t
        for link in net.topology.links:
            window = link.bytes_carried - self._last_bytes.get(link.name, 0.0)
            self._last_bytes[link.name] = link.bytes_carried
            yield f"timeseries.link.{link.name}.queue_depth", float(
                depth.get(link.name, 0)
            )
            yield f"timeseries.link.{link.name}.utilization", link.window_utilization(
                window, elapsed
            )
            yield f"timeseries.link.{link.name}.bandwidth_factor", link.bandwidth_factor
        self._last_t = now
        stats = net.stats
        yield "timeseries.net.prio.preemptions", float(
            stats.get("netsim.prio_preemptions", 0)
        )
        for cls_name in ("urgent", "high", "normal", "bulk"):
            yield f"timeseries.net.prio.{cls_name}.bytes", float(
                stats.get(f"netsim.prio_bytes.{cls_name}", 0.0)
            )


class PSProbe:
    """Parameter-server aggregation backlog signals."""

    def __init__(self, ps) -> None:
        self.ps = ps

    def __call__(self, now: float) -> Iterable[tuple[str, float]]:
        yield "timeseries.ps.pending_deposits", float(self.ps.pending_total())
        yield "timeseries.ps.open_buckets", float(self.ps.open_buckets())


class WorkerProbe:
    """Per-worker health signals under ``osp.worker.{w}.*``.

    Generic signals come from the recorder (consumed incrementally through
    a cursor): latest compute/sync time, completed-iteration progress and
    the progress-lag staleness estimate. Effective bandwidth is the
    worker's uplink byte delta per window. The sync model's
    :meth:`~repro.sync.base.SyncModel.worker_signals` is merged last so
    model-specific semantics (SSP bound-relative staleness, OSP ICS
    backlog) override the generic estimates.
    """

    def __init__(self, trainer: "DistributedTrainer") -> None:
        self.trainer = trainer
        self._cursor = 0
        n = trainer.spec.n_workers
        self._compute: dict[int, float] = {}
        self._sync: dict[int, float] = {}
        self._progress: dict[int, int] = {w: 0 for w in range(n)}
        self._last_t: Optional[float] = None
        self._last_up_bytes: dict[int, float] = {}
        self._uplinks: dict[int, object] = {}
        for w in range(n):
            link = trainer.network._links_by_name.get(f"up:{w}")
            if link is not None:
                self._uplinks[w] = link
                self._last_up_bytes[w] = link.bytes_carried

    def __call__(self, now: float) -> Iterable[tuple[str, float]]:
        trainer = self.trainer
        records = trainer.recorder.iterations
        while self._cursor < len(records):
            rec = records[self._cursor]
            self._cursor += 1
            self._compute[rec.worker] = rec.compute_time
            self._sync[rec.worker] = rec.sync_time
            self._progress[rec.worker] = self._progress.get(rec.worker, 0) + 1
        fastest = max(self._progress.values(), default=0)
        signals: dict[str, float] = {}
        for w, done in sorted(self._progress.items()):
            signals[f"osp.worker.{w}.progress"] = float(done)
            signals[f"osp.worker.{w}.staleness"] = float(fastest - done)
            if w in self._compute:
                signals[f"osp.worker.{w}.compute_time"] = self._compute[w]
                signals[f"osp.worker.{w}.sync_time"] = self._sync[w]
        elapsed = 0.0 if self._last_t is None else now - self._last_t
        for w, link in self._uplinks.items():
            window = link.bytes_carried - self._last_up_bytes[w]
            self._last_up_bytes[w] = link.bytes_carried
            signals[f"osp.worker.{w}.effective_bandwidth"] = (
                window / elapsed if elapsed > 0 else 0.0
            )
        self._last_t = now
        signals.update(trainer.sync_model.worker_signals(trainer.ctx))
        return signals.items()


class MultiJobProbe:
    """Per-tenant fabric signals under ``multijob.{job}.*``.

    Reads the multi-job runner's :class:`repro.multijob.FabricAccounting`
    — active flow count and in-flight payload bytes per job — so a
    sampled co-tenant run shows each tenant's traffic envelope on one
    shared timeline.
    """

    def __init__(self, accounting, jobs: "Iterable[str]") -> None:
        self.accounting = accounting
        self.jobs = list(jobs)

    def __call__(self, now: float) -> Iterable[tuple[str, float]]:
        acct = self.accounting
        for job in self.jobs:
            yield f"multijob.{job}.active_flows", float(acct.active.get(job, 0))
            yield f"multijob.{job}.inflight_bytes", float(
                max(acct.inflight_bytes.get(job, 0.0), 0.0)
            )


def default_interval(trainer: "DistributedTrainer") -> float:
    """Half a base compute time: ≥2 samples per iteration, cheap rings."""
    base = trainer.engine.base_compute_time(trainer.spec)
    return base / 2.0 if base > 0 else 0.05


def attach_standard_probes(sampler: MetricSampler, trainer: "DistributedTrainer") -> None:
    """Wire the network, PS and per-worker probes of a trainer."""
    sampler.add_probe(NetworkProbe(trainer.network))
    sampler.add_probe(PSProbe(trainer.ps))
    sampler.add_probe(WorkerProbe(trainer))


__all__ = [
    "DEFAULT_CAPACITY",
    "MetricSampler",
    "MultiJobProbe",
    "NetworkProbe",
    "PSProbe",
    "Series",
    "WorkerProbe",
    "attach_standard_probes",
    "default_interval",
]
