"""Span-based tracing over virtual time.

The :class:`Tracer` records what the flat :class:`~repro.metrics.recorder.
Recorder` cannot: *where* inside an iteration the time went. It collects

* hierarchical **spans** (``iteration > compute / rs_push / rs_barrier_wait
  / rs_pull / lgp_correction`` on the worker tracks, ``ics_push / ics_wait
  / ics_pull`` on the per-worker ICS tracks, ``ps_apply / pgp_compute`` on
  the PS track) with worker/iteration attribution;
* **instants** (point events: fault windows opening/closing, GIB
  broadcasts, evaluations);
* **counter tracks** (streaming gauges: in-flight ICS bytes, the S(G^u)
  budget, quorum size, network backlog) sampled at virtual timestamps;
* **histograms** (sync-time distributions) via :class:`Histogram`;
* per-``(stage, layer)`` **traffic** accounting (RS vs ICS bytes).

Span parenting uses the simulation kernel's *process-local current-span
context*: :class:`~repro.simcore.environment.Environment` exposes
``active_process`` while a generator step runs, and each process carries
its own open-span stack, so concurrently interleaved worker processes
never cross-parent each other's spans. A span begun before a ``yield`` and
ended after it still nests correctly because both calls run inside the
same process's steps.

Tracing is strictly passive: the tracer never creates events, timeouts or
processes, so a traced run's virtual-time outputs are bit-identical to an
untraced run. When disabled (the default — ``Environment.tracer`` is
``None`` and call sites go through :data:`NULL_TRACER`), every call is a
no-op.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np


@dataclass
class Span:
    """One named interval on an actor's timeline (``end`` None while open)."""

    sid: int
    name: str
    actor: str  # timeline row (Chrome "tid"), e.g. "worker 3"
    track: str  # timeline group (Chrome "pid"), e.g. "workers"
    cat: str
    start: float
    end: Optional[float] = None
    parent: Optional[int] = None  # parent span's sid
    worker: Optional[int] = None
    iteration: Optional[int] = None
    #: Owning co-tenant job (from the creating process's job namespace),
    #: or None on single-tenant runs. Lets multi-job traces be filtered
    #: per tenant even though worker ids are job-local.
    job: Optional[str] = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start


@dataclass(frozen=True)
class Instant:
    """A point event (fault fired, GIB broadcast, evaluation, ...)."""

    name: str
    time: float
    actor: str
    track: str
    attrs: dict[str, Any] = field(default_factory=dict)


class Histogram:
    """A named value distribution (sync-time tails, flow durations)."""

    def __init__(self, name: str = "", values=()) -> None:
        self.name = name
        self._values: list[float] = [float(v) for v in values]

    def observe(self, value: float) -> None:
        self._values.append(float(value))

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def values(self) -> tuple[float, ...]:
        return tuple(self._values)

    def mean(self) -> float:
        return float(np.mean(self._values)) if self._values else 0.0

    def percentile(self, q: float) -> float:
        """Percentile of the observed values (``q`` in [0, 100])."""
        if not (0.0 <= q <= 100.0):
            raise ValueError(f"q must be in [0,100], got {q}")
        if not self._values:
            return 0.0
        return float(np.percentile(self._values, q))

    def summary(self) -> dict[str, float]:
        """count/mean/p50/p90/p99/max in one dict (report tables)."""
        return {
            "count": float(self.count),
            "mean": self.mean(),
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "max": float(max(self._values)) if self._values else 0.0,
        }


class _NullSpan:
    """Shared inert span handle returned by the null tracer."""

    __slots__ = ()

    sid = -1
    name = actor = track = cat = ""
    start = 0.0
    end = 0.0
    parent = worker = iteration = job = None
    duration = 0.0


_NULL_SPAN = _NullSpan()


class NullTracer:
    """No-op stand-in used when tracing is disabled.

    Falsy (``bool() is False``) so call sites can guard larger blocks with
    ``if tracer:``; individual calls are safe either way.
    """

    enabled = False

    def __bool__(self) -> bool:
        return False

    def begin(self, *_a, **_k) -> _NullSpan:
        return _NULL_SPAN

    def end(self, *_a, **_k) -> None:
        return None

    @contextmanager
    def span(self, *_a, **_k):
        yield _NULL_SPAN

    def instant(self, *_a, **_k) -> None:
        return None

    def gauge(self, *_a, **_k) -> None:
        return None

    def gauge_delta(self, *_a, **_k) -> None:
        return None

    def observe(self, *_a, **_k) -> None:
        return None

    def add_traffic(self, *_a, **_k) -> None:
        return None


#: Module-wide disabled tracer (all methods no-ops).
NULL_TRACER = NullTracer()


class Tracer:
    """Collects spans/instants/gauges/histograms against an environment's
    virtual clock. Attach with ``env.tracer = Tracer(env)`` (or
    :meth:`~repro.cluster.trainer.DistributedTrainer.enable_tracing`)."""

    enabled = True

    def __init__(self, env) -> None:
        self.env = env
        self.spans: list[Span] = []
        self.instants: list[Instant] = []
        #: counter-track samples: name -> [(virtual time, value), ...]
        self.counters: dict[str, list[tuple[float, float]]] = {}
        self.histograms: dict[str, Histogram] = {}
        #: (stage, layer) -> total payload bytes moved for that layer
        self.traffic: dict[tuple[str, str], float] = {}
        self._gauge_last: dict[str, float] = {}
        self._stacks: dict[Any, list[Span]] = {}
        self._root_stack: list[Span] = []
        self._next_sid = 0

    def __bool__(self) -> bool:
        return True

    @property
    def now(self) -> float:
        return self.env.now

    # -- spans -------------------------------------------------------------
    def _stack(self) -> list[Span]:
        proc = getattr(self.env, "active_process", None)
        if proc is None:
            return self._root_stack
        return self._stacks.setdefault(proc, [])

    def begin(
        self,
        name: str,
        actor: str,
        *,
        track: str = "workers",
        cat: str = "phase",
        parent: Optional[Span] = None,
        worker: Optional[int] = None,
        iteration: Optional[int] = None,
        **attrs: Any,
    ) -> Span:
        """Open a span now; close it with :meth:`end`.

        With no explicit ``parent`` the span nests under the calling
        process's innermost open span (the process-local context).
        """
        stack = self._stack()
        if parent is None and stack:
            parent = stack[-1]
        proc = getattr(self.env, "active_process", None)
        span = Span(
            sid=self._next_sid,
            name=name,
            actor=actor,
            track=track,
            cat=cat,
            start=self.now,
            parent=None if parent is None else parent.sid,
            worker=worker,
            iteration=iteration,
            job=None if proc is None else getattr(proc, "job", None),
            attrs=dict(attrs),
        )
        self._next_sid += 1
        self.spans.append(span)
        stack.append(span)
        return span

    def end(self, span: Span, **attrs: Any) -> Span:
        """Close an open span at the current virtual time."""
        if span is _NULL_SPAN:
            return span
        if span.end is not None:
            raise RuntimeError(f"span {span.name!r} (sid={span.sid}) already ended")
        span.end = self.now
        if attrs:
            span.attrs.update(attrs)
        stack = self._stack()
        if span in stack:
            stack.remove(span)
        else:  # ended from a different process than it was begun in
            for other in self._stacks.values():
                if span in other:
                    other.remove(span)
                    break
            else:
                if span in self._root_stack:
                    self._root_stack.remove(span)
        return span

    @contextmanager
    def span(self, name: str, actor: str, **kwargs: Any):
        """Context-manager span for straight-line (non-yielding) sections.

        Do not ``yield`` simulation events inside the ``with`` block — use
        explicit :meth:`begin`/:meth:`end` around waits instead.
        """
        s = self.begin(name, actor, **kwargs)
        try:
            yield s
        finally:
            self.end(s)

    def open_spans(self) -> list[Span]:
        """Spans not yet ended (normally empty after a clean run)."""
        return [s for s in self.spans if s.end is None]

    # -- instants / counters / histograms ------------------------------------
    def instant(self, name: str, actor: str = "", track: str = "events", **attrs: Any) -> Instant:
        inst = Instant(name=name, time=self.now, actor=actor, track=track, attrs=dict(attrs))
        self.instants.append(inst)
        return inst

    def gauge(self, name: str, value: float) -> None:
        """Sample a counter track at the current virtual time."""
        value = float(value)
        self.counters.setdefault(name, []).append((self.now, value))
        self._gauge_last[name] = value

    def gauge_delta(self, name: str, delta: float) -> None:
        """Adjust a running counter track by ``delta`` (starts at 0)."""
        self.gauge(name, self._gauge_last.get(name, 0.0) + delta)

    def gauge_value(self, name: str) -> float:
        """Most recent sample of a counter track (0.0 if never sampled)."""
        return self._gauge_last.get(name, 0.0)

    def observe(self, name: str, value: float) -> None:
        """Add one observation to a named histogram."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram(name)
        hist.observe(value)

    def add_traffic(self, stage: str, layer: str, nbytes: float) -> None:
        """Account ``nbytes`` of stage traffic (``rs``/``ics``/...) to a layer."""
        key = (stage, layer)
        self.traffic[key] = self.traffic.get(key, 0.0) + float(nbytes)

    # -- views ---------------------------------------------------------------
    def spans_named(self, *names: str) -> list[Span]:
        wanted = set(names)
        return [s for s in self.spans if s.name in wanted]

    def stage_bytes(self, stage: str) -> float:
        """Total accounted bytes for one traffic stage."""
        return sum(v for (s, _l), v in self.traffic.items() if s == stage)


__all__ = [
    "Histogram",
    "Instant",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
]
