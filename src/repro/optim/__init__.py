"""Optimisers and learning-rate schedules.

The paper's configuration (§5.1.3): SGD, initial LR 0.1, halved every 10
epochs (:class:`StepLR` with ``step_epochs=10, gamma=0.5``).
"""

from repro.optim.sgd import SGD
from repro.optim.lr_scheduler import CosineLR, StepLR, WarmupLR

__all__ = ["CosineLR", "SGD", "StepLR", "WarmupLR"]
