"""Learning-rate schedules operating on an :class:`~repro.optim.sgd.SGD`."""

from __future__ import annotations

import math


class StepLR:
    """Multiply LR by ``gamma`` every ``step_epochs`` epochs.

    The paper's schedule (§5.1.3) is ``StepLR(opt, step_epochs=10, gamma=0.5)``.
    """

    def __init__(self, optimizer, step_epochs: int = 10, gamma: float = 0.5) -> None:
        if step_epochs < 1:
            raise ValueError(f"step_epochs must be >= 1, got {step_epochs}")
        if not (0 < gamma <= 1):
            raise ValueError(f"gamma must be in (0,1], got {gamma}")
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.step_epochs = step_epochs
        self.gamma = gamma

    def epoch_end(self, epoch: int) -> float:
        """Update LR after 0-indexed ``epoch`` finishes; returns the new LR."""
        decays = (epoch + 1) // self.step_epochs
        self.optimizer.lr = self.base_lr * (self.gamma**decays)
        return self.optimizer.lr


class WarmupLR:
    """Linear warm-up over the first ``warmup_epochs``, then a wrapped
    schedule (Goyal et al.'s large-minibatch recipe, paper ref [29])."""

    def __init__(self, optimizer, warmup_epochs: int, after=None) -> None:
        if warmup_epochs < 1:
            raise ValueError(f"warmup_epochs must be >= 1, got {warmup_epochs}")
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.warmup_epochs = warmup_epochs
        self.after = after
        optimizer.lr = self.base_lr / warmup_epochs  # epoch 0 LR

    def epoch_end(self, epoch: int) -> float:
        nxt = epoch + 1
        if nxt < self.warmup_epochs:
            self.optimizer.lr = self.base_lr * (nxt + 1) / self.warmup_epochs
        elif nxt == self.warmup_epochs:
            # Warm-up just ended: the first post-warmup epoch runs at the
            # full base LR. The wrapped schedule takes over at the *next*
            # boundary with an explicit 0-indexed epoch (it must never see
            # a negative epoch).
            self.optimizer.lr = self.base_lr
        elif self.after is not None:
            self.after.epoch_end(nxt - self.warmup_epochs - 1)
        else:
            self.optimizer.lr = self.base_lr
        return self.optimizer.lr


class CosineLR:
    """Cosine annealing from the base LR to ``min_lr`` over ``total_epochs``."""

    def __init__(self, optimizer, total_epochs: int, min_lr: float = 0.0) -> None:
        if total_epochs < 1:
            raise ValueError(f"total_epochs must be >= 1, got {total_epochs}")
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.total_epochs = total_epochs
        self.min_lr = min_lr

    def epoch_end(self, epoch: int) -> float:
        frac = min(1.0, (epoch + 1) / self.total_epochs)
        self.optimizer.lr = self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1 + math.cos(math.pi * frac)
        )
        return self.optimizer.lr


__all__ = ["CosineLR", "StepLR", "WarmupLR"]
