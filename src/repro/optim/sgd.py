"""Stochastic gradient descent with momentum and weight decay.

Also exposes :meth:`SGD.step_with_grads` which applies an *external*
gradient dict (by parameter name) instead of the tape's ``.grad`` — the
distributed trainer uses this to apply PS-aggregated gradients, OSP partial
updates (Eq. 6) and LGP corrections (Eq. 7) through one code path.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

import numpy as np

from repro.nn.arena import ArenaView, arena_of
from repro.nn.module import Module


class SGD:
    """SGD over a module's named parameters.

    Parameters
    ----------
    module:
        Model whose parameters to update.
    lr:
        Learning rate (mutable; schedulers assign it).
    momentum:
        Momentum coefficient (0 disables).
    weight_decay:
        L2 coefficient added to gradients.
    nesterov:
        Use Nesterov momentum.
    """

    def __init__(
        self,
        module: Module,
        lr: float = 0.1,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not (0.0 <= momentum < 1.0):
            raise ValueError(f"momentum must be in [0,1), got {momentum}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be >= 0, got {weight_decay}")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov requires momentum > 0")
        self.module = module
        self.lr = float(lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.nesterov = nesterov
        self._params = dict(module.named_parameters())
        self._velocity: dict[str, np.ndarray] = {}
        # Flat fast path: when the module is arena-backed, updates run as
        # vectorized ops over contiguous slices and momentum state lives in
        # one velocity plane (the dict path then uses in-place views into
        # the same plane, so mixing paths never forks optimizer state).
        self._arena = arena_of(module)
        self._vel_plane: Optional[np.ndarray] = None

    def _velocity_plane(self) -> np.ndarray:
        if self._vel_plane is None:
            self._vel_plane = self._arena.layout.new_plane()
        return self._vel_plane

    def zero_grad(self) -> None:
        """Clear all parameter gradients."""
        self.module.zero_grad()

    def step(self) -> None:
        """Apply one update from the tape's accumulated ``.grad``s."""
        grads = {
            name: p.grad for name, p in self._params.items() if p.grad is not None
        }
        if not grads:
            raise RuntimeError("step() with no gradients; call backward() first")
        self.step_with_grads(grads)

    def step_with_grads(self, grads: Mapping[str, np.ndarray]) -> None:
        """Apply one update from an explicit name→gradient mapping.

        Unknown names are rejected; parameters absent from ``grads`` are
        left untouched (this is how OSP updates only the important subset
        at the RS boundary).
        """
        if (
            self._arena is not None
            and isinstance(grads, ArenaView)
            and grads.layout is self._arena.layout
        ):
            self._step_flat(grads)
            return
        unknown = set(grads) - set(self._params)
        if unknown:
            raise KeyError(f"gradients for unknown parameters: {sorted(unknown)}")
        for name, grad in grads.items():
            p = self._params[name]
            g = np.asarray(grad, dtype=p.data.dtype)
            if g.shape != p.data.shape:
                raise ValueError(
                    f"gradient shape {g.shape} != parameter {name} shape {p.data.shape}"
                )
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v = self._get_velocity(name, p)
                np.multiply(v, self.momentum, out=v)
                v += g
                g = g + self.momentum * v if self.nesterov else v
            p.data -= self.lr * g

    def _get_velocity(self, name: str, p) -> np.ndarray:
        v = self._velocity.get(name)
        if v is None:
            if self._arena is not None:
                sl = self._arena.layout.name_slices[name]
                v = self._velocity_plane()[sl].reshape(p.data.shape)
            else:
                v = np.zeros_like(p.data)
            self._velocity[name] = v
        return v

    def _step_flat(self, grads: ArenaView) -> None:
        """Vectorized update over the arena's merged contiguous slices.

        Elementwise op sequence matches the dict path exactly (same
        ``wd*p``, ``momentum*v + g``, ``p -= lr*g`` forms), so results are
        bit-identical; only the loop granularity changes (slices vs names).
        """
        flat = self._arena.flat
        vel = self._velocity_plane() if self.momentum else None
        if self.momentum:
            # register shaped views so dict-path calls and introspection
            # see the same state
            for name in grads.names:
                if name not in self._velocity:
                    sl = self._arena.layout.name_slices[name]
                    self._velocity[name] = vel[sl].reshape(
                        self._arena.layout.shapes[name]
                    )
        for sl in grads.slices:
            g = grads.plane[sl]
            if self.weight_decay:
                g = g + self.weight_decay * flat[sl]
            if self.momentum:
                v = vel[sl]
                np.multiply(v, self.momentum, out=v)
                v += g
                g = g + self.momentum * v if self.nesterov else v
            flat[sl] -= self.lr * g

    def gradient_dict(self) -> dict[str, np.ndarray]:
        """Copy the current tape gradients keyed by parameter name."""
        return {
            name: p.grad.copy()
            for name, p in self._params.items()
            if p.grad is not None
        }

    def velocity_plane(self, layout) -> np.ndarray:
        """Momentum state packed into one plane (zeros where never stepped).

        Checkpoint serialisation: bit-identical whether momentum lives in
        the arena's velocity plane or in per-name dict arrays.
        """
        if self._arena is not None:
            return self._vel_plane.copy() if self._vel_plane is not None else layout.new_plane()
        plane = layout.new_plane()
        for name, v in self._velocity.items():
            plane[layout.name_slices[name]] = v.ravel()
        return plane

    def load_velocity_plane(self, layout, plane: np.ndarray) -> None:
        """Restore momentum state captured by :meth:`velocity_plane`.

        In dict mode every name gets an entry; restoring zeros for
        never-stepped parameters is numerically identical to the lazy
        zero-init the uninterrupted run would perform.
        """
        if self._arena is not None:
            self._velocity_plane()[:] = plane
            return
        for name in layout.names:
            values = plane[layout.name_slices[name]].reshape(layout.shapes[name])
            v = self._velocity.get(name)
            if v is None:
                self._velocity[name] = values.copy()
            else:
                v[...] = values


__all__ = ["SGD"]
