"""Performance tooling: microbenchmark harness + parallel sweep executor.

* :mod:`repro.perf.executor` — fork-based worker-pool ``parallel_map`` used
  by :mod:`repro.harness.sweep` and the ablation benchmark drivers to fan
  simulation points across cores (``-j1`` falls back to plain serial).
* :mod:`repro.perf.hotpath` — the ``repro perf`` microbenchmark harness:
  times the PS/PGP/LGP/sync hot path with and without the flat arena, plus
  end-to-end numeric and timing runs, and writes/validates
  ``BENCH_hotpath.json`` (the perf-regression baseline guarded in tier-1).
"""

from repro.perf.executor import parallel_map
from repro.perf.hotpath import (
    BENCH_SCHEMA,
    REQUIRED_FIELDS,
    run_hotpath_bench,
    validate_bench,
)

__all__ = [
    "BENCH_SCHEMA",
    "REQUIRED_FIELDS",
    "parallel_map",
    "run_hotpath_bench",
    "validate_bench",
]
