"""Performance tooling: microbenchmark harness + parallel sweep executor.

* :mod:`repro.perf.executor` — fork-based worker-pool ``parallel_map`` used
  by :mod:`repro.harness.sweep` and the ablation benchmark drivers to fan
  simulation points across cores (``-j1`` falls back to plain serial).
* :mod:`repro.perf.hotpath` — the ``repro perf`` microbenchmark harness:
  times the PS/PGP/LGP/sync hot path with and without the flat arena, plus
  end-to-end numeric and timing runs, and writes/validates
  ``BENCH_hotpath.json`` (the perf-regression baseline guarded in tier-1).
* :mod:`repro.perf.netsim_scale` — the ``repro perf-net`` scaling
  benchmark: sweeps an OSP-shaped star workload from 4 to 128 workers
  under the legacy and fast network-core paths, certifies virtual-time
  identity, and writes/validates ``BENCH_netsim.json``.
"""

from repro.perf.executor import parallel_map
from repro.perf.hotpath import (
    BENCH_SCHEMA,
    REQUIRED_FIELDS,
    run_hotpath_bench,
    validate_bench,
)
from repro.perf.netsim_scale import run_netsim_bench

__all__ = [
    "BENCH_SCHEMA",
    "REQUIRED_FIELDS",
    "parallel_map",
    "run_hotpath_bench",
    "run_netsim_bench",
    "validate_bench",
]
