"""Process-parallel task executor for simulation sweeps.

Sweep points (one ``DistributedTrainer`` run each) are CPU-bound, fully
independent and deterministic given their config, which makes them ideal
fan-out targets — but the task callables close over sync-model factories
(often lambdas), which do not pickle. The executor therefore uses the
``fork`` start method and ships only ``(registry_key, task_index)`` to the
workers: the function and task list are inherited through the forked
address space via a module-global registry, never pickled. Results (e.g.
``SweepPoint``) must still pickle for the return trip.

Determinism: ``pool.map`` preserves task order, every task carries its own
seeds (the repo's RNG discipline — no global-RNG use in the sim), and each
worker additionally reseeds numpy's *global* RNG from ``seed_base + index``
as a belt-and-braces guard against any legacy global draw, so
``parallel_map(fn, tasks, jobs=N)`` returns exactly the list
``[fn(t) for t in tasks]`` for every ``N``.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
from typing import Callable, Iterable, Sequence, TypeVar

import numpy as np

T = TypeVar("T")
R = TypeVar("R")

#: key → (fn, tasks, seed_base); populated immediately before the fork so
#: children inherit it, removed when the pool closes.
_REGISTRY: dict[int, tuple[Callable, Sequence, int]] = {}
_KEYS = itertools.count()


def _fork_available() -> bool:
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - exotic platforms
        return False


def _run_task(arg: tuple[int, int]):
    key, index = arg
    fn, tasks, seed_base = _REGISTRY[key]
    np.random.seed((seed_base + index) % (2**32))
    return fn(tasks[index])


def default_jobs() -> int:
    """Worker count for ``jobs=None``: ``REPRO_JOBS`` env or CPU count."""
    env = os.environ.get("REPRO_JOBS")
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


def parallel_map(
    fn: Callable[[T], R],
    tasks: Iterable[T],
    jobs: int | None = 1,
    seed_base: int = 0,
) -> list[R]:
    """``[fn(t) for t in tasks]``, fanned across ``jobs`` forked workers.

    ``jobs=1`` (the default) runs serially in-process — identical to the
    plain list comprehension, no processes involved. ``jobs=None`` uses
    :func:`default_jobs`. Platforms without ``fork`` (or single-task
    inputs) silently fall back to serial; results are the same either way.
    """
    tasks = list(tasks)
    if jobs is None:
        jobs = default_jobs()
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if jobs == 1 or len(tasks) <= 1 or not _fork_available():
        return [fn(t) for t in tasks]
    key = next(_KEYS)
    _REGISTRY[key] = (fn, tasks, seed_base)
    try:
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(processes=min(jobs, len(tasks))) as pool:
            return pool.map(_run_task, [(key, i) for i in range(len(tasks))])
    finally:
        del _REGISTRY[key]


__all__ = ["default_jobs", "parallel_map"]
