"""Microbenchmark harness for the numeric hot path (``repro perf``).

Times the operations the flat arena (:mod:`repro.nn.arena`) and the
bincount scatter-add (:mod:`repro.autograd.functional`) vectorize —
PS weighted averaging, PGP importance, LGP correction, replica sync — with
the optimizations on vs off, plus end-to-end wall-clock on a numeric
``fig6b``-scale run and virtual-time references for traced/untraced timing
runs. Results are written as ``BENCH_hotpath.json`` (schema
``repro.perf.hotpath/v1``), the committed perf-regression baseline that
the tier-1 guard test validates.

Baselines are *re-measurable*: the dict path is selected with
``use_arena=False``, the pre-optimization autograd scatter with
``REPRO_SCATTER=legacy``, and the pre-optimization im2col conv layout with
``REPRO_CONV=legacy``, so the harness always compares live code paths
(which the parity tests pin bit-identical) rather than stale numbers.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from contextlib import contextmanager
from typing import Callable, Optional

import numpy as np

BENCH_SCHEMA = "repro.perf.hotpath/v1"

#: Dotted paths that must exist in a valid BENCH_hotpath.json.
REQUIRED_FIELDS = (
    "schema",
    "card",
    "config.quick",
    "config.n_workers",
    "config.micro_card",
    "micro.ps_apply.dict_s",
    "micro.ps_apply.flat_s",
    "micro.ps_apply.speedup",
    "micro.pgp.dict_s",
    "micro.pgp.flat_s",
    "micro.pgp.speedup",
    "micro.ps_apply_pgp.speedup",
    "micro.lgp.dict_s",
    "micro.lgp.flat_s",
    "micro.lgp.speedup",
    "micro.sync_replica.dict_s",
    "micro.sync_replica.flat_s",
    "micro.sync_replica.speedup",
    "end_to_end.numeric.baseline_s",
    "end_to_end.numeric.optimized_s",
    "end_to_end.numeric.speedup",
    "end_to_end.numeric.reduction_pct",
    "end_to_end.numeric.identical",
    "end_to_end.timing.untraced_virtual_s",
    "end_to_end.timing.traced_virtual_s",
    "end_to_end.timing.virtual_match",
    "sweep.serial_s",
    "sweep.parallel_s",
    "sweep.jobs",
    "sweep.identical",
)

#: Speedup ratios the tier-1 guard requires to stay >= 1.0. The sweep
#: ratio is deliberately NOT guarded (it is hardware-dependent: on a
#: single-core runner fork overhead can exceed the win).
GUARDED_SPEEDUPS = (
    "micro.ps_apply.speedup",
    "micro.pgp.speedup",
    "micro.ps_apply_pgp.speedup",
    "micro.lgp.speedup",
    "micro.sync_replica.speedup",
    "end_to_end.numeric.speedup",
)


def get_path(data: dict, dotted: str):
    """Fetch ``data["a"]["b"]`` for ``"a.b"``; raises KeyError if absent."""
    node = data
    for part in dotted.split("."):
        node = node[part]
    return node


def validate_bench(data: dict, min_speedup: float = 1.0) -> list[str]:
    """Schema + regression check; returns a list of problems (empty = OK)."""
    problems: list[str] = []
    for field in REQUIRED_FIELDS:
        try:
            get_path(data, field)
        except (KeyError, TypeError):
            problems.append(f"missing field: {field}")
    if data.get("schema") != BENCH_SCHEMA:
        problems.append(
            f"schema mismatch: expected {BENCH_SCHEMA!r}, got {data.get('schema')!r}"
        )
    for field in GUARDED_SPEEDUPS:
        try:
            value = float(get_path(data, field))
        except (KeyError, TypeError, ValueError):
            continue  # already reported as missing
        if not value >= min_speedup:  # catches NaN too
            problems.append(
                f"regression: {field} = {value:.3f} < {min_speedup:.2f}"
            )
    for flag in ("end_to_end.numeric.identical", "sweep.identical"):
        try:
            if get_path(data, flag) is not True:
                problems.append(f"parity violation: {flag} is not true")
        except (KeyError, TypeError):
            pass
    return problems


# --------------------------------------------------------------- timing utils
def _best_of(fn: Callable[[], None], repeats: int = 3) -> float:
    """Minimum wall-clock of ``repeats`` runs (standard microbench practice:
    the min is the least noise-contaminated estimate)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@contextmanager
def _env(**overrides: Optional[str]):
    """Temporarily set/unset environment variables."""
    saved = {k: os.environ.get(k) for k in overrides}
    try:
        for k, v in overrides.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v
        yield
    finally:
        for k, v in saved.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v


def _fingerprint(trainer, result) -> str:
    """Stable digest of a run's numeric outcome (params + loss trajectory +
    virtual clocks) — the bit-parity witness stored in the bench file."""
    h = hashlib.sha256()
    snap = trainer.ps.snapshot()
    for name in sorted(snap):
        h.update(name.encode())
        h.update(np.ascontiguousarray(snap[name]).tobytes())
    h.update(repr(result.wall_time).encode())
    h.update(repr(result.iteration_end_time).encode())
    h.update(repr(result.best_metric).encode())
    for rec in result.recorder.iterations:
        h.update(repr(rec.loss).encode())
    return h.hexdigest()


# --------------------------------------------------------------- micro benches
def _micro_setup(card_name: str, n_workers: int, seed: int, use_arena: bool):
    """One numeric engine + PS + per-worker gradients, arena on or off."""
    from repro.cluster.engines import NumericEngine
    from repro.cluster.spec import ClusterSpec, TrainingPlan
    from repro.harness.workloads import make_numeric_dataset
    from repro.nn.models.registry import get_card

    card = get_card(card_name)
    train, test = make_numeric_dataset(card, n_samples=400, seed=seed)
    spec = ClusterSpec(n_workers=n_workers)
    engine = NumericEngine(
        card, train, test, spec, batch_size=16, seed=seed, use_arena=use_arena
    )
    plan = TrainingPlan(n_epochs=1, lr=0.1, momentum=0.9)
    ps = engine.make_ps(plan)
    grads = [engine.compute(w, 0, 0)[0] for w in range(n_workers)]
    return engine, ps, grads


def _bench_variant(card_name: str, n_workers: int, seed: int, rounds: int,
                   use_arena: bool) -> dict[str, float]:
    """Per-op seconds for one path (dict or flat)."""
    from repro.core.gib import GIB
    from repro.core.lgp import LGPCorrector

    engine, ps, grads = _micro_setup(card_name, n_workers, seed, use_arena)

    counter = [0]

    def ps_apply():
        for _ in range(rounds):
            bucket = f"bench:{counter[0]}"
            counter[0] += 1
            for w in range(n_workers):
                ps.accumulate(bucket, w, grads[w])
            ps.apply_average(bucket)

    t_ps = _best_of(ps_apply)

    def pgp():
        for _ in range(rounds):
            engine.ps_layer_importance(ps)

    t_pgp = _best_of(pgp)

    # Half-model GIB: the realistic RS/ICS split for the LGP/sync benches.
    importance = engine.ps_layer_importance(ps)
    gib = GIB.from_importance(
        importance,
        engine.layer_bytes,
        budget_bytes=0.5 * engine.model_bytes,
        layers=engine.splitter.layers,
    )
    g_imp, g_unimp = engine.splitter.split(grads[0], gib)
    imp_names = engine.splitter.params_of(gib.important_layers)
    unimp_names = engine.splitter.params_of(gib.unimportant_layers)
    corrector = LGPCorrector(
        engine.worker_params(0), arena=engine.replica_arena(0)
    )

    def lgp():
        for _ in range(rounds):
            snap = ps.snapshot(imp_names, copy=False)
            corrector.apply_rs(snap, g_unimp, lr=0.1)
            corrector.apply_ics(ps.snapshot(unimp_names))

    t_lgp = _best_of(lgp)

    def sync():
        for _ in range(rounds):
            engine.sync_replica(0, ps)
            engine.sync_replica(1 % n_workers, ps, imp_names)

    t_sync = _best_of(sync)

    return {"ps_apply": t_ps, "pgp": t_pgp, "lgp": t_lgp, "sync_replica": t_sync}


def _micro_section(card_name: str, n_workers: int, seed: int, rounds: int) -> dict:
    dict_times = _bench_variant(card_name, n_workers, seed, rounds, use_arena=False)
    flat_times = _bench_variant(card_name, n_workers, seed, rounds, use_arena=True)
    out = {
        op: {
            "dict_s": dict_times[op],
            "flat_s": flat_times[op],
            "speedup": dict_times[op] / max(flat_times[op], 1e-12),
        }
        for op in dict_times
    }
    # The combined PS round: accumulate/average/apply plus the importance
    # pass that follows it on the PS (the two ops share one critical path).
    ps_pgp_dict = dict_times["ps_apply"] + dict_times["pgp"]
    ps_pgp_flat = flat_times["ps_apply"] + flat_times["pgp"]
    out["ps_apply_pgp"] = {
        "dict_s": ps_pgp_dict,
        "flat_s": ps_pgp_flat,
        "speedup": ps_pgp_dict / max(ps_pgp_flat, 1e-12),
    }
    return out


# --------------------------------------------------------------- end-to-end
def _e2e_numeric(
    card_name: str,
    n_workers: int,
    n_epochs: int,
    seed: int,
    n_samples: Optional[int] = None,
    sigma: float = 0.0,
    repeats: int = 2,
) -> dict:
    """fig6b-scale numeric OSP run: pre-change path (dict grads + add.at
    scatter + per-call im2col conv) vs optimized (arena + bincount + cached
    flat-layout conv), wall-clock + parity.

    Each variant is timed ``repeats`` times and the best (minimum) is kept —
    end-to-end runs are long enough that scheduler noise on a shared box
    otherwise dominates the comparison. The dataset is built once outside
    the timed region; the bit-parity fingerprints come from the first run
    of each variant (all runs of a variant are identical by construction).
    """
    from repro.core.osp import OSP
    from repro.harness.workloads import (
        WorkloadConfig,
        make_numeric_dataset,
        numeric_trainer,
    )

    cfg = WorkloadConfig(
        card_name, n_workers=n_workers, n_epochs=n_epochs, sigma=sigma, seed=seed
    )
    data = (
        make_numeric_dataset(cfg.card, n_samples=n_samples, seed=seed)
        if n_samples
        else None
    )

    def run():
        trainer = numeric_trainer(cfg, OSP(), data=data)
        t0 = time.perf_counter()
        res = trainer.run()
        return time.perf_counter() - t0, _fingerprint(trainer, res)

    def best_of(env: dict) -> tuple:
        times, fp = [], None
        for _ in range(max(1, repeats)):
            with _env(**env):
                t, run_fp = run()
            times.append(t)
            fp = fp or run_fp
        return min(times), fp

    base_s, base_fp = best_of(
        {"REPRO_FLAT_ARENA": "0", "REPRO_SCATTER": "legacy", "REPRO_CONV": "legacy"}
    )
    opt_s, opt_fp = best_of(
        {"REPRO_FLAT_ARENA": None, "REPRO_SCATTER": None, "REPRO_CONV": None}
    )
    return {
        "baseline_s": base_s,
        "optimized_s": opt_s,
        "speedup": base_s / max(opt_s, 1e-12),
        "reduction_pct": 100.0 * (1.0 - opt_s / max(base_s, 1e-12)),
        "identical": base_fp == opt_fp,
        "fingerprint": opt_fp,
        "epochs": n_epochs,
        "n_samples": n_samples,
        "sigma": sigma,
        "repeats": repeats,
    }


def _e2e_timing(card_name: str, n_workers: int, n_epochs: int, seed: int) -> dict:
    """Virtual-time reference: the same timing-mode OSP run, untraced and
    traced, must land on one virtual clock (tracing is passive)."""
    from repro.core.osp import OSP
    from repro.harness.workloads import WorkloadConfig, timing_trainer

    cfg = WorkloadConfig(card_name, n_workers=n_workers, n_epochs=n_epochs, seed=seed)

    trainer = timing_trainer(cfg, OSP())
    t0 = time.perf_counter()
    res_plain = trainer.run()
    host_untraced = time.perf_counter() - t0

    trainer = timing_trainer(cfg, OSP())
    trainer.enable_tracing()
    t0 = time.perf_counter()
    res_traced = trainer.run()
    host_traced = time.perf_counter() - t0

    return {
        "untraced_virtual_s": res_plain.wall_time,
        "traced_virtual_s": res_traced.wall_time,
        "virtual_match": repr(res_plain.wall_time) == repr(res_traced.wall_time),
        "untraced_host_s": host_untraced,
        "traced_host_s": host_traced,
        "epochs": n_epochs,
    }


def _sweep_section(jobs: int, quick: bool) -> dict:
    """Serial vs parallel sweep executor on a small bandwidth sweep; the
    point lists must be exactly equal (order and values)."""
    from repro.core.osp import OSP
    from repro.harness.sweep import sweep_bandwidth
    from repro.sync import BSP

    factories = (BSP, OSP)
    bandwidths = [1e9, 2e9] if quick else [0.5e9, 1e9, 2e9, 4e9]
    kwargs = dict(epochs=4 if quick else 10, ipe=4, n_workers=4)

    t0 = time.perf_counter()
    serial = sweep_bandwidth(factories, bandwidths, jobs=1, **kwargs)
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = sweep_bandwidth(factories, bandwidths, jobs=jobs, **kwargs)
    parallel_s = time.perf_counter() - t0
    return {
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "jobs": jobs,
        "points": len(serial),
        "identical": serial == parallel,
        "speedup": serial_s / max(parallel_s, 1e-12),
    }


def run_hotpath_bench(
    card_name: str = "resnet50-cifar10",
    quick: bool = False,
    jobs: Optional[int] = None,
    seed: int = 0,
    micro_card: str = "inceptionv3-cifar100",
) -> dict:
    """Run the full harness; returns the BENCH_hotpath.json payload.

    ``card_name`` drives the end-to-end run (fig6b's workload by default);
    ``micro_card`` drives the per-op microbenchmarks (inceptionv3 by
    default — its repeated block shapes make it representative of how the
    batched reductions behave on deep conv stacks; per-card numbers for
    all five evaluation workloads are in ``docs/performance.md``).
    """
    from repro.perf.executor import default_jobs

    if jobs is None:
        jobs = min(4, default_jobs())
    n_workers = 2 if quick else 4
    rounds = 5 if quick else 40
    timing_epochs = 4 if quick else 12
    # fig6b scale: 8 workers, sigma 0.3, 6000-sample dataset (the full
    # accuracy_experiment shape); quick mode shrinks the run, not the shape.
    e2e = dict(n_workers=8, sigma=0.3, n_samples=6000, n_epochs=3, repeats=2)
    if quick:
        e2e.update(n_samples=1200, n_epochs=1, repeats=1)
    out = {
        "schema": BENCH_SCHEMA,
        "card": card_name,
        "config": {
            "quick": quick,
            "n_workers": n_workers,
            "micro_rounds": rounds,
            "micro_card": micro_card,
            "seed": seed,
        },
        "micro": _micro_section(micro_card, n_workers, seed, rounds),
        "end_to_end": {
            "numeric": _e2e_numeric(card_name, seed=seed, **e2e),
            "timing": _e2e_timing(card_name, 8, timing_epochs, seed),
        },
        "sweep": _sweep_section(jobs, quick),
    }
    return out


def save_bench(data: dict, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(data, fh, indent=1, sort_keys=True)
        fh.write("\n")


__all__ = [
    "BENCH_SCHEMA",
    "GUARDED_SPEEDUPS",
    "REQUIRED_FIELDS",
    "get_path",
    "run_hotpath_bench",
    "save_bench",
    "validate_bench",
]
