"""Multi-job co-tenancy benchmark (``repro perf-multijob``).

Two guarantees of the co-tenancy layer, measured and committed as
``BENCH_multijob.json``:

1. **Isolation** (``contended.improvement`` ≥ :data:`MIN_IMPROVEMENT`).
   An OSP tenant shares every host with a best-effort BSP tenant whose
   traffic is demoted to BULK (``repro.harness.cotenancy.
   osp_with_background`` on a ``shared_fabric_runner``). With the priority
   scheduler killed (``REPRO_NETPRIO=off``) the OSP RS stage fair-shares
   its links with the background tenant's pushes; with priorities on, RS
   (HIGH) and GIB (URGENT) traffic preempts BULK, so the p90 RS-stage wait
   — rs_push + rs_barrier_wait + rs_pull per (worker, iteration), filtered
   to the OSP tenant via the span's job dimension — collapses toward its
   uncontended value. The off/on ratio is the guarded isolation factor.

2. **Identity** (``identity.identical``). One job run through
   ``repro.multijob`` on an exclusive identity placement must produce a
   replay stream bit-identical (:func:`repro.check.stream_digest`) to the
   same workload run directly through ``DistributedTrainer`` — the
   co-tenancy layer is free when you are alone.

All quantities are *virtual* seconds, so both numbers are deterministic
for a given config; ``tests/perf/test_bench_multijob_guard.py`` guards
the committed baseline.
"""

from __future__ import annotations

import json
from typing import Callable, Optional

import numpy as np

from repro.perf.hotpath import _env, get_path

BENCH_SCHEMA = "repro.perf.multijob/v1"

#: Minimum RS-stage p90 improvement (priorities off / on) for the OSP
#: tenant while the background BSP tenant runs alongside.
MIN_IMPROVEMENT = 1.5

#: Dotted paths that must exist in a valid BENCH_multijob.json.
REQUIRED_FIELDS = (
    "schema",
    "config.quick",
    "config.card",
    "config.workers",
    "config.epochs",
    "config.iterations",
    "config.seed",
    "contended.off.rs_stage_p90_s",
    "contended.off.rs_stage_p50_s",
    "contended.off.osp_wall_s",
    "contended.off.bulk_wall_s",
    "contended.off.osp_contended_share",
    "contended.on.rs_stage_p90_s",
    "contended.on.rs_stage_p50_s",
    "contended.on.osp_wall_s",
    "contended.on.bulk_wall_s",
    "contended.on.osp_contended_share",
    "contended.on.preemptions",
    "contended.improvement",
    "identity.identical",
    "identity.direct_digest",
    "identity.multijob_digest",
)

#: Ratios the guard requires to stay >= MIN_IMPROVEMENT.
GUARDED_SPEEDUPS = ("contended.improvement",)


def validate_bench(data: dict, min_improvement: float = MIN_IMPROVEMENT) -> list[str]:
    """Schema + identity + regression check; returns a list of problems."""
    problems: list[str] = []
    for field in REQUIRED_FIELDS:
        try:
            get_path(data, field)
        except (KeyError, TypeError):
            problems.append(f"missing field: {field}")
    if data.get("schema") != BENCH_SCHEMA:
        problems.append(
            f"schema mismatch: expected {BENCH_SCHEMA!r}, got {data.get('schema')!r}"
        )
    for field in GUARDED_SPEEDUPS:
        try:
            value = float(get_path(data, field))
        except (KeyError, TypeError, ValueError):
            continue  # already reported as missing
        if not value >= min_improvement:  # catches NaN too
            problems.append(
                f"regression: {field} = {value:.3f} < {min_improvement:.2f}"
            )
    try:
        if get_path(data, "identity.identical") is not True:
            problems.append("parity violation: identity.identical is not true")
    except (KeyError, TypeError):
        pass
    try:
        if get_path(data, "identity.direct_digest") != get_path(
            data, "identity.multijob_digest"
        ):
            problems.append("parity violation: identity digests differ")
    except (KeyError, TypeError):
        pass
    return problems


# ------------------------------------------------------------- the workload
def _contended_run(
    prio_on: bool,
    card: str,
    n_workers: int,
    n_epochs: int,
    iterations: int,
    seed: int,
) -> dict:
    """One co-tenant run (OSP + background BSP on shared hosts); returns
    the OSP tenant's RS-stage wait distribution and both wall times."""
    from repro.harness.cotenancy import osp_with_background, shared_fabric_runner

    with _env(REPRO_NETPRIO=None if prio_on else "off"):
        jobs = osp_with_background(
            card_name=card,
            n_workers=n_workers,
            n_epochs=n_epochs,
            iterations_per_epoch=iterations,
            seed=seed,
        )
        runner = shared_fabric_runner(jobs)
        tracer = runner.enable_tracing()
        result = runner.run()

    stage: dict[tuple, float] = {}
    for s in tracer.spans_named("rs_push", "rs_barrier_wait", "rs_pull"):
        if s.job != "osp":
            continue
        key = (s.worker, s.iteration)
        stage[key] = stage.get(key, 0.0) + s.duration
    waits = np.array(sorted(stage.values()))
    osp, bulk = result["osp"], result["bulk"]
    out = {
        "rs_stage_p90_s": float(np.percentile(waits, 90)),
        "rs_stage_p50_s": float(np.percentile(waits, 50)),
        "osp_wall_s": osp.wall_time,
        "bulk_wall_s": bulk.wall_time,
        "osp_throughput": osp.result.throughput,
        "bulk_throughput": bulk.result.throughput,
        "osp_contended_share": osp.contended_share,
        "osp_job_bytes": osp.job_bytes,
        "bulk_job_bytes": bulk.job_bytes,
        "pair_overlap_s": result.pair_overlap.get(frozenset(("osp", "bulk")), 0.0),
    }
    if prio_on:
        out["preemptions"] = int(
            result.network_stats.get("netsim.prio_preemptions", 0)
        )
    return out


def _identity_section(
    card: str, n_workers: int, n_epochs: int, iterations: int, seed: int
) -> dict:
    """Single-job-through-multijob must be bit-identical to a direct run."""
    from repro.check import capture_stream, stream_digest
    from repro.core.osp import OSP
    from repro.harness.workloads import WorkloadConfig, timing_trainer
    from repro.multijob import JobSpec, run_jobs

    cfg = WorkloadConfig(
        card,
        n_workers=n_workers,
        n_epochs=n_epochs,
        iterations_per_epoch=iterations,
        seed=seed,
    )
    trainer = timing_trainer(cfg, OSP())
    direct = trainer.run()
    direct_digest = stream_digest(capture_stream(trainer, direct))

    solo = run_jobs([JobSpec(name="solo", workload=cfg, sync_factory=OSP)])
    res = solo["solo"].result
    multi_digest = stream_digest(capture_stream(res.context, res))
    return {
        "identical": direct_digest == multi_digest
        and direct.wall_time == res.wall_time,
        "direct_digest": direct_digest,
        "multijob_digest": multi_digest,
        "wall_s": direct.wall_time,
    }


# ------------------------------------------------------------------ driver
def run_multijob_bench(
    quick: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> dict:
    """Run the full co-tenancy benchmark; returns the BENCH dict."""
    say = progress or (lambda _msg: None)
    card = "vgg16-cifar10"
    n_workers = 4
    n_epochs = 2 if quick else 4
    iterations = 6
    seed = 7

    say("contended: OSP + background BSP tenant on shared hosts, priorities off")
    off = _contended_run(False, card, n_workers, n_epochs, iterations, seed)
    say("contended: same co-tenancy, priorities on")
    on = _contended_run(True, card, n_workers, n_epochs, iterations, seed)
    say("identity: solo job via repro.multijob vs direct DistributedTrainer")
    identity = _identity_section(
        card, n_workers, 2 if quick else 3, iterations, seed
    )

    return {
        "schema": BENCH_SCHEMA,
        "config": {
            "quick": quick,
            "card": card,
            "workers": n_workers,
            "epochs": n_epochs,
            "iterations": iterations,
            "seed": seed,
        },
        "contended": {
            "off": off,
            "on": on,
            "improvement": off["rs_stage_p90_s"] / max(on["rs_stage_p90_s"], 1e-12),
        },
        "identity": identity,
    }


def save_bench(data: dict, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(data, fh, indent=1, sort_keys=True)
        fh.write("\n")


__all__ = [
    "BENCH_SCHEMA",
    "GUARDED_SPEEDUPS",
    "MIN_IMPROVEMENT",
    "REQUIRED_FIELDS",
    "run_multijob_bench",
    "save_bench",
    "validate_bench",
]
