"""Priority-scheduling benchmark (``repro perf-prio``).

Measures what the priority-aware transmission scheduler buys OSP under
multi-tenant contention: a timing-mode OSP run with constant background
tenants (BULK class) saturating 80% of every worker↔PS path in both
directions, run once with priorities on and once under the
``REPRO_NETPRIO=off`` kill-switch. The guarded number is the p90 of the
per-iteration RS-stage wait (rs_push + rs_barrier_wait + rs_pull span
durations) — the synchronization cost the paper's 2-stage design puts on
the critical path. With priorities on, RS traffic (HIGH) and the GIB
bitmap broadcast (URGENT) starve the background and ICS (BULK) tenants,
so the RS stage runs at near-uncontended speed; the committed baseline
records the improvement ratio and CI guards it at ≥
:data:`MIN_IMPROVEMENT`.

All waits are *virtual* seconds, so the ratio is deterministic for a
given config — unlike host-time benches there is no timing noise to
absorb.

An inert-path section reruns the netsim scaling workload (default-class
traffic only) with the scheduler enabled vs killed and compares full
virtual-time fingerprints: default traffic must not notice the scheduler
exists. ``identical`` is guarded alongside the speedup by
``tests/perf/test_bench_netprio_guard.py`` over the committed
``BENCH_netprio.json``.
"""

from __future__ import annotations

import json
from typing import Callable, Optional

import numpy as np

from repro.perf.hotpath import _env, get_path

BENCH_SCHEMA = "repro.perf.netprio/v1"

#: Minimum RS-stage p90 wait improvement (off / on) under contention.
MIN_IMPROVEMENT = 1.5

#: Background tenant load per direction on every worker↔PS path.
LOAD_FRACTION = 0.8

#: Dotted paths that must exist in a valid BENCH_netprio.json.
REQUIRED_FIELDS = (
    "schema",
    "config.quick",
    "config.card",
    "config.workers",
    "config.epochs",
    "config.iterations",
    "config.seed",
    "config.load_fraction",
    "contended.off.rs_stage_p90_s",
    "contended.off.rs_stage_p50_s",
    "contended.off.rs_push_p90_s",
    "contended.off.throughput",
    "contended.on.rs_stage_p90_s",
    "contended.on.rs_stage_p50_s",
    "contended.on.rs_push_p90_s",
    "contended.on.throughput",
    "contended.on.preemptions",
    "contended.on.prio_bytes.urgent",
    "contended.on.prio_bytes.high",
    "contended.on.prio_bytes.bulk",
    "contended.improvement",
    "inert.identical",
    "inert.fingerprint",
)

#: Ratios the guard requires to stay >= MIN_IMPROVEMENT.
GUARDED_SPEEDUPS = ("contended.improvement",)


def validate_bench(data: dict, min_improvement: float = MIN_IMPROVEMENT) -> list[str]:
    """Schema + inert-identity + regression check; returns problems."""
    problems: list[str] = []
    for field in REQUIRED_FIELDS:
        try:
            get_path(data, field)
        except (KeyError, TypeError):
            problems.append(f"missing field: {field}")
    if data.get("schema") != BENCH_SCHEMA:
        problems.append(
            f"schema mismatch: expected {BENCH_SCHEMA!r}, got {data.get('schema')!r}"
        )
    for field in GUARDED_SPEEDUPS:
        try:
            value = float(get_path(data, field))
        except (KeyError, TypeError, ValueError):
            continue  # already reported as missing
        if not value >= min_improvement:  # catches NaN too
            problems.append(
                f"regression: {field} = {value:.3f} < {min_improvement:.2f}"
            )
    try:
        if get_path(data, "inert.identical") is not True:
            problems.append("parity violation: inert.identical is not true")
    except (KeyError, TypeError):
        pass
    return problems


# ------------------------------------------------------------- the workload
def _contended_run(
    prio_on: bool,
    card: str,
    n_workers: int,
    n_epochs: int,
    iterations: int,
    seed: int,
    load_fraction: float,
) -> dict:
    """One contended OSP run; returns the RS-stage wait distribution.

    Background tenants (``constant_background_load``, BULK class) occupy
    ``load_fraction`` of every worker→PS *and* PS→worker path, so in the
    off mode both the RS push and the RS pull share their links with
    cross-traffic; with priorities on, HIGH/URGENT training flows starve
    the tenants for the duration of each RS stage.
    """
    from repro.core.osp import OSP
    from repro.harness.workloads import WorkloadConfig, timing_trainer
    from repro.netsim.traffic import constant_background_load

    with _env(REPRO_NETPRIO=None if prio_on else "off"):
        cfg = WorkloadConfig(
            card,
            n_workers=n_workers,
            n_epochs=n_epochs,
            iterations_per_epoch=iterations,
            seed=seed,
        )
        trainer = timing_trainer(cfg, OSP())
        trainer.enable_tracing()
        ps = trainer.spec.ps_node
        for w in range(n_workers):
            for src, dst in ((w, ps), (ps, w)):
                trainer.env.process(
                    constant_background_load(
                        trainer.env,
                        trainer.network,
                        src=src,
                        dst=dst,
                        load_fraction=load_fraction,
                        chunk_seconds=0.05,
                        # comfortably beyond the run's virtual end
                        until=600.0,
                    )
                )
        res = trainer.run()

    tracer = trainer.env.tracer
    stage: dict[tuple, float] = {}
    for s in tracer.spans_named("rs_push", "rs_barrier_wait", "rs_pull"):
        key = (s.worker, s.iteration)
        stage[key] = stage.get(key, 0.0) + s.duration
    waits = np.array(sorted(stage.values()))
    pushes = np.array([s.duration for s in tracer.spans_named("rs_push")])
    stats = dict(trainer.network.stats)
    out = {
        "rs_stage_p90_s": float(np.percentile(waits, 90)),
        "rs_stage_p50_s": float(np.percentile(waits, 50)),
        "rs_push_p90_s": float(np.percentile(pushes, 90)),
        "throughput": res.throughput,
        "virtual_s": res.wall_time,
    }
    if prio_on:
        out["preemptions"] = int(stats.get("netsim.prio_preemptions", 0))
        out["prio_bytes"] = {
            cls: float(stats.get(f"netsim.prio_bytes.{cls}", 0.0))
            for cls in ("urgent", "high", "normal", "bulk")
        }
    return out


def _inert_section(n_workers: int, layers: int, iterations: int) -> dict:
    """Default-class traffic must be bit-identical with the scheduler on
    vs killed — the same witness ``tests/netsim/test_prio.py`` property-
    tests, here run at sweep scale on the netsim scaling workload."""
    from repro.perf.netsim_scale import _run_scale_workload

    with _env(REPRO_NETPRIO=None):
        on_fp, _ = _run_scale_workload(n_workers, layers, iterations)
    with _env(REPRO_NETPRIO="off"):
        off_fp, _ = _run_scale_workload(n_workers, layers, iterations)
    return {
        "workers": n_workers,
        "identical": on_fp == off_fp,
        "fingerprint": on_fp,
    }


# ------------------------------------------------------------------ driver
def run_netprio_bench(
    quick: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> dict:
    """Run the full priority-scheduling benchmark; returns the BENCH dict."""
    say = progress or (lambda _msg: None)
    card = "resnet50-cifar10"
    n_workers = 4
    n_epochs = 2 if quick else 4
    iterations = 6
    seed = 7

    say("contended: OSP under 2x4 background tenants, priorities off")
    off = _contended_run(
        False, card, n_workers, n_epochs, iterations, seed, LOAD_FRACTION
    )
    say("contended: same schedule, priorities on")
    on = _contended_run(
        True, card, n_workers, n_epochs, iterations, seed, LOAD_FRACTION
    )
    say("inert: default-class sweep workload, scheduler on vs killed")
    inert = _inert_section(8 if quick else 16, layers=24, iterations=1)

    return {
        "schema": BENCH_SCHEMA,
        "config": {
            "quick": quick,
            "card": card,
            "workers": n_workers,
            "epochs": n_epochs,
            "iterations": iterations,
            "seed": seed,
            "load_fraction": LOAD_FRACTION,
        },
        "contended": {
            "off": off,
            "on": on,
            "improvement": off["rs_stage_p90_s"]
            / max(on["rs_stage_p90_s"], 1e-12),
        },
        "inert": inert,
    }


def save_bench(data: dict, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(data, fh, indent=1, sort_keys=True)
        fh.write("\n")


__all__ = [
    "BENCH_SCHEMA",
    "GUARDED_SPEEDUPS",
    "LOAD_FRACTION",
    "MIN_IMPROVEMENT",
    "REQUIRED_FIELDS",
    "run_netprio_bench",
    "save_bench",
    "validate_bench",
]
