"""Netsim scaling benchmark (``repro perf-net``).

Measures the discrete-event network core's host-time cost on an OSP-shaped
star workload — per-worker WFBP-style layer bursts into the PS, full-model
pulls back, staggered workers, and a mid-run bandwidth-dip fault window
exercising ``refresh_capacities`` — swept from 4 to 128 workers under the
legacy one-rerate-per-event path (``REPRO_FAIRSHARE=legacy``) and the fast
path (coalesced rerates + decoupled-delta skipping + heap fair-share +
vectorized drain). Every sweep point records a virtual-time fingerprint
(flow records + final clock) for both modes; ``identical`` certifies the
fast path changed host time only.

An end-to-end section runs a real timing-mode OSP training job under both
modes and compares the full numeric fingerprint *and* the differential
replay stream digest — the same witnesses ``repro check`` uses.

Results are written as ``BENCH_netsim.json`` (schema
``repro.perf.netsim/v1``), the committed scaling baseline that
``tests/perf/test_bench_netsim_guard.py`` validates: all ``identical``
flags true and at least :data:`MIN_SPEEDUP_64` at 64 workers.
"""

from __future__ import annotations

import hashlib
import json
import time
from typing import Callable, Optional

from repro.perf.hotpath import _best_of, _env, _fingerprint, get_path

BENCH_SCHEMA = "repro.perf.netsim/v1"

#: Minimum fast-vs-legacy host-time speedup required at 64 workers.
MIN_SPEEDUP_64 = 5.0

#: Dotted paths that must exist in a valid BENCH_netsim.json. Only the
#: guarded 64-worker point is required by schema; other sweep points are
#: informational (the full sweep reaches 128, quick mode stops at 64).
REQUIRED_FIELDS = (
    "schema",
    "config.quick",
    "config.layers",
    "config.iterations",
    "config.workers",
    "sweep.64.legacy_s",
    "sweep.64.fast_s",
    "sweep.64.speedup",
    "sweep.64.identical",
    "sweep.64.legacy_rerates",
    "sweep.64.fast_rerates",
    "sweep.64.fast_rerate_skipped",
    "end_to_end.legacy_host_s",
    "end_to_end.fast_host_s",
    "end_to_end.speedup",
    "end_to_end.identical",
    "end_to_end.fingerprint",
    "end_to_end.stream_digest",
)

#: Speedup ratios the guard requires to stay >= MIN_SPEEDUP_64. Only the
#: 64-worker point is guarded: small sweep points measure setup overhead
#: more than scheduler work, and 128 is absent in quick mode.
GUARDED_SPEEDUPS = ("sweep.64.speedup",)


def validate_bench(data: dict, min_speedup: float = MIN_SPEEDUP_64) -> list[str]:
    """Schema + identity + regression check; returns problems (empty = OK)."""
    problems: list[str] = []
    for field in REQUIRED_FIELDS:
        try:
            get_path(data, field)
        except (KeyError, TypeError):
            problems.append(f"missing field: {field}")
    if data.get("schema") != BENCH_SCHEMA:
        problems.append(
            f"schema mismatch: expected {BENCH_SCHEMA!r}, got {data.get('schema')!r}"
        )
    for field in GUARDED_SPEEDUPS:
        try:
            value = float(get_path(data, field))
        except (KeyError, TypeError, ValueError):
            continue  # already reported as missing
        if not value >= min_speedup:  # catches NaN too
            problems.append(
                f"regression: {field} = {value:.3f} < {min_speedup:.2f}"
            )
    sweep = data.get("sweep")
    if isinstance(sweep, dict):
        for n, entry in sweep.items():
            if not (isinstance(entry, dict) and entry.get("identical") is True):
                problems.append(
                    f"parity violation: sweep.{n}.identical is not true"
                )
    try:
        if get_path(data, "end_to_end.identical") is not True:
            problems.append("parity violation: end_to_end.identical is not true")
    except (KeyError, TypeError):
        pass
    return problems


# ------------------------------------------------------------- the workload
def _run_scale_workload(
    n_workers: int, layers: int, iterations: int
) -> tuple[str, dict[str, int]]:
    """One deterministic OSP-shaped netsim run; returns (fingerprint, stats).

    Traffic pattern per worker and iteration: a compute gap, then all
    ``layers`` gradient pushes started in the *same instant* (WFBP bursts —
    what rerate coalescing batches), then a full-model pull after the burst
    lands. Workers start staggered so bursts interleave rather than align.
    A fault process halves the PS downlink and two worker uplinks mid-run
    and reverts them, driving ``refresh_capacities`` through both windows.
    """
    from repro.netsim.links import LinkSpec
    from repro.netsim.network import Network
    from repro.netsim.topology import StarTopology
    from repro.simcore.environment import Environment

    env = Environment()
    topo = StarTopology(
        n_workers + 1, default_spec=LinkSpec(bandwidth=1.25e9, latency=5e-4)
    )
    net = Network(env, topo)
    ps = n_workers
    layer_bytes = [2_000_000.0 * (1.0 + (l % 3)) for l in range(layers)]
    model_bytes = float(sum(layer_bytes))

    def worker(w: int):
        yield env.timeout(w * 2e-4)
        for it in range(iterations):
            yield env.timeout(1e-3)
            pushes = [
                net.transfer(w, ps, layer_bytes[l], tag=("push", w, it, l))
                for l in range(layers)
            ]
            yield env.all_of(pushes)
            yield net.transfer(ps, w, model_bytes, tag=("pull", w, it))

    procs = [env.process(worker(w)) for w in range(n_workers)]

    def fault_window():
        dipped = [
            l
            for l in topo.links
            if l.name in (f"down:{ps}", "up:0", "up:1")
        ]
        yield env.timeout(0.04)
        for link in dipped:
            link.apply_fault(bandwidth_factor=0.5)
        net.refresh_capacities()
        yield env.timeout(0.08)
        for link in dipped:
            link.clear_fault(bandwidth_factor=0.5)
        net.refresh_capacities()

    env.process(fault_window())
    env.run(env.all_of(procs))

    h = hashlib.sha256()
    for r in net.records:
        h.update(
            repr(
                (r.fid, r.src, r.dst, r.size, r.tag, r.start_time, r.end_time)
            ).encode()
        )
    h.update(repr(env.now).encode())
    return h.hexdigest(), dict(net.stats)


def _timed_mode(
    mode: Optional[str],
    n_workers: int,
    layers: int,
    iterations: int,
    repeats: int,
) -> tuple[float, str, dict[str, int]]:
    """Best-of-N host time for one solver mode; fingerprint from run 1."""
    fp_stats: list = []

    def once():
        result = _run_scale_workload(n_workers, layers, iterations)
        if not fp_stats:
            fp_stats.append(result)

    with _env(REPRO_FAIRSHARE=mode):
        best = _best_of(once, repeats)
    fingerprint, stats = fp_stats[0]
    return best, fingerprint, stats


def _sweep_section(
    worker_counts, layers: int, iterations: int, repeats: int
) -> dict:
    sweep: dict[str, dict] = {}
    for n in worker_counts:
        legacy_s, legacy_fp, legacy_stats = _timed_mode(
            "legacy", n, layers, iterations, repeats
        )
        fast_s, fast_fp, fast_stats = _timed_mode(
            None, n, layers, iterations, repeats
        )
        sweep[str(n)] = {
            "legacy_s": legacy_s,
            "fast_s": fast_s,
            "speedup": legacy_s / max(fast_s, 1e-12),
            "identical": legacy_fp == fast_fp,
            "fingerprint": fast_fp,
            "legacy_rerates": legacy_stats["netsim.rerates"],
            "legacy_fairshare_calls": legacy_stats["netsim.fairshare_calls"],
            "fast_rerates": fast_stats["netsim.rerates"],
            "fast_fairshare_calls": fast_stats["netsim.fairshare_calls"],
            "fast_rerate_skipped": fast_stats["netsim.rerate_skipped"],
        }
    return sweep


# ------------------------------------------------------------- end-to-end
def _e2e_section(
    card_name: str, n_workers: int, n_epochs: int, seed: int
) -> dict:
    """Real timing-mode OSP run under both modes: host time + the full
    identity battery (numeric fingerprint, replay-stream digest, virtual
    clock repr)."""
    from repro.check.replay import capture_stream
    from repro.core.osp import OSP
    from repro.harness.workloads import WorkloadConfig, timing_trainer

    def run():
        cfg = WorkloadConfig(
            card_name, n_workers=n_workers, n_epochs=n_epochs, seed=seed
        )
        trainer = timing_trainer(cfg, OSP())
        t0 = time.perf_counter()
        res = trainer.run()
        host = time.perf_counter() - t0
        digest = hashlib.sha256(
            "\n".join(map(repr, capture_stream(trainer, res))).encode()
        ).hexdigest()
        return host, _fingerprint(trainer, res), digest, res.wall_time

    with _env(REPRO_FAIRSHARE="legacy"):
        legacy_host, legacy_fp, legacy_digest, legacy_vt = run()
    with _env(REPRO_FAIRSHARE=None):
        fast_host, fast_fp, fast_digest, fast_vt = run()

    return {
        "card": card_name,
        "workers": n_workers,
        "epochs": n_epochs,
        "legacy_host_s": legacy_host,
        "fast_host_s": fast_host,
        "speedup": legacy_host / max(fast_host, 1e-12),
        "virtual_s": fast_vt,
        "identical": (
            legacy_fp == fast_fp
            and legacy_digest == fast_digest
            and repr(legacy_vt) == repr(fast_vt)
        ),
        "fingerprint": fast_fp,
        "stream_digest": fast_digest,
    }


# ------------------------------------------------------------------ driver
def run_netsim_bench(
    quick: bool = False,
    repeats: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> dict:
    """Run the full netsim scaling benchmark; returns the BENCH dict."""
    say = progress or (lambda _msg: None)
    worker_counts = (4, 8, 16, 32, 64) if quick else (4, 8, 16, 32, 64, 128)
    layers = 24  # ResNet/BERT-scale WFBP burst width
    iterations = 1 if quick else 2
    if repeats is None:
        repeats = 1 if quick else 2

    say(f"sweep: {len(worker_counts)} worker counts, both solver modes")
    sweep = _sweep_section(worker_counts, layers, iterations, repeats)
    say("end-to-end: timing-mode OSP run under both modes")
    e2e = _e2e_section(
        "vgg16-cifar10",
        n_workers=8,
        n_epochs=2 if quick else 4,
        seed=7,
    )
    return {
        "schema": BENCH_SCHEMA,
        "config": {
            "quick": quick,
            "layers": layers,
            "iterations": iterations,
            "repeats": repeats,
            "workers": list(worker_counts),
        },
        "sweep": sweep,
        "end_to_end": e2e,
    }


def save_bench(data: dict, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(data, fh, indent=1, sort_keys=True)
        fh.write("\n")


__all__ = [
    "BENCH_SCHEMA",
    "GUARDED_SPEEDUPS",
    "MIN_SPEEDUP_64",
    "REQUIRED_FIELDS",
    "run_netsim_bench",
    "save_bench",
    "validate_bench",
]
