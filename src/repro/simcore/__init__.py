"""Discrete-event simulation kernel.

A compact, deterministic, generator-based DES in the style of SimPy:
processes are Python generators that ``yield`` events; the
:class:`~repro.simcore.environment.Environment` advances a virtual clock and
resumes processes when the events they wait on trigger.

Determinism guarantee: events scheduled for the same virtual time are
processed in (priority, insertion-order) — there is no wall-clock or hash
nondeterminism anywhere in the kernel, so a simulation with a fixed seed is
bit-reproducible.

Example
-------
>>> from repro.simcore import Environment
>>> env = Environment()
>>> def proc(env):
...     yield env.timeout(5.0)
...     return "done"
>>> p = env.process(proc(env))
>>> env.run()
>>> env.now, p.value
(5.0, 'done')
"""

from repro.simcore.events import (
    AllOf,
    AnyOf,
    Event,
    EventAlreadyTriggered,
    Interrupt,
    Timeout,
)
from repro.simcore.environment import Environment, SimulationError
from repro.simcore.process import Process
from repro.simcore.resources import Barrier, QuorumBarrier, Resource, Store
from repro.simcore.priority import URGENT, NORMAL, LOW

__all__ = [
    "AllOf",
    "AnyOf",
    "Barrier",
    "Environment",
    "Event",
    "EventAlreadyTriggered",
    "Interrupt",
    "Process",
    "QuorumBarrier",
    "Resource",
    "SimulationError",
    "Store",
    "Timeout",
    "URGENT",
    "NORMAL",
    "LOW",
]
