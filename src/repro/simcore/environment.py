"""The simulation environment: virtual clock + event queue + run loop."""

from __future__ import annotations

import heapq
from contextlib import contextmanager
from typing import Any, Generator, Optional

from repro.simcore.events import Event, Timeout
from repro.simcore.priority import NORMAL


class SimulationError(RuntimeError):
    """Raised when the simulation itself is misused (e.g. running past an
    empty queue with ``until`` set, or an unhandled failure surfaces)."""


class Environment:
    """Execution environment for a discrete-event simulation.

    The environment owns the virtual clock (:attr:`now`) and the event queue.
    Time units are arbitrary; this project uses **seconds** throughout.

    Parameters
    ----------
    initial_time:
        Starting value of the virtual clock.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._eid = 0  # insertion counter: deterministic FIFO tie-break
        #: Optional :class:`repro.obs.Tracer` (duck-typed; the kernel never
        #: calls it). None keeps tracing zero-cost for untraced runs.
        self.tracer = None
        #: The process whose generator step is currently executing (set by
        #: :class:`~repro.simcore.process.Process`). Gives the tracer its
        #: process-local current-span context.
        self.active_process = None
        #: Optional :class:`repro.obs.timeseries.MetricSampler` (duck-typed).
        #: Called once per processed event *after* its callbacks ran, so
        #: sampling observes the post-event state without ever scheduling
        #: events of its own — sampled runs stay bit-identical to unsampled.
        self.metric_sampler = None
        #: Co-tenancy namespace: the job name processes created *right now*
        #: are stamped with (see :meth:`job_scope`). ``None`` outside any
        #: scope — the single-tenant default, with zero bookkeeping cost.
        self.current_job: Optional[str] = None

    @contextmanager
    def job_scope(self, job: Optional[str]):
        """Attribute processes (and their tracer spans) to a co-tenant job.

        Purely passive namespacing: every :class:`Process` created while
        the scope is open records ``job`` in its ``.job`` attribute, which
        the tracer copies onto spans so multi-job traces can be filtered
        per tenant. No events are created and virtual time is untouched,
        so scoped runs stay bit-identical to unscoped ones.
        """
        prev, self.current_job = self.current_job, job
        try:
            yield self
        finally:
            self.current_job = prev

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    # -- event factories ---------------------------------------------------
    def event(self) -> Event:
        """Create a new, untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers after ``delay`` time units."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> "Process":  # noqa: F821
        """Start a new process from a generator; returns its Process event."""
        from repro.simcore.process import Process

        return Process(self, generator)

    def all_of(self, events) -> Event:
        """Event that fires when all of ``events`` have succeeded."""
        from repro.simcore.events import AllOf

        return AllOf(self, events)

    def any_of(self, events) -> Event:
        """Event that fires when any of ``events`` has succeeded."""
        from repro.simcore.events import AnyOf

        return AnyOf(self, events)

    def defer(self, fn, priority: int = NORMAL) -> Event:
        """Same-instant batching hook: run ``fn()`` later *this* instant.

        Schedules an already-succeeded event at the current time, so ``fn``
        executes after every event already queued for ``now`` (at the same
        priority) but before the clock advances. Subsystems use this to
        coalesce work triggered by several same-instant events into one
        pass — e.g. the network re-rates once per instant instead of once
        per flow start. The callback must not assume any ordering relative
        to other events at the same instant beyond "after those queued
        before it".
        """
        ev = Event(self)
        ev._ok = True
        ev._value = None
        ev.callbacks.append(lambda _ev: fn())
        self.schedule(ev, 0.0, priority)
        return ev

    # -- scheduling ----------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Queue a triggered event for processing at ``now + delay``."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event (advancing the clock to it)."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _prio, _eid, event = heapq.heappop(self._queue)
        assert when >= self._now, "event queue went backwards in time"
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for cb in callbacks:
            cb(event)
        if not event._ok and not event.defused:
            exc = event.value
            if isinstance(exc, BaseException):
                raise exc
            raise SimulationError(f"event failed with non-exception {exc!r}")
        sampler = self.metric_sampler
        if sampler is not None:
            sampler.on_advance(self._now)

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` — run until the queue drains.
            ``float`` — run until the clock reaches that time (clock is set
            to exactly ``until`` on return even if the queue drained early).
            :class:`Event` — run until that event has been processed and
            return its value (re-raising its failure).
        """
        if until is None:
            while self._queue:
                self.step()
            return None

        if isinstance(until, Event):
            sentinel = until
            while not sentinel.processed:
                if not self._queue:
                    raise SimulationError(
                        "run(until=event): queue drained before event triggered"
                    )
                self.step()
            if not sentinel.ok:
                raise sentinel.value
            return sentinel.value

        horizon = float(until)
        if horizon < self._now:
            raise ValueError(f"until={horizon} is in the past (now={self._now})")
        while self._queue and self._queue[0][0] <= horizon:
            self.step()
        self._now = horizon
        return None


__all__ = ["Environment", "SimulationError"]
