"""Event primitives for the simulation kernel.

An :class:`Event` is a one-shot occurrence on the virtual timeline. It moves
through three states:

* *pending* — created, not yet triggered;
* *triggered* — a value (or failure) is set and the event is on the queue;
* *processed* — its callbacks have run.

Processes (see :mod:`repro.simcore.process`) wait on events by ``yield``-ing
them; arbitrary code can subscribe via :attr:`Event.callbacks`.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from repro.simcore.priority import NORMAL, URGENT

# Sentinel distinguishing "no value yet" from "value is None".
_PENDING = object()


class EventAlreadyTriggered(RuntimeError):
    """Raised when ``succeed``/``fail`` is called on a triggered event."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`repro.simcore.process.Process.interrupt`.

    ``cause`` carries arbitrary user context (e.g. "preempted by straggler
    reschedule").
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    Parameters
    ----------
    env:
        Owning environment; the event is scheduled on its queue.
    """

    def __init__(self, env: "Environment") -> None:  # noqa: F821
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        #: If a failure is never retrieved (nothing waits on the event), the
        #: environment re-raises it at the end of the run unless defused.
        self.defused = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once a value or failure has been set."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded. Only valid once triggered."""
        if not self.triggered:
            raise RuntimeError("event not yet triggered")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The event's value (or the exception, for failed events)."""
        if self._value is _PENDING:
            raise RuntimeError("event not yet triggered")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self, priority=priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self.triggered:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env.schedule(self, priority=priority)
        return self

    def trigger(self, event: "Event") -> None:
        """Copy the outcome of another (triggered) event onto this one."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    # -- misc -------------------------------------------------------------
    def __repr__(self) -> str:
        state = (
            "processed"
            if self.processed
            else ("triggered" if self.triggered else "pending")
        )
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that triggers ``delay`` time units after creation."""

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:  # noqa: F821
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = float(delay)
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay} at {hex(id(self))}>"


class Condition(Event):
    """Base for composite events over a set of child events.

    Subclasses define :meth:`_check` returning True when the condition is
    satisfied. Child failures propagate immediately.
    """

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:  # noqa: F821
        super().__init__(env)
        self.events: list[Event] = list(events)
        for ev in self.events:
            if ev.env is not env:
                raise ValueError("all events must belong to the same environment")
        self._count = 0
        if not self.events:
            self.succeed(self._collect())
            return
        for ev in self.events:
            if ev.processed:
                self._on_child(ev)
            else:
                ev.callbacks.append(self._on_child)

    def _collect(self) -> dict[Event, Any]:
        return {ev: ev._value for ev in self.events if ev.processed and ev._ok}

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value, priority=URGENT)
            return
        self._count += 1
        if self._check():
            self.succeed(self._collect(), priority=URGENT)

    def _check(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(Condition):
    """Triggers when *all* child events have succeeded.

    Value is a dict mapping each child event to its value.
    """

    def _check(self) -> bool:
        return self._count == len(self.events)


class AnyOf(Condition):
    """Triggers when *any* child event has succeeded."""

    def _check(self) -> bool:
        return self._count >= 1


__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Event",
    "EventAlreadyTriggered",
    "Interrupt",
    "Timeout",
]
