"""Scheduling priorities for same-timestamp events.

Lower numeric value runs first. ``URGENT`` is used by the kernel for
bookkeeping that must precede user callbacks at the same instant (e.g. a
flow-rate recomputation before a dependent completion fires); ``NORMAL`` is
the default for user events; ``LOW`` runs after everything else at that
instant (used e.g. for metric sampling hooks).
"""

URGENT = 0
NORMAL = 1
LOW = 2

__all__ = ["URGENT", "NORMAL", "LOW"]
