"""Generator-based simulation processes.

A :class:`Process` wraps a Python generator. Each ``yield`` must produce an
:class:`~repro.simcore.events.Event`; the process suspends until that event
triggers, then resumes with the event's value (``event.value`` is sent into
the generator). A failed event is thrown into the generator as its
exception, so processes can ``try/except`` communication failures.

A Process is itself an Event: it succeeds with the generator's return value
when the generator ends, or fails with its uncaught exception.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.simcore.events import Event, Interrupt
from repro.simcore.priority import URGENT


class Process(Event):
    """A running simulation process (also an event: done ⇔ triggered)."""

    def __init__(self, env: "Environment", generator: Generator) -> None:  # noqa: F821
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"process() expects a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self._target: Event | None = None
        #: Owning co-tenant job (from the environment's open job_scope at
        #: creation time), or None for single-tenant processes.
        self.job = getattr(env, "current_job", None)
        # Bootstrap: resume the generator as soon as the sim starts/steps.
        init = Event(env)
        init.callbacks.append(self._resume)
        init.succeed(priority=URGENT)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    @property
    def target(self) -> Event | None:
        """The event this process is currently waiting on (None if done)."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        The process stops waiting on its current target (the target event is
        left untouched and may still trigger later; its value is simply no
        longer delivered to this process).
        """
        if self.triggered:
            raise RuntimeError("cannot interrupt a finished process")
        # Deliver via a fresh failed event so delivery is ordered with the
        # rest of the queue (URGENT: beats same-time normal events).
        interrupt_ev = Event(self.env)
        interrupt_ev.defused = True
        interrupt_ev.callbacks.append(self._resume_interrupt)
        interrupt_ev._ok = False
        interrupt_ev._value = Interrupt(cause)
        self.env.schedule(interrupt_ev, priority=URGENT)

    # -- internal ----------------------------------------------------------
    def _resume_interrupt(self, event: Event) -> None:
        if self.triggered:
            return  # process finished before the interrupt was delivered
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        self._step(event, throw=True)

    def _resume(self, event: Event) -> None:
        self._target = None
        self._step(event, throw=not event._ok)

    def _step(self, event: Event, throw: bool) -> None:
        # Mark this process as the one executing so tracer spans opened in
        # the generator body nest in a process-local context (triggering
        # another event here only *schedules* its callbacks, so steps never
        # nest — but restore the previous value anyway, defensively).
        prev_active = self.env.active_process
        self.env.active_process = self
        try:
            if throw:
                event.defused = True
                next_ev = self._generator.throw(event._value)
            else:
                next_ev = self._generator.send(
                    event._value if event is not None else None
                )
        except StopIteration as stop:
            self.succeed(stop.value, priority=URGENT)
            return
        except BaseException as exc:
            self.fail(exc, priority=URGENT)
            return
        finally:
            self.env.active_process = prev_active

        if not isinstance(next_ev, Event):
            err = RuntimeError(
                f"process yielded a non-event: {next_ev!r} "
                "(processes must yield simcore events)"
            )
            self.fail(err, priority=URGENT)
            return

        self._target = next_ev
        if next_ev.callbacks is None:
            # Already processed: resume immediately (same instant).
            relay = Event(self.env)
            relay.callbacks.append(self._resume)
            relay._ok = next_ev._ok
            relay._value = next_ev._value
            if not next_ev._ok:
                relay.defused = True
            self.env.schedule(relay, priority=URGENT)
        else:
            next_ev.callbacks.append(self._resume)


__all__ = ["Process"]
