"""Shared-resource primitives built on the event kernel.

- :class:`Resource` — counted resource with FIFO request queue (e.g. a PS
  that serves one worker at a time under round-robin R²SP).
- :class:`Store` — unbounded FIFO message store (producer/consumer channel;
  used for worker↔PS control messages such as GIB delivery).
- :class:`Barrier` — cyclic barrier for ``n`` parties (BSP's global barrier
  and OSP's RS barrier).
- :class:`QuorumBarrier` — a barrier whose party count can shrink/grow at
  runtime (worker crash/restart) and that can trip *degraded* after a
  virtual-time timeout instead of deadlocking (OSP's RS quorum, §4.3).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional

from repro.simcore.events import Event
from repro.simcore.priority import URGENT


class Resource:
    """Counted resource with FIFO granting.

    ``request()`` returns an event that succeeds once a unit is available;
    ``release()`` frees a unit. Typical process usage::

        req = resource.request()
        yield req
        try:
            ...  # critical section
        finally:
            resource.release()
    """

    def __init__(self, env: "Environment", capacity: int = 1) -> None:  # noqa: F821
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = int(capacity)
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Units currently held."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of pending requests."""
        return len(self._waiters)

    def request(self) -> Event:
        """Return an event that succeeds when a unit is granted."""
        ev = Event(self.env)
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed(priority=URGENT)
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Free one unit, granting it to the oldest waiter if any."""
        if self._in_use <= 0:
            raise RuntimeError("release() without a matching request()")
        if self._waiters:
            self._waiters.popleft().succeed(priority=URGENT)
        else:
            self._in_use -= 1


class Store:
    """Unbounded FIFO store of items (an async channel).

    ``put(item)`` is immediate; ``get()`` returns an event that succeeds with
    the next item (immediately if one is buffered).
    """

    def __init__(self, env: "Environment") -> None:  # noqa: F821
        self.env = env
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit an item; wakes the oldest waiting getter, if any."""
        if self._getters:
            self._getters.popleft().succeed(item, priority=URGENT)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event that succeeds with the next item in FIFO order."""
        ev = Event(self.env)
        if self._items:
            ev.succeed(self._items.popleft(), priority=URGENT)
        else:
            self._getters.append(ev)
        return ev


class Barrier:
    """Cyclic barrier for ``parties`` processes.

    Each party calls :meth:`wait` and yields the returned event; the event
    for all parties of a generation succeeds at the instant the last party
    arrives. The barrier then resets for the next generation. The event
    value is the generation index (0-based), handy for iteration accounting.
    """

    def __init__(self, env: "Environment", parties: int) -> None:  # noqa: F821
        if parties < 1:
            raise ValueError(f"parties must be >= 1, got {parties}")
        self.env = env
        self.parties = int(parties)
        self._generation = 0
        self._arrived = 0
        self._event = Event(env)

    @property
    def generation(self) -> int:
        """Completed-generation counter (increments when barrier trips)."""
        return self._generation

    @property
    def waiting(self) -> int:
        """Parties currently blocked at the barrier."""
        return self._arrived

    def wait(self) -> Event:
        """Arrive at the barrier; returns the generation's trip event."""
        ev = self._event
        self._arrived += 1
        if self._arrived == self.parties:
            gen = self._generation
            self._generation += 1
            self._arrived = 0
            self._event = Event(self.env)
            ev.succeed(gen, priority=URGENT)
        return ev


class QuorumBarrier:
    """Cyclic barrier with a mutable party count and an optional timeout.

    Semantics match :class:`Barrier` (each party ``yield``\\ s the event
    returned by :meth:`wait`; the event succeeds with the generation index)
    with two extensions for fault tolerance:

    * :meth:`set_parties` changes the quorum size mid-run. Shrinking it —
      a worker crashed — releases the current generation immediately if
      the survivors have all arrived, instead of deadlocking.
    * ``timeout`` (virtual seconds, measured from a generation's first
      arrival) trips the barrier *degraded*: whoever has arrived proceeds,
      and ``on_degraded(generation, arrived)`` is invoked so the caller
      can count/reweight the short quorum.

    A party that arrives after a degraded trip simply joins the next
    generation; nothing is lost, rounds just skew.
    """

    def __init__(
        self,
        env: "Environment",  # noqa: F821
        parties: int,
        timeout: Optional[float] = None,
        on_degraded: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        if parties < 1:
            raise ValueError(f"parties must be >= 1, got {parties}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self.env = env
        self.parties = int(parties)
        self.timeout = timeout
        self.on_degraded = on_degraded
        self._generation = 0
        self._arrived = 0
        self._event = Event(env)
        #: parties released by the most recent trip (diagnostics).
        self.last_trip_size = 0

    @property
    def generation(self) -> int:
        """Completed-generation counter (increments when barrier trips)."""
        return self._generation

    @property
    def waiting(self) -> int:
        """Parties currently blocked at the barrier."""
        return self._arrived

    def wait(self) -> Event:
        """Arrive at the barrier; returns the generation's trip event."""
        ev = self._event
        self._arrived += 1
        if self._arrived >= self.parties:
            self._trip(degraded=False)
        elif self._arrived == 1 and self.timeout is not None:
            timer = self.env.timeout(self.timeout)
            timer.callbacks.append(
                lambda _ev, gen=self._generation: self._on_timeout(gen)
            )
        return ev

    def set_parties(self, parties: int) -> None:
        """Resize the quorum; may release the current generation at once."""
        if parties < 1:
            raise ValueError(f"parties must be >= 1, got {parties}")
        self.parties = int(parties)
        if self._arrived and self._arrived >= self.parties:
            self._trip(degraded=False)

    def _on_timeout(self, generation: int) -> None:
        # Stale timer (the generation tripped before the deadline) or a
        # deadline with nobody waiting: ignore.
        if generation != self._generation or self._arrived == 0:
            return
        self._trip(degraded=True)

    def _trip(self, degraded: bool) -> None:
        ev = self._event
        gen = self._generation
        size = self._arrived
        self.last_trip_size = size
        self._generation += 1
        self._arrived = 0
        self._event = Event(self.env)
        ev.succeed(gen, priority=URGENT)
        if degraded and self.on_degraded is not None:
            self.on_degraded(gen, size)


__all__ = ["Barrier", "QuorumBarrier", "Resource", "Store"]
