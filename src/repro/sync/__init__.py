"""Synchronization-model zoo: the paper's baselines.

- :class:`BSP` — bulk synchronous parallel (global barrier; incast).
- :class:`ASP` — asynchronous parallel (independent push/pull; staleness).
- :class:`SSP` — stale synchronous parallel (bounded iteration gap).
- :class:`R2SP` — round-robin synchronization (serialized transfers that
  fully utilise the PS's duplex link; INFOCOM'19 baseline the paper
  compares against).
- :class:`SyncSwitch` — BSP early, ASP late (§2.2.1 related work, built as
  an extension/ablation).

All share the :class:`~repro.sync.base.SyncModel` worker-loop skeleton; OSP
itself lives in :mod:`repro.core.osp` (it is the paper's contribution, not
a baseline).
"""

from repro.sync.base import SyncModel
from repro.sync.bsp import BSP
from repro.sync.asp import ASP
from repro.sync.ssp import SSP
from repro.sync.r2sp import R2SP
from repro.sync.sync_switch import SyncSwitch
from repro.sync.multips import ShardedBSP
from repro.sync.dssp import DSSP
from repro.sync.compressed import CompressedBSP
from repro.sync.wfbp import WFBP

__all__ = [
    "ASP",
    "BSP",
    "CompressedBSP",
    "DSSP",
    "R2SP",
    "SSP",
    "ShardedBSP",
    "SyncModel",
    "SyncSwitch",
    "WFBP",
]
