"""ASP — Asynchronous Parallel (paper §2.1.2, Fig. 2).

Each worker independently pushes its gradients, the PS applies them
immediately (scaled by the worker's data weight), and the worker pulls the
current global parameters. No barrier: stragglers never block others, but
every worker trains on parameters that other workers may have moved since
— the staleness that costs ASP final accuracy (Fig. 6b).
"""

from __future__ import annotations

from repro.sync.base import SyncModel


class ASP(SyncModel):
    """Classic PS-based asynchronous parallel."""

    name = "asp"

    def setup(self, ctx) -> None:
        super().setup(ctx)
        #: PS version each worker last pulled — its replica's freshness.
        self._pull_version: dict[int, int] = {}

    def worker_signals(self, ctx):
        # Observed staleness: PS updates applied since this worker's last
        # pull, i.e. how far its replica lags the global model (DSSP-style).
        version = ctx.ps.version
        return {
            f"osp.worker.{w}.staleness": float(version - pulled)
            for w, pulled in self._pull_version.items()
        }

    def synchronize(self, ctx, worker, epoch, iteration, grads, loss):
        trace = ctx.trace
        actor = f"worker {worker}"
        nbytes = ctx.engine.model_bytes
        span = trace.begin(
            "push", actor, worker=worker, iteration=iteration, bytes=nbytes
        )
        yield ctx.transfer_to_ps(worker, nbytes, tag=("asp-push", worker, iteration))
        trace.end(span)
        ctx.ps.apply_immediate(worker, grads)
        span = trace.begin(
            "pull", actor, worker=worker, iteration=iteration, bytes=nbytes
        )
        yield ctx.transfer_from_ps(worker, nbytes, tag=("asp-pull", worker, iteration))
        trace.end(span)
        ctx.engine.sync_replica(worker, ctx.ps)
        self._pull_version[worker] = ctx.ps.version


__all__ = ["ASP"]
