"""SyncModel base: the shared per-worker training loop skeleton.

Each iteration: (optional pre-compute wait) → compute → synchronize →
record. Subclasses implement :meth:`synchronize` (and optionally
:meth:`before_compute`, :meth:`extra_compute_time`, :meth:`setup`,
:meth:`on_epoch_end`). All of these run inside simcore processes — the
generators may ``yield`` events.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.cluster.context import TrainerContext

from typing import Optional



class SyncModel:
    """Base synchronization model (see module docstring)."""

    #: Human-readable name used in results and benchmark tables.
    name = "abstract"

    #: Whether this model tolerates elastic membership changes (its barriers
    #: track the alive-worker set). The trainer refuses a
    #: ``ClusterSpec.membership`` schedule on models that don't.
    supports_elastic = False

    def setup(self, ctx: TrainerContext) -> None:
        """One-time initialisation before worker processes start."""
        ctx.epoch_end_hooks.append(
            lambda epoch, loss, metric: self.on_epoch_end(ctx, epoch, loss, metric)
        )

    def on_epoch_end(
        self, ctx: TrainerContext, epoch: int, train_loss: float, metric: float
    ) -> None:
        """Called once per finished epoch (all workers done, post-eval)."""

    def extra_compute_time(self, ctx: TrainerContext, worker: int) -> float:
        """Additional per-iteration compute charged to this worker
        (co-located PS duties, §4.4)."""
        return 0.0

    def before_compute(self, ctx: TrainerContext, worker: int, iteration: int):
        """Generator hook before an iteration's compute (SSP waits here)."""
        return
        yield  # pragma: no cover - makes this a generator

    def synchronize(
        self,
        ctx: TrainerContext,
        worker: int,
        epoch: int,
        iteration: int,
        grads,
        loss: float,
    ):
        """Generator: perform this model's synchronization for one
        iteration. Virtual time spent here is recorded as BST."""
        raise NotImplementedError
        yield  # pragma: no cover

    # -- the shared loop -----------------------------------------------------
    def worker_process(self, ctx: TrainerContext, worker: int):
        """The per-worker simcore process driving training."""
        ipe = ctx.iterations_per_epoch
        resume_at = ctx.start_epoch - 1
        trace = ctx.trace  # NULL_TRACER when tracing is off (all no-ops)
        actor = f"worker {worker}"
        entry = ctx.entry_epoch(worker)
        if entry is None:
            return  # permanently out (left or crashed before a resume point)
        if entry > ctx.start_epoch:
            # Elastic joiner, or a crash/restart cycle spanning a checkpoint
            # resume: sit out until the cluster finishes epoch entry−1.
            if entry >= ctx.plan.n_epochs:
                return
            yield ctx.epoch_completion(entry - 1)
            if not ctx.admit_worker(worker):
                return  # the run ended (early stop) while we were out
            gate = ctx.checkpoint_gate(entry - 1)
            if gate is not None:
                yield gate  # don't race an in-progress snapshot drain
            resume_at = entry
        for epoch in range(ctx.start_epoch, ctx.plan.n_epochs):
            if ctx.should_fail(worker, epoch):
                restart = ctx.retire_worker(worker)
                if restart is None or restart >= ctx.plan.n_epochs:
                    return  # permanent crash: no finalize, in-flight state is lost
                # Crash/restart cycle: sit out until the survivors finish
                # epoch restart−1, re-sync the replica, rejoin at `restart`.
                yield ctx.epoch_completion(restart - 1)
                if not ctx.revive_worker(worker):
                    return  # the run ended (early stop) while we were down
                gate = ctx.checkpoint_gate(restart - 1)
                if gate is not None:
                    yield gate
                resume_at = restart
            if epoch < resume_at:
                continue
            if ctx.skip_epoch(epoch):
                break
            if ctx.should_leave(worker, epoch):
                # Graceful elastic departure: announce, then drain any
                # in-flight background work before the process exits.
                ctx.depart_worker(worker)
                yield from self.finalize(ctx, worker)
                return
            for batch in range(ipe):
                iteration = epoch * ipe + batch
                yield from self.before_compute(ctx, worker, iteration)
                it_span = trace.begin(
                    "iteration", actor, cat="iteration",
                    worker=worker, iteration=iteration, epoch=epoch,
                )
                grads, loss, samples, t_c, t_start = yield from ctx.compute(
                    worker,
                    epoch,
                    batch,
                    extra_time=self.extra_compute_time(ctx, worker),
                )
                sync_start = ctx.env.now
                sync_span = trace.begin(
                    "sync", actor, worker=worker, iteration=iteration
                )
                yield from self.synchronize(
                    ctx, worker, epoch, iteration, grads, loss
                )
                trace.end(sync_span)
                trace.end(it_span)
                trace.observe("obs.bst", ctx.env.now - sync_start)
                trace.observe("obs.bct", t_c)
                ctx.record_iteration(
                    worker,
                    iteration,
                    t_start,
                    t_c,
                    ctx.env.now - sync_start,
                    loss,
                    samples,
                )
            ctx.epoch_done(worker, epoch)
            yield from ctx.checkpoint_pause(worker, epoch)
        yield from self.finalize(ctx, worker)

    def finalize(self, ctx: TrainerContext, worker: int):
        """Generator hook after a worker's last iteration (drain in-flight
        background work, e.g. OSP's final ICS)."""
        return
        yield  # pragma: no cover

    # -- checkpointing --------------------------------------------------------
    def checkpoint_state(self, ctx: TrainerContext) -> dict:
        """JSON-able sync-model state for a checkpoint (default: none)."""
        return {}

    def checkpoint_arrays(self, ctx: TrainerContext) -> dict:
        """Named numeric arrays for a checkpoint (default: none)."""
        return {}

    def restore_state(self, ctx: TrainerContext, state: dict, arrays: dict) -> None:
        """Restore state captured by :meth:`checkpoint_state` /
        :meth:`checkpoint_arrays`; called after :meth:`setup` on resume."""

    def inflight_events(self, ctx: TrainerContext) -> list:
        """Events for background work still in flight (checkpoint drain)."""
        return []

    def inflight_bytes(self, ctx: TrainerContext) -> float:
        """Wire bytes currently in flight (checkpoint discard accounting)."""
        return 0.0

    # -- health sampling -------------------------------------------------------
    def worker_signals(self, ctx: TrainerContext) -> dict:
        """Per-worker health signals for the time-series sampler.

        Returns a mapping of fully-qualified ``osp.worker.{w}.*`` track
        names (see :data:`repro.obs.registry.TRACKS`) to current values.
        Read-only: implementations must not mutate protocol state or create
        simulation events. Model-specific values override the sampler's
        generic recorder-derived ones (e.g. SSP's bound-relative staleness
        replaces the progress-lag estimate).
        """
        return {}


__all__ = ["SyncModel"]
