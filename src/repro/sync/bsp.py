"""BSP — Bulk Synchronous Parallel (paper §2.1.2, Fig. 1).

All workers push their full gradients simultaneously (incast on the PS
downlink), the PS applies the weighted average once per round, then all
workers pull the full updated parameters simultaneously (incast on the PS
uplink). A global barrier makes every iteration cost the slowest worker's
time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.cluster.context import TrainerContext

from repro.sync.base import SyncModel


class BSP(SyncModel):
    """Classic PS-based bulk synchronous parallel."""

    name = "bsp"

    def setup(self, ctx: TrainerContext) -> None:
        super().setup(ctx)
        self._barrier = ctx.barrier()

    def worker_signals(self, ctx):
        # The barrier pins every replica to the same version: staleness is
        # identically zero. Emitted explicitly so dashboards show the track
        # for every sync model rather than a BSP-shaped gap.
        return {f"osp.worker.{w}.staleness": 0.0 for w in ctx.alive_workers}

    def synchronize(self, ctx, worker, epoch, iteration, grads, loss):
        # Same span names as OSP's RS stage (BSP ≡ RS over the full model),
        # so traced timelines compare apples-to-apples.
        trace = ctx.trace
        actor = f"worker {worker}"
        nbytes = ctx.engine.model_bytes
        span = trace.begin(
            "rs_push", actor, worker=worker, iteration=iteration, bytes=nbytes
        )
        yield ctx.transfer_to_ps(worker, nbytes, tag=("bsp-push", worker, iteration))
        trace.end(span)
        if ctx.ps.accumulate(f"bsp:{iteration}", worker, grads) == ctx.spec.n_workers:
            ctx.ps.apply_average(f"bsp:{iteration}")
        span = trace.begin(
            "rs_barrier_wait", actor, worker=worker, iteration=iteration
        )
        yield self._barrier.wait()
        trace.end(span)
        span = trace.begin(
            "rs_pull", actor, worker=worker, iteration=iteration, bytes=nbytes
        )
        yield ctx.transfer_from_ps(worker, nbytes, tag=("bsp-pull", worker, iteration))
        trace.end(span)
        ctx.engine.sync_replica(worker, ctx.ps)


__all__ = ["BSP"]
