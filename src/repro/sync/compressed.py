"""BSP with gradient compression (the §2.2.2 alternative to OSP).

Sparsification/quantisation attacks the same bottleneck as OSP — bytes on
the wire per iteration — but by *dropping* information instead of
*deferring* it. This sync model wires any :class:`repro.compression`
codec into the BSP round so the cluster-level trade-off (throughput gained
vs accuracy lost) can be measured against OSP's.

Semantics: each worker compresses its gradient after backprop; the wire
carries the compressed bytes; the PS decompresses and averages the lossy
gradients; the parameter pull stays dense (as in Aji & Heafield's sparse
push / dense pull design).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.cluster.context import TrainerContext

from repro.compression.base import Compressor, dense_bytes
from repro.sync.base import SyncModel


class CompressedBSP(SyncModel):
    """BSP with a pluggable gradient codec on the push path.

    Parameters
    ----------
    compressor:
        Any :mod:`repro.compression` codec. In numeric mode the actual
        compressed size sets the wire bytes (scaled to paper scale); in
        timing mode ``nominal_ratio`` is used (no real gradients exist).
    nominal_ratio:
        Wire bytes as a fraction of dense, for timing mode.
    """

    name = "compressed-bsp"

    def __init__(
        self,
        compressor: Compressor,
        nominal_ratio: float = 0.1,
        label: str | None = None,
    ) -> None:
        if not (0.0 < nominal_ratio <= 1.0):
            raise ValueError(f"nominal_ratio must be in (0,1], got {nominal_ratio}")
        self.compressor = compressor
        self.nominal_ratio = nominal_ratio
        suffix = label if label is not None else type(compressor).__name__.lower()
        self.name = f"compressed-bsp-{suffix}"

    def setup(self, ctx: TrainerContext) -> None:
        super().setup(ctx)
        self._barrier = ctx.barrier()

    def synchronize(self, ctx, worker, epoch, iteration, grads, loss):
        model_bytes = ctx.engine.model_bytes
        if grads is not None:
            payload, wire = self.compressor.compress(grads)
            lossy = self.compressor.decompress(payload)
            push_bytes = model_bytes * (wire / max(1, dense_bytes(grads)))
        else:
            lossy = None
            push_bytes = model_bytes * self.nominal_ratio

        yield ctx.transfer_to_ps(
            worker, push_bytes, tag=("cbsp-push", worker, iteration)
        )
        if ctx.ps.accumulate(f"cbsp:{iteration}", worker, lossy) == ctx.spec.n_workers:
            ctx.ps.apply_average(f"cbsp:{iteration}")
        yield self._barrier.wait()
        # Dense parameter pull (sparse-push / dense-pull convention).
        yield ctx.transfer_from_ps(
            worker, model_bytes, tag=("cbsp-pull", worker, iteration)
        )
        ctx.engine.sync_replica(worker, ctx.ps)


__all__ = ["CompressedBSP"]
