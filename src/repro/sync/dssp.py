"""DSSP — Dynamic Stale Synchronous Parallel (Zhao et al., ICDCS'19; the
paper's related work §7).

SSP with an adaptive threshold: instead of a fixed staleness bound ``s``,
DSSP keeps the bound inside a range ``[s_min, s_max]`` and moves it with
the observed processing-speed spread — when workers run at similar speeds
the bound tightens toward ``s_min`` (fresher updates), and when the spread
grows it relaxes toward ``s_max`` (fewer blocking waits).

Our adaptation signal is the ratio of the slowest to fastest worker's
recent mean iteration time, mapped linearly onto the range — a faithful
rendering of DSSP's "determine the best s from the current range based on
real-time processing speeds".
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.cluster.context import TrainerContext

import numpy as np

from repro.sync.ssp import SSP


class DSSP(SSP):
    """Dynamically-bounded stale synchronous parallel."""

    name = "dssp"

    def __init__(self, s_min: int = 1, s_max: int = 6, window: int = 8) -> None:
        if not (0 <= s_min <= s_max):
            raise ValueError(f"need 0 <= s_min <= s_max, got [{s_min},{s_max}]")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        super().__init__(staleness=s_min)
        self.s_min = s_min
        self.s_max = s_max
        self.window = window
        self._durations: dict[int, list[float]] = {}

    def setup(self, ctx: TrainerContext) -> None:
        super().setup(ctx)
        self._durations = {w: [] for w in range(ctx.spec.n_workers)}
        self._last_start: dict[int, float] = {}

    @property
    def current_staleness(self) -> int:
        """The bound currently in force."""
        return self.staleness

    def _observe(self, ctx, worker: int, duration: float) -> None:
        window = self._durations[worker]
        window.append(duration)
        if len(window) > self.window:
            window.pop(0)
        # The spread is a *current* processing-speed signal, so only workers
        # that are actually running count: a crashed worker's frozen window
        # must not pin the bound forever, and a not-yet-joined worker's
        # empty window must not hold adaptation at s_min indefinitely.
        alive = ctx.alive_workers
        windows = [w for wid, w in self._durations.items() if wid in alive]
        means = [float(np.mean(w)) for w in windows if w]
        if not means or len(means) < len(windows):
            return  # some live worker not measured yet
        spread = max(means) / max(min(means), 1e-12)
        # spread 1.0 -> s_min; spread >= 2.0 -> s_max; linear in between.
        frac = min(1.0, max(0.0, spread - 1.0))
        self.staleness = round(self.s_min + frac * (self.s_max - self.s_min))

    def before_compute(self, ctx, worker, iteration):
        # Full iteration time = gap between consecutive compute starts;
        # that is the "processing speed" DSSP adapts to.
        now = ctx.env.now
        last = self._last_start.get(worker)
        if last is not None and now > last:
            self._observe(ctx, worker, now - last)
        self._last_start[worker] = now
        yield from super().before_compute(ctx, worker, iteration)


__all__ = ["DSSP"]
