"""Sharded synchronization across multiple parameter servers (paper §6.1).

The paper proposes (as the scaling remedy, BytePS-style) sharding the
model across several PSes so each PS aggregates one layer partition for
all workers, dividing the incast per PS by the shard ratio. §6.1 leaves
the orchestration as future work; this module executes it in simulation:

* :func:`repro.core.groups.plan_sync_groups` balances layers across PSes
  (greedy LPT);
* :class:`ShardedBSP` pushes/pulls each shard to/from its PS concurrently
  with a global barrier per iteration — BSP semantics, sharded transport.

Aggregation math stays on one logical :class:`ParameterServer` (numeric
correctness is placement-independent); only the *transport* is sharded,
which is what the §6.1 claim is about.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.cluster.context import TrainerContext

from repro.core.groups import SyncGroupPlan, plan_sync_groups
from repro.sync.base import SyncModel


class ShardedBSP(SyncModel):
    """BSP with the model sharded across ``spec.n_ps`` parameter servers."""

    name = "sharded-bsp"

    #: The barrier is a quorum barrier and the apply threshold tracks the
    #: alive set, so elastic join/leave at epoch boundaries is safe.
    supports_elastic = True

    def setup(self, ctx: TrainerContext) -> None:
        super().setup(ctx)
        self._barrier = ctx.quorum_barrier()
        self.plan: SyncGroupPlan = plan_sync_groups(
            ctx.engine.layer_bytes, ctx.spec.n_ps
        )
        self.name = f"sharded-bsp-{ctx.spec.n_ps}ps"
        # Pre-compute per-PS shard byte sizes.
        self._shard_bytes = list(self.plan.shard_bytes)
        # Parameter-name partition for numeric mode.
        self._shard_params: list[tuple[str, ...]] = []
        for ps in range(ctx.spec.n_ps):
            layers = [l for l, p in self.plan.assignment.items() if p == ps]
            self._shard_params.append(ctx.engine.splitter.params_of(layers))

    def synchronize(self, ctx, worker, epoch, iteration, grads, loss):
        n_ps = ctx.spec.n_ps
        # Push all shards concurrently, one flow per PS.
        pushes = [
            ctx.transfer_to_ps(
                worker,
                self._shard_bytes[ps],
                tag=("sbsp-push", worker, iteration, ps),
                ps_index=ps,
            )
            for ps in range(n_ps)
        ]
        yield ctx.env.all_of(pushes)
        if ctx.ps.accumulate(f"sbsp:{iteration}", worker, grads) >= len(ctx.alive_workers):
            ctx.ps.apply_average(f"sbsp:{iteration}")
        yield self._barrier.wait()
        pulls = [
            ctx.transfer_from_ps(
                worker,
                self._shard_bytes[ps],
                tag=("sbsp-pull", worker, iteration, ps),
                ps_index=ps,
            )
            for ps in range(n_ps)
        ]
        yield ctx.env.all_of(pulls)
        ctx.engine.sync_replica(worker, ctx.ps)


__all__ = ["ShardedBSP"]
