"""R²SP — Round-Robin Synchronization (Chen, Wang & Li, INFOCOM'19; paper
ref [21] and the paper's main state-of-the-art baseline).

Worker↔PS synchronizations are *scheduled one worker at a time*, so each
transfer gets the full link bandwidth instead of an incast-degraded share.
Update semantics are asynchronous (no global barrier), which is why R²SP
still suffers stale parameters as the worker count grows (§2.2.1).

Two service disciplines:

* ``duplex=False`` (default, matching the original system's behaviour of
  serving one worker's synchronization turn at a time): a worker holds the
  PS for its whole push+pull round trip.
* ``duplex=True`` (idealised variant): push and pull run on separate
  tokens, so worker *k+1*'s push overlaps worker *k*'s pull and the PS's
  full-duplex link is saturated in both directions. This is the best-case
  reading of the paper's "fully utilise the bandwidth of the PS's duplex
  links" and is kept as an ablation (``bench_ablation_r2sp_duplex``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.cluster.context import TrainerContext

from repro.simcore.resources import Resource
from repro.sync.base import SyncModel


class R2SP(SyncModel):
    """Round-robin scheduled PS synchronization."""

    name = "r2sp"

    def __init__(self, duplex: bool = False) -> None:
        self.duplex = duplex
        if duplex:
            self.name = "r2sp-duplex"

    def setup(self, ctx: TrainerContext) -> None:
        super().setup(ctx)
        self._push_token = Resource(ctx.env, capacity=1)
        self._pull_token = (
            Resource(ctx.env, capacity=1) if self.duplex else self._push_token
        )

    def synchronize(self, ctx, worker, epoch, iteration, grads, loss):
        nbytes = ctx.engine.model_bytes
        if self.duplex:
            yield self._push_token.request()
            try:
                yield ctx.transfer_to_ps(
                    worker, nbytes, tag=("r2sp-push", worker, iteration)
                )
            finally:
                self._push_token.release()
            ctx.ps.apply_immediate(worker, grads)
            yield self._pull_token.request()
            try:
                yield ctx.transfer_from_ps(
                    worker, nbytes, tag=("r2sp-pull", worker, iteration)
                )
            finally:
                self._pull_token.release()
        else:
            # One worker's whole turn (push, apply, pull) holds the PS.
            yield self._push_token.request()
            try:
                yield ctx.transfer_to_ps(
                    worker, nbytes, tag=("r2sp-push", worker, iteration)
                )
                ctx.ps.apply_immediate(worker, grads)
                yield ctx.transfer_from_ps(
                    worker, nbytes, tag=("r2sp-pull", worker, iteration)
                )
            finally:
                self._push_token.release()
        ctx.engine.sync_replica(worker, ctx.ps)


__all__ = ["R2SP"]
