"""SSP — Stale Synchronous Parallel (Ho et al., paper ref [20]).

ASP with a bound: the fastest worker may run at most ``staleness``
iterations ahead of the slowest. Workers exceeding the bound block before
their next compute until the stragglers catch up.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.cluster.context import TrainerContext

import numpy as np

from repro.simcore.events import Event
from repro.sync.asp import ASP


class SSP(ASP):
    """Staleness-bounded asynchronous parallel."""

    name = "ssp"

    #: The bound is computed over the *alive* worker set (see ``_floor``)
    #: and blocked workers are woken on membership changes, so crashes,
    #: departures and late joiners neither deadlock nor stall the cohort.
    supports_elastic = True

    def __init__(self, staleness: int = 3) -> None:
        if staleness < 0:
            raise ValueError(f"staleness must be >= 0, got {staleness}")
        self.staleness = staleness

    def setup(self, ctx: TrainerContext) -> None:
        super().setup(ctx)
        self._progress = np.zeros(ctx.spec.n_workers, dtype=np.int64)
        self._progress_event: Event = ctx.env.event()
        # A membership change moves the alive-only floor, so anyone blocked
        # on the bound must re-check (same wake pattern as synchronize).
        ctx.membership_hooks.append(lambda _n: self._wake(ctx))

    def _wake(self, ctx) -> None:
        if not self._progress_event.triggered:
            old, self._progress_event = self._progress_event, ctx.env.event()
            old.succeed()

    def _floor(self, ctx) -> int:
        """Slowest *alive* worker's progress — the bound must not gate
        survivors on a crashed or departed worker's frozen counter."""
        alive = ctx.alive_workers
        if not alive:
            return int(self._progress.max())
        return min(int(self._progress[w]) for w in alive)

    def before_compute(self, ctx, worker, iteration):
        # A late joiner (or crash/restart rejoiner) re-syncs its replica at
        # entry, so it is not stale: seed its progress at the entry
        # iteration instead of letting a zero stall the whole cohort.
        if iteration > int(self._progress[worker]):
            self._progress[worker] = iteration
        span = None
        while iteration - self._floor(ctx) > self.staleness:
            if span is None:
                span = ctx.trace.begin(
                    "staleness_wait", f"worker {worker}",
                    worker=worker, iteration=iteration,
                )
            # Wait for any worker to complete an iteration, then re-check.
            ev = self._progress_event
            if ev.triggered:
                self._progress_event = ctx.env.event()
                continue
            yield ev
        if span is not None:
            ctx.trace.end(span)

    def worker_signals(self, ctx):
        # Bound-relative staleness (iteration lag behind the fastest worker)
        # overrides ASP's version-lag estimate — this is the quantity the
        # SSP bound actually constrains, so it's the one to dashboard.
        signals = super().worker_signals(ctx)
        fastest = int(self._progress.max())
        for w in range(len(self._progress)):
            signals[f"osp.worker.{w}.progress"] = float(self._progress[w])
            signals[f"osp.worker.{w}.staleness"] = float(fastest - int(self._progress[w]))
        return signals

    def synchronize(self, ctx, worker, epoch, iteration, grads, loss):
        yield from super().synchronize(ctx, worker, epoch, iteration, grads, loss)
        self._progress[worker] = iteration + 1
        if not self._progress_event.triggered:
            old, self._progress_event = self._progress_event, ctx.env.event()
            old.succeed()


__all__ = ["SSP"]
