"""Sync-Switch (Li et al., ICDCS'21; paper §2.2.1): BSP during the early
epochs (when stale values would trap the model in poor optima), ASP
afterwards. Implemented as an extension baseline/ablation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.cluster.context import TrainerContext

from repro.sync.asp import ASP
from repro.sync.bsp import BSP
from repro.sync.base import SyncModel


class SyncSwitch(SyncModel):
    """BSP for ``switch_epoch`` epochs, then ASP.

    The switch happens at an epoch boundary for all workers. Because BSP
    keeps workers in lockstep through its barrier, every worker reaches the
    boundary at the same iteration count, so the hand-off is clean.
    """

    name = "sync-switch"

    def __init__(self, switch_epoch: int = 5) -> None:
        if switch_epoch < 1:
            raise ValueError(f"switch_epoch must be >= 1, got {switch_epoch}")
        self.switch_epoch = switch_epoch
        self._bsp = BSP()
        self._asp = ASP()

    def setup(self, ctx: TrainerContext) -> None:
        super().setup(ctx)
        self._bsp.setup(ctx)
        self._asp.setup(ctx)

    def synchronize(self, ctx, worker, epoch, iteration, grads, loss):
        model = self._bsp if epoch < self.switch_epoch else self._asp
        yield from model.synchronize(ctx, worker, epoch, iteration, grads, loss)


__all__ = ["SyncSwitch"]
