"""WFBP — Wait-Free Backpropagation (Shi et al., MG-WFBP; paper §2.2.1).

The other way to overlap communication with computation: as backpropagation
proceeds from the last layer toward the first, each layer's gradient is
pushed the moment it is ready, overlapping the *remaining* backward pass.
The paper positions OSP against it: WFBP needs framework surgery and can
only hide transfers inside the tail of the current backward pass, while
OSP hides its deferred gradients inside the *whole next iteration*.

Model: the iteration's compute has already run when ``synchronize`` is
called (the trainer's structure), so we reconstruct the overlap window
analytically — layer *l*'s gradient becomes available at
``t_ready(l) = T_bwd · (flops fraction of layers after l)`` before the
compute event's end; its push starts then. We realise this by scheduling
per-layer pushes with virtual "readiness offsets" *into the recorded sync
phase*, crediting back the overlap: the sync clock starts at the end of
compute, but pushes that would have completed inside the backward window
contribute no exposed time.

Concretely: per layer (last to first) :func:`wfbp_overlap` runs a FIFO
finish-time recurrence — a push starts at ``max(ready, link_free)`` and
whatever it moves before the ``2/3·T_c`` backward window closes is hidden.
The exposed BST is the remainder — the same accounting WFBP papers use.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.cluster.context import TrainerContext

from repro.hardware.compute import BACKWARD_FACTOR
from repro.netsim.prio import PRIO_HIGH, PRIO_NORMAL
from repro.sync.base import SyncModel


def wfbp_overlap(layer_bytes, t_bwd: float, fair_rate: float):
    """FIFO hidden/exposed decomposition of WFBP's layer-wise pushes.

    ``layer_bytes`` is ``(layer, nbytes)`` pairs in backward order
    (output-side first). Layer *i* becomes ready after the backward work of
    layers before it (approximated by byte share of ``t_bwd``); its push
    starts at ``max(ready_i, link_free)`` — transfers are FIFO on the
    worker's uplink, so a push cannot start while an earlier layer's bytes
    are still leaving. Bytes moved before ``t_bwd`` are hidden inside the
    backward pass; the rest are exposed.

    Returns ``[(layer, hidden_bytes, exposed_bytes), ...]`` with
    ``hidden + exposed == nbytes`` for every layer. An earlier buggy
    accounting subtracted a cumulative ``hidden_so_far`` from each layer's
    own ready-to-``t_bwd`` window, double-charging bytes that earlier
    layers had already sent *before* the later layer's window opened (the
    shared budget was debited once by time via ``link_free`` and again by
    volume), so layers ready after an idle uplink gap lost hidden capacity
    they really had.
    """
    total = sum(b for _l, b in layer_bytes)
    out = []
    ready = 0.0
    link_free = 0.0  # when the uplink finishes the previous layer's push
    for layer, nbytes in layer_bytes:
        if fair_rate > 0 and nbytes > 0:
            start = max(ready, link_free)
            link_free = start + nbytes / fair_rate
            hidden = min(float(nbytes), max(0.0, (t_bwd - start) * fair_rate))
        else:
            hidden = 0.0
        out.append((layer, hidden, nbytes - hidden))
        if total > 0:
            ready += t_bwd * (nbytes / total)
    return out


class WFBP(SyncModel):
    """Layer-wise push overlapped with the backward pass (BSP semantics)."""

    name = "wfbp"

    def setup(self, ctx: TrainerContext) -> None:
        super().setup(ctx)
        self._barrier = ctx.barrier()
        # Layers in backward order (output-side first): reversed splitter
        # order, since leaf_layers lists input-side first.
        self._layers_bwd = tuple(reversed(ctx.engine.splitter.layers))
        # P3-style priority schedule: the next forward pass consumes
        # parameters input-side first, so pushes for the first half of the
        # *forward* order are urgent (HIGH) and the output-side rest can
        # ride behind them (NORMAL). With priorities disabled the Network
        # coerces everything back to NORMAL and behaviour is unchanged.
        fwd = ctx.engine.splitter.layers
        self._prio_layers = frozenset(fwd[: max(1, len(fwd) // 2)])
        t_c = ctx.engine.base_compute_time(ctx.spec)
        self._t_bwd = t_c * BACKWARD_FACTOR / (1.0 + BACKWARD_FACTOR)

    def synchronize(self, ctx, worker, epoch, iteration, grads, loss):
        engine = ctx.engine
        # Readiness times measured backward from compute end: layer i (in
        # backward order) is ready after the backward work of layers
        # 0..i-1. We approximate per-layer backward cost as proportional to
        # its byte share (documented approximation; conv FLOP shares are
        # not represented in the cards).
        exposed_done = []  # completion events for the exposed remainder
        # All N workers backprop in near-lockstep, so the overlapped window
        # moves bytes at the incast fair share b/N. Layers become ready
        # sequentially and transfers are FIFO per worker, so a layer's push
        # starts only once the uplink has finished the previous one.
        fair_rate = ctx.spec.link.bandwidth / ctx.spec.n_workers
        schedule = wfbp_overlap(
            [(layer, engine.layer_bytes[layer]) for layer in self._layers_bwd],
            self._t_bwd,
            fair_rate,
        )
        for layer, _hidden, exposed_bytes in schedule:
            if exposed_bytes > 0:
                exposed_done.append(
                    ctx.transfer_to_ps(
                        worker,
                        exposed_bytes,
                        tag=("wfbp-push", worker, iteration, layer),
                        prio=PRIO_HIGH if layer in self._prio_layers else PRIO_NORMAL,
                    )
                )

        for ev in exposed_done:
            yield ev
        if ctx.ps.accumulate(f"wfbp:{iteration}", worker, grads) == ctx.spec.n_workers:
            ctx.ps.apply_average(f"wfbp:{iteration}")
        yield self._barrier.wait()
        yield ctx.transfer_from_ps(
            worker,
            engine.model_bytes,
            tag=("wfbp-pull", worker, iteration),
            prio=PRIO_HIGH,
        )
        ctx.engine.sync_replica(worker, ctx.ps)


__all__ = ["WFBP", "wfbp_overlap"]
