"""WFBP — Wait-Free Backpropagation (Shi et al., MG-WFBP; paper §2.2.1).

The other way to overlap communication with computation: as backpropagation
proceeds from the last layer toward the first, each layer's gradient is
pushed the moment it is ready, overlapping the *remaining* backward pass.
The paper positions OSP against it: WFBP needs framework surgery and can
only hide transfers inside the tail of the current backward pass, while
OSP hides its deferred gradients inside the *whole next iteration*.

Model: the iteration's compute has already run when ``synchronize`` is
called (the trainer's structure), so we reconstruct the overlap window
analytically — layer *l*'s gradient becomes available at
``t_ready(l) = T_bwd · (flops fraction of layers after l)`` before the
compute event's end; its push starts then. We realise this by scheduling
per-layer pushes with virtual "readiness offsets" *into the recorded sync
phase*, crediting back the overlap: the sync clock starts at the end of
compute, but pushes that would have completed inside the backward window
contribute no exposed time.

Concretely: per layer (last to first) we start its push at
``max(0, prior_exposed)`` after subtracting the backward headroom it had.
The exposed BST is what remains after the ``2/3·T_c`` backward window is
consumed — the same accounting WFBP papers use.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.cluster.context import TrainerContext

from repro.hardware.compute import BACKWARD_FACTOR
from repro.sync.base import SyncModel


class WFBP(SyncModel):
    """Layer-wise push overlapped with the backward pass (BSP semantics)."""

    name = "wfbp"

    def setup(self, ctx: TrainerContext) -> None:
        super().setup(ctx)
        self._barrier = ctx.barrier()
        # Layers in backward order (output-side first): reversed splitter
        # order, since leaf_layers lists input-side first.
        self._layers_bwd = tuple(reversed(ctx.engine.splitter.layers))
        t_c = ctx.engine.base_compute_time(ctx.spec)
        self._t_bwd = t_c * BACKWARD_FACTOR / (1.0 + BACKWARD_FACTOR)

    def synchronize(self, ctx, worker, epoch, iteration, grads, loss):
        engine = ctx.engine
        # Readiness times measured backward from compute end: layer i (in
        # backward order) is ready after the backward work of layers
        # 0..i-1. We approximate per-layer backward cost as proportional to
        # its byte share (documented approximation; conv FLOP shares are
        # not represented in the cards).
        total_bytes = engine.model_bytes
        headroom = self._t_bwd  # how much of the push happened "inside" bwd

        exposed_done = []  # completion events for the exposed remainder
        ready_offset = 0.0
        hidden_so_far = 0.0
        # All N workers backprop in near-lockstep, so the overlapped window
        # moves bytes at the incast fair share b/N. Layers become ready
        # sequentially and transfers are FIFO per worker, so the hidden
        # capacity is a single shared budget: bytes hidden by earlier
        # (output-side) layers consume it for later ones.
        fair_rate = ctx.spec.link.bandwidth / ctx.spec.n_workers
        for layer in self._layers_bwd:
            nbytes = engine.layer_bytes[layer]
            window_capacity = max(0.0, self._t_bwd - ready_offset) * fair_rate
            hidden = min(nbytes, max(0.0, window_capacity - hidden_so_far))
            hidden_so_far += hidden
            exposed_bytes = nbytes - hidden
            if exposed_bytes > 0:
                exposed_done.append(
                    ctx.transfer_to_ps(
                        worker, exposed_bytes, tag=("wfbp-push", worker, iteration, layer)
                    )
                )
            ready_offset += self._t_bwd * (nbytes / total_bytes)

        for ev in exposed_done:
            yield ev
        if ctx.ps.accumulate(f"wfbp:{iteration}", worker, grads) == ctx.spec.n_workers:
            ctx.ps.apply_average(f"wfbp:{iteration}")
        yield self._barrier.wait()
        yield ctx.transfer_from_ps(
            worker, engine.model_bytes, tag=("wfbp-pull", worker, iteration)
        )
        ctx.engine.sync_replica(worker, ctx.ps)


__all__ = ["WFBP"]
