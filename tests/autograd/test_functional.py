"""Unit + gradcheck tests for functional ops (conv, pool, softmax, ...)."""

import numpy as np
import pytest

from repro.autograd import Tensor, functional as F, grad_check


def t(data):
    return Tensor(np.asarray(data, dtype=np.float64), requires_grad=True)


def rand(shape, seed=0, scale=1.0):
    return t(np.random.default_rng(seed).normal(size=shape) * scale)


# -------------------------------------------------------------- softmax
def test_softmax_rows_sum_to_one():
    x = rand((4, 7))
    s = F.softmax(x)
    assert np.allclose(s.data.sum(axis=-1), 1.0)


def test_log_softmax_matches_log_of_softmax():
    x = rand((3, 5))
    assert np.allclose(F.log_softmax(x).data, np.log(F.softmax(x).data))


def test_softmax_invariant_to_shift():
    x = rand((2, 4))
    shifted = Tensor(x.data + 100.0, requires_grad=True)
    assert np.allclose(F.softmax(x).data, F.softmax(shifted).data)


def test_softmax_gradcheck():
    x = rand((2, 3), seed=1)
    grad_check(lambda a: (F.softmax(a) * Tensor(np.arange(6.0).reshape(2, 3))).sum(), [x])


def test_log_softmax_gradcheck():
    x = rand((2, 4), seed=2)
    w = Tensor(np.random.default_rng(3).normal(size=(2, 4)))
    grad_check(lambda a: (F.log_softmax(a) * w).sum(), [x])


def test_softmax_extreme_values_no_overflow():
    x = Tensor(np.array([[1000.0, 0.0], [-1000.0, 0.0]]), requires_grad=True)
    s = F.softmax(x)
    assert np.all(np.isfinite(s.data))


# -------------------------------------------------------------- embedding
def test_embedding_gathers_rows():
    w = t(np.arange(12, dtype=float).reshape(4, 3))
    out = F.embedding(w, np.array([1, 3]))
    assert np.allclose(out.data, [[3, 4, 5], [9, 10, 11]])


def test_embedding_backward_scatter_adds():
    w = t(np.zeros((4, 2)))
    F.embedding(w, np.array([0, 0, 2])).sum().backward()
    assert np.allclose(w.grad, [[2, 2], [0, 0], [1, 1], [0, 0]])


def test_embedding_rejects_float_indices():
    w = t(np.zeros((4, 2)))
    with pytest.raises(TypeError):
        F.embedding(w, np.array([0.5]))


def test_embedding_2d_indices():
    w = t(np.arange(8, dtype=float).reshape(4, 2))
    out = F.embedding(w, np.array([[0, 1], [2, 3]]))
    assert out.shape == (2, 2, 2)


# -------------------------------------------------------------- conv2d
def test_conv2d_output_shape():
    x = rand((2, 3, 8, 8))
    w = rand((5, 3, 3, 3), seed=1)
    b = rand((5,), seed=2)
    out = F.conv2d(x, w, b, stride=1, padding=1)
    assert out.shape == (2, 5, 8, 8)


def test_conv2d_stride_and_padding_shapes():
    x = rand((1, 1, 8, 8))
    w = rand((2, 1, 2, 2), seed=1)
    assert F.conv2d(x, w, stride=2).shape == (1, 2, 4, 4)


def test_conv2d_known_values_identity_kernel():
    x = t(np.arange(16, dtype=float).reshape(1, 1, 4, 4))
    w = t(np.zeros((1, 1, 3, 3)))
    w.data[0, 0, 1, 1] = 1.0  # identity kernel
    out = F.conv2d(x, w, padding=1)
    assert np.allclose(out.data, x.data)


def test_conv2d_channel_mismatch_raises():
    with pytest.raises(ValueError):
        F.conv2d(rand((1, 3, 4, 4)), rand((1, 2, 3, 3)))


def test_conv2d_floors_output_like_pytorch():
    # input 5, kernel 2, stride 2 -> out = floor((5-2)/2)+1 = 2
    out = F.conv2d(rand((1, 1, 5, 5)), rand((1, 1, 2, 2), seed=1), stride=2)
    assert out.shape == (1, 1, 2, 2)


def test_conv2d_kernel_too_large_raises():
    with pytest.raises(ValueError):
        F.conv2d(rand((1, 1, 2, 2)), rand((1, 1, 5, 5), seed=1))


def test_conv2d_gradcheck_small():
    x = rand((1, 2, 4, 4), seed=4, scale=0.5)
    w = rand((3, 2, 3, 3), seed=5, scale=0.5)
    b = rand((3,), seed=6)
    grad_check(lambda a, ww, bb: F.conv2d(a, ww, bb, padding=1).sum(), [x, w, b])


def test_conv2d_gradcheck_strided():
    x = rand((1, 1, 6, 6), seed=7, scale=0.5)
    w = rand((2, 1, 2, 2), seed=8, scale=0.5)
    grad_check(lambda a, ww: (F.conv2d(a, ww, stride=2) ** 2).sum(), [x, w])


def test_conv2d_matches_scipy_correlate():
    from scipy.signal import correlate2d

    rng = np.random.default_rng(9)
    x = rng.normal(size=(1, 1, 6, 6))
    w = rng.normal(size=(1, 1, 3, 3))
    ours = F.conv2d(Tensor(x), Tensor(w)).data[0, 0]
    ref = correlate2d(x[0, 0], w[0, 0], mode="valid")
    assert np.allclose(ours, ref)


# -------------------------------------------------------------- pooling
def test_max_pool2d_values():
    x = t(np.arange(16, dtype=float).reshape(1, 1, 4, 4))
    out = F.max_pool2d(x, kernel=2)
    assert np.allclose(out.data[0, 0], [[5, 7], [13, 15]])


def test_max_pool2d_backward_routes_to_max():
    x = t(np.arange(16, dtype=float).reshape(1, 1, 4, 4))
    F.max_pool2d(x, kernel=2).sum().backward()
    expected = np.zeros((4, 4))
    expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1
    assert np.allclose(x.grad[0, 0], expected)


def test_max_pool2d_strided_path():
    x = rand((1, 1, 5, 5), seed=10)
    out = F.max_pool2d(x, kernel=3, stride=2)
    assert out.shape == (1, 1, 2, 2)


def test_max_pool2d_strided_gradcheck():
    x = rand((1, 1, 5, 5), seed=11, scale=0.5)
    grad_check(lambda a: (F.max_pool2d(a, kernel=3, stride=2) ** 2).sum(), [x])


def test_max_pool2d_bad_geometry():
    with pytest.raises(ValueError):
        F.max_pool2d(rand((1, 1, 5, 5)), kernel=2)


def test_avg_pool2d_values_and_grad():
    x = t(np.ones((1, 1, 4, 4)))
    out = F.avg_pool2d(x, kernel=2)
    assert np.allclose(out.data, 1.0)
    out.sum().backward()
    assert np.allclose(x.grad, 0.25)


def test_avg_pool2d_bad_geometry():
    with pytest.raises(ValueError):
        F.avg_pool2d(rand((1, 1, 5, 5)), kernel=2)


def test_global_avg_pool2d():
    x = rand((2, 3, 4, 4))
    out = F.global_avg_pool2d(x)
    assert out.shape == (2, 3)
    assert np.allclose(out.data, x.data.mean(axis=(2, 3)))


# -------------------------------------------------------------- dropout
def test_dropout_eval_mode_identity():
    x = rand((4, 4))
    out = F.dropout(x, 0.5, np.random.default_rng(0), training=False)
    assert out is x


def test_dropout_zero_p_identity():
    x = rand((4, 4))
    assert F.dropout(x, 0.0, np.random.default_rng(0), training=True) is x


def test_dropout_scales_survivors():
    x = t(np.ones((1000,)))
    out = F.dropout(x, 0.5, np.random.default_rng(0), training=True)
    survivors = out.data[out.data > 0]
    assert np.allclose(survivors, 2.0)
    assert 400 < survivors.size < 600


def test_dropout_invalid_p():
    with pytest.raises(ValueError):
        F.dropout(rand((2,)), 1.0, np.random.default_rng(0), training=True)


def test_dropout_backward_masks_gradient():
    x = t(np.ones((100,)))
    out = F.dropout(x, 0.3, np.random.default_rng(1), training=True)
    out.sum().backward()
    dropped = out.data == 0
    assert np.all(x.grad[dropped] == 0)
