"""Property-based gradient checks on random composite expressions."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.autograd import Tensor, grad_check


def _small_arrays(max_side=3):
    return hnp.arrays(
        dtype=np.float64,
        shape=hnp.array_shapes(min_dims=1, max_dims=2, min_side=1, max_side=max_side),
        elements=st.floats(min_value=-2.0, max_value=2.0, width=64),
    )


@given(_small_arrays())
@settings(max_examples=30, deadline=None)
def test_property_polynomial_grads(arr):
    x = Tensor(arr, requires_grad=True)
    grad_check(lambda a: ((a * a) * 0.5 + a * 3.0 - 1.0).sum(), [x])


@given(_small_arrays())
@settings(max_examples=30, deadline=None)
def test_property_tanh_chain(arr):
    x = Tensor(arr, requires_grad=True)
    grad_check(lambda a: (a.tanh() * a.sigmoid()).sum(), [x])


@given(_small_arrays())
@settings(max_examples=30, deadline=None)
def test_property_exp_normalized(arr):
    x = Tensor(arr, requires_grad=True)
    grad_check(lambda a: (a.exp() / (a.exp().sum() + 1.0)).sum(), [x])


@given(
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=30, deadline=None)
def test_property_matmul_grads(n, k, m, seed):
    rng = np.random.default_rng(seed)
    a = Tensor(rng.normal(size=(n, k)), requires_grad=True)
    b = Tensor(rng.normal(size=(k, m)), requires_grad=True)
    grad_check(lambda x, y: ((x @ y) ** 2).sum(), [a, b])


@given(_small_arrays())
@settings(max_examples=30, deadline=None)
def test_property_mean_equals_scaled_sum_grad(arr):
    x1 = Tensor(arr.copy(), requires_grad=True)
    x2 = Tensor(arr.copy(), requires_grad=True)
    x1.mean().backward()
    (x2.sum() * (1.0 / arr.size)).backward()
    assert np.allclose(x1.grad, x2.grad)


@given(_small_arrays(), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_property_broadcast_grad_shapes(arr, seed):
    rng = np.random.default_rng(seed)
    x = Tensor(arr, requires_grad=True)
    bias = Tensor(rng.normal(size=(1,)), requires_grad=True)
    ((x + bias) * 2.0).sum().backward()
    assert x.grad.shape == x.shape
    assert bias.grad.shape == bias.shape
    assert np.allclose(bias.grad, 2.0 * arr.size)
