"""Unit tests for the Tensor core: arithmetic, broadcasting, backward."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.autograd.tensor import concatenate, stack, unbroadcast


def t(data, rg=True):
    return Tensor(np.asarray(data, dtype=np.float64), requires_grad=rg)


def test_add_backward():
    a, b = t([1.0, 2.0]), t([3.0, 4.0])
    (a + b).sum().backward()
    assert np.allclose(a.grad, [1, 1])
    assert np.allclose(b.grad, [1, 1])


def test_mul_backward():
    a, b = t([2.0, 3.0]), t([5.0, 7.0])
    (a * b).sum().backward()
    assert np.allclose(a.grad, [5, 7])
    assert np.allclose(b.grad, [2, 3])


def test_sub_and_neg():
    a, b = t([5.0]), t([3.0])
    (a - b).sum().backward()
    assert np.allclose(a.grad, [1])
    assert np.allclose(b.grad, [-1])


def test_div_backward():
    a, b = t([6.0]), t([2.0])
    (a / b).sum().backward()
    assert np.allclose(a.grad, [0.5])
    assert np.allclose(b.grad, [-1.5])


def test_pow_backward():
    a = t([3.0])
    (a**2).sum().backward()
    assert np.allclose(a.grad, [6.0])


def test_scalar_mixed_ops():
    a = t([2.0])
    y = (2 * a + 1 - a / 2) ** 2
    y.sum().backward()
    # y = (1.5a + 1)^2, dy/da = 2(1.5a+1)*1.5 = 2*4*1.5 = 12
    assert np.allclose(a.grad, [12.0])


def test_matmul_backward():
    a = t(np.arange(6, dtype=float).reshape(2, 3))
    b = t(np.arange(12, dtype=float).reshape(3, 4))
    (a @ b).sum().backward()
    assert np.allclose(a.grad, b.data.sum(axis=1, keepdims=True).T.repeat(2, 0).reshape(2, 3))
    assert np.allclose(b.grad, a.data.sum(axis=0)[:, None].repeat(4, 1))


def test_batched_matmul_backward():
    a = t(np.random.default_rng(0).normal(size=(5, 2, 3)))
    b = t(np.random.default_rng(1).normal(size=(5, 3, 4)))
    (a @ b).sum().backward()
    assert a.grad.shape == (5, 2, 3)
    assert b.grad.shape == (5, 3, 4)


def test_broadcast_add_reduces_grad():
    a = t(np.zeros((4, 3)))
    bias = t(np.zeros(3))
    (a + bias).sum().backward()
    assert np.allclose(bias.grad, [4, 4, 4])


def test_broadcast_mul_row_and_col():
    a = t(np.ones((2, 3)))
    col = t(np.ones((2, 1)))
    (a * col).sum().backward()
    assert np.allclose(col.grad, [[3], [3]])


def test_unbroadcast_identity():
    g = np.ones((2, 3))
    assert unbroadcast(g, (2, 3)) is g


def test_grad_accumulates_across_backwards():
    a = t([1.0])
    (a * 2).sum().backward()
    (a * 3).sum().backward()
    assert np.allclose(a.grad, [5.0])


def test_zero_grad():
    a = t([1.0])
    (a * 2).sum().backward()
    a.zero_grad()
    assert a.grad is None


def test_diamond_graph_accumulates_once_per_path():
    a = t([2.0])
    b = a * 3
    c = a * 4
    (b + c).sum().backward()
    assert np.allclose(a.grad, [7.0])


def test_reused_tensor_in_one_expression():
    a = t([3.0])
    (a * a).sum().backward()
    assert np.allclose(a.grad, [6.0])


def test_backward_requires_scalar_without_grad_arg():
    a = t([[1.0, 2.0]])
    with pytest.raises(RuntimeError):
        (a * 2).backward()


def test_backward_with_explicit_grad():
    a = t([1.0, 2.0])
    (a * 2).backward(np.array([1.0, 10.0]))
    assert np.allclose(a.grad, [2.0, 20.0])


def test_backward_grad_shape_mismatch():
    a = t([1.0, 2.0])
    with pytest.raises(ValueError):
        (a * 2).backward(np.array([1.0]))


def test_backward_on_no_grad_tensor_raises():
    a = Tensor([1.0], requires_grad=False)
    with pytest.raises(RuntimeError):
        a.backward()


def test_no_grad_context_stops_taping():
    a = t([1.0])
    with no_grad():
        y = a * 2
    assert not y.requires_grad


def test_detach_cuts_tape():
    a = t([1.0])
    y = (a * 2).detach() * 3
    assert not y.requires_grad


def test_sum_axis_keepdims():
    a = t(np.ones((2, 3)))
    y = a.sum(axis=1, keepdims=True)
    assert y.shape == (2, 1)
    y.sum().backward()
    assert np.allclose(a.grad, np.ones((2, 3)))


def test_mean_backward():
    a = t(np.ones((4,)))
    a.mean().backward()
    assert np.allclose(a.grad, [0.25] * 4)


def test_mean_multi_axis():
    a = t(np.ones((2, 3, 4)))
    a.mean(axis=(1, 2)).sum().backward()
    assert np.allclose(a.grad, np.full((2, 3, 4), 1 / 12))


def test_max_backward_spreads_ties():
    a = t([1.0, 5.0, 5.0])
    a.max().backward()
    assert np.allclose(a.grad, [0, 0.5, 0.5])


def test_max_axis_backward():
    a = t([[1.0, 3.0], [4.0, 2.0]])
    a.max(axis=1).sum().backward()
    assert np.allclose(a.grad, [[0, 1], [1, 0]])


def test_reshape_roundtrip():
    a = t(np.arange(6, dtype=float))
    y = a.reshape(2, 3)
    y.sum().backward()
    assert a.grad.shape == (6,)


def test_transpose_backward():
    a = t(np.arange(6, dtype=float).reshape(2, 3))
    a.T.sum().backward()
    assert a.grad.shape == (2, 3)


def test_transpose_with_axes():
    a = t(np.zeros((2, 3, 4)))
    y = a.transpose(2, 0, 1)
    assert y.shape == (4, 2, 3)
    y.sum().backward()
    assert a.grad.shape == (2, 3, 4)


def test_getitem_backward_scatter():
    a = t(np.arange(5, dtype=float))
    a[1:3].sum().backward()
    assert np.allclose(a.grad, [0, 1, 1, 0, 0])


def test_getitem_fancy_index_duplicates_accumulate():
    a = t(np.zeros(3))
    idx = np.array([0, 0, 2])
    a[idx].sum().backward()
    assert np.allclose(a.grad, [2, 0, 1])


def test_elementwise_unaries():
    for name in ["exp", "log", "sqrt", "tanh", "sigmoid", "relu", "abs"]:
        a = t([0.5, 1.5])
        getattr(a, name)().sum().backward()
        assert a.grad is not None, name


def test_relu_gradient_mask():
    a = t([-1.0, 2.0])
    a.relu().sum().backward()
    assert np.allclose(a.grad, [0, 1])


def test_concatenate_backward():
    a, b = t([1.0, 2.0]), t([3.0])
    y = concatenate([a, b])
    assert y.shape == (3,)
    (y * Tensor([1.0, 2.0, 3.0])).sum().backward()
    assert np.allclose(a.grad, [1, 2])
    assert np.allclose(b.grad, [3])


def test_concatenate_empty_raises():
    with pytest.raises(ValueError):
        concatenate([])


def test_stack_backward():
    a, b = t([1.0, 2.0]), t([3.0, 4.0])
    y = stack([a, b], axis=0)
    assert y.shape == (2, 2)
    y.sum().backward()
    assert np.allclose(a.grad, [1, 1])


def test_deep_chain_no_recursion_error():
    a = t([1.0])
    y = a
    for _ in range(3000):
        y = y * 1.0001
    y.sum().backward()
    assert a.grad is not None


def test_repr_and_item():
    a = t([2.5])
    assert "requires_grad=True" in repr(a)
    assert a.item() == 2.5
    assert len(t([1.0, 2.0])) == 2
