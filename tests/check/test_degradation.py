"""§4.3 degradation theorems, checked metamorphically end-to-end.

OSP with ``force="bsp"`` pins every layer to RS — the protocol *is* BSP
and must match it numerically. With ``force="asp"`` every layer defers to
ICS — RS carries zero gradient traffic and barrier sync time collapses.
(The forced-asp run is not numerically identical to ASP: OSP still
round-averages ICS deposits where ASP applies immediately, so the claim
checked is structural, not bit-equality.)
"""

import numpy as np

from repro.check import run_checked
from repro.core.osp import OSP
from repro.harness.workloads import (
    WorkloadConfig,
    make_numeric_dataset,
    numeric_trainer,
    timing_trainer,
)
from repro.sync import BSP


def _cfg(seed=3):
    return WorkloadConfig(
        card_name="resnet50-cifar10",
        n_workers=4,
        n_epochs=3,
        iterations_per_epoch=4,
        sigma=0.1,
        seed=seed,
    )


def _numeric_run(sync):
    cfg = _cfg()
    data = make_numeric_dataset(cfg.card, n_samples=320, seed=cfg.seed)
    trainer = numeric_trainer(cfg, sync, data=data)
    result = trainer.run()
    return trainer, result


def test_forced_bsp_matches_bsp_parameters_exactly():
    t_bsp, r_bsp = _numeric_run(BSP())
    t_osp, r_osp = _numeric_run(OSP(force="bsp"))
    a, b = t_bsp.ps.snapshot(), t_osp.ps.snapshot()
    assert set(a) == set(b)
    for name in a:
        np.testing.assert_array_equal(a[name], b[name], err_msg=name)
    losses = lambda r: [float(ep.train_loss) for ep in r.recorder.epochs]
    assert losses(r_bsp) == losses(r_osp)


def test_forced_asp_sends_no_rs_gradient_traffic():
    trainer = timing_trainer(_cfg(), OSP(force="asp"))
    trainer.run()
    rs = [r for r in trainer.network.records
          if isinstance(r.tag, tuple) and r.tag[0] in ("rs-push", "rs-pull")]
    ics = [r for r in trainer.network.records
           if isinstance(r.tag, tuple) and r.tag[0] == "ics-push"]
    assert sum(r.size for r in rs) == 0
    assert sum(r.size for r in ics) > 0


def test_forced_asp_bst_collapses_relative_to_bsp():
    res_asp = timing_trainer(_cfg(), OSP(force="asp")).run()
    res_bsp = timing_trainer(_cfg(), BSP()).run()
    assert res_asp.mean_bst < 0.1 * res_bsp.mean_bst


def test_forced_modes_pass_their_gib_pins_under_monitors():
    """The osp.gib monitor asserts all-RS / all-ICS at every round close."""
    for force in ("bsp", "asp"):
        _result, report = run_checked(timing_trainer(_cfg(), OSP(force=force)))
        assert report.ok, report.render()
        assert report.monitors["osp.gib"][0] > 0
