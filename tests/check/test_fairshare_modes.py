"""Checked OSP runs under both ``REPRO_FAIRSHARE`` settings.

The fast network core must be invisible to every correctness surface the
checker watches: the ByteConservation and ICSInflight monitors stay green
in both modes (including across an injected bandwidth-dip fault window,
which drives ``refresh_capacities`` through the fast path), and the
``replay_fairshare`` differential — the same diff ``repro check`` runs —
finds zero stream divergence between the modes.
"""

import pytest

from repro.check import replay_fairshare, run_checked
from repro.core.osp import OSP
from repro.faults import BandwidthDip, FaultSchedule
from repro.harness.workloads import (
    WorkloadConfig,
    make_numeric_dataset,
    numeric_trainer,
    timing_trainer,
)


def _cfg(**kw):
    defaults = dict(
        card_name="vgg16-cifar10",
        n_workers=4,
        n_epochs=3,
        iterations_per_epoch=6,
        sigma=0.1,
        seed=7,
    )
    defaults.update(kw)
    return WorkloadConfig(**defaults)


@pytest.mark.parametrize("mode", ["fast", "legacy"])
def test_monitors_green_on_faulted_osp_run(mode, monkeypatch):
    monkeypatch.setenv("REPRO_FAIRSHARE", mode)
    faults = FaultSchedule(
        [BandwidthDip(start=5.0, duration=20.0, factor=0.4, nodes=(1,))]
    )
    trainer = timing_trainer(_cfg(faults=faults), OSP())
    trainer.enable_tracing()
    _result, report = run_checked(trainer)
    assert report.ok, report.render()
    for name in ("net.conservation", "osp.ics_inflight"):
        checks, violations = report.monitors[name]
        assert checks > 0, name
        assert violations == 0, name
    # The dip must actually have hit the network for this to be meaningful.
    assert trainer.recorder.counter("faults.bandwidth_dip") > 0
    assert trainer.network.stats["netsim.rerates"] > 0


def test_replay_fairshare_streams_identical():
    cfg = _cfg(n_epochs=2, iterations_per_epoch=4)
    data = make_numeric_dataset(cfg.card, n_samples=240, seed=cfg.seed)

    def build():
        return numeric_trainer(cfg, OSP(), data=data)

    report = replay_fairshare(build)
    assert report.identical, report.render()
    assert min(report.n_events) > 0


def test_replay_fairshare_on_timing_run_with_faults():
    faults = FaultSchedule(
        [BandwidthDip(start=5.0, duration=15.0, factor=0.5, nodes=(0, 2))]
    )
    cfg = _cfg(faults=faults)

    def build():
        return timing_trainer(cfg, OSP())

    report = replay_fairshare(build)
    assert report.identical, report.render()
    assert min(report.n_events) > 0
