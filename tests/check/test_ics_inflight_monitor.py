"""ICSInflightMonitor: netsim / gauge / OSP-ledger agreement at every drain."""

import pytest

from repro.check import ICSInflightMonitor, run_checked
from repro.core.osp import OSP
from repro.faults import BandwidthDip, FaultSchedule
from repro.harness.workloads import WorkloadConfig, timing_trainer
from repro.sync import BSP


def _cfg(**kw):
    # 3 epochs x 6 iterations: enough for Algorithm 1's budget ramp to
    # start deferring layers — with a shorter run ICS never fires and the
    # monitor would pass vacuously.
    defaults = dict(
        card_name="vgg16-cifar10",
        n_workers=4,
        n_epochs=3,
        iterations_per_epoch=6,
        sigma=0.1,
        seed=7,
    )
    defaults.update(kw)
    return WorkloadConfig(**defaults)


def test_passes_on_traced_osp_run():
    trainer = timing_trainer(_cfg(), OSP())
    trainer.enable_tracing()
    _result, report = run_checked(trainer)
    assert report.ok
    checks, violations = report.monitors["osp.ics_inflight"]
    assert checks > 0
    assert violations == 0
    # The run must actually exercise ICS, or the agreement is vacuous.
    hist = trainer.env.tracer.counters.get("osp.inflight_ics_bytes", [])
    assert any(v > 0 for _t, v in hist)


def test_passes_under_bandwidth_faults():
    # Faults change rates, never accounting: the three views must still
    # agree at every drain inside the dip window.
    schedule = FaultSchedule(
        events=(BandwidthDip(start=2.0, duration=30.0, factor=0.3),)
    )
    trainer = timing_trainer(_cfg(faults=schedule), OSP())
    trainer.enable_tracing()
    _result, report = run_checked(trainer)
    assert report.ok
    checks, _ = report.monitors["osp.ics_inflight"]
    assert checks > 0


def test_skipped_when_untraced_or_non_osp():
    untraced = timing_trainer(_cfg(), OSP())
    _res, report = run_checked(untraced)
    assert "osp.ics_inflight" in report.skipped

    bsp = timing_trainer(_cfg(), BSP())
    bsp.enable_tracing()
    _res, report = run_checked(bsp)
    assert "osp.ics_inflight" in report.skipped


def test_catches_gauge_leak():
    # Drop the first negative gauge update (a "forgot to decrement" bug):
    # the gauge drifts above the OSP ledger and the monitor must fire at a
    # subsequent drain, not merely at run end.
    trainer = timing_trainer(_cfg(), OSP())
    trainer.enable_tracing()
    tracer = trainer.env.tracer
    orig = tracer.gauge_delta
    dropped = []

    def leaky(name, delta):
        if name == "osp.inflight_ics_bytes" and delta < 0 and not dropped:
            dropped.append(delta)
            return None
        return orig(name, delta)

    tracer.gauge_delta = leaky
    _result, report = run_checked(trainer, strict=False)
    assert dropped, "fault injection never triggered"
    assert not report.ok
    _checks, violations = report.monitors["osp.ics_inflight"]
    assert violations > 0
    assert any("osp.ics_inflight" in str(v) for v in report.violations)


def test_catches_ledger_desync():
    # Corrupt OSP's unarrived ledger mid-run via an epoch-end hook: the
    # equality check against the gauge must flag it.
    trainer = timing_trainer(_cfg(), OSP())
    trainer.enable_tracing()
    sync = trainer.sync_model

    def corrupt(epoch, train_loss, metric):
        sync._ics_unarrived[999] = 12345.0

    trainer.ctx.epoch_end_hooks.append(corrupt)
    _result, report = run_checked(
        trainer, monitors=[ICSInflightMonitor], strict=False
    )
    assert not report.ok
    _checks, violations = report.monitors["osp.ics_inflight"]
    assert violations > 0
