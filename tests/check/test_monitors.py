"""Runtime invariant monitors: pass on healthy runs, catch injected bugs."""

import numpy as np
import pytest

from repro.check import (
    InvariantChecker,
    InvariantViolation,
    NetworkConservationMonitor,
    QuorumConsistencyMonitor,
    run_checked,
)
from repro.cluster import MembershipSchedule, WorkerJoin, WorkerLeave
from repro.core.gib import GIB
from repro.core.osp import OSP
from repro.harness.workloads import (
    WorkloadConfig,
    make_numeric_dataset,
    numeric_trainer,
    timing_trainer,
)
from repro.sync import BSP, DSSP, SSP


def _cfg(workers=3, epochs=2, ipe=4, seed=7):
    return WorkloadConfig(
        card_name="resnet50-cifar10",
        n_workers=workers,
        n_epochs=epochs,
        iterations_per_epoch=ipe,
        sigma=0.1,
        seed=seed,
    )


def _numeric(sync, cfg=None, **kwargs):
    cfg = cfg or _cfg()
    data = make_numeric_dataset(cfg.card, n_samples=240, seed=cfg.seed)
    return numeric_trainer(cfg, sync, data=data, **kwargs)


def test_all_monitors_pass_on_numeric_osp():
    result, report = run_checked(_numeric(OSP()))
    assert report.ok
    for name in ("net.conservation", "ps.ledger", "osp.gib", "ps.arena_parity"):
        checks, violations = report.monitors[name]
        assert checks > 0, name
        assert violations == 0, name
    assert "sync.staleness" in report.skipped
    assert result.recorder.counter("check.events_checked") == report.total_checks
    assert result.recorder.counter("check.violation") == 0


def test_staleness_monitor_checks_ssp_and_dssp():
    for sync in (SSP(staleness=2), DSSP()):
        _result, report = run_checked(timing_trainer(_cfg(), sync))
        assert report.ok
        checks, violations = report.monitors["sync.staleness"]
        assert checks > 0
        assert violations == 0


def test_inapplicable_monitors_are_skipped_not_failed():
    _result, report = run_checked(timing_trainer(_cfg(), BSP()))
    assert report.ok
    assert set(report.skipped) == {
        "osp.gib",
        "sync.staleness",
        "elastic.quorum",  # static membership: nothing to cross-check
        "ps.arena_parity",
        "osp.ics_inflight",  # untraced run: no gauge to cross-check
    }
    assert report.monitors["net.conservation"][0] > 0


def test_injected_gib_coverage_hole_is_caught():
    """A staged GIB that silently drops a layer must fail osp.gib."""
    trainer = timing_trainer(_cfg(), OSP())
    sync = trainer.sync_model
    orig = sync._refresh_gib

    def corrupt(ctx):
        orig(ctx)
        if sync._pending_gib is not None:
            sync._pending_gib = GIB.all_unimportant(sync._pending_gib.layers[:-1])

    sync._refresh_gib = corrupt  # checker wraps on top and sees the damage
    checker = InvariantChecker(trainer, strict=False)
    result = trainer.run()
    report = checker.finish()
    assert not report.ok
    assert all(v.monitor == "osp.gib" for v in report.violations)
    assert any("missing" in str(v) for v in report.violations)
    assert result.recorder.counter("check.violation") == len(report.violations)


def test_strict_mode_raises_on_double_deposit():
    trainer = _numeric(OSP())
    InvariantChecker(trainer, strict=True)
    grads = {n: np.zeros_like(a) for n, a in trainer.ps.snapshot().items()}
    trainer.ps.accumulate("b0", 0, grads)
    with pytest.raises(InvariantViolation, match="deposited twice"):
        trainer.ps.accumulate("b0", 0, grads)


def test_network_tampering_detected_at_finish():
    trainer = timing_trainer(_cfg(), BSP())
    checker = InvariantChecker(
        trainer, monitors=[NetworkConservationMonitor()], strict=False
    )
    trainer.run()
    trainer.network.topology.links[0].bytes_carried += 12345.0
    report = checker.finish()
    assert not report.ok
    assert report.violations[0].monitor == "net.conservation"


def _elastic_cfg():
    return WorkloadConfig(
        card_name="resnet50-cifar10",
        n_workers=4,
        n_epochs=6,
        iterations_per_epoch=3,
        sigma=0.1,
        seed=7,
        membership=MembershipSchedule(
            (WorkerJoin(worker=3, epoch=2), WorkerLeave(worker=0, epoch=4))
        ),
    )


def test_quorum_monitor_passes_on_elastic_run():
    _result, report = run_checked(timing_trainer(_elastic_cfg(), OSP()))
    assert report.ok
    checks, violations = report.monitors["elastic.quorum"]
    assert checks > 0
    assert violations == 0


def test_quorum_monitor_skipped_on_static_run():
    _result, report = run_checked(timing_trainer(_cfg(), OSP()))
    assert "elastic.quorum" in report.skipped


def test_quorum_monitor_catches_off_by_one_resize():
    """An injected off-by-one in the membership resize path is caught."""
    trainer = timing_trainer(_elastic_cfg(), OSP())
    checker = InvariantChecker(
        trainer, monitors=[QuorumConsistencyMonitor], strict=False
    )
    ctx = trainer.ctx
    orig = ctx._notify_membership

    def off_by_one():
        orig()
        for barrier in ctx._quorum_barriers:
            barrier.set_parties(max(1, barrier.parties - 1))  # injected bug

    ctx._notify_membership = off_by_one
    trainer.run()
    report = checker.finish()
    assert not report.ok
    assert report.monitors["elastic.quorum"][1] > 0
    assert any("quorum barrier" in str(v) for v in report.violations)


def test_monitors_do_not_perturb_the_timeline():
    """A checked run is bit-identical (virtual time, loss) to an unchecked one."""
    plain = timing_trainer(_cfg(), OSP()).run()
    checked, report = run_checked(timing_trainer(_cfg(), OSP()))
    assert report.ok
    assert checked.wall_time == plain.wall_time
    assert checked.mean_bst == plain.mean_bst
    assert len(checked.recorder.iterations) == len(plain.recorder.iterations)
