"""Differential replay: equivalence pairs are identical; bugs are localized."""

import pytest

from repro.check import (
    ReplayEvent,
    differential_replay,
    first_divergence,
    replay_flat_arena,
    replay_resume,
)
from repro.core.gib import GIB
from repro.core.osp import OSP
from repro.harness.workloads import (
    WorkloadConfig,
    make_numeric_dataset,
    numeric_trainer,
)

CFG = WorkloadConfig(
    card_name="resnet50-cifar10",
    n_workers=3,
    n_epochs=3,
    iterations_per_epoch=4,
    sigma=0.1,
    seed=11,
)
DATA = make_numeric_dataset(CFG.card, n_samples=240, seed=11)


def _build(**trainer_kwargs):
    return numeric_trainer(CFG, OSP(), data=DATA, **trainer_kwargs)


def test_flat_arena_replay_is_identical():
    report = replay_flat_arena(_build)
    assert report.identical, report.render()
    assert report.n_events[0] == report.n_events[1] > 0


def test_resume_replay_is_identical(tmp_path):
    report = replay_resume(_build, tmp_path)
    assert report.identical, report.render()
    assert "resumed@" in report.label_b


def test_capture_stream_excludes_ckpt_and_check_counters(tmp_path):
    # ckpt.restore differs between the two runs of replay_resume by design;
    # the stream must not see any ckpt.*/check.* counter at all.
    from repro.check import capture_stream, run_checked

    trainer = _build(checkpoint_every=2, checkpoint_dir=tmp_path)
    result, _report = run_checked(trainer)
    raw = result.recorder.counters
    assert any(n.startswith(("ckpt.", "check.")) for n in raw)
    names = [
        ev.key[0] for ev in capture_stream(trainer, result) if ev.kind == "counter"
    ]
    assert not [n for n in names if n.startswith(("ckpt.", "check."))]


def test_injected_gib_corruption_is_localized_with_span_context():
    """An all-ICS GIB in run B changes RS scheduling; the first divergent
    event must be found and carry span context from the tracer."""

    def build_corrupted():
        trainer = _build()
        sync = trainer.sync_model
        orig = sync._refresh_gib

        def corrupt(ctx):
            orig(ctx)
            if sync._pending_gib is not None:
                sync._pending_gib = GIB.all_unimportant(sync._pending_gib.layers)

        sync._refresh_gib = corrupt
        return trainer

    report = differential_replay(_build, build_corrupted, "clean", "corrupted")
    assert not report.identical
    div = report.divergence
    assert div.event_a is not None and div.event_b is not None
    assert div.event_a != div.event_b
    # the harness attributes the divergence to a traced phase on both sides
    assert div.event_a.kind == "iteration"
    assert div.context_a and div.context_b


def _ev(i):
    return ReplayEvent("iteration", (0, i), (float(i),))


def test_first_divergence_identical_and_prefix():
    a = [_ev(i) for i in range(20)]
    assert first_divergence(a, list(a)) is None
    assert first_divergence(a, a[:13]) == 13  # strict prefix: index past end


@pytest.mark.parametrize("where", [0, 1, 9, 18, 19])
def test_first_divergence_bisects_to_exact_index(where):
    a = [_ev(i) for i in range(20)]
    b = list(a)
    b[where] = ReplayEvent("iteration", (0, where), (-1.0,))
    assert first_divergence(a, b) == where
