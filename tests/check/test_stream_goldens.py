"""Committed replay-stream goldens, one per baseline sync model.

`test_stream_io.py` pins the OSP schedule; these pin BSP, ASP, SSP, DSSP
and R²SP on the same timing-mode workload card. Together they freeze the
virtual-time behaviour of every sync model whose traffic is single-class
(all flows NORMAL) — exactly the regime the priority scheduler promises
to leave bit-identical — so any netsim/scheduler change that shifts one
float64 bit in an all-NORMAL run fails here with a localized divergence.

The goldens were generated *before* the priority-aware scheduler landed,
so they also serve as the "identical to main" witness for PR 8. If a
divergence is an intended semantic change, regenerate:

    PYTHONPATH=src python tests/check/test_stream_goldens.py regen [sync]
"""

import sys
from pathlib import Path

import pytest

from repro.check import capture_stream, dump_stream, first_divergence, load_stream
from repro.harness.workloads import WorkloadConfig, timing_trainer
from repro.sync import ASP, BSP, DSSP, R2SP, SSP

GOLDEN_DIR = Path(__file__).parent / "golden"

SYNC_FACTORIES = {
    "bsp": BSP,
    "asp": ASP,
    "ssp": SSP,
    "dssp": DSSP,
    "r2sp": R2SP,
}

#: OSP goldens across workload cards beyond the vgg16 one pinned by
#: test_stream_io.py — a conv net with aux towers, the deepest resnet,
#: and the transformer card. Between them they exercise every
#: layer-shape regime the timing engine models, so a schedule change
#: that only bites large-tensor or many-layer cards still trips here.
OSP_CARD_GOLDENS = (
    "inceptionv3-cifar100",
    "resnet101-imagenet",
    "bertbase-squad",
)


def _golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}_vgg16_stream.jsonl"


def _card_golden_path(card_name: str) -> Path:
    return GOLDEN_DIR / f"osp_{card_name.replace('-', '_')}_stream.jsonl"


def _fresh_stream(name: str):
    # Same card/shape as the OSP golden (test_stream_io._golden_trainer)
    # so the five baselines and OSP pin the same workload.
    cfg = WorkloadConfig(
        card_name="vgg16-cifar10",
        n_workers=4,
        n_epochs=3,
        iterations_per_epoch=6,
        sigma=0.1,
        seed=7,
    )
    trainer = timing_trainer(cfg, SYNC_FACTORIES[name]())
    result = trainer.run()
    return capture_stream(trainer, result)


def _fresh_osp_card_stream(card_name: str):
    from repro.core.osp import OSP

    cfg = WorkloadConfig(
        card_name=card_name,
        n_workers=4,
        n_epochs=2,
        iterations_per_epoch=4,
        sigma=0.1,
        seed=7,
    )
    trainer = timing_trainer(cfg, OSP())
    result = trainer.run()
    return capture_stream(trainer, result)


def _assert_matches_golden(label, golden, fresh):
    index = first_divergence(golden, fresh)
    if index is not None:
        g = golden[index] if index < len(golden) else None
        f = fresh[index] if index < len(fresh) else None
        pytest.fail(
            f"{label} event stream diverged from golden at index {index}:\n"
            f"  golden: {g.render() if g else '<stream ended>'}\n"
            f"  fresh:  {f.render() if f else '<stream ended>'}\n"
            "If this change is intended, regenerate with: "
            "PYTHONPATH=src python tests/check/test_stream_goldens.py regen"
        )


@pytest.mark.parametrize("name", sorted(SYNC_FACTORIES))
def test_fresh_run_matches_committed_golden(name):
    golden = load_stream(_golden_path(name))
    fresh = _fresh_stream(name)
    _assert_matches_golden(name, golden, fresh)


@pytest.mark.parametrize("card_name", OSP_CARD_GOLDENS)
def test_osp_card_matches_committed_golden(card_name):
    golden = load_stream(_card_golden_path(card_name))
    fresh = _fresh_osp_card_stream(card_name)
    _assert_matches_golden(f"osp/{card_name}", golden, fresh)


if __name__ == "__main__":
    if len(sys.argv) > 1 and sys.argv[1] == "regen":
        targets = sys.argv[2:] or sorted(SYNC_FACTORIES) + list(OSP_CARD_GOLDENS)
        for name in targets:
            if name in SYNC_FACTORIES:
                path = dump_stream(_fresh_stream(name), _golden_path(name))
            else:
                path = dump_stream(
                    _fresh_osp_card_stream(name), _card_golden_path(name)
                )
            print(f"wrote {path} ({len(load_stream(path))} events)")
    else:
        print(__doc__)
