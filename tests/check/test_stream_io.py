"""Replay-stream serialization + committed golden-stream determinism gate.

The golden file pins the exact event stream of a small timing-mode OSP
run. Any change to the scheduler, netsim, OSP protocol, or recorder that
shifts even one float64 bit shows up here as a localized first-divergence
— *before* it ships as silent drift. If the divergence is an intended
semantic change, regenerate the golden:

    PYTHONPATH=src python tests/check/test_stream_io.py regen
"""

import sys
from pathlib import Path

import pytest

from repro.check import (
    capture_stream,
    dump_stream,
    first_divergence,
    load_stream,
)
from repro.core.osp import OSP
from repro.harness.workloads import WorkloadConfig, timing_trainer

GOLDEN = Path(__file__).parent / "golden" / "osp_vgg16_stream.jsonl"


def _golden_trainer():
    # Timing mode: virtual-time arithmetic only, no BLAS in the loop, so
    # the stream is reproducible across machines. 3x6 iterations so the
    # budget ramp engages ICS (the interesting part of the schedule).
    cfg = WorkloadConfig(
        card_name="vgg16-cifar10",
        n_workers=4,
        n_epochs=3,
        iterations_per_epoch=6,
        sigma=0.1,
        seed=7,
    )
    return timing_trainer(cfg, OSP())


def _fresh_stream():
    trainer = _golden_trainer()
    result = trainer.run()
    return capture_stream(trainer, result)


def test_dump_load_round_trip(tmp_path):
    stream = _fresh_stream()
    path = dump_stream(stream, tmp_path / "stream.jsonl")
    back = load_stream(path)
    assert back == stream  # dataclass equality: kind, key, value, bit-exact
    assert first_divergence(stream, back) is None


def test_load_rejects_non_streams(tmp_path):
    bogus = tmp_path / "bogus.jsonl"
    bogus.write_text('{"schema": "something/else"}\n')
    with pytest.raises(ValueError, match="not a replay stream"):
        load_stream(bogus)
    truncated = tmp_path / "trunc.jsonl"
    stream = _fresh_stream()
    lines = dump_stream(stream, tmp_path / "full.jsonl").read_text().splitlines()
    truncated.write_text("\n".join(lines[:-5]) + "\n")
    with pytest.raises(ValueError, match="truncated"):
        load_stream(truncated)


def test_fresh_run_matches_committed_golden():
    golden = load_stream(GOLDEN)
    fresh = _fresh_stream()
    index = first_divergence(golden, fresh)
    if index is not None:
        g = golden[index] if index < len(golden) else None
        f = fresh[index] if index < len(fresh) else None
        pytest.fail(
            f"event stream diverged from golden at index {index}:\n"
            f"  golden: {g.render() if g else '<stream ended>'}\n"
            f"  fresh:  {f.render() if f else '<stream ended>'}\n"
            "If this change is intended, regenerate with: "
            "PYTHONPATH=src python tests/check/test_stream_io.py regen"
        )


if __name__ == "__main__":
    if len(sys.argv) > 1 and sys.argv[1] == "regen":
        path = dump_stream(_fresh_stream(), GOLDEN)
        print(f"wrote {path} ({len(load_stream(path))} events)")
    else:
        print(__doc__)
