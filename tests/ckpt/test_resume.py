"""Resume correctness: a run restored from a checkpoint must be
bit-identical to one that never stopped.

The comparison is over what the paper's metrics read — final PS
parameters, per-iteration loss curve, and epoch records — not over raw
checkpoint bytes (a resumed run's recorder legitimately differs by one
``ckpt.restore`` counter).
"""

import numpy as np
import pytest

from repro.ckpt import CheckpointError, load_checkpoint
from repro.cluster import ClusterSpec, DistributedTrainer, NumericEngine, TrainingPlan
from repro.core import OSP
from repro.data import make_image_classification, train_test_split
from repro.faults.schedule import FaultSchedule, WorkerCrash
from repro.hardware import LognormalJitter
from repro.harness.workloads import WorkloadConfig, timing_trainer
from repro.nn.models import MLP
from repro.nn.models.registry import ModelCard
from repro.sync import BSP

TINY_CARD = ModelCard(
    name="tiny-mlp",
    family="resnet",
    dataset="synthetic",
    task="classification",
    paper_params=1_000_000,
    paper_flops_per_sample=1e8,
    paper_layers=4,
    batch_size=16,
    metric="top1",
    mini_factory=lambda seed: MLP([3 * 8 * 8, 16, 4], seed=seed),
)

#: Crash/restart cycle that spans the mid-run checkpoint at epoch 2.
CRASH = FaultSchedule(
    (WorkerCrash(worker=1, before_epoch=2, restart_epoch=4, recover="checkpoint"),)
)

N_EPOCHS = 6
EVERY = 2


@pytest.fixture(scope="module")
def data():
    ds = make_image_classification(240, n_classes=4, image_size=8, noise=1.5, seed=0)
    return train_test_split(ds, test_fraction=0.25, seed=1)


def make_numeric(data, ckpt_dir, resume_from=None, faults=CRASH):
    train, test = data
    spec = ClusterSpec(
        n_workers=3, jitter=LognormalJitter(sigma=0.1, seed=0), faults=faults
    )
    plan = TrainingPlan(n_epochs=N_EPOCHS, lr=0.1, momentum=0.9)
    engine = NumericEngine(TINY_CARD, train, test, spec, batch_size=16, seed=0)
    return DistributedTrainer(
        spec,
        plan,
        engine,
        OSP(),
        checkpoint_every=EVERY,
        checkpoint_dir=ckpt_dir,
        resume_from=resume_from,
    )


def run_signature(trainer, result):
    layout = trainer.engine.state_layout()
    return (
        trainer.ps.params_plane(layout),
        [r.loss for r in result.recorder.iterations],
        result.recorder.epochs,
        result.wall_time,
    )


@pytest.mark.parametrize("arena", ["0", "1"])
def test_numeric_resume_bit_identical_with_crash(data, tmp_path, monkeypatch, arena):
    """save → restore → continue == uninterrupted, under both arena modes,
    with a worker crash/restart cycle spanning the checkpoint."""
    monkeypatch.setenv("REPRO_FLAT_ARENA", arena)
    base_t = make_numeric(data, tmp_path / "base")
    base_sig = run_signature(base_t, base_t.run())

    ckpt = tmp_path / "base" / f"ckpt-epoch{EVERY:04d}.npz"
    res_t = make_numeric(data, tmp_path / "resumed", resume_from=ckpt)
    res_sig = run_signature(res_t, res_t.run())

    assert np.array_equal(base_sig[0], res_sig[0])  # final parameters
    assert base_sig[1] == res_sig[1]  # loss curve
    assert base_sig[2] == res_sig[2]  # epoch records (times + metrics)
    assert base_sig[3] == res_sig[3]  # wall time

    # The crash replayed identically, and the restart recovered from the
    # checkpointed replica (recover="checkpoint"), in both runs.
    for rec in (base_t.recorder, res_t.recorder):
        assert rec.counter("faults.worker_crash") == 1
        assert rec.counter("faults.worker_restart") == 1
        assert rec.counter("ckpt.worker_recover") == 1
    assert res_t.recorder.counter("ckpt.restore") == 1
    assert base_t.recorder.counter("ckpt.restore") == 0


def test_resume_from_post_restart_checkpoint(data, tmp_path):
    """Resuming from the checkpoint *after* the restart also continues
    bit-identically (the revived worker is plain alive state by then)."""
    base_t = make_numeric(data, tmp_path / "base")
    base_sig = run_signature(base_t, base_t.run())

    ckpt = tmp_path / "base" / "ckpt-epoch0004.npz"
    res_t = make_numeric(data, tmp_path / "resumed", resume_from=ckpt)
    res_sig = run_signature(res_t, res_t.run())
    assert np.array_equal(base_sig[0], res_sig[0])
    assert base_sig[1] == res_sig[1]
    assert base_sig[3] == res_sig[3]


def test_checkpoint_planes_identical_across_arena_modes(data, tmp_path, monkeypatch):
    """A checkpoint's numeric planes are bit-identical whether the flat
    arena is on or off, so checkpoints transfer between the two builds."""
    planes = {}
    for arena in ("0", "1"):
        monkeypatch.setenv("REPRO_FLAT_ARENA", arena)
        t = make_numeric(data, tmp_path / f"arena{arena}")
        t.run()
        ckpt = load_checkpoint(tmp_path / f"arena{arena}" / "ckpt-epoch0002.npz")
        planes[arena] = ckpt.arrays
    assert set(planes["0"]) == set(planes["1"])
    for key in planes["0"]:
        assert np.array_equal(planes["0"][key], planes["1"][key]), key


def test_timing_resume_bit_identical(tmp_path):
    cfg = WorkloadConfig(
        "resnet50-cifar10", n_workers=4, n_epochs=6, iterations_per_epoch=3
    )
    base = timing_trainer(
        cfg, OSP(), checkpoint_every=2, checkpoint_dir=tmp_path / "base"
    ).run()
    res = timing_trainer(
        cfg,
        OSP(),
        checkpoint_every=2,
        checkpoint_dir=tmp_path / "resumed",
        resume_from=tmp_path / "base" / "ckpt-epoch0002.npz",
    ).run()
    assert base.wall_time == res.wall_time
    assert base.recorder.iterations == res.recorder.iterations
    assert base.recorder.epochs == res.recorder.epochs


def test_discard_policy_records_dropped_bytes(tmp_path):
    cfg = WorkloadConfig(
        "resnet50-cifar10", n_workers=4, n_epochs=4, iterations_per_epoch=3
    )
    res = timing_trainer(
        cfg,
        OSP(),
        checkpoint_every=2,
        checkpoint_dir=tmp_path,
        checkpoint_policy="discard",
    ).run()
    assert res.recorder.counter("ckpt.save") == 2
    ckpt = load_checkpoint(tmp_path / "ckpt-epoch0002.npz")
    assert ckpt.meta["ics"]["policy"] == "discard"
    assert ckpt.meta["ics"]["discarded_bytes"] >= 0.0


def test_resume_mismatches_rejected(data, tmp_path):
    base_t = make_numeric(data, tmp_path / "base")
    base_t.run()
    ckpt = tmp_path / "base" / "ckpt-epoch0002.npz"

    train, test = data
    # wrong sync model
    spec = ClusterSpec(n_workers=3, jitter=LognormalJitter(sigma=0.1, seed=0))
    plan = TrainingPlan(n_epochs=N_EPOCHS, lr=0.1, momentum=0.9)
    engine = NumericEngine(TINY_CARD, train, test, spec, batch_size=16, seed=0)
    with pytest.raises(CheckpointError, match="sync model"):
        DistributedTrainer(spec, plan, engine, BSP(), resume_from=ckpt)

    # wrong worker count
    spec2 = ClusterSpec(n_workers=4, jitter=LognormalJitter(sigma=0.1, seed=0))
    engine2 = NumericEngine(TINY_CARD, train, test, spec2, batch_size=16, seed=0)
    with pytest.raises(CheckpointError, match="workers"):
        DistributedTrainer(spec2, plan, engine2, OSP(), resume_from=ckpt)


def test_checkpoint_every_requires_dir(data):
    train, test = data
    spec = ClusterSpec(n_workers=2, jitter=LognormalJitter(sigma=0.1, seed=0))
    plan = TrainingPlan(n_epochs=2, lr=0.1, momentum=0.9)
    engine = NumericEngine(TINY_CARD, train, test, spec, batch_size=16, seed=0)
    with pytest.raises(ValueError, match="checkpoint_dir"):
        DistributedTrainer(spec, plan, engine, OSP(), checkpoint_every=1)
