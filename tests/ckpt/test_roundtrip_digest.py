"""Save-time round-trip verification: a corrupt save fails at the save."""

import json
import zipfile

import numpy as np
import pytest

from repro.ckpt import (
    CheckpointError,
    CheckpointManager,
    load_checkpoint,
    verify_roundtrip,
    write_checkpoint,
)
from repro.core.osp import OSP
from repro.harness.workloads import (
    WorkloadConfig,
    make_numeric_dataset,
    numeric_trainer,
)

from tests.ckpt.test_snapshot import make_ckpt


def test_verify_roundtrip_accepts_clean_write(tmp_path):
    ckpt = make_ckpt()
    path = write_checkpoint(ckpt, tmp_path / "ckpt-epoch0003.npz")
    verify_roundtrip(ckpt, path)  # must not raise


def _rewrite_entry(path, name, payload):
    """Replace one member of the npz (a zip) with ``payload`` bytes."""
    with zipfile.ZipFile(path) as zf:
        entries = {info.filename: zf.read(info.filename) for info in zf.infolist()}
    entries[name] = payload
    with zipfile.ZipFile(path, "w") as zf:
        for fname, data in entries.items():
            zf.writestr(fname, data)


def test_verify_roundtrip_catches_flipped_bits(tmp_path):
    ckpt = make_ckpt()
    path = write_checkpoint(ckpt, tmp_path / "ckpt-epoch0003.npz")
    # Flip one element of ps/params on disk, keeping dtype/shape intact.
    corrupt = ckpt.arrays["ps/params"].copy()
    corrupt[3] += 1.0
    buf = __import__("io").BytesIO()
    np.save(buf, corrupt)
    _rewrite_entry(path, "ps/params.npy", buf.getvalue())
    with pytest.raises(CheckpointError, match="not bit-identical"):
        verify_roundtrip(ckpt, path)


def test_verify_roundtrip_catches_missing_plane(tmp_path):
    ckpt = make_ckpt()
    path = write_checkpoint(ckpt, tmp_path / "ckpt-epoch0003.npz")
    stripped = {k: v for k, v in ckpt.arrays.items() if k != "sync/lgp_ema/0/w"}
    write_checkpoint(type(ckpt)(meta=ckpt.meta, arrays=stripped), path)
    with pytest.raises(CheckpointError, match="array keys differ"):
        verify_roundtrip(ckpt, path)


def test_verify_roundtrip_catches_meta_drift(tmp_path):
    ckpt = make_ckpt()
    path = write_checkpoint(ckpt, tmp_path / "ckpt-epoch0003.npz")
    drifted = dict(ckpt.meta, next_epoch=99)
    write_checkpoint(type(ckpt)(meta=drifted, arrays=ckpt.arrays), path)
    with pytest.raises(CheckpointError, match="metadata mismatch"):
        verify_roundtrip(ckpt, path)


def test_manager_verifies_every_save(tmp_path):
    cfg = WorkloadConfig(
        card_name="resnet50-cifar10",
        n_workers=3,
        n_epochs=4,
        iterations_per_epoch=3,
        sigma=0.1,
        seed=11,
    )
    data = make_numeric_dataset(cfg.card, n_samples=120, seed=cfg.seed)
    trainer = numeric_trainer(
        cfg, OSP(), data=data, checkpoint_every=2, checkpoint_dir=tmp_path
    )
    result = trainer.run()
    saves = result.recorder.counter("ckpt.save")
    assert saves > 0
    assert result.recorder.counter("ckpt.roundtrip_verified") == saves
    # And the written files genuinely load back bit-identical.
    manager = trainer.checkpoints
    reloaded = load_checkpoint(manager.saved[-1])
    for key, arr in manager.latest.arrays.items():
        assert np.asarray(arr).tobytes() == reloaded.arrays[key].tobytes()
