"""Checkpoint format unit tests: round-trip, atomicity, version refusal."""

import json

import numpy as np
import pytest

from repro.ckpt import (
    FORMAT_VERSION,
    Checkpoint,
    CheckpointError,
    CheckpointManager,
    describe,
    latest_checkpoint,
    load_checkpoint,
    write_checkpoint,
)


def make_ckpt():
    meta = {
        "format_version": FORMAT_VERSION,
        "next_epoch": 3,
        "time": 12.5,
        "recorder": {"epochs": [], "iterations": [], "counters": {"ckpt.save": 1}},
        "ics": {"policy": "drain", "discarded_bytes": 0.0},
    }
    arrays = {
        "ps/params": np.arange(8, dtype=np.float64),
        "sync/lgp_ema/0/w": np.ones(4),
    }
    return Checkpoint(meta=meta, arrays=arrays)


def test_write_load_round_trip(tmp_path):
    ckpt = make_ckpt()
    path = write_checkpoint(ckpt, tmp_path / "ckpt-epoch0003.npz")
    loaded = load_checkpoint(path)
    assert loaded.meta == ckpt.meta
    assert set(loaded.arrays) == set(ckpt.arrays)
    for key in ckpt.arrays:
        assert np.array_equal(loaded.arrays[key], ckpt.arrays[key])
    assert loaded.next_epoch == 3
    assert loaded.time == 12.5
    assert list(loaded.sync_arrays()) == ["lgp_ema/0/w"]


def test_write_is_atomic_no_tmp_debris(tmp_path):
    path = write_checkpoint(make_ckpt(), tmp_path / "ckpt-epoch0001.npz")
    assert sorted(p.name for p in tmp_path.iterdir()) == [path.name]


def test_overwrite_replaces_whole_file(tmp_path):
    target = tmp_path / "ckpt-epoch0001.npz"
    write_checkpoint(make_ckpt(), target)
    second = make_ckpt()
    second.meta["next_epoch"] = 9
    write_checkpoint(second, target)
    assert load_checkpoint(target).next_epoch == 9


def test_version_mismatch_refused(tmp_path):
    ckpt = make_ckpt()
    ckpt.meta["format_version"] = FORMAT_VERSION + 98
    path = write_checkpoint(ckpt, tmp_path / "ckpt-epoch0001.npz")
    with pytest.raises(CheckpointError, match="format version"):
        load_checkpoint(path)


def test_non_checkpoint_npz_refused(tmp_path):
    path = tmp_path / "not-a-ckpt.npz"
    with open(path, "wb") as f:
        np.savez(f, stuff=np.zeros(3))
    with pytest.raises(CheckpointError, match="not a repro checkpoint"):
        load_checkpoint(path)


def test_latest_checkpoint_picks_highest_epoch(tmp_path):
    assert latest_checkpoint(tmp_path) is None
    for epoch in (2, 10, 4):
        write_checkpoint(make_ckpt(), tmp_path / f"ckpt-epoch{epoch:04d}.npz")
    assert latest_checkpoint(tmp_path).name == "ckpt-epoch0010.npz"


def test_describe_summarises(tmp_path):
    info = describe(make_ckpt())
    assert info["format_version"] == FORMAT_VERSION
    assert info["next_epoch"] == 3
    assert info["counters"] == {"ckpt.save": 1}
    assert info["arrays"]["ps/params"] == {"size": 8, "dtype": "float64"}
    json.dumps(info)  # must stay JSON-serialisable for `ckpt inspect --json`


def test_manager_validates_inputs(tmp_path):
    with pytest.raises(ValueError):
        CheckpointManager(object(), every=0, directory=tmp_path)
    with pytest.raises(ValueError):
        CheckpointManager(object(), every=2, directory=tmp_path, policy="teleport")


def test_manager_due_and_paths(tmp_path):
    mgr = CheckpointManager(object(), every=2, directory=tmp_path)
    assert [e for e in range(6) if mgr.due(e)] == [1, 3, 5]
    assert mgr.checkpoint_path(1).name == "ckpt-epoch0002.npz"
