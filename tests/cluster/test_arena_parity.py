"""Property test: the flat-arena fast paths are bit-for-bit identical to
the dict path over full numeric training runs (OSP + BSP + ASP).

The arena is toggled via the ``REPRO_FLAT_ARENA`` env kill-switch so both
runs execute the exact same trainer-construction code. Any divergence in
the operation sequencing of the vectorized paths (PS averaging, SGD
apply, PGP importance, LGP correction, replica sync) shows up here as a
parameter or loss mismatch.
"""

import hashlib

import numpy as np
import pytest

from repro.core.osp import OSP
from repro.harness.workloads import WorkloadConfig, make_numeric_dataset, numeric_trainer
from repro.sync import ASP, BSP

#: 4 workers x 3 epochs x 6 batches/epoch = 72 iterations (>= 50).
CFG = WorkloadConfig("resnet50-cifar10", n_workers=4, n_epochs=3, seed=0)


def _fingerprint(cfg, sync_factory):
    data = make_numeric_dataset(cfg.card, n_samples=400, seed=cfg.seed)
    trainer = numeric_trainer(cfg, sync_factory(), data=data, batch_size=12)
    result = trainer.run()
    assert result.recorder.total_iterations >= 50
    h = hashlib.sha256()
    snap = trainer.ps.snapshot()
    for name in sorted(snap):
        h.update(name.encode())
        h.update(np.ascontiguousarray(snap[name]).tobytes())
    losses = tuple(repr(r.loss) for r in result.recorder.iterations)
    return h.hexdigest(), losses, repr(result.wall_time)


@pytest.mark.parametrize("sync_factory", [OSP, BSP, ASP])
def test_arena_bit_identical_to_dict_path(sync_factory, monkeypatch):
    monkeypatch.setenv("REPRO_FLAT_ARENA", "1")
    flat = _fingerprint(CFG, sync_factory)
    monkeypatch.setenv("REPRO_FLAT_ARENA", "0")
    dict_path = _fingerprint(CFG, sync_factory)
    assert flat == dict_path


def test_kill_switch_disables_arena(monkeypatch):
    monkeypatch.setenv("REPRO_FLAT_ARENA", "0")
    data = make_numeric_dataset(CFG.card, n_samples=400, seed=0)
    trainer = numeric_trainer(CFG, BSP(), data=data, batch_size=16)
    assert trainer.engine.replica_arena(0) is None
    assert trainer.ps.arena is None
    monkeypatch.setenv("REPRO_FLAT_ARENA", "1")
    trainer = numeric_trainer(CFG, BSP(), data=data, batch_size=16)
    assert trainer.engine.replica_arena(0) is not None
    assert trainer.ps.arena is not None
