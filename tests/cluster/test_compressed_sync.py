"""Tests for the CompressedBSP sync model."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec, DistributedTrainer, NumericEngine, TimingEngine, TrainingPlan
from repro.compression import TopK, Uniform8Bit
from repro.data import make_image_classification, train_test_split
from repro.hardware import NoJitter
from repro.nn.models import MLP, get_card
from repro.nn.models.registry import ModelCard
from repro.sync import BSP, CompressedBSP

CARD = ModelCard(
    name="comp-mlp",
    family="resnet",
    dataset="synthetic",
    task="classification",
    paper_params=1_000_000,
    paper_flops_per_sample=1e8,
    paper_layers=4,
    batch_size=16,
    metric="top1",
    mini_factory=lambda seed: MLP([3 * 4 * 4, 16, 3], seed=seed),
)


@pytest.fixture(scope="module")
def data():
    ds = make_image_classification(240, n_classes=3, image_size=4, seed=0)
    return train_test_split(ds, test_fraction=0.25, seed=0)


def run_numeric(sync, data, epochs=2):
    train, test = data
    spec = ClusterSpec(n_workers=2, jitter=NoJitter())
    plan = TrainingPlan(n_epochs=epochs, lr=0.1, momentum=0.9)
    engine = NumericEngine(CARD, train, test, spec, batch_size=10, seed=0)
    trainer = DistributedTrainer(spec, plan, engine, sync)
    res = trainer.run()
    return trainer, res


def test_validation():
    with pytest.raises(ValueError):
        CompressedBSP(TopK(0.5), nominal_ratio=0.0)


def test_lossless_compressor_matches_plain_bsp(data):
    """Top-K at ratio 1.0 is lossless: final params equal plain BSP's."""
    t_plain, _ = run_numeric(BSP(), data)
    t_comp, _ = run_numeric(CompressedBSP(TopK(1.0)), data)
    a, b = t_plain.ps.snapshot(), t_comp.ps.snapshot()
    for name in a:
        np.testing.assert_allclose(a[name], b[name], atol=1e-12)


def test_push_bytes_shrink_with_compression(data):
    trainer, _ = run_numeric(CompressedBSP(TopK(0.1)), data)
    pushes = [
        r.size
        for r in trainer.network.records
        if isinstance(r.tag, tuple) and r.tag[0] == "cbsp-push"
    ]
    pulls = [
        r.size
        for r in trainer.network.records
        if isinstance(r.tag, tuple) and r.tag[0] == "cbsp-pull"
    ]
    assert pushes and pulls
    # Top-K 10% costs 2x per kept value (index+value) => ~20% of dense.
    assert max(pushes) < 0.3 * min(pulls)


def test_timing_mode_uses_nominal_ratio():
    spec = ClusterSpec(n_workers=2, jitter=NoJitter())
    plan = TrainingPlan(n_epochs=1, iterations_per_epoch=2)
    engine = TimingEngine(get_card("resnet50-cifar10"), spec, total_iterations=2)
    sync = CompressedBSP(TopK(0.1), nominal_ratio=0.25)
    trainer = DistributedTrainer(spec, plan, engine, sync)
    trainer.run()
    pushes = [
        r.size
        for r in trainer.network.records
        if isinstance(r.tag, tuple) and r.tag[0] == "cbsp-push"
    ]
    assert all(
        p == pytest.approx(0.25 * engine.model_bytes, rel=1e-6) for p in pushes
    )


def test_quantizer_variant_trains(data):
    _tr, res = run_numeric(CompressedBSP(Uniform8Bit(), nominal_ratio=0.25), data, epochs=3)
    assert res.best_metric > 0.5


def test_label_in_name():
    assert CompressedBSP(TopK(0.1), label="x").name == "compressed-bsp-x"
