"""Unit tests for TrainerContext communication primitives."""

import pytest

from repro.cluster import ClusterSpec, DistributedTrainer, TimingEngine, TrainingPlan
from repro.cluster.context import TrainerContext
from repro.hardware import NoJitter
from repro.metrics.recorder import Recorder
from repro.netsim import LinkSpec, Network, StarTopology
from repro.nn.models import get_card
from repro.simcore import Environment
from repro.sync import BSP


def make_ctx(n_workers=2, ps_agg_bandwidth=None, bandwidth=100.0):
    env = Environment()
    spec = ClusterSpec(
        n_workers=n_workers,
        jitter=NoJitter(),
        link=LinkSpec(bandwidth=bandwidth, latency=0.0),
        ps_agg_bandwidth=ps_agg_bandwidth,
    )
    network = Network(env, StarTopology(spec.n_nodes, default_spec=spec.link))
    engine = TimingEngine(get_card("resnet50-cifar10"), spec, total_iterations=4)
    ps = engine.make_ps(TrainingPlan(n_epochs=1, iterations_per_epoch=2))
    ctx = TrainerContext(
        env=env,
        network=network,
        spec=spec,
        plan=TrainingPlan(n_epochs=1, iterations_per_epoch=2),
        engine=engine,
        ps=ps,
        recorder=Recorder(),
        iterations_per_epoch=2,
    )
    return env, ctx


def test_transfer_to_ps_without_agg_is_pure_network_time():
    env, ctx = make_ctx(ps_agg_bandwidth=None)
    done = ctx.transfer_to_ps(0, 100.0)
    env.run()
    assert env.now == pytest.approx(1.0)  # 100 bytes at 100 B/s
    assert done.triggered


def test_transfer_to_ps_with_agg_adds_service_time():
    env, ctx = make_ctx(ps_agg_bandwidth=50.0)
    done = ctx.transfer_to_ps(0, 100.0)
    env.run()
    # 1s network + 2s aggregation at 50 B/s
    assert env.now == pytest.approx(3.0)
    assert done.triggered


def test_agg_service_serialises_concurrent_pushes():
    env, ctx = make_ctx(n_workers=2, ps_agg_bandwidth=100.0)
    d1 = ctx.transfer_to_ps(0, 100.0)
    d2 = ctx.transfer_to_ps(1, 100.0)

    times = {}

    def waiter(env, ev, key):
        yield ev
        times[key] = env.now

    env.process(waiter(env, d1, "a"))
    env.process(waiter(env, d2, "b"))
    env.run()
    # Both network transfers share the PS downlink (2s each); aggregation
    # then serialises: first done at 3s, second at 4s.
    assert sorted(times.values()) == [pytest.approx(3.0), pytest.approx(4.0)]


def test_zero_byte_push_skips_agg():
    env, ctx = make_ctx(ps_agg_bandwidth=1.0)
    ctx.transfer_to_ps(0, 0.0)
    env.run()
    assert env.now == pytest.approx(0.0)


def test_transfer_from_ps_no_agg_cost():
    env, ctx = make_ctx(ps_agg_bandwidth=10.0)
    ctx.transfer_from_ps(0, 100.0)
    env.run()
    assert env.now == pytest.approx(1.0)  # pulls pay no aggregation


def test_current_lr_tracks_plan_in_timing_mode():
    _env, ctx = make_ctx()
    assert ctx.current_lr == ctx.plan.lr


def test_barrier_factory_parties():
    _env, ctx = make_ctx(n_workers=2)
    assert ctx.barrier().parties == 2


def test_sync_switch_behaviour_changes_ps_version_cadence():
    """BSP bumps the PS version once per round; ASP once per worker push.
    Sync-Switch must show the cadence change at the boundary."""
    from repro.sync import SyncSwitch

    spec = ClusterSpec(n_workers=4, jitter=NoJitter())
    plan = TrainingPlan(n_epochs=2, iterations_per_epoch=3)
    engine = TimingEngine(get_card("resnet50-cifar10"), spec, total_iterations=6)
    trainer = DistributedTrainer(spec, plan, engine, SyncSwitch(switch_epoch=1))
    trainer.run()
    # epoch 0 (BSP): 3 rounds -> 3 version bumps; epoch 1 (ASP): 4 workers
    # x 3 iterations -> 12 bumps.
    assert trainer.ps.version == 3 + 12
